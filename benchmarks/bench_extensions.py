"""Extension benchmarks: regenerate the beyond-the-paper studies and time
the genuinely-new machinery (autotuner, batch throughput, dispatcher).
"""

import numpy as np
import pytest

from conftest import print_experiment, shared_plan, shared_signal
from repro.core import sfft_batch
from repro.dispatch import recommend_transform
from repro.tuning import tune_parameters


def test_autotuner_search(benchmark):
    """One full tuning sweep (several modeled evaluations)."""
    result = benchmark(
        lambda: tune_parameters(
            1 << 24, 1000, profile="fast", select_count=1000
        )
    )
    assert result.modeled_time_s > 0


def test_dispatch_decision(benchmark):
    """Pricing all four systems for one shape."""
    d = benchmark(lambda: recommend_transform(1 << 22, 500, profile="fast"))
    assert d.gpu_winner in ("sparse", "dense")


def test_batch_throughput(benchmark):
    """Transforms/second under plan reuse (8-frame batches)."""
    n, k = 1 << 16, 16
    plan = shared_plan(n, k)
    frames = np.stack([shared_signal(n, k).time] * 8)

    def run():
        return sfft_batch(frames, plan=plan)

    outs = benchmark(run)
    assert len(outs) == 8


def test_print_ext_tuning(benchmark):
    benchmark.pedantic(
        lambda: print_experiment("ext-tuning", sizes=[1 << 22, 1 << 24, 1 << 26]),
        rounds=1, iterations=1,
    )


def test_print_ext_devices(benchmark):
    benchmark.pedantic(
        lambda: print_experiment("ext-devices"), rounds=1, iterations=1
    )


def test_print_ext_ldg(benchmark):
    benchmark.pedantic(
        lambda: print_experiment("ext-ldg"), rounds=1, iterations=1
    )


def test_print_ext_noise(benchmark):
    benchmark.pedantic(
        lambda: print_experiment("ext-noise", n=1 << 16, k=32, trials=1),
        rounds=1, iterations=1,
    )


def test_print_ext_comb(benchmark):
    benchmark.pedantic(
        lambda: print_experiment("ext-comb", n=1 << 16, ks=(8, 32)),
        rounds=1, iterations=1,
    )


def test_print_ext_offgrid(benchmark):
    benchmark.pedantic(
        lambda: print_experiment("ext-offgrid", n=1 << 14, k=8, trials=1),
        rounds=1, iterations=1,
    )


def test_exact_phase_decoder(benchmark):
    """Wall-clock of the sFFT-3.0-style exactly-sparse transform."""
    from repro.core import sfft_exact

    sig = shared_signal(1 << 16, 32)

    def run():
        res, _ = sfft_exact(sig.time, 32, seed=5)
        return res

    res = benchmark(run)
    assert res.k_found == 32


def test_print_ext_exact(benchmark):
    benchmark.pedantic(
        lambda: print_experiment("ext-exact", sizes=[1 << 14, 1 << 16], k=50),
        rounds=1, iterations=1,
    )
