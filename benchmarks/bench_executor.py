"""Sharded executor worker scaling on the paper's batch workload.

The workload is a 64-signal stack at the paper's evaluation size
(n = 2^18, k = 64) under one shared plan — the shape cusFFT's stream
overlap (optimization #3) targets.  ``test_worker_scaling_recorded``
drives the stack through :class:`repro.core.ShardedExecutor` at 1, 2, 4,
and 8 workers, verifies the 1-worker pass is *bit-identical* to the
serial fused engine, and appends a ``repro.run/1`` record with one
``wall_s_workers_<N>`` result per leg to ``BENCH_RUNS.jsonl``.

Wall-clock scaling is hardware-dependent: the >= 1.5x assertion at 4
workers only runs when this machine actually exposes >= 4 CPUs to the
process (``os.sched_getaffinity``); on smaller machines the walls are
still recorded so the trajectory captures them.  All metrics are
``wall``-class (advisory) under the regression gate — the CI-gated
classes (modeled/accuracy) are untouched by this module.
"""

import os
import time

import numpy as np
import pytest

from conftest import BENCH_JSONL, shared_plan
from repro.core import ShardedExecutor, sfft_batch_fused
from repro.obs import make_run_record, write_jsonl
from repro.signals import make_sparse_signal

_N, _K, _S = 1 << 18, 64, 64
_WORKER_LEGS = (1, 2, 4, 8)


def _cpus_visible() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def stack():
    return np.stack([
        make_sparse_signal(_N, _K, seed=700 + t).time
        for t in range(_S)
    ])


@pytest.fixture(scope="module")
def fixed_plan():
    return shared_plan(_N, _K)


def _run(stack, plan, workers: int):
    ex = ShardedExecutor(
        workers=workers, shard_size=max(1, _S // (2 * workers))
    )
    return ex.run(stack, plan)


def test_executor_1_worker(benchmark, stack, fixed_plan):
    """pytest-benchmark leg: the serial-equivalent 1-worker baseline."""
    out = benchmark.pedantic(_run, args=(stack, fixed_plan, 1),
                             rounds=3, iterations=1)
    assert len(out) == _S


def test_executor_4_workers(benchmark, stack, fixed_plan):
    """pytest-benchmark leg: 4 workers, two shards each."""
    out = benchmark.pedantic(_run, args=(stack, fixed_plan, 4),
                             rounds=3, iterations=1)
    assert len(out) == _S


def test_worker_scaling_recorded(stack, fixed_plan):
    """Time 1/2/4/8 workers, check identity, record the scaling curve."""
    serial = sfft_batch_fused(stack, fixed_plan)  # also warms the workspace

    walls: dict[int, float] = {}
    exact = True
    for workers in _WORKER_LEGS:
        _run(stack, fixed_plan, workers)  # warm the pool + clones
        t0 = time.perf_counter()
        out = _run(stack, fixed_plan, workers)
        walls[workers] = time.perf_counter() - t0
        exact = exact and all(
            np.array_equal(r.locations, s.locations)
            and np.array_equal(r.values, s.values)
            and np.array_equal(r.votes, s.votes)
            for r, s in zip(out, serial)
        )

    speedup_4v1 = walls[1] / walls[4]
    print("\nexecutor scaling (S=%d, n=2^18):" % _S)
    for workers in _WORKER_LEGS:
        print(f"  {workers} worker(s): {walls[workers] * 1e3:.1f} ms "
              f"({walls[1] / walls[workers]:.2f}x vs 1)")

    assert exact, "sharded results diverged from the serial fused engine"

    if BENCH_JSONL:
        record = make_run_record(
            "bench-executor",
            params={"n": _N, "k": _K, "S": _S,
                    "shard_size": max(1, _S // (2 * 4)),
                    "fft_backend": "numpy", "variant": "scaling"},
            results={
                **{f"wall_s_workers_{w}": walls[w] for w in _WORKER_LEGS},
                "speedup_4v1_x": speedup_4v1,
                "exact": exact,
            },
        )
        write_jsonl(BENCH_JSONL, record)

    cpus = _cpus_visible()
    if cpus >= 4:
        assert speedup_4v1 >= 1.5, (
            f"4 workers only {speedup_4v1:.2f}x vs 1 on a {cpus}-CPU "
            f"machine (need >= 1.5x)"
        )
    else:
        print(f"  (speedup assertion skipped: only {cpus} CPU(s) visible)")
