"""Sharded executor worker scaling, thread vs process, head-to-head.

The workload is a 64-signal stack at the paper's evaluation size
(n = 2^18, k = 64) under one shared plan — the shape cusFFT's stream
overlap (optimization #3) targets.  ``test_worker_scaling_recorded``
drives the stack through :class:`repro.core.ShardedExecutor` at 1, 2, 4,
and 8 workers in **both execution modes** (``thread``: GIL-bound pool
with per-worker workspace clones; ``process``: forkserver warm pool over
``multiprocessing.shared_memory``), verifies every leg is *bit-identical*
to the serial fused engine, and appends one ``repro.run/1`` record per
mode — tagged ``params.mode`` — with ``wall_s_workers_<N>`` results to
``BENCH_RUNS.jsonl``.

Wall-clock scaling is hardware-dependent: the >= 1.5x assertion at 4
workers runs per mode, and only when this machine actually exposes >= 4
CPUs to the process (``os.sched_getaffinity``); on smaller machines the
walls are still recorded so the trajectory captures them.  Thread mode
scales only through the stages that release the GIL (the bucket FFTs);
process mode also parallelizes the pure-Python recovery/estimation
stages — the head-to-head gap between the two rows is exactly what this
benchmark exists to show.
All metrics are ``wall``-class (advisory) under the regression gate —
the CI-gated classes (modeled/accuracy) are untouched by this module.
"""

import os
import time

import numpy as np
import pytest

from conftest import BENCH_JSONL, shared_plan
from repro.core import ShardedExecutor, sfft_batch_fused
from repro.obs import make_run_record, write_jsonl
from repro.signals import make_sparse_signal

_N, _K, _S = 1 << 18, 64, 64
_WORKER_LEGS = (1, 2, 4, 8)
_MODES = ("thread", "process")


def _cpus_visible() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def stack():
    return np.stack([
        make_sparse_signal(_N, _K, seed=700 + t).time
        for t in range(_S)
    ])


@pytest.fixture(scope="module")
def fixed_plan():
    return shared_plan(_N, _K)


def _run(stack, plan, workers: int, mode: str = "thread"):
    ex = ShardedExecutor(
        workers=workers, shard_size=max(1, _S // (2 * workers)), mode=mode
    )
    return ex.run(stack, plan)


def test_executor_1_worker(benchmark, stack, fixed_plan):
    """pytest-benchmark leg: the serial-equivalent 1-worker baseline."""
    out = benchmark.pedantic(_run, args=(stack, fixed_plan, 1),
                             rounds=3, iterations=1)
    assert len(out) == _S


@pytest.mark.parametrize("mode", _MODES)
def test_executor_4_workers(benchmark, stack, fixed_plan, mode):
    """pytest-benchmark leg: 4 workers, two shards each, per mode."""
    _run(stack, fixed_plan, 4, mode)  # warm the pool (and worker leases)
    out = benchmark.pedantic(_run, args=(stack, fixed_plan, 4, mode),
                             rounds=3, iterations=1)
    assert len(out) == _S


def test_worker_scaling_recorded(stack, fixed_plan):
    """Time 1/2/4/8 workers in both modes; check identity; record both."""
    serial = sfft_batch_fused(stack, fixed_plan)  # also warms the workspace
    cpus = _cpus_visible()

    speedups: dict[str, float] = {}
    for mode in _MODES:
        walls: dict[int, float] = {}
        exact = True
        for workers in _WORKER_LEGS:
            _run(stack, fixed_plan, workers, mode)  # warm pool + caches
            t0 = time.perf_counter()
            out = _run(stack, fixed_plan, workers, mode)
            walls[workers] = time.perf_counter() - t0
            exact = exact and all(
                np.array_equal(r.locations, s.locations)
                and np.array_equal(r.values, s.values)
                and np.array_equal(r.votes, s.votes)
                for r, s in zip(out, serial)
            )

        speedups[mode] = walls[1] / walls[4]
        print(f"\nexecutor scaling (mode={mode}, S={_S}, n=2^18):")
        for workers in _WORKER_LEGS:
            print(f"  {workers} worker(s): {walls[workers] * 1e3:.1f} ms "
                  f"({walls[1] / walls[workers]:.2f}x vs 1)")

        assert exact, (
            f"{mode}-mode sharded results diverged from the serial engine"
        )

        if BENCH_JSONL:
            record = make_run_record(
                "bench-executor",
                params={"n": _N, "k": _K, "S": _S, "mode": mode,
                        "shard_size": max(1, _S // (2 * 4)),
                        "fft_backend": "numpy", "variant": "scaling"},
                results={
                    **{f"wall_s_workers_{w}": walls[w]
                       for w in _WORKER_LEGS},
                    "speedup_4v1_x": speedups[mode],
                    "exact": exact,
                },
            )
            write_jsonl(BENCH_JSONL, record)

    # No shared-memory segments may outlive the process-mode legs.
    leaked = [f for f in os.listdir("/dev/shm") if f.startswith("sfft")] \
        if os.path.isdir("/dev/shm") else []
    assert not leaked, f"shared-memory segments leaked: {leaked}"

    for mode in _MODES:
        if cpus >= 4:
            assert speedups[mode] >= 1.5, (
                f"{mode} mode: 4 workers only {speedups[mode]:.2f}x vs 1 "
                f"on a {cpus}-CPU machine (need >= 1.5x)"
            )
        else:
            print(f"  ({mode} speedup assertion skipped: "
                  f"only {cpus} CPU(s) visible)")
