"""Figure 5(f): L1 error per large coefficient vs k.

Entirely functional — real numerics, no modeling.  The benchmark times one
full accuracy trial; the printed rows sweep k exactly as the paper does
(the paper's n = 2^27 is replaced by n = 2^20; the error level is set by
the filter tolerance, not n).
"""

import pytest

from conftest import print_experiment
from repro.analysis import score_result
from repro.core import make_plan, sfft
from repro.experiments import paper_kwargs
from repro.signals import make_sparse_signal

_N = 1 << 18


def test_accuracy_trial(benchmark):
    """One end-to-end accuracy trial (transform + scoring)."""
    k = 100
    sig = make_sparse_signal(_N, k, seed=1)
    plan = make_plan(_N, k, seed=2, **paper_kwargs(k))

    def trial():
        return score_result(sfft(sig.time, plan=plan), sig.locations, sig.values)

    report = benchmark(trial)
    assert report.recall == 1.0
    assert report.l1_error / _N < 1e-4


def test_error_extremely_small():
    """The paper's qualitative claim: accuracy is preserved.

    k=200 at n=2^18 sits near the regime boundary (k/B ~ 5%), where an
    occasional bucket collision can drop one coefficient; recall >= 0.99
    with a tiny per-coefficient error is the expected behaviour there
    (the paper's sweep at n=2^27 has k/B ~ 0.8%).
    """
    k = 200
    sig = make_sparse_signal(_N, k, seed=3)
    plan = make_plan(_N, k, seed=4, **paper_kwargs(k))
    report = score_result(sfft(sig.time, plan=plan), sig.locations, sig.values)
    print(f"\nL1/coeff (unit scale) = {report.l1_error / _N:.3e}, "
          f"recall = {report.recall:.4f}")
    assert report.recall >= 0.99
    assert report.l1_error / _N < 5e-2


def test_print_fig5f_rows(benchmark):
    """Regenerate Figure 5(f)'s rows (functional sweep over k)."""
    benchmark.pedantic(
        lambda: print_experiment("fig5f", n=1 << 18, trials=2),
        rounds=1,
        iterations=1,
    )
