"""Table I: the GPU test-bench.

Real wall-clock: micro-benchmarks of the simulator itself (occupancy
calculation, kernel cost estimation, a full stream-scheduler run) — the
overheads a user of the simulated device pays.  The table's rows print at
the end.
"""

import pytest

from conftest import print_experiment
from repro.cusim import (
    KEPLER_K20X,
    AccessPattern,
    GlobalAccess,
    GpuSimulation,
    KernelSpec,
    estimate_kernel,
)

DEV = KEPLER_K20X

_SPEC = KernelSpec(
    "bench",
    grid_blocks=1024,
    threads_per_block=256,
    flops_per_thread=64.0,
    accesses=(GlobalAccess(AccessPattern.COALESCED, 1 << 22, 16),),
)


def test_occupancy_calculator(benchmark):
    """Occupancy calculation cost (called once per kernel estimate)."""
    occ = benchmark(lambda: DEV.occupancy(256, registers_per_thread=40))
    assert 0 < occ.fraction <= 1


def test_kernel_cost_estimate(benchmark):
    """Single-launch cost-model evaluation."""
    t = benchmark(lambda: estimate_kernel(_SPEC, DEV))
    assert t.total_s > 0


def test_scheduler_throughput(benchmark):
    """Event-driven scheduling of a 64-kernel multi-stream timeline."""

    def run():
        sim = GpuSimulation(DEV)
        streams = [sim.stream() for _ in range(8)]
        for i in range(64):
            sim.launch(streams[i % 8], _SPEC)
        return sim.run()

    rep = benchmark(run)
    assert len(rep.records) == 64


def test_print_table1(benchmark):
    """Regenerate Table I."""
    benchmark.pedantic(
        lambda: print_experiment("table1"), rounds=1, iterations=1
    )
