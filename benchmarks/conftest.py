"""Shared helpers for the benchmark suite.

Each benchmark module pairs *real wall-clock measurements* (pytest-benchmark
timing our functional NumPy implementations at laptop-feasible sizes) with
the *paper-scale modeled rows* of the corresponding figure/table, printed
once per module so ``pytest benchmarks/ --benchmark-only`` regenerates every
artifact end to end.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import SfftPlan, make_plan
from repro.errors import ParameterError
from repro.experiments import run_experiment
from repro.obs import (
    MetricsRegistry,
    Tracer,
    append_trajectory,
    prune_runs,
    prune_trajectory,
)
from repro.signals import SparseSignal, make_sparse_signal

#: Where run records accumulate (one JSON line per experiment printed).
#: Override with REPRO_BENCH_JSONL; set it empty to disable persistence.
BENCH_JSONL = os.environ.get("REPRO_BENCH_JSONL", "BENCH_RUNS.jsonl")

#: Where the performance trajectory accumulates (one point per run record
#: this session appended).  Override with REPRO_BENCH_TRAJECTORY; set it
#: empty to disable.
BENCH_TRAJECTORY = os.environ.get(
    "REPRO_BENCH_TRAJECTORY", "BENCH_TRAJECTORY.json"
)

#: Opt-in post-session compaction of the append-only artifacts.  Unset or
#: empty: keep everything (the default — history is an asset).  Any
#: non-empty value: drop verbatim-duplicate entries after the trajectory
#: append; a positive integer additionally keeps only the newest N records
#: per run key (``scripts/bench_gate.py --prune [--prune-keep N]`` is the
#: manual equivalent).
BENCH_PRUNE = os.environ.get("REPRO_BENCH_PRUNE", "")

#: Sizes the functional (real wall-clock) benchmarks run at.
REAL_N = 1 << 18
REAL_K = 64

_PLANS: dict[tuple, SfftPlan] = {}
_SIGNALS: dict[tuple, SparseSignal] = {}


def shared_plan(n: int = REAL_N, k: int = REAL_K, **overrides) -> SfftPlan:
    """Session-cached plan (filter synthesis is the slow part).

    Defaults to the paper's evaluation profile (``fast`` filter, 6 loops)
    so the measured numbers correspond to the configuration the modeled
    rows use.
    """
    key = (n, k, tuple(sorted(overrides.items())))
    if key not in _PLANS:
        overrides.setdefault("profile", "fast")
        overrides.setdefault("loops", 6)
        _PLANS[key] = make_plan(n, k, seed=1234, **overrides)
    return _PLANS[key]


def shared_signal(n: int = REAL_N, k: int = REAL_K) -> SparseSignal:
    """Session-cached sparse test signal."""
    key = (n, k)
    if key not in _SIGNALS:
        _SIGNALS[key] = make_sparse_signal(n, k, seed=99)
    return _SIGNALS[key]


def print_experiment(experiment_id: str, **options) -> None:
    """Run a registered experiment and print its rows (the paper artifact).

    Each run is clocked by a run-scoped tracer and appended to
    ``BENCH_JSONL`` as a machine-readable run record (validated by
    ``scripts/check_bench_json.py``), alongside the printed table.
    """
    if BENCH_JSONL:
        options.setdefault("jsonl_path", BENCH_JSONL)
    result = run_experiment(experiment_id, **options)
    print()
    print(result.render())


def _count_lines(path: str) -> int:
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as fh:
        return sum(1 for _ in fh)


def pytest_sessionstart(session):
    """Remember how many run records predate this bench session."""
    session.config._repro_bench_start_lines = (
        _count_lines(BENCH_JSONL) if BENCH_JSONL else 0
    )


def pytest_sessionfinish(session, exitstatus):
    """Trajectory append, then opt-in compaction.

    Pruning honours ``REPRO_BENCH_PRUNE`` even when the trajectory leg is
    disabled (CI's bench gate runs with ``REPRO_BENCH_TRAJECTORY=""`` but
    still wants ``BENCH_RUNS.jsonl`` deduplicated).
    """
    _append_session_trajectory(session)
    _maybe_prune()


def _append_session_trajectory(session) -> None:
    """Append this session's run records to the performance trajectory.

    Only records the session itself appended to ``BENCH_JSONL`` become
    trajectory points, so re-running benchmarks never duplicates history.
    Best-effort: a malformed artifact warns instead of failing the session.
    """
    if not (BENCH_JSONL and BENCH_TRAJECTORY):
        return
    if not os.path.exists(BENCH_JSONL):
        return
    start = getattr(session.config, "_repro_bench_start_lines", 0)
    records = []
    with open(BENCH_JSONL, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh):
            if lineno < start or not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                return  # leave the broken file for check_bench_json to name
    if not records:
        return
    try:
        appended = append_trajectory(
            BENCH_TRAJECTORY, records, session="bench"
        )
    except (OSError, ValueError) as exc:
        print(f"\n[repro] trajectory not updated: {exc}")
        return
    if appended:
        print(f"\n[repro] appended {appended} point(s) to {BENCH_TRAJECTORY}")


def _maybe_prune() -> None:
    """Honour REPRO_BENCH_PRUNE: compact the artifacts after the append."""
    if not BENCH_PRUNE:
        return
    keep = int(BENCH_PRUNE) if BENCH_PRUNE.isdigit() else None
    for label, path, fn in (
        ("runs", BENCH_JSONL, prune_runs),
        ("trajectory", BENCH_TRAJECTORY, prune_trajectory),
    ):
        if not (path and os.path.exists(path)):
            continue
        try:
            kept, dropped = fn(path, keep_per_key=keep)
        except (OSError, ValueError, ParameterError) as exc:
            print(f"\n[repro] {label} not pruned: {exc}")
            continue
        if dropped:
            print(f"\n[repro] pruned {path}: kept {kept}, dropped {dropped}")


@pytest.fixture
def run_obs() -> tuple[Tracer, MetricsRegistry]:
    """A fresh (tracer, registry) pair for benchmarks that instrument
    individual transforms rather than whole experiments."""
    return Tracer(), MetricsRegistry()


@pytest.fixture
def signal() -> SparseSignal:
    """The default benchmark signal."""
    return shared_signal()


@pytest.fixture
def plan() -> SfftPlan:
    """The default benchmark plan."""
    return shared_plan()
