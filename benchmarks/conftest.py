"""Shared helpers for the benchmark suite.

Each benchmark module pairs *real wall-clock measurements* (pytest-benchmark
timing our functional NumPy implementations at laptop-feasible sizes) with
the *paper-scale modeled rows* of the corresponding figure/table, printed
once per module so ``pytest benchmarks/ --benchmark-only`` regenerates every
artifact end to end.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import SfftPlan, make_plan
from repro.experiments import run_experiment
from repro.obs import MetricsRegistry, Tracer
from repro.signals import SparseSignal, make_sparse_signal

#: Where run records accumulate (one JSON line per experiment printed).
#: Override with REPRO_BENCH_JSONL; set it empty to disable persistence.
BENCH_JSONL = os.environ.get("REPRO_BENCH_JSONL", "BENCH_RUNS.jsonl")

#: Sizes the functional (real wall-clock) benchmarks run at.
REAL_N = 1 << 18
REAL_K = 64

_PLANS: dict[tuple, SfftPlan] = {}
_SIGNALS: dict[tuple, SparseSignal] = {}


def shared_plan(n: int = REAL_N, k: int = REAL_K, **overrides) -> SfftPlan:
    """Session-cached plan (filter synthesis is the slow part).

    Defaults to the paper's evaluation profile (``fast`` filter, 6 loops)
    so the measured numbers correspond to the configuration the modeled
    rows use.
    """
    key = (n, k, tuple(sorted(overrides.items())))
    if key not in _PLANS:
        overrides.setdefault("profile", "fast")
        overrides.setdefault("loops", 6)
        _PLANS[key] = make_plan(n, k, seed=1234, **overrides)
    return _PLANS[key]


def shared_signal(n: int = REAL_N, k: int = REAL_K) -> SparseSignal:
    """Session-cached sparse test signal."""
    key = (n, k)
    if key not in _SIGNALS:
        _SIGNALS[key] = make_sparse_signal(n, k, seed=99)
    return _SIGNALS[key]


def print_experiment(experiment_id: str, **options) -> None:
    """Run a registered experiment and print its rows (the paper artifact).

    Each run is clocked by a run-scoped tracer and appended to
    ``BENCH_JSONL`` as a machine-readable run record (validated by
    ``scripts/check_bench_json.py``), alongside the printed table.
    """
    if BENCH_JSONL:
        options.setdefault("jsonl_path", BENCH_JSONL)
    result = run_experiment(experiment_id, **options)
    print()
    print(result.render())


@pytest.fixture
def run_obs() -> tuple[Tracer, MetricsRegistry]:
    """A fresh (tracer, registry) pair for benchmarks that instrument
    individual transforms rather than whole experiments."""
    return Tracer(), MetricsRegistry()


@pytest.fixture
def signal() -> SparseSignal:
    """The default benchmark signal."""
    return shared_signal()


@pytest.fixture
def plan() -> SfftPlan:
    """The default benchmark plan."""
    return shared_plan()
