"""Ablation: loop-partition binning (Algorithm 2) vs atomic histogram.

Real wall-clock: the two functional binning formulations (identical
output; the partition version mirrors the GPU kernel's round structure).
Modeled rows for the full-transform ablation print at the end.
"""

import numpy as np
import pytest

from conftest import print_experiment, shared_plan, shared_signal
from repro.gpu.kernels import bin_atomic_functional, bin_partition_functional


@pytest.mark.parametrize(
    "binner", [bin_partition_functional, bin_atomic_functional],
    ids=["loop-partition", "atomic-histogram"],
)
def test_binning_functional(benchmark, binner):
    """One loop's permutation+filter+fold wall-clock."""
    sig = shared_signal()
    plan = shared_plan()
    perm = plan.permutations[0]
    out = benchmark(lambda: binner(sig.time, plan.filt, plan.B, perm))
    assert out.size == plan.B


def test_formulations_agree():
    """The ablation compares equal computations."""
    sig = shared_signal()
    plan = shared_plan()
    perm = plan.permutations[0]
    a = bin_partition_functional(sig.time, plan.filt, plan.B, perm)
    b = bin_atomic_functional(sig.time, plan.filt, plan.B, perm)
    assert np.abs(a - b).max() < 1e-10 * max(1.0, np.abs(a).max())


def test_print_ablation_rows(benchmark):
    """Regenerate the abl-partition rows (modeled, paper scale)."""
    benchmark.pedantic(
        lambda: print_experiment("abl-partition"), rounds=1, iterations=1
    )
