"""Figure 5(b): run time vs sparsity at fixed n.

Real wall-clock: sparse-transform execution at k = 16 and k = 256 with n
fixed — the measured growth with k is slow, unlike linear-in-k scaling.
Paper-scale rows (n = 2^27, k = 100..1000) print at the end.
"""

import time

import pytest

from conftest import print_experiment, shared_plan, shared_signal
from repro.core import sfft

_N = 1 << 18


@pytest.mark.parametrize("k", [16, 64, 256])
def test_sfft_vs_k(benchmark, k):
    """Execution time growth as k rises at fixed n."""
    sig = shared_signal(_N, k)
    plan = shared_plan(_N, k)
    result = benchmark(lambda: sfft(sig.time, plan=plan))
    assert result.k_found == k


def test_growth_with_k_is_sublinear():
    """16x the sparsity should cost much less than 16x the time."""
    times = {}
    for k in (16, 256):
        sig = shared_signal(_N, k)
        plan = shared_plan(_N, k)
        sfft(sig.time, plan=plan)  # warm
        t0 = time.perf_counter()
        for _ in range(3):
            sfft(sig.time, plan=plan)
        times[k] = (time.perf_counter() - t0) / 3
    ratio = times[256] / times[16]
    print(f"\nreal k-scaling @2^18: k=16 {times[16]*1e3:.1f} ms, "
          f"k=256 {times[256]*1e3:.1f} ms (ratio {ratio:.1f}x for 16x k)")
    assert ratio < 16


def test_print_fig5b_rows(benchmark):
    """Regenerate Figure 5(b)'s rows (paper-scale, modeled)."""
    benchmark.pedantic(
        lambda: print_experiment("fig5b"), rounds=1, iterations=1
    )
