"""Tuned (wisdom) configurations vs paper defaults, re-measured live.

Reads the committed ``WISDOM.json`` store, and for every workload class it
holds re-measures the tuned pick head-to-head against the paper-default
configuration using the tuner's own measurement engine (reps-amortized
trials, exactness screen).  The claims under test:

* **never worse** — on every class the tuned median stays within a noise
  band of the default (tuning that loses must not have been persisted);
* **really faster somewhere** — at least one class shows a strict
  improvement, so the store is earning its keep;
* **still exact** — every tuned configuration recovers every probe
  support (tuning changes speed, never results).

The measured walls land in ``BENCH_RUNS.jsonl`` as a ``repro.run/1``
record (``bench-wisdom``); the wall-clock keys are machine-dependent and
classed ``wall`` by the regression gate (advisory), never ``modeled``.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from conftest import BENCH_JSONL
from repro.obs import make_run_record, write_jsonl
from repro.tune import (
    TuneConfig,
    WorkloadClass,
    candidate_from_config,
    load_wisdom,
    measure_candidate,
    parse_class_key,
)
from repro.tune.candidates import Candidate
from repro.tune.tuner import _probe_signals

WISDOM_PATH = os.path.join(os.path.dirname(__file__), "..", "WISDOM.json")

#: Re-measurement budget: amortized samples, same engine the tuner used.
_CONFIG = TuneConfig(trials=7, probes=2, target_span_s=0.02)

#: A re-measured tuned median may not exceed default * (1 + this) on any
#: class; at least one class must beat default * (1 - this).  Generous on
#: the "never worse" side (two medians on a busy host), strict enough on
#: the win side that timer jitter cannot satisfy it.
_NOISE_BAND = 0.08


def _latest_per_class(records):
    latest = {}
    for record in records:
        prev = latest.get(record["class"])
        if prev is None or record["version"] > prev["version"]:
            latest[record["class"]] = record
    return latest


@pytest.fixture(scope="module")
def wisdom_records():
    records = load_wisdom(WISDOM_PATH)
    if not records:
        pytest.skip("no committed WISDOM.json store to benchmark")
    return _latest_per_class(records)


def test_tuned_vs_default_recorded(wisdom_records):
    """Re-measure every stored class; tuned >= default, strictly better
    somewhere, and everything exact."""
    per_class = {}
    for cls, record in sorted(wisdom_records.items()):
        n, k, noise, batch = parse_class_key(cls)
        wc = WorkloadClass(n, k, noise, batch)
        xs, truths = _probe_signals(wc, _CONFIG, 2016)

        # Warmup sweep (discarded): both legs then measure steady-state.
        warm = replace(_CONFIG, trials=1)
        measure_candidate(wc, Candidate(), xs, truths, warm, seed=2016)

        default = measure_candidate(wc, Candidate(), xs, truths, _CONFIG,
                                    seed=2016)
        tuned_cand = candidate_from_config(record["config"])
        if tuned_cand.is_default:
            # Tuning found no real winner for this class and persisted
            # the default itself; the legs are the same configuration,
            # so a second measurement could only differ by jitter.
            tuned = default
        else:
            tuned = measure_candidate(wc, tuned_cand, xs, truths, _CONFIG,
                                      seed=2016)

        assert default.exact, f"{cls}: default failed its own probes"
        assert tuned.exact, (
            f"{cls}: tuned config lost exactness — wisdom must never "
            f"change results"
        )
        per_class[cls] = (default, tuned)
        print(f"\nwisdom {cls}: default {default.median_s * 1e3:.2f} ms "
              f"vs tuned {tuned.median_s * 1e3:.2f} ms "
              f"({default.median_s / tuned.median_s:.2f}x, "
              f"config {tuned.label})")

    losers = {
        cls: (d.median_s, t.median_s)
        for cls, (d, t) in per_class.items()
        if t.median_s > d.median_s * (1.0 + _NOISE_BAND)
    }
    winners = [
        cls for cls, (d, t) in per_class.items()
        if t.median_s < d.median_s * (1.0 - _NOISE_BAND)
    ]

    if BENCH_JSONL:
        results = {}
        for cls, (d, t) in per_class.items():
            slug = cls.replace("|", "_").replace("=", "")
            results[f"default_wall_s_{slug}"] = d.median_s
            results[f"tuned_wall_s_{slug}"] = t.median_s
            results[f"speedup_x_{slug}"] = d.median_s / t.median_s
        record = make_run_record(
            "bench-wisdom",
            params={"classes": len(per_class), "trials": _CONFIG.trials,
                    "store": "WISDOM.json"},
            results=results,
        )
        write_jsonl(BENCH_JSONL, record)

    assert not losers, (
        f"tuned config measurably slower than default on {losers} — "
        f"stale wisdom should have been re-tuned"
    )
    assert winners, (
        "no class shows a strict tuned-over-default win; the committed "
        "wisdom store is not earning its keep"
    )
