"""Table II: the CPU test-bench.

Real wall-clock: the CPU models' evaluation cost (they must be cheap —
sweeps call them hundreds of times).  The table's rows print at the end.
"""

import pytest

from conftest import print_experiment
from repro.cpu import FftwPlan, PsFFT


def test_fftw_model_evaluation(benchmark):
    """Cost of one FFTW time estimate."""
    t = benchmark(lambda: FftwPlan(1 << 24).estimated_time())
    assert t > 0


def test_psfft_model_evaluation(benchmark):
    """Cost of one PsFFT step-model evaluation (includes parameter
    derivation and filter sizing)."""
    t = benchmark(
        lambda: PsFFT.create(1 << 24, 1000, profile="fast").estimated_time()
    )
    assert t > 0


def test_print_table2(benchmark):
    """Regenerate Table II."""
    benchmark.pedantic(
        lambda: print_experiment("table2"), rounds=1, iterations=1
    )
