"""Figure 5(e): cusFFT speedup over PsFFT (the authors' OpenMP CPU sFFT).

Real wall-clock: PsFFT's functional execution (identical algorithm, CPU
path).  Paper-scale rows print at the end; the paper reports a peak of 6.6x
with a dip at the largest sizes due to host-device data transfer — the
reproduced rows include the sampled-input H2D that produces that dip.
"""

import pytest

from conftest import REAL_K, REAL_N, print_experiment, shared_signal
from repro.cpu import PsFFT
from repro.gpu import OPTIMIZED, CusFFT


@pytest.fixture(scope="module")
def psfft():
    ps = PsFFT.create(REAL_N, REAL_K)
    ps.plan(seed=5)
    return ps


def test_psfft_functional_execution(benchmark, psfft):
    """PsFFT functional pipeline wall-clock."""
    sig = shared_signal()
    res = benchmark(lambda: psfft.execute(sig.time))
    assert res.k_found == REAL_K


def test_transfer_dip_present():
    """The transfer-inclusive speedup dips from its peak at the largest
    size — the paper's 'data transfer offsets the gains' effect.  The
    transfer charged is the per-call filter upload (see the fig5e
    experiment docstring)."""
    k = 1000
    kw = dict(profile="fast", loops=6, bucket_constant=1.0, select_count=k)

    def speedup(n):
        ps = PsFFT.create(n, k, **kw).estimated_time()
        cu = CusFFT.create(
            n, k, config=OPTIMIZED, h2d="filter", **kw
        ).estimated_time()
        return ps / cu

    sweep = {logn: speedup(1 << logn) for logn in range(20, 28)}
    peak_logn = max(sweep, key=sweep.get)
    print("\nspeedup over PsFFT:",
          {f"2^{p}": f"{s:.2f}x" for p, s in sweep.items()})
    assert peak_logn < 27            # the dip: peak is before the largest n
    assert sweep[peak_logn] > 4.0    # paper: >4x average, 6.6x peak
    assert sweep[27] < sweep[peak_logn]


def test_print_fig5e_rows(benchmark):
    """Regenerate Figure 5(e)'s rows (paper-scale, modeled)."""
    benchmark.pedantic(
        lambda: print_experiment("fig5e"), rounds=1, iterations=1
    )
