"""Flight-recorder overhead on the Figure 5(a) microbench.

The telemetry layer's contract is "always-on": a :class:`FlightRecorder`
subscribed to the transform's tracer and registry must not meaningfully tax
the hot path.  This module measures the same n = 2^18 instrumented
transform the Fig. 5(a) microbench times, bare vs. with a recorder
attached, and asserts the overhead stays under 5% wall (plus a small
absolute cushion so a sub-millisecond scheduler blip cannot flake the
suite).  The measurement lands in ``BENCH_RUNS.jsonl`` as a
``bench-telemetry-overhead`` run record — its walls are class ``wall``,
which the CI bench gate treats as advisory (machine-dependent), exactly
like every other measured wall in that file.
"""

import time

from conftest import BENCH_JSONL, shared_plan, shared_signal
from repro.core import sfft
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    make_run_record,
    write_jsonl,
)

#: Relative overhead budget (acceptance criterion) and absolute cushion.
OVERHEAD_BUDGET = 0.05
CUSHION_S = 2e-3

#: min-of-repeats: the minimum is the least noisy wall estimator.
REPEATS = 7


def _min_wall(with_recorder: bool) -> float:
    """Best-of-``REPEATS`` wall of one instrumented transform."""
    sig, plan = shared_signal(), shared_plan()
    best = float("inf")
    for _ in range(REPEATS):
        tracer, registry = Tracer(), MetricsRegistry()
        recorder = None
        if with_recorder:
            recorder = FlightRecorder().attach(
                tracer=tracer, registry=registry
            )
        sfft(sig.time, plan=plan, tracer=tracer, metrics=registry)  # warm
        t0 = time.perf_counter()
        sfft(sig.time, plan=plan, tracer=tracer, metrics=registry)
        best = min(best, time.perf_counter() - t0)
        if recorder is not None:
            assert len(recorder) > 0  # it really was recording
            recorder.detach()
    return best


def test_sfft_with_flight_recorder(benchmark):
    """Instrumented transform with an attached recorder (timed row)."""
    sig, plan = shared_signal(), shared_plan()
    tracer, registry = Tracer(), MetricsRegistry()
    with FlightRecorder().attach(tracer=tracer, registry=registry):
        result = benchmark(
            lambda: sfft(sig.time, plan=plan, tracer=tracer,
                         metrics=registry)
        )
    assert result.k_found == plan.k


def test_flight_recorder_overhead_under_budget():
    """Acceptance criterion: recorder overhead < 5% wall on fig5a's bench."""
    bare = _min_wall(with_recorder=False)
    recorded = _min_wall(with_recorder=True)
    overhead = recorded / bare if bare > 0 else 1.0
    print(f"\nflight recorder overhead @2^18: bare {bare * 1e3:.2f} ms, "
          f"recorded {recorded * 1e3:.2f} ms ({overhead:.3f}x)")

    if BENCH_JSONL:
        plan = shared_plan()
        record = make_run_record(
            "bench-telemetry-overhead",
            params={"n": plan.n, "k": plan.k, "repeats": REPEATS},
            results={
                "bare_wall_s": bare,
                "recorded_wall_s": recorded,
                "overhead_x": overhead,
            },
        )
        write_jsonl(BENCH_JSONL, record)

    assert recorded <= bare * (1.0 + OVERHEAD_BUDGET) + CUSHION_S, (
        f"flight recorder overhead {overhead:.3f}x exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget (bare {bare * 1e3:.2f} ms, "
        f"recorded {recorded * 1e3:.2f} ms)"
    )


def test_recorder_dump_is_cheap_and_valid():
    """`dump()` mid-stream stays schema-valid (and does not stop traffic)."""
    from repro.obs import validate_run_record

    sig, plan = shared_signal(), shared_plan()
    tracer, registry = Tracer(), MetricsRegistry()
    with FlightRecorder(capacity=256).attach(
        tracer=tracer, registry=registry
    ) as recorder:
        sfft(sig.time, plan=plan, tracer=tracer, metrics=registry)
        snapshot = recorder.dump(name="bench-flight")
        sfft(sig.time, plan=plan, tracer=tracer, metrics=registry)
    assert validate_run_record(snapshot) == []
    assert snapshot["params"]["events"] <= 256
