"""Figure 2: per-step time distribution of the sparse FFT.

Real wall-clock: the measured CPU breakdown at a feasible size (the same
instrumentation the Fig-2 harness uses).  Paper-scale modeled rows for both
sub-figures print at the end.
"""

import pytest

from conftest import print_experiment
from repro.analysis import measure_breakdown
from repro.experiments import paper_kwargs


def test_measured_breakdown(benchmark):
    """Wall-clock the instrumented pipeline (one profiling pass)."""
    bd = benchmark.pedantic(
        lambda: measure_breakdown(1 << 18, 64, seed=9, repeats=1),
        rounds=3,
        iterations=1,
    )
    assert set(bd.seconds) == {
        "perm_filter", "bucket_fft", "cutoff", "recovery", "estimation",
    }
    assert bd.total > 0


def test_perm_filter_dominates_at_scale():
    """Figure 2(a)'s central observation, on the modeled breakdown."""
    from repro.analysis import modeled_breakdown

    bd = modeled_breakdown(1 << 26, 1000, **paper_kwargs(1000))
    assert bd.dominant() in ("perm_filter", "recovery")
    small = modeled_breakdown(1 << 19, 1000, **paper_kwargs(1000))
    # perm+filter share grows with n.
    assert bd.shares()["perm_filter"] > small.shares()["perm_filter"]


def test_print_fig2a_rows(benchmark):
    """Regenerate Figure 2(a)'s rows."""
    benchmark.pedantic(
        lambda: print_experiment("fig2a"), rounds=1, iterations=1
    )


def test_print_fig2b_rows(benchmark):
    """Regenerate Figure 2(b)'s rows."""
    benchmark.pedantic(
        lambda: print_experiment("fig2b"), rounds=1, iterations=1
    )
