"""Ablation: batched vs per-loop cuFFT for the subsampled transforms.

Real wall-clock: one batched NumPy FFT over an (L, B) array vs L separate
calls — the same amortization the batched cuFFT mode models.  Modeled rows
print at the end.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.cufft import CufftPlan

_L, _B = 16, 1 << 14


@pytest.fixture(scope="module")
def rows():
    gen = np.random.default_rng(13)
    return gen.standard_normal((_L, _B)) + 1j * gen.standard_normal((_L, _B))


def test_batched_fft(benchmark, rows):
    """One batched call over all loops."""
    plan = CufftPlan(_B, batch=_L)
    out = benchmark(lambda: plan.execute(rows))
    assert out.shape == (_L, _B)


def test_looped_fft(benchmark, rows):
    """L separate single-transform calls."""
    plan = CufftPlan(_B, batch=1)

    def run():
        return np.stack([plan.execute(rows[i]) for i in range(_L)])

    out = benchmark(run)
    assert out.shape == (_L, _B)


def test_batched_and_looped_agree(rows):
    plan_b = CufftPlan(_B, batch=_L)
    plan_1 = CufftPlan(_B, batch=1)
    batched = plan_b.execute(rows)
    looped = np.stack([plan_1.execute(rows[i]) for i in range(_L)])
    assert np.allclose(batched, looped)


def test_print_ablation_rows(benchmark):
    """Regenerate the abl-batch rows (modeled, paper scale)."""
    benchmark.pedantic(
        lambda: print_experiment("abl-batch"), rounds=1, iterations=1
    )
