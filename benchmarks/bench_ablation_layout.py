"""Ablation: asynchronous data-layout transformation (Section V-A).

Real wall-clock: fused strided binning vs the remap+exec split (functional
bodies).  Modeled rows — where the stream overlap actually pays — print at
the end.
"""

import numpy as np
import pytest

from conftest import print_experiment, shared_plan, shared_signal
from repro.cusim import GpuSimulation, KEPLER_K20X
from repro.gpu.kernels import (
    bin_layout_functional,
    bin_partition_functional,
    exec_spec,
    remap_spec,
)


@pytest.mark.parametrize(
    "binner", [bin_partition_functional, bin_layout_functional],
    ids=["fused-strided", "remap+exec"],
)
def test_layout_functional(benchmark, binner):
    """One loop's binning wall-clock under each formulation."""
    sig = shared_signal()
    plan = shared_plan()
    perm = plan.permutations[0]
    out = benchmark(lambda: binner(sig.time, plan.filt, plan.B, perm))
    assert out.size == plan.B


def test_overlap_hides_exec_time():
    """On the simulated device, pipelining remap/exec across streams beats
    strict serialization of the same kernels."""
    B, rounds, streams = 4096, 12, 8
    dev = KEPLER_K20X

    def makespan(n_streams: int) -> float:
        sim = GpuSimulation(dev)
        remap_streams = [sim.stream() for _ in range(n_streams)]
        exec_stream = sim.stream()
        for c in range(rounds):
            rs = remap_streams[c % n_streams]
            sim.launch(rs, remap_spec(B=B))
            ev = rs.record_event()
            sim.launch(exec_stream, exec_spec(B=B), after=(ev,))
        return sim.run().makespan_s

    serial = makespan(1)
    overlapped = makespan(streams)
    print(f"\nremap/exec pipeline: 1 stream {serial*1e6:.1f} us, "
          f"{streams} streams {overlapped*1e6:.1f} us")
    assert overlapped < serial


def test_print_ablation_rows(benchmark):
    """Regenerate the abl-layout rows (modeled, paper scale)."""
    benchmark.pedantic(
        lambda: print_experiment("abl-layout"), rounds=1, iterations=1
    )
