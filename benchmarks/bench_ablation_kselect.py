"""Ablation: fast k-selection (Algorithm 6) vs Thrust sort&select (Alg 3).

Real wall-clock: the two functional cutoffs over realistic bucket arrays.
Modeled rows for the full transform print at the end.
"""

import numpy as np
import pytest

from conftest import print_experiment
from repro.gpu.kernels import fast_select_functional, sort_select_functional

_B, _K = 1 << 16, 512


@pytest.fixture(scope="module")
def magnitudes(rng=None):
    gen = np.random.default_rng(7)
    mags = np.abs(gen.standard_normal(_B)) * 0.01
    mags[gen.choice(_B, _K, replace=False)] = 5.0 + gen.random(_K)
    return mags


@pytest.mark.parametrize(
    "select", [sort_select_functional, fast_select_functional],
    ids=["sort-select", "fast-select"],
)
def test_cutoff_functional(benchmark, magnitudes, select):
    """Cutoff wall-clock over 2^16 buckets, k=512."""
    chosen, _ = benchmark(lambda: select(magnitudes, _K))
    assert chosen.size >= _K


def test_selections_agree_on_signal_buckets(magnitudes):
    """Both cutoffs keep every genuinely large bucket."""
    truth = set(np.flatnonzero(magnitudes > 1.0).tolist())
    a, _ = sort_select_functional(magnitudes, _K)
    b, _ = fast_select_functional(magnitudes, _K)
    assert truth <= set(a.tolist())
    assert truth <= set(b.tolist())


def test_print_ablation_rows(benchmark):
    """Regenerate the abl-select rows (modeled, paper scale)."""
    benchmark.pedantic(
        lambda: print_experiment("abl-select"), rounds=1, iterations=1
    )
