"""Figure 5(c): cusFFT speedup over cuFFT.

Real wall-clock: the functional cusFFT pipeline (all GPU kernel bodies)
against the dense FFT at feasible sizes.  Paper-scale speedup rows
(simulated K20x, n = 2^18..2^27) print at the end; the paper's headline is
9x (baseline) / 15x (optimized) at n = 2^27.
"""

import numpy as np
import pytest

from conftest import REAL_K, REAL_N, print_experiment, shared_signal
from repro.cufft import CufftPlan
from repro.cusim import KEPLER_K20X
from repro.gpu import BASELINE, OPTIMIZED, CusFFT


@pytest.fixture(scope="module")
def transforms():
    """Prebuilt cusFFT transforms (plan construction excluded from timing)."""
    out = {}
    for name, cfg in (("base", BASELINE), ("opt", OPTIMIZED)):
        t = CusFFT.create(REAL_N, REAL_K, config=cfg)
        t.plan(seed=5)
        out[name] = t
    return out


@pytest.mark.parametrize("variant", ["base", "opt"])
def test_cusfft_functional_execution(benchmark, transforms, variant):
    """Functional cusFFT pipeline wall-clock (kernel bodies in NumPy)."""
    sig = shared_signal()
    run = benchmark(lambda: transforms[variant].execute(sig.time))
    assert run.result.k_found == REAL_K


def test_modeled_speedup_at_2_27():
    """The modeled headline numbers stay in the paper's band."""
    k = 1000
    kw = dict(profile="fast", loops=6, bucket_constant=1.0, select_count=k)
    n = 1 << 27
    cufft = CufftPlan(n).estimated_time(KEPLER_K20X)
    opt = CusFFT.create(n, k, config=OPTIMIZED, **kw).estimated_time()
    base = CusFFT.create(n, k, config=BASELINE, **kw).estimated_time()
    print(f"\nspeedup over cuFFT @2^27: baseline {cufft/base:.1f}x "
          f"(paper ~9x), optimized {cufft/opt:.1f}x (paper ~15x)")
    assert 6.0 < cufft / base < 12.0
    assert 10.0 < cufft / opt < 18.0


def test_print_fig5c_rows(benchmark):
    """Regenerate Figure 5(c)'s rows (paper-scale, modeled)."""
    benchmark.pedantic(
        lambda: print_experiment("fig5c"), rounds=1, iterations=1
    )
