"""Figure 5(a): run time vs signal size.

Real wall-clock: our vectorized sparse FFT against ``numpy.fft.fft`` (the
dense comparator available on this machine) at n = 2^18 and 2^20 — the
*actual* sublinearity crossover, measured.  Paper-scale rows (all five
systems, n = 2^18..2^27 on the simulated testbeds) print at the end.
"""

import numpy as np
import pytest

from conftest import print_experiment, shared_plan, shared_signal
from repro.core import sfft


@pytest.mark.parametrize("logn", [18, 20])
def test_sfft_execution(benchmark, logn):
    """Sparse transform execution time (plan prebuilt, k=64)."""
    n = 1 << logn
    sig = shared_signal(n)
    plan = shared_plan(n)
    result = benchmark(lambda: sfft(sig.time, plan=plan))
    assert result.k_found == plan.k


@pytest.mark.parametrize("logn", [18, 20])
def test_dense_fft_execution(benchmark, logn):
    """Dense numpy FFT of the same signal (the n*log n baseline)."""
    n = 1 << logn
    sig = shared_signal(n)
    out = benchmark(lambda: np.fft.fft(sig.time))
    assert out.size == n


def test_real_crossover_exists():
    """At n=2^20 the vectorized sparse transform beats the dense C FFT in
    real wall-clock on this machine — the sublinearity is not an artifact
    of the model."""
    import time

    n = 1 << 20
    sig = shared_signal(n)
    plan = shared_plan(n)
    sfft(sig.time, plan=plan)  # warm
    t0 = time.perf_counter()
    sfft(sig.time, plan=plan)
    t_sparse = time.perf_counter() - t0
    np.fft.fft(sig.time)  # warm
    t0 = time.perf_counter()
    np.fft.fft(sig.time)
    t_dense = time.perf_counter() - t0
    print(f"\nreal wall-clock @2^20: sfft {t_sparse*1e3:.1f} ms vs "
          f"numpy fft {t_dense*1e3:.1f} ms")
    assert t_sparse < 2.0 * t_dense  # comfortably competitive


def test_print_fig5a_rows(benchmark):
    """Regenerate Figure 5(a)'s rows (paper-scale, modeled)."""
    benchmark.pedantic(
        lambda: print_experiment("fig5a"), rounds=1, iterations=1
    )
