"""Batched execution engine vs seed-style per-call transforms.

The workload is the repo's own multi-trial experiment shape: 16 transforms
of one ``(n, k)`` configuration.  The *seed-style* leg pays plan synthesis
per call (how ``run_fig5f`` looped before the batch engine existed); the
*batched* leg builds one plan and pushes the whole stack through
``sfft_batch`` — one gather, one ``(S*L, B)`` bucket FFT, one vote pass.

``test_amortized_speedup_recorded`` times both legs directly, asserts the
batched engine is at least 2x faster per transform, and appends a
``repro.run/1`` record with the amortized wall times to ``BENCH_RUNS.jsonl``
(picked up by the trajectory on session finish).  The wall-clock metrics
are machine-dependent, so the regression gate classes them ``wall``
(advisory), never ``modeled``/``accuracy`` (CI-gated).
"""

import time

import numpy as np
import pytest

from conftest import BENCH_JSONL
from repro.core import make_plan, sfft, sfft_batch
from repro.obs import make_run_record, write_jsonl
from repro.signals import make_sparse_signal

_N, _K, _TRIALS = 1 << 18, 64, 16
_PLAN_KW = dict(profile="fast", loops=6)


@pytest.fixture(scope="module")
def stack():
    return np.stack([
        make_sparse_signal(_N, _K, seed=400 + t).time
        for t in range(_TRIALS)
    ])


@pytest.fixture(scope="module")
def fixed_plan():
    return make_plan(_N, _K, seed=1234, **_PLAN_KW)


def _seed_style(stack):
    """One plan synthesis + one transform per trial (the pre-engine shape)."""
    return [
        sfft(stack[t],
             plan=make_plan(_N, _K, seed=4000 + t, **_PLAN_KW))
        for t in range(_TRIALS)
    ]


def test_seed_style_per_call_loop(benchmark, stack):
    """Baseline: every trial pays plan synthesis and a solo execution."""
    out = benchmark.pedantic(_seed_style, args=(stack,),
                             rounds=3, iterations=1)
    assert len(out) == _TRIALS


def test_batched_engine(benchmark, stack, fixed_plan):
    """One fixed plan, one sfft_batch call over the 16-signal stack."""
    out = benchmark.pedantic(
        lambda: sfft_batch(stack, plan=fixed_plan),
        rounds=3, iterations=1,
    )
    assert len(out) == _TRIALS


def test_batched_results_are_plausible(stack, fixed_plan):
    """Every batched transform recovers exactly k coefficients."""
    for res in sfft_batch(stack, plan=fixed_plan):
        assert res.k_found == _K


def test_amortized_speedup_recorded(stack, fixed_plan):
    """Batched amortized time must be >= 2x better; record both legs."""
    # Warm the plan workspace so the measured leg is steady-state reuse,
    # matching how the experiment loops call the engine.
    sfft_batch(stack[:1], plan=fixed_plan)

    t0 = time.perf_counter()
    _seed_style(stack)
    per_call_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sfft_batch(stack, plan=fixed_plan)
    batched_s = time.perf_counter() - t0

    speedup = (per_call_s / _TRIALS) / (batched_s / _TRIALS)
    print(f"\nbatch engine: per-call {per_call_s / _TRIALS * 1e3:.2f} "
          f"ms/transform vs batched {batched_s / _TRIALS * 1e3:.2f} "
          f"ms/transform ({speedup:.1f}x)")

    if BENCH_JSONL:
        record = make_run_record(
            "bench-batch-engine",
            params={"n": _N, "k": _K, "trials": _TRIALS,
                    "variant": "amortized"},
            results={
                "per_call_amortized_wall_s": per_call_s / _TRIALS,
                "batched_amortized_wall_s": batched_s / _TRIALS,
                "batch_speedup_x": speedup,
            },
        )
        write_jsonl(BENCH_JSONL, record)

    assert speedup >= 2.0, (
        f"batched engine only {speedup:.2f}x faster per transform "
        f"(need >= 2x)"
    )
