"""Figure 5(d): cusFFT speedup over parallel FFTW.

Real wall-clock: the FFTW stand-in's functional execution (numpy FFT) is
benchmarked directly.  Paper-scale rows print at the end; the paper's range
is 0.5x (n = 2^18) to ~29x (n = 2^27).
"""

import pytest

from conftest import REAL_N, print_experiment, shared_signal
from repro.cpu import FftwPlan
from repro.cufft import CufftPlan  # noqa: F401  (symmetry with fig5c)
from repro.gpu import OPTIMIZED, CusFFT


def test_fftw_functional_execution(benchmark):
    """Dense FFTW-equivalent execution wall-clock."""
    sig = shared_signal()
    plan = FftwPlan(REAL_N)
    out = benchmark(lambda: plan.execute(sig.time))
    assert out.size == REAL_N


def test_modeled_range_matches_paper():
    """Speedup small at 2^18 (<1) and large at 2^27 (>20x)."""
    k = 1000
    kw = dict(profile="fast", loops=6, bucket_constant=1.0, select_count=k)
    small = FftwPlan(1 << 18).estimated_time() / CusFFT.create(
        1 << 18, k, config=OPTIMIZED, **kw
    ).estimated_time()
    large = FftwPlan(1 << 27).estimated_time() / CusFFT.create(
        1 << 27, k, config=OPTIMIZED, **kw
    ).estimated_time()
    print(f"\nspeedup over FFTW: {small:.2f}x @2^18 (paper 0.5x), "
          f"{large:.1f}x @2^27 (paper ~29x)")
    assert small < 1.0
    assert large > 20.0


def test_print_fig5d_rows(benchmark):
    """Regenerate Figure 5(d)'s rows (paper-scale, modeled)."""
    benchmark.pedantic(
        lambda: print_experiment("fig5d"), rounds=1, iterations=1
    )
