#!/usr/bin/env python
"""Static-analysis gate over reprolint findings.

Usage::

    python scripts/lint_gate.py [options]

Runs the repo linter (``python -m repro lint`` in-process: the AST
invariant rules plus the kernel race-detector battery) and compares the
finding *fingerprints* against the committed baseline (default
``LINT_BASELINE.json``).  Fingerprints are line-number-free
(``rule::path::message``) so pure code motion does not churn the gate.

Modes:

* **no baseline on disk, or --record** — recording mode: snapshot the
  current findings into a fresh baseline, print what was recorded, exit 0.
  This is why the CI job is green before a baseline exists, and how a
  pre-existing-findings debt is adopted deliberately rather than silently.
* **gate mode** — exit 1 iff a finding appears whose fingerprint is not in
  the baseline (each printed with its ``path:line`` anchor).  Baselined
  fingerprints that no longer fire are reported as fixed (informational);
  re-record to shrink the baseline.

Options::

    --baseline PATH   baseline document            [LINT_BASELINE.json]
    --root PATH       repository root to lint      [auto-detected]
    --record          force recording mode (re-snapshot the baseline)
    --no-kernels      skip the kernel race-detector battery
    --json            print the machine-readable verdict document

Exit codes: 0 ok / recorded, 1 new findings, 2 usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.analysis.staticcheck import collect_findings  # noqa: E402
from repro.errors import ParameterError  # noqa: E402

BASELINE_SCHEMA = "repro.lintbase/1"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python scripts/lint_gate.py",
        description="Gate fresh reprolint findings against a baseline.",
    )
    parser.add_argument("--baseline", default="LINT_BASELINE.json")
    parser.add_argument("--root", default=None)
    parser.add_argument("--record", action="store_true",
                        help="snapshot a fresh baseline instead of gating")
    parser.add_argument("--no-kernels", action="store_true",
                        help="skip the kernel race-detector battery")
    parser.add_argument("--json", action="store_true", dest="as_json")
    return parser


def validate_lint_baseline(doc) -> list[str]:
    """Problems in a ``repro.lintbase/1`` document; empty means valid."""
    if not isinstance(doc, dict):
        return [f"baseline must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("schema") != BASELINE_SCHEMA:
        problems.append(
            f"schema must be {BASELINE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    fps = doc.get("fingerprints")
    if not isinstance(fps, list):
        problems.append("fingerprints must be an array")
    else:
        for i, fp in enumerate(fps):
            if not isinstance(fp, str) or fp.count("::") < 2:
                problems.append(
                    f"fingerprints[{i}] must be a 'rule::path::message' string"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    try:
        args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    try:
        findings = collect_findings(args.root, kernels=not args.no_kernels)
    except (ParameterError, OSError) as exc:
        print(f"lint_gate: cannot lint: {exc}", file=sys.stderr)
        return 2
    fresh = {f.fingerprint(): f for f in findings}

    recording = args.record or not os.path.exists(args.baseline)
    if recording:
        baseline = {
            "schema": BASELINE_SCHEMA,
            "fingerprints": sorted(fresh),
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=1, sort_keys=True)
            fh.write("\n")
        reason = "--record" if args.record else "no baseline — recording"
        print(f"lint_gate: {reason}: wrote {args.baseline} "
              f"({len(fresh)} fingerprint(s))")
        if args.as_json:
            print(json.dumps({"schema": "repro.lintgate/1",
                              "status": "recorded",
                              "baseline": args.baseline,
                              "fingerprints": len(fresh)}, indent=2))
        return 0

    with open(args.baseline, encoding="utf-8") as fh:
        try:
            baseline = json.load(fh)
        except json.JSONDecodeError as exc:
            print(f"lint_gate: {args.baseline}: not JSON ({exc})",
                  file=sys.stderr)
            return 2
    problems = validate_lint_baseline(baseline)
    if problems:
        for problem in problems[:5]:
            print(f"lint_gate: {args.baseline}: {problem}", file=sys.stderr)
        return 2

    known = set(baseline["fingerprints"])
    new = sorted(fp for fp in fresh if fp not in known)
    fixed = sorted(fp for fp in known if fp not in fresh)

    verdict = {
        "schema": "repro.lintgate/1",
        "status": "new-findings" if new else "ok",
        "baseline": args.baseline,
        "new": [fresh[fp].to_json() for fp in new],
        "fixed": fixed,
    }
    if args.as_json:
        print(json.dumps(verdict, indent=2))
    else:
        for fp in fixed:
            print(f"lint_gate: fixed (re-record to drop from baseline): {fp}")
    if new:
        for fp in new:
            print(f"lint_gate: NEW {fresh[fp].render()}", file=sys.stderr)
        print(f"lint_gate: {len(new)} new finding(s) not in {args.baseline}",
              file=sys.stderr)
        return 1
    if not args.as_json:
        print(f"lint_gate: ok — {len(fresh)} finding(s), all baselined "
              f"({len(known)} in baseline, {len(fixed)} fixed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
