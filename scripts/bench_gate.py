#!/usr/bin/env python
"""Performance-regression gate over benchmark run records.

Usage::

    python scripts/bench_gate.py [options]

Reads ``repro.run/1`` records from the runs file (default
``BENCH_RUNS.jsonl``, the file the benchmark session appends to), compares
them against the committed baseline (default ``BENCH_BASELINE.json``), and
appends one trajectory point per record to ``BENCH_TRAJECTORY.json``.

Modes:

* **no baseline on disk, or --record** — recording mode: snapshot the runs
  into a fresh baseline, print what was recorded, exit 0.  This is why the
  CI job is green before a baseline exists.
* **gate mode** — noise-aware comparison (median vs. baseline median with a
  per-class relative threshold + IQR band + absolute floor; see
  ``docs/observability.md``).  Exits 1 iff a regression is confirmed, with
  the offending (key, metric) pairs named in the verdict table.  On
  failure the gate also runs regression **attribution**: each confirmed
  regression gets a ``repro.attrib/1`` record ranking the per-stage span
  deltas that explain it (with critical-path shares, what-if projections,
  and the unattributed residual), rendered to stdout and — with
  ``--attrib PATH`` — written as validated JSONL.
* **prune mode** (``--prune``) — compact the append-only files instead of
  gating: drop verbatim-duplicate entries from the runs JSONL and the
  trajectory, and with ``--prune-keep N`` also superseded entries beyond
  the newest N per run key.  Exits 0 after printing what was dropped.

Options::

    --runs PATH          run records to judge      [BENCH_RUNS.jsonl]
    --baseline PATH      baseline document         [BENCH_BASELINE.json]
    --trajectory PATH    history file ('' = skip)  [BENCH_TRAJECTORY.json]
    --record             force recording mode (re-snapshot the baseline)
    --prune              compact runs + trajectory files, then exit
    --prune-keep N       with --prune: keep only the newest N per run key
    --attrib PATH        on regression, write repro.attrib/1 JSONL here
    --classes C [C ...]  metric classes to gate on [wall modeled accuracy]
                         (CI uses "modeled accuracy": machine-independent.
                         The batch-engine amortized timings from
                         ``bench_batch_engine.py`` — ``*_wall_s`` and the
                         dimensionless ``batch_speedup_x`` — class as
                         ``wall``/skipped, so they trend in the trajectory
                         without ever failing the machine-independent gate)
    --wall-threshold F / --modeled-threshold F / --accuracy-threshold F /
    --memory-threshold F
                         per-class relative thresholds
    --session TAG        tag trajectory points with a session label
    --json               print the machine-readable verdict document

Exit codes: 0 ok / recorded, 1 confirmed regression, 2 usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.obs import (  # noqa: E402
    GateConfig,
    append_trajectory,
    attribute_verdict,
    compare_to_baseline,
    make_baseline,
    prune_runs,
    prune_trajectory,
    render_attrib_record,
    render_verdict,
    validate_attrib_record,
    validate_baseline,
    validate_run_record,
)
from repro.errors import ParameterError  # noqa: E402
from repro.obs.regress import METRIC_CLASSES  # noqa: E402


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python scripts/bench_gate.py",
        description="Gate fresh benchmark run records against a baseline.",
    )
    parser.add_argument("--runs", default="BENCH_RUNS.jsonl")
    parser.add_argument("--baseline", default="BENCH_BASELINE.json")
    parser.add_argument("--trajectory", default="BENCH_TRAJECTORY.json")
    parser.add_argument("--record", action="store_true",
                        help="snapshot a fresh baseline instead of gating")
    parser.add_argument("--prune", action="store_true",
                        help="compact the runs/trajectory files, then exit")
    parser.add_argument("--prune-keep", type=int, default=None,
                        metavar="N",
                        help="with --prune: newest N records per run key")
    parser.add_argument("--attrib", default=None, metavar="PATH",
                        help="on regression, write repro.attrib/1 JSONL here")
    parser.add_argument("--classes", nargs="+", choices=METRIC_CLASSES,
                        default=list(METRIC_CLASSES), metavar="CLASS")
    parser.add_argument("--wall-threshold", type=float, default=None)
    parser.add_argument("--modeled-threshold", type=float, default=None)
    parser.add_argument("--accuracy-threshold", type=float, default=None)
    parser.add_argument("--memory-threshold", type=float, default=None)
    parser.add_argument("--session", default=None)
    parser.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _load_records(path: str) -> list[dict] | None:
    """Parse and validate a runs JSONL file; None (after stderr) on error."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"bench_gate: {path}:{lineno}: not JSON ({exc})",
                      file=sys.stderr)
                return None
            problems = validate_run_record(record)
            if problems:
                print(f"bench_gate: {path}:{lineno}: {problems[0]}",
                      file=sys.stderr)
                return None
            records.append(record)
    return records


def _gate_config(args) -> GateConfig:
    thresholds = dict(GateConfig().thresholds)
    for klass in METRIC_CLASSES:
        override = getattr(args, f"{klass}_threshold")
        if override is not None:
            thresholds[klass] = override
    return GateConfig(thresholds=thresholds, classes=tuple(args.classes))


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    try:
        args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    if args.prune_keep is not None and not args.prune:
        print("bench_gate: --prune-keep requires --prune", file=sys.stderr)
        return 2

    if not os.path.exists(args.runs):
        print(f"bench_gate: no runs file at {args.runs!r} — run the "
              f"benchmark session first (pytest benchmarks/)",
              file=sys.stderr)
        return 2

    if args.prune:
        try:
            kept, dropped = prune_runs(
                args.runs, keep_per_key=args.prune_keep
            )
            print(f"bench_gate: pruned {args.runs}: kept {kept}, "
                  f"dropped {dropped}")
            if args.trajectory and os.path.exists(args.trajectory):
                kept, dropped = prune_trajectory(
                    args.trajectory, keep_per_key=args.prune_keep
                )
                print(f"bench_gate: pruned {args.trajectory}: kept {kept}, "
                      f"dropped {dropped}")
        except (OSError, ValueError, ParameterError) as exc:
            print(f"bench_gate: prune failed: {exc}", file=sys.stderr)
            return 2
        return 0

    records = _load_records(args.runs)
    if records is None:
        return 2
    if not records:
        print(f"bench_gate: {args.runs!r} holds no records", file=sys.stderr)
        return 2

    if args.trajectory:
        try:
            appended = append_trajectory(
                args.trajectory, records, session=args.session
            )
        except (OSError, ValueError) as exc:
            print(f"bench_gate: cannot append trajectory: {exc}",
                  file=sys.stderr)
            return 2
        print(f"bench_gate: appended {appended} point(s) to "
              f"{args.trajectory}")

    recording = args.record or not os.path.exists(args.baseline)
    if recording:
        baseline = make_baseline(records, source=args.runs)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=1, sort_keys=True)
            fh.write("\n")
        n_metrics = sum(
            len(e["metrics"]) for e in baseline["entries"].values()
        )
        reason = "--record" if args.record else "no baseline — recording"
        print(f"bench_gate: {reason}: wrote {args.baseline} "
              f"({len(baseline['entries'])} key(s), {n_metrics} metric(s) "
              f"from {len(records)} record(s))")
        if args.as_json:
            print(json.dumps({"schema": "repro.gate/1", "status": "recorded",
                              "baseline": args.baseline}, indent=2))
        return 0

    with open(args.baseline, encoding="utf-8") as fh:
        try:
            baseline = json.load(fh)
        except json.JSONDecodeError as exc:
            print(f"bench_gate: {args.baseline}: not JSON ({exc})",
                  file=sys.stderr)
            return 2
    problems = validate_baseline(baseline)
    if problems:
        for problem in problems[:5]:
            print(f"bench_gate: {args.baseline}: {problem}", file=sys.stderr)
        return 2

    verdict = compare_to_baseline(baseline, records, _gate_config(args))
    if args.as_json:
        print(json.dumps(verdict.to_json(), indent=2))
    else:
        print(render_verdict(verdict))
    if verdict.status == "regression":
        attributions = attribute_verdict(baseline, records, verdict)
        for record in attributions:
            problems = validate_attrib_record(record)
            if problems:  # a bug in the attributor, not in the run data
                print(f"bench_gate: internal: invalid attrib record: "
                      f"{problems[0]}", file=sys.stderr)
                return 2
        if args.attrib:
            with open(args.attrib, "w", encoding="utf-8") as fh:
                for record in attributions:
                    fh.write(json.dumps(record, separators=(",", ":")))
                    fh.write("\n")
            print(f"bench_gate: wrote {len(attributions)} attribution "
                  f"record(s) to {args.attrib}")
        if not args.as_json:
            for record in attributions:
                print()
                print(render_attrib_record(record))
        for check, record in zip(verdict.regressions(), attributions):
            top = record["contributors"][:1]
            blame = (f"; top contributor {top[0]['metric']} "
                     f"(delta {top[0]['delta']:+.6g})" if top else "")
            print(f"bench_gate: REGRESSION {check.key} :: {check.metric} "
                  f"({check.base_median:.6g} -> {check.fresh_median:.6g}, "
                  f"{check.ratio:.2f}x){blame}", file=sys.stderr)
        return 1
    print("bench_gate: ok — no confirmed regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
