#!/usr/bin/env python
"""Validate benchmark JSON artifacts and JSONL run records.

Usage::

    python scripts/check_bench_json.py [paths...]

With no paths, scans the repository root for ``BENCH_*.json`` files and
``*.jsonl`` run-record files.  Validation rules:

* every file must parse as JSON (``.jsonl``: one JSON document per line);
* ``.jsonl`` lines are dispatched on their ``schema`` field: lines
  declaring ``"repro.lint/1"`` are validated as linter findings
  (``repro.analysis.staticcheck.validate_lint_record``, the output of
  ``python -m repro lint --json``); lines declaring
  ``"repro.telemetry/1"`` are validated as streaming-telemetry heartbeats
  (``repro.obs.validate_telemetry_record``, the output of the
  ``TelemetryFlusher`` / ``python -m repro export --telemetry``); lines
  declaring ``"repro.attrib/1"`` are validated as regression-attribution
  records (``repro.obs.validate_attrib_record``, the output of
  ``python -m repro why --json`` / ``bench_gate.py --attrib``); all
  ``python -m repro why --json`` / ``bench_gate.py --attrib``); lines
  declaring ``"repro.wisdom/1"`` are validated as auto-tuner wisdom
  entries (``repro.tune.validate_wisdom_record``, the output of
  ``python -m repro tune --json``), with per-class version monotonicity
  enforced across the whole file; all
  other lines must be valid ``repro.run/1`` records (see
  ``repro.obs.validate_run_record`` — one schema, shared with the
  library so CI and the writer cannot drift);
  records named ``bench-executor`` additionally must carry the stack
  geometry and positive ``wall_s_workers_<N>`` walls (the executor
  scaling curve), and a ``params.mode`` of ``thread``/``process`` when
  present (records predate the process-pool executor);
* ``WISDOM.json`` (the committed auto-tuner store) is JSONL despite its
  extension and is validated line-by-line like any other wisdom stream;
* ``LINT_BASELINE.json`` (the static-analysis gate's artifact) must be a
  valid ``repro.lintbase/1`` fingerprint snapshot;
* ``BENCH_*.json`` declaring ``"schema": "repro.baseline/1"`` or
  ``"repro.trajectory/1"`` (the regression-gate artifacts
  ``BENCH_BASELINE.json`` / ``BENCH_TRAJECTORY.json``) are validated with
  the shared ``repro.obs`` validators, which name the offending entry /
  point index in every message;
* other ``BENCH_*.json`` in pytest-benchmark format (a top-level
  ``benchmarks`` array) must give every entry a ``name`` and ``stats``.

Exit codes: 0 all valid (or nothing to check), 1 validation failures,
2 usage/IO errors.
"""

from __future__ import annotations

import glob
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.analysis.staticcheck import (  # noqa: E402
    LINT_SCHEMA,
    validate_lint_record,
)
from repro.obs import (  # noqa: E402
    ATTRIB_SCHEMA,
    BASELINE_SCHEMA,
    TELEMETRY_SCHEMA,
    TRAJECTORY_SCHEMA,
    validate_attrib_record,
    validate_baseline,
    validate_run_record,
    validate_telemetry_record,
    validate_trajectory,
)
from repro.tune import (  # noqa: E402
    WISDOM_SCHEMA,
    validate_wisdom_record,
)

LINT_BASELINE_SCHEMA = "repro.lintbase/1"


def check_executor_record(record: dict) -> list[str]:
    """Shape checks specific to ``bench-executor`` scaling records.

    On top of the generic ``repro.run/1`` schema these records must carry
    the stack geometry in ``params`` and at least one positive
    ``wall_s_workers_<N>`` wall per worker leg in ``results``.
    """
    problems: list[str] = []
    params = record.get("params") or {}
    for key in ("n", "k", "S"):
        if not isinstance(params.get(key), int):
            problems.append(f"bench-executor params.{key} must be an int")
    if not isinstance(params.get("fft_backend"), str):
        problems.append("bench-executor params.fft_backend must be a string")
    # ``mode`` arrived with the process-pool executor; records written
    # before it are still valid, but when present it must name a real mode.
    if "mode" in params and params["mode"] not in ("thread", "process"):
        problems.append(
            "bench-executor params.mode must be 'thread' or 'process', "
            f"got {params['mode']!r}"
        )
    results = record.get("results") or {}
    walls = {
        key: val for key, val in results.items()
        if key.startswith("wall_s_workers_")
        and key[len("wall_s_workers_"):].isdigit()
    }
    if not walls:
        problems.append(
            "bench-executor results must include at least one "
            "wall_s_workers_<N> timing"
        )
    for key, val in sorted(walls.items()):
        if not (isinstance(val, (int, float)) and not isinstance(val, bool)
                and val > 0):
            problems.append(f"bench-executor results.{key} must be > 0")
    for key in ("speedup_4v1_x",):
        if key in results:
            val = results[key]
            if not (isinstance(val, (int, float))
                    and not isinstance(val, bool) and val > 0):
                problems.append(f"bench-executor results.{key} must be > 0")
    return problems


def check_jsonl(path: str) -> list[str]:
    """Problems found in a JSONL run-record file."""
    problems: list[str] = []
    #: class key -> last seen version, for cross-line monotonicity.
    wisdom_versions: dict[str, int] = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"{path}:{lineno}: not JSON ({exc})")
                continue
            if isinstance(record, dict) \
                    and record.get("schema") == WISDOM_SCHEMA:
                issues = validate_wisdom_record(record)
                for issue in issues:
                    problems.append(f"{path}:{lineno}: {issue}")
                if not issues:
                    cls, version = record["class"], record["version"]
                    last = wisdom_versions.get(cls)
                    if last is not None and version <= last:
                        problems.append(
                            f"{path}:{lineno}: wisdom version {version} for "
                            f"class {cls!r} is not monotonically increasing "
                            f"(last seen {last})"
                        )
                    wisdom_versions[cls] = max(version,
                                               wisdom_versions.get(cls, 0))
                continue
            if isinstance(record, dict) and record.get("schema") == LINT_SCHEMA:
                for issue in validate_lint_record(record):
                    problems.append(f"{path}:{lineno}: {issue}")
                continue
            if isinstance(record, dict) \
                    and record.get("schema") == TELEMETRY_SCHEMA:
                for issue in validate_telemetry_record(record):
                    problems.append(f"{path}:{lineno}: {issue}")
                continue
            if isinstance(record, dict) \
                    and record.get("schema") == ATTRIB_SCHEMA:
                for issue in validate_attrib_record(record):
                    problems.append(f"{path}:{lineno}: {issue}")
                continue
            for issue in validate_run_record(record):
                problems.append(f"{path}:{lineno}: {issue}")
            if isinstance(record, dict) and record.get("name") == "bench-executor":
                for issue in check_executor_record(record):
                    problems.append(f"{path}:{lineno}: {issue}")
    return problems


def check_lint_baseline(path: str) -> list[str]:
    """Problems found in a ``repro.lintbase/1`` fingerprint snapshot."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        return [f"{path}: not JSON ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path}: baseline must be a JSON object"]
    problems: list[str] = []
    if doc.get("schema") != LINT_BASELINE_SCHEMA:
        problems.append(
            f"{path}: schema must be {LINT_BASELINE_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    fps = doc.get("fingerprints")
    if not isinstance(fps, list):
        problems.append(f"{path}: fingerprints must be an array")
    else:
        for i, fp in enumerate(fps):
            if not isinstance(fp, str) or fp.count("::") < 2:
                problems.append(
                    f"{path}: fingerprints[{i}] must be a "
                    "'rule::path::message' string"
                )
    return problems


def check_bench_json(path: str) -> list[str]:
    """Problems found in a BENCH_*.json artifact."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        return [f"{path}: not JSON ({exc})"]
    problems: list[str] = []
    schema = doc.get("schema") if isinstance(doc, dict) else None
    basename = os.path.basename(path)
    if schema == BASELINE_SCHEMA or basename == "BENCH_BASELINE.json":
        return [f"{path}: {p}" for p in validate_baseline(doc)]
    if schema == TRAJECTORY_SCHEMA or basename == "BENCH_TRAJECTORY.json":
        return [f"{path}: {p}" for p in validate_trajectory(doc)]
    if isinstance(doc, dict) and "benchmarks" in doc:
        entries = doc["benchmarks"]
        if not isinstance(entries, list):
            return [f"{path}: 'benchmarks' must be an array"]
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                problems.append(f"{path}: benchmarks[{i}] must be an object")
                continue
            for key in ("name", "stats"):
                if key not in entry:
                    problems.append(f"{path}: benchmarks[{i}] missing {key!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    paths = args or sorted(
        glob.glob(os.path.join(_ROOT, "BENCH_*.json"))
        + glob.glob(os.path.join(_ROOT, "LINT_BASELINE.json"))
        + glob.glob(os.path.join(_ROOT, "WISDOM.json"))
        + glob.glob(os.path.join(_ROOT, "*.jsonl"))
    )
    if not paths:
        print("check_bench_json: no artifacts found (nothing to validate)")
        return 0
    problems: list[str] = []
    for path in paths:
        if not os.path.exists(path):
            print(f"check_bench_json: no such file: {path}", file=sys.stderr)
            return 2
        if path.endswith(".jsonl") \
                or os.path.basename(path) == "WISDOM.json":
            # The wisdom store is JSONL despite the .json extension
            # (append-only atomic writes want line granularity).
            problems += check_jsonl(path)
        elif os.path.basename(path) == "LINT_BASELINE.json":
            problems += check_lint_baseline(path)
        else:
            problems += check_bench_json(path)
    for problem in problems:
        print(f"check_bench_json: {problem}", file=sys.stderr)
    status = "FAILED" if problems else "ok"
    print(f"check_bench_json: {len(paths)} file(s), "
          f"{len(problems)} problem(s) — {status}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
