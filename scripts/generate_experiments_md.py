#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from live experiment runs.

Usage:  python scripts/generate_experiments_md.py > EXPERIMENTS.md

Every table below is produced by the registered experiment runners (the
same code `python -m repro.experiments <id>` executes), so the document
always matches the library's current behaviour.
"""

from __future__ import annotations

import sys

from repro.experiments import run_experiment

#: Paper-vs-measured commentary per experiment, id -> text.
COMMENTARY = {
    "fig2a": (
        "**Paper:** perm+filter dominates and grows with n; the estimation/"
        "recovery share *falls* with n (relative sparsity decreases).  "
        "**Reproduced:** perm+filter dominates beyond n = 2^20 (55-71%) "
        "and its share rises with n while recovery+estimation falls — both "
        "trends and the dominant step match.  These rows model the serial "
        "reference's location/estimation loop split (voting in 3 of 6 "
        "loops, `loc_loops=3`), the code the paper profiled; the Figure 5 "
        "pipelines vote in every loop.  The alternation between 55% and "
        "71% is B's power-of-two rounding."
    ),
    "fig2b": (
        "**Paper:** with n fixed, perm+filter and estimation gradually "
        "dominate as k grows.  **Reproduced:** the recovery/estimation "
        "share grows with k exactly as described."
    ),
    "fig5a": (
        "**Paper:** sFFT curves sub-linear, dense curves n·log n; both "
        "cusFFT builds beat cuFFT for n > 2^22.  **Reproduced:** optimized "
        "cusFFT grows ~14x over a 512x size range (cuFFT grows ~690x); the "
        "baseline build crosses cuFFT between 2^21 and 2^22, the optimized "
        "build slightly earlier."
    ),
    "fig5b": (
        "**Paper:** cuFFT/FFTW independent of k; sFFT grows slowly with k.  "
        "**Reproduced:** dense columns constant by construction and "
        "cusFFT-opt grows ~3x over the 10x k range (the bucket count "
        "scales with sqrt(k))."
    ),
    "fig5c": (
        "**Paper:** up to 15x (optimized) and >9x (baseline) at n = 2^27.  "
        "**Reproduced:** 13.2x and 8.8x — within ~12% of both headline "
        "numbers, with the same growth-in-n shape."
    ),
    "fig5d": (
        "**Paper:** 0.5x at 2^18 rising to ~29x at 2^27.  **Reproduced:** "
        "0.49x at 2^18 and 27.5x at 2^27 — both endpoints land on the "
        "paper's values."
    ),
    "fig5e": (
        "**Paper:** peak 6.6x at 2^24, dip at larger n attributed to "
        "host-device transfer, >4x average.  **Reproduced:** ~4.8x "
        "average, peaking at 6.0x with the dip present at 2^27 (the "
        "per-call filter upload grows with the filter footprint while "
        "PsFFT pays no transfer); the exact peak position shifts with B's "
        "power-of-two rounding (the authors hand-tuned Bcst per size; see "
        "ext-tuning)."
    ),
    "fig5f": (
        "**Paper:** L1 error per large coefficient is 'extremely small' "
        "(plotted near 1e-7..1e-8 at n = 2^27).  **Reproduced:** ~1e-7 per "
        "unit-magnitude coefficient, flat in k — the error level is set by "
        "the 1e-6 filter tolerance and the median estimator, not by n "
        "(functional runs at n = 2^20)."
    ),
    "table1": (
        "All Table I values are reproduced in the simulated device spec; "
        "the achieved-bandwidth and launch-overhead rows are measured from "
        "the model itself (micro-benchmarks in "
        "benchmarks/bench_table1_gpu_testbench.py)."
    ),
    "table2": (
        "All Table II values are reproduced in the simulated CPU spec; "
        "derived sustainable rates shown alongside."
    ),
    "abl-partition": (
        "The collision-free loop partition beats the conventional atomic "
        "histogram at every size — the reason Section IV-C rejects "
        "per-thread sub-histograms and atomics."
    ),
    "abl-layout": (
        "**Reproduction finding (discrepancy):** under our bandwidth-honest "
        "device model the asynchronous layout transformation is neutral to "
        "slightly negative.  The split pipeline moves strictly more DRAM "
        "bytes than the fused kernel (the remap still performs the same "
        "scattered reads, then adds a round trip through A'), and overlap "
        "can only hide work that bandwidth sharing would equally absorb.  "
        "The paper's measured gain therefore implies its *fused baseline* "
        "ran below achievable DRAM bandwidth (TLB miss / partition-camping "
        "pathologies of large-stride access on Kepler, which our model "
        "omits).  The overall ~2x optimized-vs-baseline gap the paper "
        "reports is fully accounted for by the fast k-selection "
        "(abl-select below)."
    ),
    "abl-select": (
        "Replacing Thrust sort&select (~16 radix passes over B keys+values "
        "per loop, ~32 kernel launches) with the one-pass threshold "
        "selection is the big optimization win — 1.5-2x end-to-end, "
        "matching the paper's optimized-vs-baseline gap."
    ),
    "abl-batch": (
        "Batched cuFFT amortizes per-pass launches across all L loops; the "
        "gain is largest for small B where launch overhead dominates "
        "(paper Section IV-C step 3: 'much faster than repeatedly calling "
        "the cuFFT function')."
    ),
    "ext-devices": (
        "Extension (paper future work): K40 wins on bandwidth; Maxwell's "
        "1/32-rate double precision turns the FFT stages compute-bound and "
        "costs it the lead despite 2.5x faster atomics; the Xeon Phi model "
        "beats the Sandy Bridge box ~5x on PsFFT thanks to 60-way memory "
        "parallelism on the gathers."
    ),
    "ext-tuning": (
        "Extension: automated per-size parameter tuning via the cost model "
        "(the authors tuned Bcst by hand).  The tuner halves B on the "
        "sizes where the sqrt formula rounds up too far, smoothing the "
        "sawtooth with gains up to ~1.2x and never losing."
    ),
    "ext-noise": (
        "Extension: robustness beyond the paper's noiseless evaluation — "
        "recall stays above 93% down to 0 dB SNR; the value error tracks "
        "the noise floor."
    ),
    "ext-comb": (
        "Extension: the sFFT-2.0 Comb pre-filter screens residue classes "
        "with 3 cheap aliasing passes; the true support always survives "
        "and location voting shrinks to the approved fraction."
    ),
    "ext-ldg": (
        "Extension: routing the scattered signal gathers through the "
        "read-only data cache the paper describes (Section II-A) but never "
        "uses would cut gather wire-traffic 4x (32 B vs 128 B "
        "transactions), a projected 1.1-1.3x end-to-end."
    ),
    "ext-exact": (
        "Extension (paper ref [3], sFFT 3.0): location by phase decoding on "
        "one-sample-shifted buckets, with iterative peeling and a residual "
        "refinement — no candidate search, no voting.  Exact support and "
        "~1e-8 values on noiseless inputs; it also stays exact in the "
        "small-n / high-k/B regime where the paper-profile windowed "
        "pipeline's recall dips."
    ),
    "ext-offgrid": (
        "Extension: tones displaced off the DFT grid smear into Dirichlet "
        "tails.  Nearest-bin recall degrades gracefully until the half-bin "
        "worst case; the energy captured by k on-grid coefficients falls "
        "toward ~1/3 — the documented boundary of the exactly-sparse model "
        "the paper (and this reproduction) evaluates in."
    ),
}

#: Per-experiment runner options for the document (functional experiments
#: at tractable sizes; modeled experiments at full paper scale).
OPTIONS: dict[str, dict] = {
    "fig5f": {"n": 1 << 20, "trials": 3},
    "ext-noise": {"n": 1 << 18, "k": 50, "trials": 3},
    "ext-comb": {"n": 1 << 18},
    "ext-offgrid": {"n": 1 << 16, "trials": 2},
    "ext-exact": {"sizes": [1 << 14, 1 << 16, 1 << 18]},
}

ORDER = [
    "fig2a", "fig2b",
    "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
    "table1", "table2",
    "abl-partition", "abl-layout", "abl-select", "abl-batch",
    "ext-devices", "ext-tuning", "ext-noise", "ext-comb", "ext-ldg",
    "ext-offgrid", "ext-exact",
]

HEADER = """\
# EXPERIMENTS — paper vs. reproduction

Generated by `python scripts/generate_experiments_md.py`; every table comes
from a registered experiment runner (`python -m repro.experiments <id>`).

**Setup.** Performance rows are *modeled* on the simulated testbeds — the
Tesla K20x of Table I and the Xeon E5-2640 of Table II — exactly as
DESIGN.md describes: functional correctness is established by real NumPy
execution and ~500 tests; timing comes from operation/transaction counts
priced by the machine models, so figure *shapes* (who wins, crossovers,
slopes) are emergent, not fitted.  Accuracy experiments (fig5f, ext-noise,
ext-comb) are fully functional: real transforms, real numerics.  All runs
use the paper's evaluation configuration: B = sqrt(n·k/log2 n), L = 6
loops, cutoff keeping k buckets, 1e-6 filter tolerance
(`repro.experiments.paper_kwargs`).

**Headline comparison** (k = 1000, n = 2^27 unless noted):

| Metric | Paper | Reproduced |
|---|---|---|
| cusFFT-opt vs cuFFT | ~15x | 13.2x |
| cusFFT-base vs cuFFT | ~9x | 8.8x |
| crossover vs cuFFT | > 2^22 | 2^21-2^22 |
| vs parallel FFTW @2^18 / @2^27 | 0.5x / ~29x | 0.49x / 27.5x |
| vs PsFFT | 4-6.6x, dip at 2^27 | 3-5.5x, dip present |
| optimized vs baseline | ~2x average | 1.4-2.3x |
| L1 error / coefficient | "extremely small" | ~1e-7 |

---
"""


def main() -> int:
    parts = [HEADER]
    for exp_id in ORDER:
        result = run_experiment(exp_id, **OPTIONS.get(exp_id, {}))
        parts.append(result.to_markdown())
        commentary = COMMENTARY.get(exp_id)
        if commentary:
            parts.append(commentary)
        parts.append("---")
    sys.stdout.write("\n\n".join(parts).rstrip("-\n ") + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
