"""Analytic operation counts for one sparse transform.

Both performance models — the simulated GPU (cusFFT) and the modeled
multicore CPU (PsFFT) — price the *same* algorithm, so the operation counts
live in one place and only the machine models differ.  Counts are derived
purely from :class:`~repro.core.parameters.SfftParameters` (the filter
support uses the same closed-form sizing as the filter constructor, so no
O(n) work happens here), which is what lets paper-scale sweeps
(n up to 2^27) evaluate instantly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.parameters import SfftParameters
from ..filters.dolph_chebyshev import chebyshev_support
from ..filters.gaussian import gaussian_support

__all__ = ["StepCounts", "sfft_step_counts"]

_COMPLEX = 16  # bytes per complex128


@dataclass(frozen=True)
class StepCounts:
    """Operation counts per sFFT pipeline step for one transform.

    All counts are totals across the ``L`` loops.
    """

    n: int
    k: int
    B: int
    loops: int
    filter_width: int          # taps per loop (padded to a multiple of B)
    rounds: int                # filter_width // B
    gathers: int               # strided/random signal reads (perm+filter)
    filter_flops: int          # complex MAdds in perm+filter (8 flops each)
    fft_batch: int             # batched B-point transforms
    cutoff_elements: int       # bucket magnitudes scanned
    selected_buckets: int      # cutoff survivors (total across loops)
    votes: int                 # scatter-add votes in location recovery
    expected_hits: int         # coefficients surviving the vote threshold
    estimation_ops: int        # per-(hit, loop) reconstruction bodies
    score_bytes: int           # the dense score[n] working set (votes)
    signal_bytes: int          # input signal size on device/host
    bucket_bytes: int          # the (L, B) bucket working set

    @property
    def useful_gather_bytes(self) -> int:
        """Bytes of signal actually consumed by perm+filter."""
        return self.gathers * _COMPLEX


def sfft_step_counts(params: SfftParameters) -> StepCounts:
    """Derive :class:`StepCounts` from resolved transform parameters."""
    n, k, B, L = params.n, params.k, params.B, params.loops

    if params.window == "gaussian":
        w = gaussian_support(params.lobefrac, params.tolerance)
    else:
        w = chebyshev_support(params.lobefrac, params.tolerance)
    w = min(w, n)
    w = -(-w // B) * B  # padded to whole rounds, as the plan does
    rounds = w // B

    v_loops = params.voting_loops
    gathers = w * L
    filter_flops = w * L           # one complex MAdd per tap (8 real flops)
    votes = v_loops * params.select_count * (n // B)
    # Voting keeps ~k real coefficients plus a small overlap fringe.
    expected_hits = min(n, math.ceil(1.25 * k))
    return StepCounts(
        n=n,
        k=k,
        B=B,
        loops=L,
        filter_width=w,
        rounds=rounds,
        gathers=gathers,
        filter_flops=filter_flops,
        fft_batch=L,
        cutoff_elements=B * v_loops,
        selected_buckets=params.select_count * v_loops,
        votes=votes,
        expected_hits=expected_hits,
        estimation_ops=expected_hits * L,
        score_bytes=2 * n,          # int16 score array
        signal_bytes=n * _COMPLEX,
        bucket_bytes=L * B * _COMPLEX,
    )
