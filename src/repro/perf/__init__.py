"""Shared performance-model plumbing: per-step operation counts."""

from .counts import StepCounts, sfft_step_counts

__all__ = ["StepCounts", "sfft_step_counts"]
