"""repro — a full reproduction of *cusFFT: A High-Performance Sparse Fast
Fourier Transform Algorithm on GPUs* (Wang, Chandrasekaran, Chapman;
IPDPS 2016).

The package provides:

* :mod:`repro.core` — the sparse FFT algorithm (CPU reference): plans,
  the six-step pipeline, exact sparse recovery;
* :mod:`repro.filters` — flat-window filter synthesis (Gaussian and
  Dolph-Chebyshev, built from scratch);
* :mod:`repro.cusim` — a simulated CUDA device (Kepler K20x): occupancy,
  coalescing, atomics, streams, an event-driven overlap scheduler;
* :mod:`repro.gpu` — cusFFT itself: the paper's kernels, optimizations and
  build variants running functionally in NumPy and temporally on the
  simulated device;
* :mod:`repro.cufft` / :mod:`repro.cpu` — the comparators (cuFFT, parallel
  FFTW, PsFFT) as functional + modeled systems;
* :mod:`repro.signals` / :mod:`repro.analysis` — workload generators and
  accuracy/profiling metrics;
* :mod:`repro.experiments` — one runner per paper table/figure
  (``python -m repro.experiments list``);
* :mod:`repro.obs` — unified observability: spans + metrics shared by the
  CPU and simulated-GPU pipelines, Chrome-trace / JSONL / text exporters.

Quickstart::

    from repro import make_sparse_signal, sfft
    sig = make_sparse_signal(1 << 16, 24, seed=42)
    result = sfft(sig.time, 24)
    assert set(result.locations) == set(sig.locations)
"""

from .core import (
    SfftParameters,
    SfftPlan,
    SparseFFTResult,
    derive_parameters,
    isfft,
    make_plan,
    rsfft,
    sfft,
    sfft_batch,
    sfft_exact,
)
from .errors import ReproError
from .signals import SparseSignal, add_awgn, make_sparse_signal

__version__ = "1.0.0"

__all__ = [
    "SfftParameters",
    "SfftPlan",
    "SparseFFTResult",
    "derive_parameters",
    "isfft",
    "make_plan",
    "rsfft",
    "sfft",
    "sfft_batch",
    "sfft_exact",
    "ReproError",
    "SparseSignal",
    "add_awgn",
    "make_sparse_signal",
    "__version__",
]
