"""Adaptive transform dispatch: dense or sparse, chosen by the cost models.

The paper's Figure 5(a) crossover raises the obvious operational question:
*given this (n, k), should I run the dense FFT or the sparse one?*  Because
both sides of the trade have machine models here, the answer is a lookup:
:func:`recommend_transform` prices cuFFT, cusFFT, FFTW, and PsFFT for the
shape and returns the modeled winner per platform, and :func:`auto_sfft`
acts on it — running either the dense ``numpy.fft.fft`` or the sparse
pipeline, whichever the model says is faster on the CPU path.

This is the "promising opportunity to replace the FFT primitives" of the
paper's contribution list, made concrete: a drop-in entry point that only
pays the sparse machinery where it wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.dense import dense_topk
from .core.fft_backend import get_backend
from .core.sfft import SparseFFTResult, sfft
from .cpu.cpuspec import SANDY_BRIDGE_E5_2640, CpuSpec
from .cpu.fftw import FftwPlan
from .cpu.psfft import PsFFT
from .cufft.plan import CufftPlan
from .cusim.device import KEPLER_K20X, DeviceSpec
from .errors import ParameterError
from .gpu.config import OPTIMIZED, CusfftConfig
from .gpu.cusfft import CusFFT
from .utils.rng import RngLike
from .utils.validation import as_complex_signal

__all__ = ["DispatchDecision", "recommend_transform", "auto_sfft"]


@dataclass(frozen=True)
class DispatchDecision:
    """Modeled times and winners for one ``(n, k)`` shape.

    Attributes
    ----------
    gpu_winner / cpu_winner:
        ``"sparse"`` or ``"dense"`` per platform.
    times:
        Modeled seconds: ``{"cufft", "cusfft", "fftw", "psfft"}``.
    """

    n: int
    k: int
    gpu_winner: str
    cpu_winner: str
    times: dict[str, float]

    @property
    def gpu_advantage(self) -> float:
        """Dense/sparse time ratio on the GPU (>1 means sparse wins)."""
        return self.times["cufft"] / self.times["cusfft"]

    @property
    def cpu_advantage(self) -> float:
        """Dense/sparse time ratio on the CPU (>1 means sparse wins)."""
        return self.times["fftw"] / self.times["psfft"]


def recommend_transform(
    n: int,
    k: int,
    *,
    device: DeviceSpec = KEPLER_K20X,
    cpu: CpuSpec = SANDY_BRIDGE_E5_2640,
    config: CusfftConfig = OPTIMIZED,
    **overrides,
) -> DispatchDecision:
    """Price dense vs sparse on both platforms and name the winners.

    ``overrides`` go to the sparse parameter derivation (e.g.
    ``profile="fast"``); the dense transforms have no parameters.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    times = {
        "cufft": CufftPlan(n).estimated_time(device),
        "cusfft": CusFFT.create(
            n, k, config=config, device=device, **overrides
        ).estimated_time(),
        "fftw": FftwPlan(n, threads=cpu.cores, cpu=cpu).estimated_time(),
        "psfft": PsFFT.create(n, k, threads=cpu.cores, cpu=cpu, **overrides).estimated_time(),
    }
    return DispatchDecision(
        n=n,
        k=k,
        gpu_winner="sparse" if times["cusfft"] < times["cufft"] else "dense",
        cpu_winner="sparse" if times["psfft"] < times["fftw"] else "dense",
        times=times,
    )


def auto_sfft(
    x,
    k: int,
    *,
    cpu: CpuSpec = SANDY_BRIDGE_E5_2640,
    seed: RngLike = None,
    **overrides,
) -> tuple[SparseFFTResult, DispatchDecision]:
    """Transform ``x`` with whichever CPU-path algorithm the model prefers.

    Returns ``(result, decision)``.  When the dense path wins, the dense
    FFT runs and its top-``k`` coefficients are packaged in the same
    :class:`~repro.core.sfft.SparseFFTResult` shape, so callers are
    agnostic to the route taken.
    """
    x = as_complex_signal(x)
    decision = recommend_transform(x.size, k, cpu=cpu, **overrides)
    if decision.cpu_winner == "sparse":
        result = sfft(x, k, seed=seed, **overrides)
    else:
        locs, vals = dense_topk(get_backend().fft(x), k)
        result = SparseFFTResult(
            n=x.size,
            locations=locs,
            values=vals,
            votes=np.zeros(locs.size, dtype=np.int64),
        )
    return result, decision
