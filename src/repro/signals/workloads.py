"""Domain workload generators for the example applications.

The paper's introduction motivates sFFT with audio, seismic, GPS and
cognitive-radio workloads — signals whose spectra are (approximately) sparse
for structural reasons.  These generators produce such signals *with ground
truth attached*, so the examples can both demonstrate the API and check the
answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive_int
from .noise import add_awgn
from .sparse import SparseSignal, make_sparse_signal

__all__ = [
    "ChannelOccupancy",
    "make_wideband_channels",
    "make_harmonic_tones",
    "make_gps_correlation",
    "make_offgrid_tones",
    "make_seismic_reflectivity",
]


@dataclass(frozen=True)
class ChannelOccupancy:
    """Ground truth for a wideband spectrum-sensing scene.

    Attributes
    ----------
    signal:
        The generated sparse signal (time samples + exact spectrum).
    channel_edges:
        ``(num_channels + 1,)`` frequency-bin channel boundaries.
    occupied:
        Boolean per-channel occupancy mask.
    """

    signal: SparseSignal
    channel_edges: np.ndarray
    occupied: np.ndarray


def make_wideband_channels(
    n: int,
    num_channels: int,
    occupancy: float,
    *,
    tones_per_channel: int = 4,
    snr: float | None = 40.0,
    seed: RngLike = None,
) -> ChannelOccupancy:
    """Cognitive-radio scene: a few occupied channels in a wide band.

    Divides ``[0, n)`` into ``num_channels`` equal channels, marks a fraction
    ``occupancy`` of them as occupied, and places ``tones_per_channel``
    carriers (random in-channel frequencies, random phases) in each occupied
    channel.  Optional AWGN at ``snr`` dB models the sensing front end.
    """
    n = check_positive_int(n, "n")
    num_channels = check_positive_int(num_channels, "num_channels")
    if n % num_channels != 0:
        raise ParameterError(f"num_channels={num_channels} must divide n={n}")
    if not 0.0 < occupancy <= 1.0:
        raise ParameterError(f"occupancy must be in (0, 1], got {occupancy}")
    rng = ensure_rng(seed)

    width = n // num_channels
    n_occ = max(1, round(occupancy * num_channels))
    occ_idx = np.sort(rng.choice(num_channels, size=n_occ, replace=False))
    occupied = np.zeros(num_channels, dtype=bool)
    occupied[occ_idx] = True

    locs: list[int] = []
    for c in occ_idx:
        # Keep carriers off channel edges so detection maps cleanly.
        lo = c * width + max(1, width // 8)
        hi = (c + 1) * width - max(1, width // 8)
        locs.extend(int(v) for v in rng.choice(np.arange(lo, hi), size=min(tones_per_channel, hi - lo), replace=False))
    locs_arr = np.unique(np.asarray(locs, dtype=np.int64))

    sig = make_sparse_signal(n, locs_arr.size, seed=rng, locations=locs_arr)
    if snr is not None:
        noisy, _ = add_awgn(sig.time, snr, seed=rng)
        sig = sig.with_time(noisy)
    edges = np.arange(num_channels + 1, dtype=np.int64) * width
    return ChannelOccupancy(signal=sig, channel_edges=edges, occupied=occupied)


def make_harmonic_tones(
    n: int,
    fundamental: int,
    num_harmonics: int,
    *,
    decay: float = 0.7,
    snr: float | None = None,
    seed: RngLike = None,
) -> SparseSignal:
    """Audio-like harmonic stack: fundamental plus decaying overtones.

    Coefficient magnitudes decay geometrically by ``decay`` per harmonic —
    the classic "musical note" spectrum, sparse with known structure.
    """
    n = check_positive_int(n, "n")
    fundamental = check_positive_int(fundamental, "fundamental")
    num_harmonics = check_positive_int(num_harmonics, "num_harmonics")
    if fundamental * num_harmonics >= n:
        raise ParameterError(
            f"{num_harmonics} harmonics of {fundamental} exceed the band (n={n})"
        )
    rng = ensure_rng(seed)
    h = np.arange(1, num_harmonics + 1, dtype=np.int64)
    locs = h * fundamental
    mags = n * decay ** (h - 1)
    phases = rng.uniform(0, 2 * np.pi, size=num_harmonics)
    vals = mags * np.exp(1j * phases)
    sig = make_sparse_signal(n, num_harmonics, locations=locs, values=vals)
    if snr is not None:
        noisy, _ = add_awgn(sig.time, snr, seed=rng)
        sig = sig.with_time(noisy)
    return sig


def make_gps_correlation(
    n: int,
    code_delay: int,
    doppler_bin: int,
    *,
    code_length: int | None = None,
    snr: float = 20.0,
    seed: RngLike = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """GPS-acquisition-style workload (paper ref [19]: "Faster GPS via sFFT").

    GPS acquisition correlates the received signal with a local C/A code
    replica; the correlation is computed as ``ifft(fft(rx) * conj(fft(code)))``
    and is *1-sparse-ish*: a single spike at the code delay.  We synthesize
    the product spectrum directly: returns ``(product_spectrum_time_domain,
    code, true_delay)`` where running a sparse *inverse* transform (or a
    forward transform on the conjugate-reversed product) finds the spike.

    Concretely we return the frequency-domain product ``fft(rx)*conj(fft(code))``
    as a *time-domain* array for the caller to transform: since the
    correlation (its "spectrum" under a forward DFT, up to reflection) has a
    dominant coefficient at the delay, sFFT recovers the delay in sub-linear
    time.
    """
    n = check_positive_int(n, "n")
    if not 0 <= code_delay < n:
        raise ParameterError(f"code_delay must be in [0, n), got {code_delay}")
    rng = ensure_rng(seed)

    # Pseudo-random +/-1 spreading code.  The default is a full-length,
    # non-repeating PN sequence (P-code style), whose circular correlation
    # is a single spike — exactly 1-sparse.  A short repeating code
    # (C/A-style, e.g. code_length=1023) tiles into a correlation *comb*:
    # the delay is then only resolvable modulo the code period, and the
    # product spectrum carries one near-equal peak per repetition.
    if code_length is None:
        code_length = n
    chips = rng.integers(0, 2, size=code_length) * 2 - 1
    reps = -(-n // code_length)
    code = np.tile(chips, reps)[:n].astype(np.float64)

    doppler = np.exp(2j * np.pi * doppler_bin * np.arange(n) / n)
    rx = np.roll(code, code_delay) * doppler
    rx, _ = add_awgn(rx, snr, seed=rng)

    # Acquisition tests one Doppler hypothesis at a time; at the correct
    # hypothesis the receiver derotates before correlating.  Correlation:
    # corr = ifft(fft(rx_derotated) * conj(fft(code))) — a single spike at
    # the code delay.  We hand back the *product* so the example can
    # sparse-transform it.
    derotated = rx * np.conj(doppler)
    # Workload synthesis is ground truth — pinned to the numpy oracle.
    product = np.fft.fft(derotated) * np.conj(np.fft.fft(code))  # reprolint: ignore[fft-registry-bypass]
    return product, code, code_delay


def make_seismic_reflectivity(
    n: int,
    num_reflectors: int,
    *,
    wavelet_peak_bin: int | None = None,
    snr: float | None = 30.0,
    seed: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Seismic trace: sparse reflectivity convolved with a Ricker wavelet.

    Returns ``(trace, reflector_times)``.  The *trace itself* is sparse in
    time, so its spectrum-of-the-spectrum trick applies: examples use sFFT on
    ``fft(trace)`` to localize reflectors — the dual-domain use the paper's
    Shell sponsorship motivates (seismic processing).
    """
    n = check_positive_int(n, "n")
    num_reflectors = check_positive_int(num_reflectors, "num_reflectors")
    rng = ensure_rng(seed)
    if wavelet_peak_bin is None:
        wavelet_peak_bin = max(4, n // 64)

    times = np.sort(rng.choice(n, size=num_reflectors, replace=False))
    amps = rng.uniform(0.5, 1.0, size=num_reflectors) * rng.choice([-1.0, 1.0], size=num_reflectors)
    reflectivity = np.zeros(n)
    reflectivity[times] = amps

    # Ricker wavelet designed in frequency: f^2 * exp(-f^2/f0^2) band-pass.
    f = np.fft.fftfreq(n) * n
    f0 = float(wavelet_peak_bin)
    wavelet_spec = (f / f0) ** 2 * np.exp(1.0 - (f / f0) ** 2)
    trace = np.fft.ifft(np.fft.fft(reflectivity) * wavelet_spec).real  # reprolint: ignore[fft-registry-bypass]
    if snr is not None:
        noisy, _ = add_awgn(trace.astype(np.complex128), snr, seed=rng)
        trace = noisy.real
    return trace, times


def make_offgrid_tones(
    n: int,
    k: int,
    grid_offset: float,
    *,
    min_separation: int | None = None,
    seed: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Tones displaced off the DFT grid by ``grid_offset`` bins.

    Exactly-sparse models assume integer frequencies; real tones sit
    anywhere, and a displacement of ``delta`` bins smears each one into a
    Dirichlet tail (~ |sinc|) across the whole spectrum — the classic
    leakage stress for sparse transforms.  Returns ``(time_signal,
    true_frequencies_as_floats)``; with ``grid_offset = 0`` this degenerates
    to an exactly sparse signal.
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if not 0.0 <= grid_offset < 1.0:
        raise ParameterError(
            f"grid_offset must be in [0, 1), got {grid_offset}"
        )
    rng = ensure_rng(seed)
    sep = min_separation if min_separation is not None else max(1, n // (8 * k))
    from .sparse import random_support

    base = random_support(n, k, rng, min_separation=sep)
    freqs = base.astype(np.float64) + grid_offset
    t = np.arange(n)
    phases = rng.uniform(0, 2 * np.pi, size=k)
    x = np.zeros(n, dtype=np.complex128)
    for f, ph in zip(freqs, phases):
        x += np.exp(2j * np.pi * (f * t / n) + 1j * ph)
    return x, freqs
