"""Workload generation: exactly-sparse signals, noise, domain scenes."""

from .noise import add_awgn, signal_power, snr_db
from .sparse import SparseSignal, make_sparse_signal, random_support
from .workloads import (
    ChannelOccupancy,
    make_gps_correlation,
    make_harmonic_tones,
    make_offgrid_tones,
    make_seismic_reflectivity,
    make_wideband_channels,
)

__all__ = [
    "add_awgn",
    "signal_power",
    "snr_db",
    "SparseSignal",
    "make_sparse_signal",
    "random_support",
    "ChannelOccupancy",
    "make_gps_correlation",
    "make_harmonic_tones",
    "make_offgrid_tones",
    "make_seismic_reflectivity",
    "make_wideband_channels",
]
