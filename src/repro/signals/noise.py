"""Additive noise and SNR utilities.

sFFT tolerates spectra that are only *approximately* sparse: every
off-support coefficient may carry noise energy, provided the significant
coefficients still dominate each bucket.  The helpers here add complex white
Gaussian noise at a prescribed SNR and measure the resulting ratio, which the
accuracy experiments (Fig 5(f) regime) sweep.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..utils.rng import RngLike, ensure_rng

__all__ = ["signal_power", "snr_db", "add_awgn"]


def signal_power(x: np.ndarray) -> float:
    """Mean per-sample power ``E[|x|^2]`` of a complex signal."""
    x = np.asarray(x)
    if x.size == 0:
        raise ParameterError("cannot compute power of an empty signal")
    return float(np.mean(np.abs(x) ** 2))


def snr_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """Measured SNR in dB between a clean signal and a noise realization."""
    p_sig = signal_power(signal)
    p_noise = signal_power(noise)
    if p_noise == 0.0:
        return float("inf")
    return 10.0 * np.log10(p_sig / p_noise)


def add_awgn(
    x: np.ndarray, snr: float, *, seed: RngLike = None
) -> tuple[np.ndarray, np.ndarray]:
    """Add circular complex white Gaussian noise at ``snr`` dB.

    Returns ``(noisy, noise)`` so callers can recover the exact realization.
    The noise power is set from the *measured* power of ``x``, so the
    realized SNR matches the request up to sampling error.
    """
    x = np.asarray(x, dtype=np.complex128)
    rng = ensure_rng(seed)
    p_sig = signal_power(x)
    p_noise = p_sig / (10.0 ** (snr / 10.0))
    scale = np.sqrt(p_noise / 2.0)
    noise = scale * (
        rng.standard_normal(x.shape) + 1j * rng.standard_normal(x.shape)
    )
    return x + noise, noise
