"""Exactly-k-sparse signal generation.

The paper's entire evaluation (Figures 2 and 5) runs on signals that are
exactly ``k``-sparse in the frequency domain: ``k`` uniformly random
locations with unit-magnitude random-phase coefficients, optionally plus
additive noise.  :class:`SparseSignal` carries both the time-domain samples
handed to the transforms and the ground-truth spectrum the accuracy metrics
compare against.

Spectrum convention: ``spectrum = numpy.fft.fft(time)`` — what sFFT recovers
is the NumPy-forward DFT of the time samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import check_positive_int

__all__ = ["SparseSignal", "make_sparse_signal", "random_support"]


@dataclass(frozen=True)
class SparseSignal:
    """A time-domain signal with known sparse spectral ground truth.

    Attributes
    ----------
    time:
        Complex time-domain samples, length ``n``.
    locations:
        Sorted integer frequencies of the significant coefficients.
    values:
        Complex coefficient values at ``locations`` (forward-DFT scale).
    """

    time: np.ndarray
    locations: np.ndarray
    values: np.ndarray

    @property
    def n(self) -> int:
        """Signal length."""
        return self.time.size

    @property
    def k(self) -> int:
        """Number of significant coefficients."""
        return self.locations.size

    def dense_spectrum(self) -> np.ndarray:
        """Ground-truth dense spectrum (zeros off the sparse support)."""
        spec = np.zeros(self.n, dtype=np.complex128)
        spec[self.locations] = self.values
        return spec

    def with_time(self, new_time: np.ndarray) -> "SparseSignal":
        """Copy of this signal with different time samples (e.g. + noise)."""
        if new_time.shape != self.time.shape:
            raise ParameterError("replacement time samples must match shape")
        return SparseSignal(
            time=np.asarray(new_time, dtype=np.complex128),
            locations=self.locations,
            values=self.values,
        )


def random_support(
    n: int, k: int, rng: np.random.Generator, *, min_separation: int = 0
) -> np.ndarray:
    """Draw ``k`` distinct frequencies from ``[0, n)``, optionally separated.

    ``min_separation`` enforces a minimum circular distance between chosen
    frequencies — the well-separated regime where a single sFFT inner loop
    already isolates every coefficient.  Rejection-samples; raises
    :class:`ParameterError` when the constraint is infeasible
    (``k * min_separation >= n``).
    """
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if k > n:
        raise ParameterError(f"k={k} cannot exceed n={n}")
    if min_separation <= 0:
        return np.sort(rng.choice(n, size=k, replace=False))
    if k * min_separation >= n:
        raise ParameterError(
            f"cannot place k={k} frequencies with separation {min_separation} in n={n}"
        )
    # Classic spacing trick: draw k points in [0, n - k*sep), sort, then
    # re-inflate by adding i*sep — guarantees pairwise gaps >= sep without
    # rejection (circular gap between last and first also holds because the
    # total slack is reserved).
    slack = n - k * min_separation
    base = np.sort(rng.choice(slack, size=k, replace=False))
    locs = base + min_separation * np.arange(k)
    return locs.astype(np.int64)


def make_sparse_signal(
    n: int,
    k: int,
    *,
    seed: RngLike = None,
    amplitude: float = 1.0,
    random_phase: bool = True,
    min_separation: int = 0,
    locations: np.ndarray | None = None,
    values: np.ndarray | None = None,
) -> SparseSignal:
    """Generate an exactly ``k``-sparse signal of length ``n``.

    By default coefficients have magnitude ``amplitude * n`` — i.e. each tone
    contributes unit amplitude per time sample, matching the reference sFFT
    benchmark inputs — with uniform random phases.  Explicit ``locations`` /
    ``values`` override the random draws (both or either).
    """
    n = check_positive_int(n, "n")
    rng = ensure_rng(seed)

    if locations is None:
        locs = random_support(n, k, rng, min_separation=min_separation)
    else:
        locs = np.unique(np.asarray(locations, dtype=np.int64) % n)
        if locs.size != k:
            raise ParameterError(
                f"locations must contain k={k} distinct frequencies, got {locs.size}"
            )

    if values is None:
        if random_phase:
            phases = rng.uniform(0.0, 2.0 * np.pi, size=k)
        else:
            phases = np.zeros(k)
        vals = amplitude * n * np.exp(1j * phases)
    else:
        vals = np.asarray(values, dtype=np.complex128)
        if vals.size != k:
            raise ParameterError(f"values must have k={k} entries, got {vals.size}")

    spec = np.zeros(n, dtype=np.complex128)
    spec[locs] = vals
    # Signal synthesis defines the ground truth; keep it on the numpy
    # oracle so test inputs are identical under every backend.
    time = np.fft.ifft(spec)  # reprolint: ignore[fft-registry-bypass]
    return SparseSignal(time=time, locations=locs, values=vals)
