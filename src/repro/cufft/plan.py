"""Simulated cuFFT: functional batched FFTs plus a Kepler cost model.

The reproduction needs cuFFT twice: as the *baseline* the paper beats
(Figure 5: dense ``O(n log n)`` transform of the whole signal) and as a
*building block* of cusFFT itself (step 3's batched ``B``-point transform).

Functional execution delegates to :func:`numpy.fft.fft` — numerically the
same transform cuFFT computes.  The cost model captures what made cuFFT's
performance on Kepler: a Stockham autosort FFT is executed as
``ceil(log2(n) / log2(radix))`` passes, each streaming the whole working set
through global memory once in and once out, so large transforms are purely
bandwidth-bound:

    ``time ≈ passes * 2 * n * 16B / effective_bandwidth``

Batched mode (paper step 3: "by sharing the twiddle factors, the batched
cuFFT combines the number of outer_loops transforms into one function call")
amortizes per-pass kernel launches across the whole batch — the ablation
benchmark ``abl-batch`` measures exactly that saving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..cusim.device import DeviceSpec
from ..cusim.kernel import KernelSpec
from ..cusim.memory import AccessPattern, GlobalAccess
from ..errors import ParameterError
from ..utils.modmath import is_power_of_two

__all__ = ["CufftPlan"]

#: log2 of the butterfly radix a Kepler Stockham kernel applies per pass
#: (radix-8, the sweet spot for double precision on GK110).
RADIX_LOG2 = 3
_BLOCK = 256
_COMPLEX = 16  # bytes per complex128


@dataclass(frozen=True)
class CufftPlan:
    """A planned (batched) complex-to-complex transform.

    Attributes
    ----------
    n:
        Transform length (power of two).
    batch:
        Number of independent transforms executed per call.
    """

    n: int
    batch: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ParameterError(f"transform length must be a power of two, got {self.n}")
        if self.batch < 1:
            raise ParameterError(f"batch must be >= 1, got {self.batch}")

    @property
    def passes(self) -> int:
        """Stockham passes to complete one transform."""
        return max(1, math.ceil(math.log2(self.n) / RADIX_LOG2))

    @property
    def total_elements(self) -> int:
        """Elements moved per pass across the whole batch."""
        return self.n * self.batch

    # -- functional ---------------------------------------------------------

    def execute(self, data: np.ndarray) -> np.ndarray:
        """Run the transform: 1-D input of length ``n`` (batch 1) or a
        ``(batch, n)`` array."""
        arr = np.asarray(data, dtype=np.complex128)
        if arr.ndim == 1:
            if self.batch != 1 or arr.size != self.n:
                raise ParameterError(
                    f"expected ({self.batch}, {self.n}) input, got shape {arr.shape}"
                )
            # This class *models cuFFT itself*; it is a vendor FFT, not a
            # consumer of the CPU vendor seam, so it does not route
            # through the backend registry.
            return np.fft.fft(arr)  # reprolint: ignore[fft-registry-bypass]
        if arr.shape != (self.batch, self.n):
            raise ParameterError(
                f"expected ({self.batch}, {self.n}) input, got shape {arr.shape}"
            )
        return np.fft.fft(arr, axis=-1)  # reprolint: ignore[fft-registry-bypass]

    def inverse(self, data: np.ndarray) -> np.ndarray:
        """Inverse transform (cuFFT ``CUFFT_INVERSE`` with 1/n scaling applied)."""
        arr = np.asarray(data, dtype=np.complex128)
        return np.fft.ifft(arr, axis=-1)  # reprolint: ignore[fft-registry-bypass]

    # -- cost ----------------------------------------------------------------

    def kernel_specs(self) -> list[KernelSpec]:
        """One Stockham kernel launch per pass over the whole batch."""
        elems = self.total_elements
        grid = max(1, -(-elems // _BLOCK))
        butterfly_flops = 8.0 * RADIX_LOG2  # complex MAdds per element per pass
        return [
            KernelSpec(
                name=f"cufft_stockham_n{self.n}",
                grid_blocks=grid,
                threads_per_block=_BLOCK,
                flops_per_thread=butterfly_flops,
                accesses=(
                    GlobalAccess(AccessPattern.COALESCED, elems, _COMPLEX),
                    GlobalAccess(
                        AccessPattern.COALESCED, elems, _COMPLEX, is_write=True
                    ),
                ),
                shared_per_block=_BLOCK * _COMPLEX,
            )
            for _ in range(self.passes)
        ]

    def estimated_time(self, device: DeviceSpec) -> float:
        """Isolated execution-time estimate (sum of the pass kernels)."""
        from ..cusim.kernel import estimate_kernel

        return sum(estimate_kernel(s, device).total_s for s in self.kernel_specs())

    def estimated_time_unbatched(self, device: DeviceSpec) -> float:
        """Cost of calling a batch-1 plan ``batch`` times (the naive
        alternative the paper's batched mode replaces)."""
        single = CufftPlan(self.n, 1)
        return self.batch * single.estimated_time(device)
