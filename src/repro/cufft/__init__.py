"""Simulated cuFFT library (functional NumPy transforms + Kepler cost model)."""

from .plan import CufftPlan

__all__ = ["CufftPlan"]
