"""Per-step time breakdowns (paper Section IV-A, Figure 2).

The paper motivates its optimization order by profiling the serial sFFT:
permutation+filtering dominates as ``n`` grows (Figure 2(a)), while
estimation's share *shrinks* with ``n`` at fixed ``k`` — the
counter-intuitive effect of the falling relative sparsity — and both
perm+filter and estimation dominate as ``k`` grows (Figure 2(b)).

Two breakdown sources are supported:

* **measured** — wall-clock the actual CPU reference on real data
  (:func:`measure_breakdown`); feasible up to ~2^22 here;
* **modeled** — the PsFFT step model at any size
  (:func:`modeled_breakdown`), used for the paper-scale sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.plan import make_plan
from ..core.sfft import STEP_NAMES, sfft
from ..cpu.psfft import PsFFT
from ..errors import ParameterError
from ..signals.sparse import make_sparse_signal
from ..utils.rng import RngLike

__all__ = ["FIG2_GROUPS", "StepBreakdown", "measure_breakdown", "modeled_breakdown"]

#: Figure 2 groups steps 1-2 as one bar; map our step names to its legend.
FIG2_GROUPS = {
    "perm_filter": "Perm+Filter",
    "bucket_fft": "FFT",
    "cutoff": "Cutoff",
    "recovery": "Reverse Hash",
    "estimation": "Estimation",
}


@dataclass(frozen=True)
class StepBreakdown:
    """Seconds per pipeline step for one transform configuration."""

    n: int
    k: int
    seconds: dict[str, float]

    @property
    def total(self) -> float:
        """Sum over all steps."""
        return sum(self.seconds.values())

    def shares(self) -> dict[str, float]:
        """Fraction of total per step (what Figure 2 plots)."""
        total = self.total
        if total <= 0:
            raise ParameterError("cannot compute shares of a zero breakdown")
        return {name: t / total for name, t in self.seconds.items()}

    def dominant(self) -> str:
        """Name of the most expensive step."""
        return max(self.seconds, key=self.seconds.get)


def measure_breakdown(
    n: int,
    k: int,
    *,
    seed: RngLike = 0,
    repeats: int = 3,
    **plan_overrides,
) -> StepBreakdown:
    """Wall-clock the CPU reference per step (min over ``repeats`` runs)."""
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    sig = make_sparse_signal(n, k, seed=seed)
    plan = make_plan(n, k, seed=seed, **plan_overrides)
    best: dict[str, float] = {name: float("inf") for name in STEP_NAMES}
    for _ in range(repeats):
        res = sfft(sig.time, plan=plan, profile=True)
        for name, t in res.step_times.items():
            # step_times may carry extra stages (e.g. "comb") beyond the
            # canonical five; fold them in rather than KeyError.
            best[name] = min(best.get(name, float("inf")), t)
    return StepBreakdown(n=n, k=k, seconds=dict(best))


def modeled_breakdown(n: int, k: int, **overrides) -> StepBreakdown:
    """PsFFT's modeled per-step seconds at any (paper-scale) size."""
    times = PsFFT.create(n, k, **overrides).estimated_times().as_dict()
    times.pop("sync", None)
    return StepBreakdown(n=n, k=k, seconds=times)
