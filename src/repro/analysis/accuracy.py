"""Accuracy metrics (paper Section VI, Figure 5(f)).

The paper validates cusFFT against FFTW with the per-coefficient L1 error

    ``(1/k) * sum_i |xhat_i - yhat_i|``

over the reported support, plus the implicit support check (the right
locations must be found at all).  These metrics compare any sparse result
against any dense reference, so the same code scores cusFFT, PsFFT, and the
core CPU transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sfft import SparseFFTResult
from ..errors import ParameterError

__all__ = ["AccuracyReport", "l1_error_per_coefficient", "support_metrics", "score_result"]


@dataclass(frozen=True)
class AccuracyReport:
    """Support and value accuracy of one sparse transform output."""

    k_true: int
    k_found: int
    true_positives: int
    precision: float
    recall: float
    l1_error: float           # per-coefficient, Figure 5(f)'s metric
    max_relative_error: float # worst value error among true positives


def l1_error_per_coefficient(
    sparse_spectrum: np.ndarray, reference_spectrum: np.ndarray, k: int
) -> float:
    """Paper's L1 metric: total absolute error / k over the full spectrum."""
    a = np.asarray(sparse_spectrum)
    b = np.asarray(reference_spectrum)
    if a.shape != b.shape or a.ndim != 1:
        raise ParameterError("spectra must be equal-length 1-D arrays")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    return float(np.abs(a - b).sum() / k)


def support_metrics(
    found: np.ndarray, true: np.ndarray
) -> tuple[int, float, float]:
    """``(true_positives, precision, recall)`` of a recovered support set."""
    f = set(np.asarray(found, dtype=np.int64).tolist())
    t = set(np.asarray(true, dtype=np.int64).tolist())
    tp = len(f & t)
    precision = tp / len(f) if f else 1.0 if not t else 0.0
    recall = tp / len(t) if t else 1.0
    return tp, precision, recall


def score_result(
    result: SparseFFTResult,
    true_locations: np.ndarray,
    true_values: np.ndarray,
) -> AccuracyReport:
    """Score a transform output against exact sparse ground truth."""
    locs = np.asarray(true_locations, dtype=np.int64)
    vals = np.asarray(true_values, dtype=np.complex128)
    if locs.shape != vals.shape:
        raise ParameterError("true locations/values must align")

    tp, precision, recall = support_metrics(result.locations, locs)

    reference = np.zeros(result.n, dtype=np.complex128)
    reference[locs] = vals
    l1 = l1_error_per_coefficient(result.to_dense(), reference, max(1, locs.size))

    found = result.as_dict()
    rel_errors = [
        abs(found[int(f)] - v) / abs(v)
        for f, v in zip(locs, vals)
        if int(f) in found and abs(v) > 0
    ]
    return AccuracyReport(
        k_true=locs.size,
        k_found=result.k_found,
        true_positives=tp,
        precision=precision,
        recall=recall,
        l1_error=l1,
        max_relative_error=max(rel_errors) if rel_errors else float("inf"),
    )
