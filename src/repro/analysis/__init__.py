"""Accuracy metrics and per-step profiling breakdowns.

Re-exports are lazy (PEP 562): ``repro.core`` modules import
``repro.analysis.staticcheck.contracts`` for their ``@shape_contract``
declarations, and an eager ``from .accuracy import ...`` here would
close an import cycle back through ``core.sfft``.  Attribute access
resolves the submodule on first touch and caches it in ``globals()``.
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    "AccuracyReport": ".accuracy",
    "l1_error_per_coefficient": ".accuracy",
    "score_result": ".accuracy",
    "support_metrics": ".accuracy",
    "FIG2_GROUPS": ".profiling",
    "StepBreakdown": ".profiling",
    "measure_breakdown": ".profiling",
    "modeled_breakdown": ".profiling",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
