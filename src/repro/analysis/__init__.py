"""Accuracy metrics and per-step profiling breakdowns."""

from .accuracy import (
    AccuracyReport,
    l1_error_per_coefficient,
    score_result,
    support_metrics,
)
from .profiling import FIG2_GROUPS, StepBreakdown, measure_breakdown, modeled_breakdown

__all__ = [
    "AccuracyReport",
    "l1_error_per_coefficient",
    "score_result",
    "support_metrics",
    "FIG2_GROUPS",
    "StepBreakdown",
    "measure_breakdown",
    "modeled_breakdown",
]
