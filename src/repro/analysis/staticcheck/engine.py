"""Orchestration: walk ``src/repro``, run every engine, collect findings.

:func:`lint_tree` runs the AST rules over every library source file;
:func:`kernel_battery` runs the kernel access checker over the
project's kernel contracts:

* the Algorithm-2 loop-partition binner must pass the trace check at a
  concrete size *and* the symbolic proof for all sizes — if either fails,
  the findings propagate into the lint result;
* the deliberately naive histogram kernel is the detector's negative
  control: if the detector ever stops flagging it, the battery emits a
  ``race-detector-selfcheck`` error, so a silently broken detector cannot
  produce a green lint.

:func:`~repro.analysis.staticcheck.shapes.check_contracts` is the third
engine: it certifies every ``@shape_contract`` declaration in ``core/``
against its function body (with its own transposed-reshape negative
control inside ``workspace.py``).

All three feed :func:`collect_findings`, the single entry ``python -m
repro lint`` and ``scripts/lint_gate.py`` share.
"""

from __future__ import annotations

import os

import numpy as np

from ...errors import ParameterError
from .findings import Finding
from .races import check_kernel
from .rules import lint_source
from .symbolic import prove_loop_partition_binner

__all__ = ["collect_findings", "kernel_battery", "lint_tree", "repo_root"]

#: Battery geometry: small enough to run on every lint, large enough to
#: exercise multiple warps and tail rounds (width < rounds*B).
_BATTERY = {"n": 256, "B": 64, "rounds": 3, "sigma": 5, "tau": 3,
            "width": 180}


def repo_root(start: str | None = None) -> str:
    """The repository root: the directory holding ``src/repro``.

    Walks up from ``start`` (default: this file) — works from a source
    checkout; raises :class:`~repro.errors.ParameterError` when no
    ``src/repro`` can be found (e.g. a site-packages install), in which
    case callers must pass explicit paths.
    """
    here = os.path.abspath(start or os.path.dirname(__file__))
    while True:
        if os.path.isdir(os.path.join(here, "src", "repro")):
            return here
        parent = os.path.dirname(here)
        if parent == here:
            raise ParameterError(
                "cannot locate the repository root (no src/repro above "
                f"{start or __file__}); pass explicit paths to lint"
            )
        here = parent


def lint_tree(root: str | None = None) -> list[Finding]:
    """AST findings over every ``.py`` file under ``src/repro``.

    ``root`` is the repository root (auto-detected by default).  Findings
    are sorted by path, then line, for stable output.
    """
    base = root or repo_root()
    package = os.path.join(base, "src", "repro")
    findings: list[Finding] = []
    for dirpath, dirnames, filenames in os.walk(package):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            rel_repo = os.path.relpath(full, base).replace(os.sep, "/")
            rel_pkg = os.path.relpath(full, package).replace(os.sep, "/")
            with open(full, encoding="utf-8") as fh:
                source = fh.read()
            findings.extend(
                lint_source(source, path=rel_repo, relpath=rel_pkg)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def kernel_battery() -> list[Finding]:
    """Race-engine findings for the project's kernel contracts."""
    from ...cusim.device import KEPLER_K20X
    from ...gpu.kernels.histogram import (
        make_naive_histogram_kernel,
        make_partition_binner_kernel,
    )

    findings: list[Finding] = []
    n, B = _BATTERY["n"], _BATTERY["B"]
    rng = np.random.default_rng(2016)

    # 1. Loop-partition binner: trace check at the battery size ...
    binner = make_partition_binner_kernel(
        B=B, rounds=_BATTERY["rounds"], sigma=_BATTERY["sigma"],
        tau=_BATTERY["tau"], n=n, width=_BATTERY["width"],
    )
    signal = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    taps = rng.standard_normal(_BATTERY["width"]) + 0j
    check = check_kernel(
        binner, B, KEPLER_K20X, signal, taps,
        np.zeros(B, dtype=np.complex128),
    )
    findings.extend(f for f in check.findings if f.severity == "error")

    # ... and the symbolic proof for all sizes.
    proof = prove_loop_partition_binner()
    if not (proof.collision_free and proof.universal):
        findings.append(Finding(
            rule="kernel-race", severity="error", engine="race",
            path="src/repro/gpu/kernels/histogram.py", line=1,
            message=f"loop-partition symbolic proof failed: {proof.reason}",
        ))

    # 2. Negative control: the naive histogram must still be flagged.
    keys = np.asarray(rng.integers(0, 8, size=64), dtype=np.int64)
    naive = check_kernel(
        make_naive_histogram_kernel(), keys.size, KEPLER_K20X,
        keys.astype(np.float64), np.zeros(8, dtype=np.float64),
    )
    if not any(f.rule == "kernel-race" for f in naive.findings):
        findings.append(Finding(
            rule="race-detector-selfcheck", severity="error", engine="race",
            path="src/repro/analysis/staticcheck/races.py", line=1,
            message=(
                "negative control failed: the naive atomic-free histogram "
                "kernel was not flagged as racy — the race detector is "
                "broken"
            ),
        ))
    return findings


def collect_findings(
    root: str | None = None, *, kernels: bool = True, shapes: bool = True
) -> list[Finding]:
    """Everything ``python -m repro lint`` reports: all engines' findings."""
    findings = lint_tree(root)
    if kernels:
        findings.extend(kernel_battery())
    if shapes:
        from .shapes import check_contracts
        findings.extend(check_contracts(root))
    return findings
