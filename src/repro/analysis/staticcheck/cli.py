"""``python -m repro lint`` — run reprolint and report findings.

Usage::

    python -m repro lint [paths...] [--json] [--no-kernels] [--no-shapes]
                         [--root DIR]

With no paths, lints every source file under ``src/repro``, runs the
kernel battery (Algorithm-2 binner trace + symbolic proof, naive-histogram
negative control), and certifies every ``@shape_contract`` declaration
statically (the shape engine, with its own transposed-reshape negative
control).  Explicit paths lint just those files with the AST rules (the
battery and the contract sweep are repo-level and skipped).

``--json`` emits one ``repro.lint/1`` record per finding (JSONL on
stdout) for machine consumption — ``scripts/check_bench_json.py``
validates the same schema.

Exit codes: 0 no error findings, 1 error findings reported, 2 usage/IO
errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ...errors import ParameterError
from .engine import collect_findings, repo_root
from .findings import Finding
from .rules import lint_source

__all__ = ["lint_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static analysis: kernel race checks + repo invariants.",
    )
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: src/repro "
                             "plus the kernel battery)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detect)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit repro.lint/1 JSONL records")
    parser.add_argument("--no-kernels", action="store_true",
                        help="skip the kernel race battery (AST rules only)")
    parser.add_argument("--no-shapes", action="store_true",
                        help="skip the shape/dtype contract engine")
    return parser


def _lint_paths(paths: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        rel = path.replace(os.sep, "/")
        findings.extend(lint_source(source, path=rel))
    return findings


def lint_main(argv: list[str]) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    try:
        if args.paths:
            for path in args.paths:
                if not os.path.exists(path):
                    print(f"lint: no such file: {path}", file=sys.stderr)
                    return 2
            findings = _lint_paths(args.paths)
        else:
            root = args.root or repo_root()
            if not os.path.isdir(os.path.join(root, "src", "repro")):
                print(f"lint: no src/repro under root {root!r}",
                      file=sys.stderr)
                return 2
            findings = collect_findings(
                root, kernels=not args.no_kernels,
                shapes=not args.no_shapes,
            )
    except (OSError, SyntaxError, ParameterError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity == "warning"]
    if args.as_json:
        for finding in findings:
            print(json.dumps(finding.to_json(), sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        scope = "paths" if args.paths else "src/repro" + (
            "" if args.no_kernels else " + kernel battery"
        ) + ("" if args.no_shapes else " + shape contracts")
        print(f"reprolint: {scope}: {len(errors)} error(s), "
              f"{len(warnings)} warning(s)")
    return 1 if errors else 0
