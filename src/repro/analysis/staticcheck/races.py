"""Kernel access checker: races, out-of-bounds, divergent stores.

Section IV-C's whole argument is that the conventional histogram kernel
races on bucket updates unless every update pays for an atomic; this
module makes that property *checkable* instead of declared.  It consumes
the memory-event trace the :mod:`repro.cusim.simt` interpreter records
(per-lane thread ids, raw indices, atomic flag) and reports:

* ``kernel-race`` — the same buffer element touched by two *different*
  threads where at least one access is a non-atomic write.  Write-write
  and read-write conflicts are both flagged; accesses routed through
  :meth:`~repro.cusim.simt.WarpContext.atomic_add` are conflict-free by
  contract (that is the contract).  Lockstep execution order is *not*
  assumed to synchronize anything: on hardware the colliding warps are
  scheduled freely, so any cross-thread conflict is a defect.
* ``kernel-oob`` — a raw per-lane index outside ``[0, size)``.  The
  interpreter wraps indices modulo the buffer size to stay functional,
  exactly like the silent corruption OOB addressing causes on device —
  the checker makes it loud.
* ``kernel-divergent-store`` (warning) — a store issued under a narrowed
  predication mask.  Divergent stores are legal but usually indicate a
  guard that belongs on the launch geometry, and they serialize the warp.

Findings anchor to the kernel function's own ``file:line`` (via its code
object), so a flagged kernel is one click away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...cusim.device import DeviceSpec
from ...cusim.simt import MemEvent, SimtReport, VBuffer, simt_run
from .findings import Finding

__all__ = ["KernelCheck", "check_kernel", "detect_races"]

#: Cap on findings reported per (rule, buffer) pair — a racy histogram
#: collides on thousands of addresses; the first few localize the bug and
#: the summary line carries the total.
_MAX_PER_BUFFER = 3


def _kernel_anchor(kernel: Any) -> tuple[str, int]:
    """``(path, line)`` of the kernel body's ``def``, repo-relative-ish."""
    code = getattr(kernel, "__code__", None)
    if code is None:  # e.g. a functools.partial or callable object
        return getattr(kernel, "__module__", "<kernel>"), 0
    path = code.co_filename
    # Trim to a repo-relative path when the kernel lives under src/.
    marker = os.sep + "src" + os.sep
    if marker in path:
        path = "src" + os.sep + path.split(marker, 1)[1]
    return path.replace(os.sep, "/"), code.co_firstlineno


@dataclass
class _Access:
    tid: int
    element: int
    kind: str       # "load" | "store"
    atomic: bool


def detect_races(
    events: list[MemEvent],
    *,
    kernel: Any = None,
    kernel_name: str | None = None,
) -> list[Finding]:
    """Findings in one kernel run's memory-event trace.

    ``kernel`` (the executed function) anchors findings to its source; a
    bare event list from elsewhere can pass ``kernel_name`` instead.
    """
    path, line = _kernel_anchor(kernel) if kernel is not None \
        else (kernel_name or "<trace>", 0)
    name = kernel_name or getattr(kernel, "__name__", "<kernel>")
    findings: list[Finding] = []

    # -- out-of-bounds + divergence: per event ------------------------------
    oob_reported: dict[int, int] = {}
    divergent_stores = 0
    for ev in events:
        if ev.indices.size:
            size = ev.buffer.data.size
            bad = (ev.indices < 0) | (ev.indices >= size)
            if bad.any():
                count = oob_reported.get(ev.buffer.base, 0)
                oob_reported[ev.buffer.base] = count + int(bad.sum())
                if count < _MAX_PER_BUFFER:
                    lane = int(np.argmax(bad))
                    findings.append(Finding(
                        rule="kernel-oob", severity="error", path=path,
                        line=line, engine="race",
                        message=(
                            f"kernel {name!r}: thread "
                            f"{int(ev.tids[lane])} {ev.kind}s index "
                            f"{int(ev.indices[lane])} outside [0, {size}) "
                            f"of buffer@0x{ev.buffer.base:x} (the "
                            f"interpreter wraps it, hardware corrupts)"
                        ),
                    ))
        if ev.kind == "store" and ev.active_lanes < ev.warp_lanes:
            divergent_stores += 1
    if divergent_stores:
        findings.append(Finding(
            rule="kernel-divergent-store", severity="warning", path=path,
            line=line, engine="race",
            message=(
                f"kernel {name!r}: {divergent_stores} store(s) issued "
                f"under a narrowed predication mask — the warp "
                f"serializes; prefer guarding the launch geometry"
            ),
        ))

    # -- cross-thread conflicts: per buffer element -------------------------
    # For each element keep the set of (tid, kind, atomic) accesses; a
    # conflict needs two distinct tids with at least one non-atomic store.
    by_buffer: dict[int, dict[int, list[_Access]]] = {}
    buffers: dict[int, VBuffer] = {}
    for ev in events:
        if not ev.indices.size:
            continue
        buffers[ev.buffer.base] = ev.buffer
        elements = by_buffer.setdefault(ev.buffer.base, {})
        size = ev.buffer.data.size
        wrapped = np.mod(ev.indices, size)
        for lane in range(ev.tids.size):
            elements.setdefault(int(wrapped[lane]), []).append(
                _Access(int(ev.tids[lane]), int(wrapped[lane]), ev.kind,
                        ev.atomic)
            )

    for base, elements in sorted(by_buffer.items()):
        buf = buffers[base]
        conflicts = 0
        for element in sorted(elements):
            accesses = elements[element]
            plain_writers = {a.tid for a in accesses
                            if a.kind == "store" and not a.atomic}
            if not plain_writers:
                continue  # reads only, or atomics only: no race
            others = {a.tid for a in accesses} - plain_writers
            conflict_pair: tuple[int, int, str] | None = None
            if len(plain_writers) > 1:
                first, second = sorted(plain_writers)[:2]
                conflict_pair = (first, second, "write-write")
            elif others:
                writer = next(iter(plain_writers))
                other = sorted(others)[0]
                kinds = {a.kind for a in accesses if a.tid != writer}
                kind = "write-write" if "store" in kinds else "read-write"
                conflict_pair = (writer, other, kind)
            if conflict_pair is None:
                continue
            conflicts += 1
            if conflicts <= _MAX_PER_BUFFER:
                first, second, kind = conflict_pair
                address = buf.base + element * buf.element_bytes
                findings.append(Finding(
                    rule="kernel-race", severity="error", path=path,
                    line=line, engine="race",
                    message=(
                        f"kernel {name!r}: {kind} conflict on "
                        f"buffer@0x{base:x} element {element} "
                        f"(address 0x{address:x}) between threads "
                        f"{first} and {second} without "
                        f"cusim.atomics routing"
                    ),
                ))
        if conflicts > _MAX_PER_BUFFER:
            findings.append(Finding(
                rule="kernel-race", severity="error", path=path, line=line,
                engine="race",
                message=(
                    f"kernel {name!r}: {conflicts - _MAX_PER_BUFFER} "
                    f"further conflicting element(s) on buffer@0x{base:x} "
                    f"(first {_MAX_PER_BUFFER} reported)"
                ),
            ))
    return findings


@dataclass
class KernelCheck:
    """Result of running one kernel under the access checker."""

    name: str
    report: SimtReport
    buffers: list[VBuffer]
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings tolerated)."""
        return not any(f.severity == "error" for f in self.findings)


def check_kernel(
    kernel: Any,
    total_threads: int,
    device: DeviceSpec,
    *buffers: np.ndarray,
    name: str | None = None,
) -> KernelCheck:
    """Execute ``kernel`` in lockstep and audit its memory-event trace.

    The functional results stay available in ``.buffers`` (same contract
    as :func:`~repro.cusim.simt.simt_run`), so one call both validates the
    output and clears the kernel of races.
    """
    report, vbufs = simt_run(kernel, total_threads, device, *buffers)
    findings = detect_races(report.events, kernel=kernel, kernel_name=name)
    return KernelCheck(
        name=name or getattr(kernel, "__name__", "<kernel>"),
        report=report, buffers=vbufs, findings=findings,
    )
