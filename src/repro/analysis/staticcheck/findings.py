"""The shared finding format (``repro.lint/1``) and suppression mechanism.

Both engines — the kernel access checker and the AST linter — emit
:class:`Finding` objects; ``python -m repro lint --json`` serializes one
``repro.lint/1`` JSON document per finding (JSONL, mirroring the
``repro.run/1`` run records), and :func:`validate_lint_record` is the
shared schema check ``scripts/check_bench_json.py`` applies so the writer
and CI cannot drift.

Suppression syntax, checked per physical line of the offending statement::

    freq = np.fft.fft(padded)  # reprolint: ignore[fft-registry-bypass]
    dense = np.fft.fft(x)      # reprolint: ignore          (all rules)

A multi-line statement is suppressed by a marker on *any* of its lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import ParameterError

__all__ = ["LINT_SCHEMA", "SEVERITIES", "Finding", "Suppressions",
           "validate_lint_record"]

#: Schema tag on every serialized finding.
LINT_SCHEMA = "repro.lint/1"

#: Allowed severities, in increasing order of consequence: ``warning``
#: findings are reported but never fail the lint; ``error`` findings exit
#: non-zero.
SEVERITIES = ("warning", "error")

_RULE_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")
_IGNORE_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<rules>[a-z0-9,\-\s]*)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One defect either engine found, anchored to ``path:line``."""

    rule: str
    severity: str           # "error" | "warning"
    path: str               # repo-relative, posix separators
    line: int
    message: str
    engine: str = "ast"     # "ast" | "race" | "shape"
    col: int = 0

    def __post_init__(self) -> None:
        if not _RULE_RE.match(self.rule):
            raise ParameterError(f"malformed rule id {self.rule!r}")
        if self.severity not in SEVERITIES:
            raise ParameterError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def anchor(self) -> str:
        """The clickable ``path:line`` prefix of the rendered finding."""
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        """Human one-liner: ``path:line: severity: message [rule]``."""
        return (f"{self.anchor}: {self.severity}: {self.message} "
                f"[{self.rule}]")

    def fingerprint(self) -> str:
        """Line-number-free identity for baseline comparison.

        Fingerprints survive unrelated edits moving a finding up or down a
        file — ``scripts/lint_gate.py`` fails only on fingerprints absent
        from the recorded baseline.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_json(self) -> dict[str, object]:
        """One ``repro.lint/1`` record."""
        return {
            "schema": LINT_SCHEMA,
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "engine": self.engine,
        }


class Suppressions:
    """Per-line ``# reprolint: ignore[...]`` markers of one source file."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, frozenset[str] | None] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(text)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                self._by_line[lineno] = None  # bare ignore: every rule
            else:
                names = frozenset(
                    r.strip() for r in rules.split(",") if r.strip()
                )
                self._by_line[lineno] = names

    def __len__(self) -> int:
        return len(self._by_line)

    def covers(self, rule: str, line: int, end_line: int | None = None) -> bool:
        """Is ``rule`` suppressed anywhere on lines ``line..end_line``?"""
        for lineno in range(line, (end_line or line) + 1):
            rules = self._by_line.get(lineno, frozenset())
            if rules is None or rule in rules:
                return True
        return False


def validate_lint_record(record: object) -> list[str]:
    """Problems that make ``record`` an invalid ``repro.lint/1`` document.

    Returns an empty list for a valid record; every message names the
    offending field.  Shared by the writer, the tests, and
    ``scripts/check_bench_json.py``.
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return ["lint record must be a JSON object"]
    if record.get("schema") != LINT_SCHEMA:
        problems.append(f"schema must be {LINT_SCHEMA!r}, "
                        f"got {record.get('schema')!r}")
    rule = record.get("rule")
    if not (isinstance(rule, str) and _RULE_RE.match(rule)):
        problems.append(f"rule must be a kebab-case id, got {rule!r}")
    if record.get("severity") not in SEVERITIES:
        problems.append(f"severity must be one of {SEVERITIES}, "
                        f"got {record.get('severity')!r}")
    path = record.get("path")
    if not (isinstance(path, str) and path):
        problems.append("path must be a non-empty string")
    for key in ("line", "col"):
        value = record.get(key)
        if not (isinstance(value, int) and not isinstance(value, bool)
                and value >= 0):
            problems.append(f"{key} must be a non-negative int, "
                            f"got {value!r}")
    if not (isinstance(record.get("message"), str) and record["message"]):
        problems.append("message must be a non-empty string")
    if record.get("engine") not in ("ast", "race", "shape"):
        problems.append(f"engine must be 'ast', 'race', or 'shape', "
                        f"got {record.get('engine')!r}")
    return problems
