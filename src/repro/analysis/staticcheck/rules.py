"""Repo-invariant AST rules — the contracts PR 1–4 left to convention.

Each rule carries its rationale (tied to the architecture decision it
protects); ``docs/static_analysis.md`` renders the same text.  Scoping is
by path relative to the ``repro`` package root (posix separators):

* ``fft-registry-bypass`` — every dense FFT must resolve through
  :mod:`repro.core.fft_backend` (the PR-4 vendor seam).  A direct
  ``numpy.fft``/``scipy.fft``/``pyfftw`` transform call silently ignores
  the configured backend.  Exempt: ``core/fft_backend.py`` itself.
* ``metric-name-family`` — metric name literals must belong to the
  registered ``sfft.*`` / ``cusim.*`` families (the PR-1 naming contract
  that keeps cross-backend dashboards aligned).
* ``workspace-mutation`` — the :class:`~repro.core.workspace.PlanWorkspace`
  derived arrays (gather matrix, tap layout) are shared between worker
  clones; writing them outside ``core/workspace.py`` corrupts every
  concurrent shard (the PR-4 immutability contract).
* ``wallclock-in-core`` — ``core/`` and ``gpu/`` must not read host
  clocks directly; timing belongs to the observability layer
  (:func:`repro.obs.monotonic` is the sanctioned seam), so modeled time
  and measured time cannot get conflated.
* ``bare-valueerror`` — library entry points raise
  :class:`~repro.errors.ParameterError` (or another
  :class:`~repro.errors.ReproError`), never bare ``ValueError``, so
  callers can catch one hierarchy.
* ``telemetry-thread-safety`` — the registry's instrument table and
  subscriber lists, and the flight recorder's ring deque, are guarded by
  locks inside ``obs/``; code elsewhere must go through the public
  subscription API (``subscribe()`` / ``record_*`` / the instruments),
  never touch ``_instruments`` / ``_subscribers`` / ``_ring`` directly.
* ``span-orphan`` — synthetic spans recorded outside ``obs/`` must say
  which timeline they belong to: an ``add_span(...)`` call without an
  explicit ``track=`` lands on the default CPU track, where the
  critical-path engine (:mod:`repro.obs.critical`) will treat it as
  serial CPU work and misattribute overlap (the PR-7 DAG contract).
* ``param-resolution-bypass`` — the sFFT bucket count and loop count are
  resolved through one seam (``core/params.py``: explicit kwargs > wisdom
  store > environment > paper defaults).  A hardcoded ``B=``/``loops=``
  literal handed to plan or parameter construction outside that seam (and
  outside the tuner's candidate generator, which *produces* the grid)
  silently pins a configuration the wisdom store can never improve.
  Exempt: ``core/params.py``, ``core/parameters.py``, ``tune/``.
* ``env-read-outside-seam`` — process environment reads
  (``os.environ`` / ``os.getenv``) are configuration seams, and the repo
  keeps them enumerable: parameter resolution (``core/params.py``), the
  FFT backend default (``core/fft_backend.py``), the executor's mode and
  fault-injection knobs (``core/executor.py``), and the CLI
  (``__main__.py``).  An env read anywhere else creates ambient config
  the wisdom store, the docs, and the reproducibility story cannot see.
  Suppress (with a rationale comment) only for opt-in debug/test hooks
  such as the runtime contract-enforcement flag.
* ``shm-lifecycle`` — ``multiprocessing.shared_memory`` segments are
  kernel-persistent objects: a leaked name survives the process in
  ``/dev/shm``.  Only ``core/shm.py`` (the PR-8 ownership layer —
  ``SegmentBundle`` guarantees unlink-on-close even across worker
  crashes) may construct ``SharedMemory``; and any function creating a
  segment (``create=True``) must carry a ``.unlink()`` call on some path
  so the half-built-segment failure mode cannot leak.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from .findings import Finding, Suppressions

__all__ = ["RULES", "Rule", "lint_source"]


@dataclass(frozen=True)
class Rule:
    """One repo invariant: identity, severity, and rationale."""

    id: str
    severity: str
    summary: str
    rationale: str


RULES: dict[str, Rule] = {r.id: r for r in (
    Rule(
        "fft-registry-bypass", "error",
        "direct numpy.fft/scipy.fft/pyfftw transform call",
        "Dense FFTs must dispatch through repro.core.fft_backend so the "
        "vendor seam (numpy/scipy/pyfftw — the paper's cuFFT/FFTW swap) "
        "stays a single point; a direct call ignores the configured "
        "backend.",
    ),
    Rule(
        "metric-name-family", "error",
        "metric name outside the sfft.*/cusim.* families",
        "The observability layer's naming contract: algorithm metrics are "
        "sfft.*, device-model metrics are cusim.*, dot-separated and "
        "lowercase, so cross-backend dashboards line up.",
    ),
    Rule(
        "workspace-mutation", "error",
        "write to a frozen PlanWorkspace derived array",
        "Worker clones share the gather/tap matrices by reference; a "
        "write outside core/workspace.py corrupts every concurrent "
        "shard.",
    ),
    Rule(
        "wallclock-in-core", "error",
        "host clock read inside core/ or gpu/",
        "core/ and gpu/ produce modeled or algorithmic results; wall "
        "timing belongs to repro.obs (use repro.obs.monotonic), keeping "
        "measured and modeled time separable.",
    ),
    Rule(
        "bare-valueerror", "error",
        "raise ValueError instead of a ReproError subclass",
        "Entry points raise ParameterError/LaunchConfigError (both "
        "ValueError-compatible) so callers catch one hierarchy.",
    ),
    Rule(
        "telemetry-thread-safety", "error",
        "direct access to registry/ring-buffer internals outside obs/",
        "MetricsRegistry._instruments, the _subscribers lists, and "
        "FlightRecorder._ring are mutated under locks owned by obs/; "
        "outside code must use the public subscription API (subscribe, "
        "record_span/record_metric, the instruments) or updates race "
        "and the re-entrancy guard is bypassed.",
    ),
    Rule(
        "span-orphan", "error",
        "add_span() without an explicit track= outside obs/",
        "Synthetic spans recorded without a track land on the default "
        "CPU track, where the critical-path engine treats them as serial "
        "CPU work; every add_span outside obs/ must name its track (and "
        "parallel producers should carry parent/shard attrs) so the span "
        "DAG stays reconstructible.",
    ),
    Rule(
        "param-resolution-bypass", "error",
        "hardcoded B=/loops= literal outside the resolution seam",
        "Bucket and loop counts resolve through repro.core.params "
        "(explicit > wisdom > env > defaults); a constant B=/loops= "
        "keyword in plan or parameter construction pins a configuration "
        "the measured wisdom store can never improve.  Thread the value "
        "through the seam, or suppress where a fixed grid is the point.",
    ),
    Rule(
        "env-read-outside-seam", "error",
        "os.environ/os.getenv read outside a sanctioned config seam",
        "Environment reads are configuration inputs; the repo keeps them "
        "enumerable at four seams (core/params.py, core/fft_backend.py, "
        "core/executor.py, __main__.py) so every knob is discoverable "
        "and reproducible.  Reads elsewhere create ambient configuration "
        "— thread the value through a parameter, or suppress with a "
        "rationale for deliberate opt-in hooks.",
    ),
    Rule(
        "shm-lifecycle", "error",
        "SharedMemory constructed outside core/shm.py, or created "
        "without an unlink path",
        "Shared-memory segments outlive the process if never unlinked "
        "(they are names in /dev/shm, not file descriptors); "
        "core/shm.py's SegmentBundle/AttachedSegment own the "
        "create/attach/unlink lifecycle — including unlink-on-close "
        "after worker crashes — so every other module must go through "
        "them, and a creating function must hold a matching .unlink() "
        "on some path.",
    ),
)}

#: FFT transform attribute names that constitute a registry bypass.
_TRANSFORMS = frozenset({
    "fft", "ifft", "rfft", "irfft", "fft2", "ifft2", "fftn", "ifftn",
    "rfftn", "irfftn", "hfft", "ihfft",
})
#: Module roots whose ``.fft``/``.fftpack`` namespaces are vendor FFTs.
_FFT_ROOTS = frozenset({"np", "numpy", "scipy", "pyfftw"})
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
_METRIC_NAME_RE = re.compile(
    r"^(sfft|cusim)\.[a-z0-9_]+(\.[a-z0-9_]+)*$"
)
#: PlanWorkspace derived arrays shared between clones (see workspace.py).
_FROZEN_WORKSPACE_ATTRS = frozenset({
    "gather", "taps_flat", "taps_matrix",
    "_gather", "_taps_flat", "_taps_matrix",
})
#: In-place ndarray methods that mutate the receiver.
_MUTATING_METHODS = frozenset({"fill", "sort", "put", "partition", "resize"})
_CLOCK_FUNCS = frozenset({"time", "perf_counter", "monotonic",
                          "process_time", "thread_time"})
#: Lock-guarded telemetry internals (see obs/metrics.py, obs/live.py).
_TELEMETRY_INTERNALS = frozenset({"_instruments", "_subscribers", "_ring"})
#: The one module allowed to construct SharedMemory (see core/shm.py).
_SHM_OWNER = "core/shm.py"
#: Callables that consume raw B=/loops= keywords (plan/param construction).
_PARAM_SINKS = frozenset({
    "SfftParameters", "derive_parameters", "make_plan", "cached_plan",
    "get_or_make", "dict",
})
_PARAM_KEYS = frozenset({"B", "loops"})

#: Per-rule path exemptions (exact file, or a trailing-slash prefix).
_EXEMPT = {
    "fft-registry-bypass": ("core/fft_backend.py",),
    "workspace-mutation": ("core/workspace.py",),
    "telemetry-thread-safety": ("obs/",),
    # obs/ builds tracers and ingests timelines; it owns track semantics.
    "span-orphan": ("obs/",),
    # The seam itself, the derivation it wraps, and the tuner's candidate
    # grid (which exists to enumerate B/loops values) own the literals.
    "param-resolution-bypass": (
        "core/params.py", "core/parameters.py", "tune/",
    ),
    # The sanctioned configuration seams (see the rule's rationale).
    "env-read-outside-seam": (
        "core/params.py", "core/fft_backend.py", "core/executor.py",
        "__main__.py",
    ),
}
#: wallclock-in-core only *applies* to these subtrees.
_WALLCLOCK_SCOPE = ("core/", "gpu/")


def _exempt(rule_id: str, relpath: str) -> bool:
    for pattern in _EXEMPT.get(rule_id, ()):
        if relpath == pattern or (pattern.endswith("/")
                                  and relpath.startswith(pattern)):
            return True
    return False


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, relpath: str, path: str) -> None:
        self.relpath = relpath
        self.path = path
        #: ``(finding, end_lineno)`` — the end line widens suppression
        #: matching to every physical line of a wrapped statement.
        self.raw: list[tuple[Finding, int]] = []
        self._time_aliases: set[str] = set()       # `import time as t`
        self._clock_names: set[str] = set()        # `from time import ...`

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        if _exempt(rule_id, self.relpath):
            return
        rule = RULES[rule_id]
        line = getattr(node, "lineno", 0)
        self.raw.append((
            Finding(
                rule=rule.id, severity=rule.severity, path=self.path,
                line=line, col=getattr(node, "col_offset", 0),
                message=message,
            ),
            getattr(node, "end_lineno", None) or line,
        ))

    # -- imports feed the wall-clock rule -----------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS:
                    self._clock_names.add(alias.asname or alias.name)
        if node.module == "os" and node.level == 0:
            bad = [a.name for a in node.names
                   if a.name in ("environ", "getenv")]
            if bad:
                self._emit(
                    "env-read-outside-seam", node,
                    f"import of {', '.join(bad)} from os — environment "
                    f"reads belong to the config seams (core/params.py, "
                    f"core/fft_backend.py, core/executor.py, __main__.py)",
                )
        if node.module and node.level == 0:
            root = node.module.split(".")[0]
            tail = node.module.split(".")[-1]
            if root in _FFT_ROOTS and tail in ("fft", "fftpack"):
                bad = [a.name for a in node.names
                       if a.name in _TRANSFORMS or a.name == "*"]
                if bad:
                    self._emit(
                        "fft-registry-bypass", node,
                        f"import of {', '.join(bad)} from "
                        f"{node.module} bypasses the FFT backend "
                        f"registry (repro.core.fft_backend)",
                    )
        self.generic_visit(node)

    # -- calls: fft bypass, metric names, clocks, mutation methods ----------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            self._check_fft(node, chain)
            self._check_metric(node, chain)
            self._check_clock(node, chain)
            self._check_mutating_method(node, chain)
            self._check_span_orphan(node, chain)
            self._check_shm_ctor(node, chain)
            self._check_param_bypass(node, chain)
        self.generic_visit(node)

    def _check_param_bypass(self, node: ast.Call, chain: list[str]) -> None:
        if chain[-1] not in _PARAM_SINKS:
            return
        for kw in node.keywords:
            if kw.arg in _PARAM_KEYS and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is not None:
                self._emit(
                    "param-resolution-bypass", node,
                    f"hardcoded {kw.arg}={kw.value.value!r} in "
                    f"{chain[-1]}() — resolve through repro.core.params "
                    f"(explicit > wisdom > env > defaults) so the wisdom "
                    f"store stays authoritative",
                )

    def _check_fft(self, node: ast.Call, chain: list[str]) -> None:
        if len(chain) < 2 or chain[-1] not in _TRANSFORMS:
            return
        root = chain[0]
        if root == "pyfftw" or (
            root in _FFT_ROOTS and chain[-2] in ("fft", "fftpack")
        ):
            self._emit(
                "fft-registry-bypass", node,
                f"direct {'.'.join(chain)} call — route through "
                f"repro.core.fft_backend.get_backend() (or "
                f"bucket_fft) so the backend stays swappable",
            )

    def _check_metric(self, node: ast.Call, chain: list[str]) -> None:
        if chain[-1] not in _METRIC_METHODS or not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not _METRIC_NAME_RE.match(arg.value):
                self._emit(
                    "metric-name-family", arg,
                    f"metric name {arg.value!r} is outside the "
                    f"registered sfft.*/cusim.* families "
                    f"(lowercase, dot-separated)",
                )

    def _check_clock(self, node: ast.Call, chain: list[str]) -> None:
        if not self.relpath.startswith(_WALLCLOCK_SCOPE):
            return
        offending = None
        if (len(chain) == 2 and chain[0] in self._time_aliases
                and chain[1] in _CLOCK_FUNCS):
            offending = ".".join(chain)
        elif len(chain) == 1 and chain[0] in self._clock_names:
            offending = chain[0]
        if offending:
            self._emit(
                "wallclock-in-core", node,
                f"{offending}() read inside {self.relpath} — use "
                f"repro.obs.monotonic() so wall timing stays an "
                f"observability concern",
            )

    def _check_span_orphan(self, node: ast.Call, chain: list[str]) -> None:
        if len(chain) < 2 or chain[-1] != "add_span":
            return
        keywords = {kw.arg for kw in node.keywords}
        if None in keywords:
            # A **kwargs splat may well carry track=; don't guess.
            return
        if "track" not in keywords:
            self._emit(
                "span-orphan", node,
                "add_span() without an explicit track= — the span lands "
                "on the default CPU track and the critical-path engine "
                "(repro.obs.critical) will misattribute it; name the "
                "track it belongs to",
            )

    def _check_shm_ctor(self, node: ast.Call, chain: list[str]) -> None:
        # Scoped manually, not via _EXEMPT: core/shm.py is exempt from the
        # constructor check but still subject to the unlink-path check in
        # visit_FunctionDef.
        if chain[-1] != "SharedMemory" or self.relpath == _SHM_OWNER:
            return
        self._emit(
            "shm-lifecycle", node,
            "SharedMemory constructed outside core/shm.py — use "
            "SegmentBundle (owning create) or AttachedSegment (worker "
            "attach) so unlink-on-close holds even across worker crashes",
        )

    def _check_mutating_method(self, node: ast.Call, chain: list[str]) -> None:
        if len(chain) >= 3 and chain[-1] in _MUTATING_METHODS \
                and chain[-2] in _FROZEN_WORKSPACE_ATTRS:
            self._emit(
                "workspace-mutation", node,
                f"in-place {chain[-1]}() on shared workspace array "
                f".{chain[-2]} — derived arrays are shared across "
                f"worker clones",
            )

    # -- functions: segment creation must carry an unlink path --------------

    @staticmethod
    def _same_scope(node: ast.AST) -> Iterator[ast.AST]:
        """Descendants of ``node`` excluding nested function bodies."""
        stack = list(ast.iter_child_nodes(node))
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue
            yield sub
            stack.extend(ast.iter_child_nodes(sub))

    def _check_shm_unlink_path(self, node: ast.AST) -> None:
        creates: list[ast.Call] = []
        has_unlink = False
        for sub in self._same_scope(node):
            if not isinstance(sub, ast.Call):
                continue
            chain = _attr_chain(sub.func)
            if not chain:
                continue
            if chain[-1] == "SharedMemory" and any(
                kw.arg == "create" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True for kw in sub.keywords
            ):
                creates.append(sub)
            elif chain[-1] == "unlink":
                has_unlink = True
        if not has_unlink:
            for sub in creates:
                self._emit(
                    "shm-lifecycle", sub,
                    "SharedMemory(create=True) without a matching "
                    ".unlink() anywhere in this function — a failure "
                    "between create and the owner's close() leaks the "
                    "segment in /dev/shm",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_shm_unlink_path(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_shm_unlink_path(node)
        self.generic_visit(node)

    # -- stores: workspace mutation -----------------------------------------

    def _frozen_target(self, target: ast.AST) -> str | None:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) \
                and node.attr in _FROZEN_WORKSPACE_ATTRS \
                and isinstance(node.value, (ast.Name, ast.Attribute)):
            return node.attr
        return None

    def _check_store_targets(
        self, node: ast.AST, targets: Sequence[ast.AST]
    ) -> None:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._check_store_targets(node, target.elts)
                continue
            attr = self._frozen_target(target)
            if attr is not None:
                self._emit(
                    "workspace-mutation", node,
                    f"write to shared workspace array .{attr} — only "
                    f"core/workspace.py may build or replace the "
                    f"derived arrays (clones share them by reference)",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_store_targets(node, node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_targets(node, [node.target])
        self.generic_visit(node)

    # -- attribute loads/stores: telemetry internals ------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _attr_chain(node)
        if chain in (["os", "environ"], ["os", "getenv"]):
            # Matches only the two-element chain, so `os.environ.get(...)`
            # emits once (on the inner `os.environ` node, not on `.get`).
            self._emit(
                "env-read-outside-seam", node,
                f"{'.'.join(chain)} read outside a sanctioned config seam "
                f"(core/params.py, core/fft_backend.py, core/executor.py, "
                f"__main__.py) — thread the value through a parameter, or "
                f"suppress with a rationale for a deliberate opt-in hook",
            )
        if node.attr in _TELEMETRY_INTERNALS:
            self._emit(
                "telemetry-thread-safety", node,
                f"direct .{node.attr} access outside obs/ — use the "
                f"public subscription API (subscribe / record_* / the "
                f"instruments); the internals are lock-guarded",
            )
        self.generic_visit(node)

    # -- raises: error hierarchy --------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            chain = _attr_chain(exc.func)
            name = chain[-1] if chain else None
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name == "ValueError":
            self._emit(
                "bare-valueerror", node,
                "raise ParameterError (or another ReproError subclass, "
                "all ValueError-compatible) instead of bare ValueError",
            )
        self.generic_visit(node)


def lint_source(
    source: str, *, path: str, relpath: str | None = None
) -> list[Finding]:
    """AST findings for one file, suppressions already applied.

    ``path`` is the anchor written into findings (repo-relative, posix);
    ``relpath`` is the package-root-relative path used for rule scoping
    (defaults to ``path`` with any leading ``src/repro/`` stripped).
    """
    if relpath is None:
        relpath = path
        for prefix in ("src/repro/", "repro/"):
            if relpath.startswith(prefix):
                relpath = relpath[len(prefix):]
                break
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(relpath, path)
    visitor.visit(tree)
    suppressions = Suppressions(source)
    kept = []
    for finding, end_line in visitor.raw:
        if not suppressions.covers(finding.rule, finding.line, end_line):
            kept.append(finding)
    return kept
