"""Symbolic index-expression analyzer for affine store schedules.

The trace checker (:mod:`.races`) clears a kernel at the sizes it ran; it
cannot speak for other launch geometries.  For the index expressions GPU
kernels actually use — affine forms ``(a*tid + b) mod n`` — injectivity
has a closed form, so collision-freedom can be *proved* for every thread
count at once:

    ``t1 != t2`` collide  iff  ``a*(t1 - t2) ≡ 0 (mod n)``
                          iff  ``(t1 - t2)`` is a multiple of
                               ``n / gcd(a, n)``.

Hence ``(a*tid + b) mod n`` is injective over ``tid in [0, T)`` exactly
when ``T <= n // gcd(a, n)``.

The payoff is the paper's Algorithm 2: the loop-partition binner's store
schedule is ``buckets[tid]`` for ``tid in [0, B)`` — scale 1, and
``gcd(1, B) == 1`` for *every* ``B`` — so
:func:`prove_loop_partition_binner` certifies the kernel collision-free
for all bucket counts, all round counts, and all ``(n, sigma, tau)``
without tracing a single one.  A data-dependent store (the naive
histogram's ``buckets[key[tid]]``) has no affine form; :func:`fit_affine`
returns ``None`` on its trace and the prover correctly refuses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...errors import ParameterError

__all__ = [
    "AffineIndex",
    "Proof",
    "binner_store_index",
    "binner_load_index",
    "fit_affine",
    "prove_injective",
    "prove_loop_partition_binner",
    "prove_product_equal",
]


@dataclass(frozen=True)
class AffineIndex:
    """The index expression ``(scale * tid + offset) % modulus``."""

    scale: int
    offset: int
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus < 1:
            raise ParameterError(f"modulus must be >= 1, got {self.modulus}")

    def evaluate(self, tids: np.ndarray) -> np.ndarray:
        """Concrete indices for the given thread ids."""
        tids = np.asarray(tids, dtype=np.int64)
        return (self.scale * tids + self.offset) % self.modulus


@dataclass(frozen=True)
class Proof:
    """Outcome of a symbolic collision-freedom check.

    ``universal`` distinguishes a theorem over all launch geometries from
    a fact about one concrete ``(expression, threads)`` pair; ``reason``
    is the one-line derivation shown in lint output and docs.
    """

    collision_free: bool
    universal: bool
    reason: str


def prove_injective(index: AffineIndex, threads: int) -> Proof:
    """Decide injectivity of an affine index over ``tid in [0, threads)``.

    Exact, not sampled: uses the gcd criterion in the module docstring.
    """
    if threads < 1:
        raise ParameterError(f"threads must be >= 1, got {threads}")
    # gcd(0, m) == m, so a scale ≡ 0 (mod m) degenerates to limit 1:
    # every thread hits `offset`, which is injective only solo.
    g = math.gcd(index.scale % index.modulus, index.modulus)
    limit = index.modulus // g
    if threads <= limit:
        return Proof(
            collision_free=True, universal=False,
            reason=(
                f"({index.scale}*tid + {index.offset}) mod {index.modulus} "
                f"is injective for tid < {threads}: threads <= "
                f"modulus/gcd(scale, modulus) = {limit}"
            ),
        )
    collider = limit  # tid=0 and tid=limit map to the same element
    return Proof(
        collision_free=False, universal=False,
        reason=(
            f"threads 0 and {collider} collide: "
            f"{index.scale}*{collider} ≡ 0 (mod {index.modulus})"
        ),
    )


def binner_store_index(B: int) -> AffineIndex:
    """Algorithm 2's store schedule: thread ``tid`` writes ``buckets[tid]``."""
    return AffineIndex(scale=1, offset=0, modulus=B)


def binner_load_index(
    *, B: int, j: int, sigma: int, tau: int, n: int
) -> AffineIndex:
    """Round ``j``'s signal-gather schedule: ``((tid + B*j)*sigma + tau) % n``.

    Loads never race, but per-round injectivity (``gcd(sigma, n) == 1``)
    is what keeps bucket contents from double-counting any signal sample —
    the same coprimality the permutation already guarantees.
    """
    return AffineIndex(scale=sigma, offset=(B * j * sigma + tau) % n,
                       modulus=n)


def prove_loop_partition_binner(B: int | None = None) -> Proof:
    """The Algorithm-2 theorem: the binner's stores are collision-free.

    With ``B=None`` the proof is *universal* — it holds for every bucket
    count, because the store schedule ``buckets[tid]`` has scale 1 and
    ``gcd(1, B) == 1`` identically, making the injectivity bound
    ``B // gcd(1, B) == B`` exactly the thread count.  No atomics, no
    per-thread sub-histograms: the property Section IV-C's loop partition
    was designed to buy.  A concrete ``B`` re-derives the same bound
    through :func:`prove_injective` (used by tests to tie the theorem to
    traced runs).
    """
    if B is not None:
        proof = prove_injective(binner_store_index(B), threads=B)
        if not proof.collision_free:  # unreachable; kept as a hard check
            return proof
        return Proof(
            collision_free=True, universal=False,
            reason=f"loop-partition binner, B={B}: {proof.reason}",
        )
    return Proof(
        collision_free=True, universal=True,
        reason=(
            "loop-partition binner stores are buckets[tid] for tid in "
            "[0, B): scale 1 gives gcd(1, B) == 1 for every B, so the "
            "injectivity bound B//gcd == B covers all B threads — "
            "collision-free for all bucket counts without atomics"
        ),
    )


def prove_product_equal(
    left: tuple[int, tuple[str, ...]],
    right: tuple[int, tuple[str, ...]],
) -> Proof:
    """Decide equality of two symbolic dimension products.

    Each side is a product normal form ``(coeff, symbols)`` — the shape
    engine's dims (``repro.analysis.staticcheck.contracts.Dim``) reduced
    to sorted symbol tuples, so commutativity is already discharged
    structurally (``rounds*B`` and ``B*rounds`` arrive identical).

    Dimension symbols range over *positive* integers, which gives the
    three-way verdict its force:

    * identical normal forms — equal for every assignment
      (``collision_free=True, universal=True``);
    * same symbols, different coefficients — ``a*P != b*P`` whenever
      ``P >= 1``, so the inequality is itself universal
      (``collision_free=False, universal=True``);
    * different symbol multisets — ``S*L`` vs ``S*v`` agree for *some*
      assignments and differ for others; equality is not provable and
      the prover refuses (``collision_free=False, universal=False``).

    ``collision_free`` is read as "equality proven" here — the shape
    engine reuses :class:`Proof` so reshape-conservation verdicts carry
    the same universal/constructive distinction as the kernel proofs.
    """
    lc, ls = left[0], tuple(sorted(left[1]))
    rc, rs = right[0], tuple(sorted(right[1]))
    render_l = "*".join((str(lc),) + ls)
    render_r = "*".join((str(rc),) + rs)
    if ls == rs and lc == rc:
        return Proof(
            collision_free=True, universal=True,
            reason=f"{render_l} == {render_r}: identical product normal forms",
        )
    if ls == rs:
        return Proof(
            collision_free=False, universal=True,
            reason=(
                f"{render_l} != {render_r}: same symbols, coefficients "
                f"{lc} != {rc} — unequal for every positive assignment"
            ),
        )
    return Proof(
        collision_free=False, universal=False,
        reason=(
            f"cannot prove {render_l} == {render_r}: symbol multisets "
            f"differ, equality depends on the assignment"
        ),
    )


def fit_affine(
    tids: np.ndarray, indices: np.ndarray, modulus: int
) -> AffineIndex | None:
    """Fit ``(a*tid + b) % modulus`` to a traced store schedule, or ``None``.

    The bridge from trace to theorem: fit the affine form at one traced
    size, then :func:`prove_injective` generalizes over thread counts.  A
    data-dependent schedule (naive histogram) fails the verification pass
    and yields ``None`` — precisely the kernels the symbolic engine must
    refuse to certify.
    """
    tids = np.asarray(tids, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    if tids.shape != indices.shape or tids.ndim != 1:
        raise ParameterError("tids and indices must be matching 1-D arrays")
    if tids.size == 0:
        return None
    order = np.argsort(tids)
    tids, indices = tids[order], indices[order] % modulus
    if np.unique(tids).size != tids.size:
        # A thread storing to two different elements has no single (a, b).
        first = tids[np.concatenate(([False], np.diff(tids) == 0))]
        dup = int(first[0])
        mask = tids == dup
        if np.unique(indices[mask]).size > 1:
            return None
        keep = np.concatenate(([True], np.diff(tids) != 0))
        tids, indices = tids[keep], indices[keep]
    if tids.size == 1:
        candidate = AffineIndex(0, int(indices[0]), modulus)
    else:
        dt = int(tids[1] - tids[0])
        di = int((indices[1] - indices[0]) % modulus)
        # Solve a*dt ≡ di (mod modulus) by trial over the dt divisors —
        # dt is 1 for contiguous thread ids, the common case.
        scale = None
        for a in range(modulus):
            if (a * dt) % modulus == di:
                scale = a
                break
        if scale is None:
            return None
        offset = int((indices[0] - scale * tids[0]) % modulus)
        candidate = AffineIndex(scale, offset, modulus)
    if np.array_equal(candidate.evaluate(tids), indices):
        return candidate
    return None
