"""``reprolint`` — static analysis over the repo's own invariants.

Three engines behind one structured finding format (``repro.lint/1``):

* the **kernel access checker** (:mod:`.races`, :mod:`.symbolic`) — turns
  the :mod:`repro.cusim.simt` load/store trace into a race detector
  (write-write and read-write conflicts not routed through
  :mod:`repro.cusim.atomics`, out-of-bounds indices, warp-divergent
  stores) and proves affine store schedules collision-free *for all*
  thread counts, not just traced sizes;
* the **repo-invariant linter** (:mod:`.rules`) — an AST pass over
  ``src/repro`` enforcing the project contracts that PR 1–4 established
  only by convention (single FFT dispatch point, metric-name families,
  frozen workspace arrays, no wall-clock in ``core``/``gpu``, typed
  errors at entry points, env reads only at config seams);
* the **shape/dtype contract engine** (:mod:`.contracts`, :mod:`.shapes`)
  — ``core/`` pipeline functions declare their dimensional laws with
  ``@shape_contract``; an abstract interpreter certifies each body
  statically, and ``REPRO_CHECK_CONTRACTS=1`` asserts the same
  declarations at runtime.

``python -m repro lint`` (see :mod:`.cli`) runs all engines; findings can
be suppressed per line with ``# reprolint: ignore[rule]``.

Re-exports are lazy (PEP 562): ``repro.core`` modules import
:mod:`.contracts` at their own import time, and an eager ``from .races
import ...`` here would drag in :mod:`repro.cusim` (and, transitively,
whatever the battery needs) under every core import.
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    "collect_findings": ".engine",
    "kernel_battery": ".engine",
    "lint_tree": ".engine",
    "LINT_SCHEMA": ".findings",
    "Finding": ".findings",
    "Suppressions": ".findings",
    "validate_lint_record": ".findings",
    "KernelCheck": ".races",
    "check_kernel": ".races",
    "detect_races": ".races",
    "RULES": ".rules",
    "Rule": ".rules",
    "lint_source": ".rules",
    "AffineIndex": ".symbolic",
    "Proof": ".symbolic",
    "binner_store_index": ".symbolic",
    "fit_affine": ".symbolic",
    "prove_injective": ".symbolic",
    "prove_loop_partition_binner": ".symbolic",
    "prove_product_equal": ".symbolic",
    "Contract": ".contracts",
    "Dim": ".contracts",
    "contract_for": ".contracts",
    "enforcement_enabled": ".contracts",
    "registered_contracts": ".contracts",
    "set_enforcement": ".contracts",
    "shape_contract": ".contracts",
    "SHAPE_RULES": ".shapes",
    "REQUIRED_CONTRACTS": ".shapes",
    "check_contract": ".shapes",
    "check_contracts": ".shapes",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
