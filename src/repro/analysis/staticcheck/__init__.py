"""``reprolint`` — static analysis over the repo's own invariants.

Two engines behind one structured finding format (``repro.lint/1``):

* the **kernel access checker** (:mod:`.races`, :mod:`.symbolic`) — turns
  the :mod:`repro.cusim.simt` load/store trace into a race detector
  (write-write and read-write conflicts not routed through
  :mod:`repro.cusim.atomics`, out-of-bounds indices, warp-divergent
  stores) and proves affine store schedules collision-free *for all*
  thread counts, not just traced sizes;
* the **repo-invariant linter** (:mod:`.rules`) — an AST pass over
  ``src/repro`` enforcing the project contracts that PR 1–4 established
  only by convention (single FFT dispatch point, metric-name families,
  frozen workspace arrays, no wall-clock in ``core``/``gpu``, typed
  errors at entry points).

``python -m repro lint`` (see :mod:`.cli`) runs both engines; findings can
be suppressed per line with ``# reprolint: ignore[rule]``.
"""

from .engine import collect_findings, kernel_battery, lint_tree
from .findings import (
    LINT_SCHEMA,
    Finding,
    Suppressions,
    validate_lint_record,
)
from .races import KernelCheck, check_kernel, detect_races
from .rules import RULES, Rule, lint_source
from .symbolic import (
    AffineIndex,
    Proof,
    binner_store_index,
    fit_affine,
    prove_injective,
    prove_loop_partition_binner,
)

__all__ = [
    "LINT_SCHEMA",
    "Finding",
    "Suppressions",
    "validate_lint_record",
    "KernelCheck",
    "check_kernel",
    "detect_races",
    "RULES",
    "Rule",
    "lint_source",
    "AffineIndex",
    "Proof",
    "binner_store_index",
    "fit_affine",
    "prove_injective",
    "prove_loop_partition_binner",
    "collect_findings",
    "kernel_battery",
    "lint_tree",
]
