"""Symbolic shape/dtype abstract interpreter for ``@shape_contract`` bodies.

The static half of the contract engine (:mod:`.contracts` is the
declaration + runtime half).  For every registered contract this module
re-parses the decorated function's source, seeds an abstract environment
from the contract (inputs become symbolic arrays, ``bind`` paths become
symbolic scalars, ``attrs`` describe instance state), and walks the body
propagating shapes through the numpy idioms the repo actually uses:
reshape, sum-over-axis, fancy gather, concatenate, slicing, broadcasting,
``@``, ``astype``.  Dimension equalities — reshape conservation, return
shapes, call-site wiring between decorated functions — are discharged
with :func:`..symbolic.prove_product_equal`; violations surface as
standard ``repro.lint/1`` findings (engine ``"shape"``).

The interpreter is deliberately *optimistic*: anything it cannot model
(list comprehensions, un-contracted helpers, data-dependent sizes)
becomes ``?``/opaque and never produces a finding.  A finding therefore
means the declared law is **provably** broken for some positive
assignment of the symbolic dims — the same standard the kernel race
engine holds itself to.  Two deliberate optimisms are worth naming:
``Arr <op> opaque`` keeps the array's shape (a broadcast against an
unknown operand is assumed conforming), and branch merges prefer the
more-informative value.  Both are sound for *certification* (they can
hide a bug, never invent one).

``check_contracts()`` is the battery entry point wired into
``python -m repro lint``: it imports the core modules, checks every
registered contract, enforces ``REQUIRED_CONTRACTS`` coverage
(``contract-missing``), and guards the seeded negative control — a
contract declared with ``expect_violation=True`` must keep producing a
violation or ``shape-checker-selfcheck`` fires, mirroring the race
detector's naive-histogram control.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import os
import textwrap
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from .contracts import (
    ANY_DIM,
    Contract,
    Dim,
    DimLike,
    ShapeSpec,
    _AnyDim,
    registered_contracts,
)
from .findings import Finding, Suppressions
from .rules import Rule
from .symbolic import prove_product_equal

__all__ = [
    "REQUIRED_CONTRACTS",
    "SHAPE_RULES",
    "check_contract",
    "check_contracts",
]

SHAPE_RULES: dict[str, Rule] = {
    "shape-contract-violation": Rule(
        id="shape-contract-violation",
        severity="error",
        summary="an array provably violates a declared @shape_contract",
        rationale=(
            "the pipeline's dimensional laws ((S,n) signals -> (S,L,B) "
            "buckets -> (S*L,B) FFT rows -> S*n vote keys) are the "
            "algorithm; a shape that drifts past them corrupts results "
            "silently instead of raising"
        ),
    ),
    "dtype-drift": Rule(
        id="dtype-drift",
        severity="error",
        summary="a value provably violates a declared contract dtype",
        rationale=(
            "complex128 in the bucket path and int64 index arrays are "
            "load-bearing: a float64 bucket row or int32 gather silently "
            "changes numerics and memory traffic"
        ),
    ),
    "contract-missing": Rule(
        id="contract-missing",
        severity="error",
        summary="a public core/ pipeline function has no @shape_contract",
        rationale=(
            "the certified surface is an explicit list "
            "(REQUIRED_CONTRACTS); silently dropping a contract would "
            "shrink it without review"
        ),
    ),
    "shape-checker-selfcheck": Rule(
        id="shape-checker-selfcheck",
        severity="error",
        summary="the shape checker failed its own negative control",
        rationale=(
            "a checker that stops flagging the seeded transposed reshape "
            "(or crashes) cannot be trusted to certify anything; broken "
            "tooling must not produce a green lint"
        ),
    ),
}

#: Dotted names that MUST carry a contract (the tentpole's public surface).
REQUIRED_CONTRACTS: tuple[str, ...] = (
    "repro.core.workspace.PlanWorkspace.bin_fused",
    "repro.core.workspace.PlanWorkspace.bin_fused_stack",
    "repro.core.batch.as_signal_stack",
    "repro.core.batch.run_stack_pipeline",
    "repro.core.binning.bin_serial",
    "repro.core.binning.bin_vectorized",
    "repro.core.binning.bin_loop_partition",
    "repro.core.recovery.recover_locations_stack",
    "repro.core.estimation.estimate_values_stack",
    "repro.core.executor.ShardedExecutor.run",
    "repro.core.shm.SharedArraySpec.as_array",
)

#: Modules imported so their decorators populate the registry.
_CONTRACT_MODULES: tuple[str, ...] = (
    "repro.core.workspace",
    "repro.core.batch",
    "repro.core.binning",
    "repro.core.recovery",
    "repro.core.estimation",
    "repro.core.cutoff",
    "repro.core.subsampled",
    "repro.core.permutation",
    "repro.core.executor",
    "repro.core.shm",
)


# ---------------------------------------------------------------------------
# Abstract values


class _Opaque:
    _instance: "_Opaque | None" = None

    def __new__(cls) -> "_Opaque":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<opaque>"


OPAQUE = _Opaque()


@dataclass(frozen=True)
class Arr:
    """A numpy array of known (symbolic) shape and optionally dtype."""

    shape: tuple[DimLike, ...]
    dtype: str | None = None

    def __repr__(self) -> str:
        dims = ", ".join(repr(d) for d in self.shape)
        return f"Arr(({dims}){'' if self.dtype is None else ':' + self.dtype})"


@dataclass(frozen=True)
class Sym:
    """A non-negative integer scalar with a symbolic value."""

    dim: DimLike

    def __repr__(self) -> str:
        return f"Sym({self.dim!r})"


@dataclass(frozen=True)
class Num:
    """A non-integer numeric scalar (float/complex literal or result)."""

    dtype: str


@dataclass(frozen=True)
class Pth:
    """An un-modeled object reachable by a dotted path from an argument.

    Attribute walks extend the path; ``bind`` and ``attrs`` lookups turn
    a path into a :class:`Sym` or :class:`Arr` the moment it matches.
    """

    path: str


@dataclass(frozen=True)
class Shp:
    """The ``.shape`` tuple of a known array."""

    dims: tuple[DimLike, ...]


@dataclass(frozen=True)
class Tup:
    items: tuple[Any, ...]


@dataclass(frozen=True)
class Lst:
    items: tuple[Any, ...]


@dataclass(frozen=True)
class Dt:
    """A dtype object (``np.complex128`` used as a value)."""

    name: str


class _NpMod:
    """The ``np`` module object itself."""


NP_MOD = _NpMod()


@dataclass(frozen=True)
class NpFunc:
    name: str


# ---------------------------------------------------------------------------
# Dim/dtype helpers

_DTYPE_NAMES = {
    "complex128", "complex64", "float64", "float32", "int64", "int32",
    "int16", "int8", "uint8", "uint32", "uint64", "bool_", "bool",
    "intp", "complex", "float", "int",
}


def _canon_dtype(name: str) -> str:
    return str(np.dtype(name))


def _dims_compatible(a: DimLike, b: DimLike) -> bool:
    """Whether two dims *could* be equal.  False only on a proof of
    inequality (same symbols/different coefficient) or on two fully
    symbolic products with different symbol multisets — the standard that
    keeps the transposed-reshape control flagged while a constant like 0
    (empty-case returns) stays compatible with any symbol."""
    if isinstance(a, _AnyDim) or isinstance(b, _AnyDim):
        return True
    if a == b:
        return True
    proof = prove_product_equal((a.coeff, a.syms), (b.coeff, b.syms))
    if proof.collision_free:
        return True
    if proof.universal:
        return False
    if not a.syms or not b.syms:
        return True
    return False


def _fold_product(dims: tuple[DimLike, ...]) -> DimLike:
    out = Dim()
    for d in dims:
        if isinstance(d, _AnyDim):
            return ANY_DIM
        out = out.times(d)
    return out


def _render_shape(shape: tuple[DimLike, ...]) -> str:
    return "(" + ", ".join(repr(d) for d in shape) + ")"


def _promote(a: str | None, b: str | None, *, division: bool = False) -> str | None:
    if a is None or b is None:
        return None
    try:
        if division:
            return str(np.result_type(a, b, np.float64))
        return str(np.result_type(a, b))
    except TypeError:
        return None


# ---------------------------------------------------------------------------
# The per-contract body checker


class _BodyChecker:
    def __init__(
        self,
        contract: Contract,
        *,
        relpath: str,
        by_func: dict[str, Contract],
        by_method: dict[str, Contract],
    ) -> None:
        self.contract = contract
        self.relpath = relpath
        self.by_func = by_func
        self.by_method = by_method
        self.findings: list[Finding] = []
        self.globals_syms = contract.symbols()
        # Invert bind: runtime path -> symbol.
        self.inv_bind = {path: sym for sym, path in contract.bind.items()}
        self.attr_vals: dict[str, Any] = {}
        for path, parsed in contract.attr_specs().items():
            if isinstance(parsed, ShapeSpec):
                if parsed.dims is not None:
                    self.attr_vals[path] = Arr(parsed.dims, parsed.dtype)
                else:
                    self.attr_vals[path] = OPAQUE
            else:
                self.attr_vals[path] = Sym(parsed)

    # -- findings ----------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule,
            severity=SHAPE_RULES[rule].severity,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            message=f"{self.contract.key}: {message}",
            engine="shape",
            col=getattr(node, "col_offset", 0),
        ))

    # -- entry -------------------------------------------------------------

    def check(self, fn_node: ast.FunctionDef) -> list[Finding]:
        env: dict[str, Any] = {}
        input_specs = {a.name: a.spec for a in self.contract.inputs}
        for param in fn_node.args.posonlyargs + fn_node.args.args \
                + fn_node.args.kwonlyargs:
            name = param.arg
            spec = input_specs.get(name)
            if spec is not None and spec.dims is not None:
                env[name] = Arr(spec.dims, spec.dtype)
            else:
                env[name] = Pth(name)
        # A bind path that *is* a bare parameter pins that parameter to
        # its symbol (e.g. bind={"B": "B"} on the binners).
        for sym, path in self.contract.bind.items():
            if path in env and isinstance(env[path], Pth):
                env[path] = Sym(Dim(1, (sym,)))
        self._exec_block(fn_node.body, env)
        return self.findings

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: list[ast.stmt], env: dict[str, Any]) -> bool:
        """Execute statements; False if the block provably leaves early."""
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self._check_return(stmt, self._eval(stmt.value, env))
                return False
            if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
                return False
            self._exec_stmt(stmt, env)
        return True

    def _exec_stmt(self, stmt: ast.stmt, env: dict[str, Any]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, OPAQUE)
                env[stmt.target.id] = self._binop(
                    stmt, current, stmt.op, value, inplace=True)
            # Subscript/attribute stores mutate in place; shape unchanged.
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            then_ok = self._exec_block(stmt.body, then_env)
            else_ok = self._exec_block(stmt.orelse, else_env)
            if then_ok and else_ok:
                merged = self._merge(then_env, else_env)
            elif then_ok:
                merged = then_env
            elif else_ok:
                merged = else_env
            else:
                merged = env
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            merged = self._merge(env, body_env)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            body_ok = self._exec_block(stmt.body, body_env)
            merged = body_env if body_ok else dict(env)
            for handler in stmt.handlers:
                h_env = dict(env)
                if self._exec_block(handler.body, h_env):
                    merged = self._merge(merged, h_env)
            self._exec_block(stmt.orelse, merged)
            self._exec_block(stmt.finalbody, merged)
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[stmt.name] = OPAQUE  # nested closures are not descended
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Pass/Assert/Import/Global/Nonlocal: no dataflow effect we model.

    def _exec_for(self, stmt: ast.For | ast.AsyncFor, env: dict[str, Any]) -> None:
        iterable = self._eval(stmt.iter, env)
        body_env = dict(env)
        self._bind_loop_target(stmt.target, iterable, stmt.iter, body_env)
        self._exec_block(stmt.body, body_env)
        merged = self._merge(env, body_env)
        self._exec_block(stmt.orelse, merged)
        env.clear()
        env.update(merged)

    def _bind_loop_target(
        self, target: ast.expr, iterable: Any, iter_node: ast.expr,
        env: dict[str, Any],
    ) -> None:
        element: Any = OPAQUE
        if isinstance(iter_node, ast.Call) and \
                isinstance(iter_node.func, ast.Name):
            if iter_node.func.id == "range":
                element = Sym(ANY_DIM)
            elif iter_node.func.id == "enumerate" and \
                    isinstance(target, ast.Tuple) and len(target.elts) == 2:
                inner = self._eval(iter_node.args[0], env) \
                    if iter_node.args else OPAQUE
                self._assign(target.elts[0], Sym(ANY_DIM), env)
                self._assign(target.elts[1], self._element_of(inner), env)
                return
        elif isinstance(iterable, Arr):
            element = self._element_of(iterable)
        elif isinstance(iterable, (Tup, Lst)):
            element = OPAQUE
        self._assign(target, element, env)

    @staticmethod
    def _element_of(value: Any) -> Any:
        if isinstance(value, Arr) and value.shape:
            if len(value.shape) == 1:
                return Num(value.dtype) if value.dtype else OPAQUE
            return Arr(value.shape[1:], value.dtype)
        return OPAQUE

    def _assign(self, target: ast.expr, value: Any, env: dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items: tuple[Any, ...] | None = None
            if isinstance(value, Tup):
                items = value.items
            elif isinstance(value, Shp):
                items = tuple(Sym(d) for d in value.dims)
            if items is not None and len(items) == len(target.elts):
                for sub, item in zip(target.elts, items):
                    self._assign(sub, item, env)
            else:
                for sub in target.elts:
                    if not isinstance(sub, ast.Starred):
                        self._assign(sub, OPAQUE, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, OPAQUE, env)
        # Subscript/Attribute stores: in-place mutation, shapes unchanged.

    # -- merge -------------------------------------------------------------

    def _merge(self, a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name in set(a) | set(b):
            if name not in a:
                out[name] = b[name]
            elif name not in b:
                out[name] = a[name]
            else:
                out[name] = self._join(a[name], b[name])
        return out

    def _join(self, x: Any, y: Any) -> Any:
        if x == y:
            return x
        # Optimistic: prefer the informative side over opaque.
        if x is OPAQUE or isinstance(x, Pth):
            return y
        if y is OPAQUE or isinstance(y, Pth):
            return x
        if isinstance(x, Arr) and isinstance(y, Arr) \
                and len(x.shape) == len(y.shape):
            dims = tuple(
                dx if (isinstance(dx, Dim) and isinstance(dy, Dim)
                       and dx == dy) else ANY_DIM
                for dx, dy in zip(x.shape, y.shape)
            )
            return Arr(dims, x.dtype if x.dtype == y.dtype else None)
        if isinstance(x, Sym) and isinstance(y, Sym):
            return Sym(x.dim if x.dim == y.dim else ANY_DIM)
        return OPAQUE

    # -- return check ------------------------------------------------------

    def _check_return(self, node: ast.AST, value: Any) -> None:
        out = self.contract.output
        if out.shape_path is not None or not isinstance(value, Arr):
            return
        if out.dims is not None:
            if len(value.shape) != len(out.dims):
                self._emit(
                    "shape-contract-violation", node,
                    f"returns a {len(value.shape)}-D array "
                    f"{_render_shape(value.shape)}, contract declares "
                    f"{out.render_dims()}",
                )
            else:
                for axis, (got, want) in enumerate(
                        zip(value.shape, out.dims)):
                    if not _dims_compatible(got, want):
                        self._emit(
                            "shape-contract-violation", node,
                            f"return axis {axis} is {got!r}, contract "
                            f"declares {want!r} (inferred "
                            f"{_render_shape(value.shape)} vs declared "
                            f"{out.render_dims()})",
                        )
        if out.dtype is not None and not out.dtype.startswith("@") \
                and value.dtype is not None \
                and _canon_dtype(out.dtype) != value.dtype:
            self._emit(
                "dtype-drift", node,
                f"returns dtype {value.dtype}, contract declares "
                f"{_canon_dtype(out.dtype)}",
            )

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr, env: dict[str, Any]) -> Any:
        if isinstance(node, ast.Name):
            if node.id == "np":
                return NP_MOD
            return env.get(node.id, OPAQUE)
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool) or v is None or isinstance(v, str):
                return OPAQUE
            if isinstance(v, int):
                return Sym(Dim(v)) if v >= 0 else Sym(ANY_DIM)
            if isinstance(v, float):
                return Num("float64")
            if isinstance(v, complex):
                return Num("complex128")
            return OPAQUE
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._binop(node, left, node.op, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                if isinstance(operand, Sym):
                    return Sym(ANY_DIM)
                return operand
            if isinstance(node.op, ast.Not):
                return OPAQUE
            return operand
        if isinstance(node, ast.Compare):
            operands = [self._eval(node.left, env)]
            operands += [self._eval(c, env) for c in node.comparators]
            arrs = [o for o in operands if isinstance(o, Arr)]
            if arrs:
                shape = arrs[0].shape
                for other in arrs[1:]:
                    shape = self._broadcast(node, shape, other.shape)
                return Arr(shape, "bool")
            return OPAQUE
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self._eval(v, env)
            return OPAQUE
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._join(self._eval(node.body, env),
                              self._eval(node.orelse, env))
        if isinstance(node, ast.Tuple):
            return Tup(tuple(self._eval(e, env) for e in node.elts))
        if isinstance(node, ast.List):
            return Lst(tuple(self._eval(e, env) for e in node.elts))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.Lambda, ast.Dict,
                             ast.JoinedStr, ast.Set)):
            return OPAQUE
        if isinstance(node, ast.Starred):
            self._eval(node.value, env)
            return OPAQUE
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._assign(node.target, value, env)
            return value
        return OPAQUE

    # -- attributes --------------------------------------------------------

    def _eval_attribute(self, node: ast.Attribute, env: dict[str, Any]) -> Any:
        base = self._eval(node.value, env)
        attr = node.attr
        if base is NP_MOD:
            if attr in _DTYPE_NAMES:
                return Dt(_canon_dtype(attr))
            if attr == "pi":
                return Num("float64")
            if attr == "newaxis":
                return OPAQUE
            return NpFunc(attr)
        if isinstance(base, NpFunc):
            return NpFunc(f"{base.name}.{attr}")
        if isinstance(base, Arr):
            if attr == "shape":
                return Shp(base.shape)
            if attr == "size":
                return Sym(_fold_product(base.shape))
            if attr == "ndim":
                return Sym(Dim(len(base.shape)))
            if attr == "T":
                return Arr(tuple(reversed(base.shape)), base.dtype)
            if attr in ("real", "imag"):
                dtype = {"complex128": "float64", "complex64": "float32"}.get(
                    base.dtype or "", base.dtype)
                return Arr(base.shape, dtype)
            if attr == "dtype":
                return Dt(base.dtype) if base.dtype else OPAQUE
            if attr == "flat":
                return Arr((_fold_product(base.shape),), base.dtype)
            return OPAQUE
        if isinstance(base, Pth):
            path = f"{base.path}.{attr}"
            return self._lookup_path(path)
        return OPAQUE

    def _lookup_path(self, path: str) -> Any:
        if path in self.inv_bind:
            return Sym(Dim(1, (self.inv_bind[path],)))
        if path in self.attr_vals:
            return self.attr_vals[path]
        return Pth(path)

    # -- subscripts --------------------------------------------------------

    def _slice_dim(self, node: ast.expr, env: dict[str, Any]) -> DimLike:
        """The length of ``x[lo:hi:step]`` along one axis, if provable."""
        if not isinstance(node, ast.Slice):
            return ANY_DIM
        if node.step is not None:
            return ANY_DIM
        lower_zero = node.lower is None or (
            isinstance(node.lower, ast.Constant) and node.lower.value == 0)
        if not lower_zero:
            return ANY_DIM
        if node.upper is None:
            return ANY_DIM  # full slice handled by caller (keeps axis dim)
        upper = self._eval(node.upper, env)
        # x[:v] keeps length v only when v is a symbolic dim we can trust
        # not to exceed the axis (numpy clips); constants stay opaque.
        if isinstance(upper, Sym) and isinstance(upper.dim, Dim) \
                and upper.dim.syms:
            return upper.dim
        return ANY_DIM

    def _eval_subscript(self, node: ast.Subscript, env: dict[str, Any]) -> Any:
        base = self._eval(node.value, env)
        idx = node.slice
        if isinstance(base, Shp):
            if isinstance(idx, ast.Constant) and isinstance(idx.value, int):
                i = idx.value
                if -len(base.dims) <= i < len(base.dims):
                    return Sym(base.dims[i])
                return Sym(ANY_DIM)
            if isinstance(idx, ast.Slice):
                return OPAQUE
            return Sym(ANY_DIM)
        if isinstance(base, (Tup, Lst)):
            if isinstance(idx, ast.Constant) and isinstance(idx.value, int) \
                    and -len(base.items) <= idx.value < len(base.items):
                return base.items[idx.value]
            return OPAQUE
        if isinstance(base, Pth):
            if isinstance(idx, ast.Constant) and isinstance(idx.value, int) \
                    and idx.value >= 0:
                return self._lookup_path(f"{base.path}[{idx.value}]")
            self._eval_index_parts(idx, env)
            return OPAQUE
        if not isinstance(base, Arr):
            self._eval_index_parts(idx, env)
            return OPAQUE
        parts = idx.elts if isinstance(idx, ast.Tuple) else [idx]
        return self._index_array(node, base, list(parts), env)

    def _eval_index_parts(self, idx: ast.expr, env: dict[str, Any]) -> None:
        for part in (idx.elts if isinstance(idx, ast.Tuple) else [idx]):
            if not isinstance(part, ast.Slice):
                self._eval(part, env)

    def _index_array(
        self, node: ast.AST, base: Arr, parts: list[ast.expr],
        env: dict[str, Any],
    ) -> Any:
        expanded: list[tuple[str, Any, ast.expr | None]] = []
        for part in parts:
            if isinstance(part, ast.Constant) and part.value is Ellipsis:
                return OPAQUE  # `...` is not used in contracted bodies
            if isinstance(part, ast.Constant) and part.value is None:
                expanded.append(("newaxis", None, None))
                continue
            if isinstance(part, ast.Slice):
                full = part.lower is None and part.upper is None \
                    and part.step is None
                expanded.append(("full" if full else "slice", None, part))
                continue
            value = self._eval(part, env)
            if isinstance(value, Arr):
                kind = "mask" if value.dtype == "bool" else "fancy"
                expanded.append((kind, value, part))
            elif isinstance(value, Sym):
                expanded.append(("scalar", value, part))
            else:
                expanded.append(("unknown", value, part))
        axis_kinds = [e for e in expanded if e[0] != "newaxis"]
        if len(axis_kinds) > len(base.shape):
            return OPAQUE
        advanced = [e for e in expanded if e[0] in ("fancy", "scalar",
                                                    "mask", "unknown")]
        has_unknown = any(e[0] == "unknown" for e in expanded)
        if has_unknown:
            return OPAQUE
        # Broadcast the advanced index shapes together.
        adv_shape: tuple[DimLike, ...] | None = None
        for kind, value, _part in advanced:
            if kind == "scalar":
                item: tuple[DimLike, ...] = ()
            elif kind == "mask":
                item = (ANY_DIM,)
            else:
                assert isinstance(value, Arr)
                item = value.shape
            adv_shape = item if adv_shape is None \
                else self._broadcast(node, adv_shape, item)
        # Walk axes: basic parts consume one axis each; a mask consumes
        # as many axes as its ndim (modelled as one here — repo masks are
        # 1-D); trailing unindexed axes are kept.
        basic_dims: list[DimLike] = []
        adv_positions: list[int] = []
        axis = 0
        for kind, value, part in expanded:
            if kind == "newaxis":
                basic_dims.append(Dim(1))
                continue
            if axis >= len(base.shape):
                return OPAQUE
            if kind == "full":
                basic_dims.append(base.shape[axis])
            elif kind == "slice":
                assert isinstance(part, ast.Slice)
                basic_dims.append(self._slice_dim(part, env))
            else:  # advanced: consumes the axis, contributes no basic dim
                adv_positions.append(len(basic_dims))
            axis += 1
        basic_dims.extend(base.shape[axis:])
        if adv_shape is None:
            return Arr(tuple(basic_dims), base.dtype)
        # Advanced parts record len(basic_dims) when seen, so consecutive
        # advanced indices all record the same position; a split pattern
        # (numpy moves the result to the front) records distinct ones.
        contiguous = all(p == adv_positions[0] for p in adv_positions)
        insert_at = adv_positions[0] if contiguous and adv_positions else 0
        dims = (tuple(basic_dims[:insert_at]) + tuple(adv_shape)
                + tuple(basic_dims[insert_at:]))
        return Arr(dims, base.dtype)

    # -- broadcasting and arithmetic --------------------------------------

    def _bcast_dim(self, node: ast.AST, a: DimLike, b: DimLike) -> DimLike:
        if isinstance(a, _AnyDim):
            return b
        if isinstance(b, _AnyDim):
            return a
        if a == Dim(1):
            return b
        if b == Dim(1):
            return a
        if _dims_compatible(a, b):
            return a
        self._emit(
            "shape-contract-violation", node,
            f"broadcast mismatch: dimension {a!r} vs {b!r} cannot be "
            f"equal for any positive assignment",
        )
        return ANY_DIM

    def _broadcast(
        self, node: ast.AST, s1: tuple[DimLike, ...],
        s2: tuple[DimLike, ...],
    ) -> tuple[DimLike, ...]:
        if len(s1) < len(s2):
            s1 = (Dim(1),) * (len(s2) - len(s1)) + s1
        elif len(s2) < len(s1):
            s2 = (Dim(1),) * (len(s1) - len(s2)) + s2
        return tuple(self._bcast_dim(node, a, b) for a, b in zip(s1, s2))

    def _binop(
        self, node: ast.AST, left: Any, op: ast.operator, right: Any,
        *, inplace: bool = False,
    ) -> Any:
        division = isinstance(op, ast.Div)
        if isinstance(op, ast.MatMult):
            if isinstance(left, Arr) and isinstance(right, Arr) \
                    and len(left.shape) == 2 and len(right.shape) == 2:
                if not _dims_compatible(left.shape[1], right.shape[0]):
                    self._emit(
                        "shape-contract-violation", node,
                        f"matmul inner dimensions {left.shape[1]!r} and "
                        f"{right.shape[0]!r} cannot be equal",
                    )
                return Arr((left.shape[0], right.shape[1]),
                           _promote(left.dtype, right.dtype))
            return OPAQUE
        if isinstance(left, Arr) or isinstance(right, Arr):
            dtype: str | None
            if isinstance(left, Arr) and isinstance(right, Arr):
                shape = self._broadcast(node, left.shape, right.shape)
                dtype = _promote(left.dtype, right.dtype, division=division)
                if inplace:
                    shape, dtype = left.shape, left.dtype
                return Arr(shape, dtype)
            arr = left if isinstance(left, Arr) else right
            other = right if isinstance(left, Arr) else left
            dtype = arr.dtype
            if isinstance(other, Num):
                dtype = _promote(arr.dtype, other.dtype, division=division)
            elif isinstance(other, Sym):
                dtype = _promote(arr.dtype, "int64", division=division)
            # other OPAQUE/Pth: keep the array's shape (documented optimism)
            if inplace and isinstance(left, Arr):
                dtype = left.dtype
            return Arr(arr.shape, dtype)
        if isinstance(left, Sym) and isinstance(right, Sym):
            if isinstance(op, ast.Mult):
                if isinstance(left.dim, Dim) and isinstance(right.dim, Dim):
                    return Sym(left.dim.times(right.dim))
                return Sym(ANY_DIM)
            if isinstance(left.dim, Dim) and isinstance(right.dim, Dim) \
                    and left.dim.is_constant and right.dim.is_constant:
                a, b = left.dim.coeff, right.dim.coeff
                try:
                    if isinstance(op, ast.Add):
                        return Sym(Dim(a + b))
                    if isinstance(op, ast.Sub):
                        return Sym(Dim(a - b)) if a >= b else Sym(ANY_DIM)
                    if isinstance(op, ast.FloorDiv):
                        return Sym(Dim(a // b))
                    if isinstance(op, ast.Mod):
                        return Sym(Dim(a % b))
                except ZeroDivisionError:
                    return Sym(ANY_DIM)
            if division:
                return Num("float64")
            return Sym(ANY_DIM)
        if isinstance(left, (Sym, Num)) and isinstance(right, (Sym, Num)):
            lt = left.dtype if isinstance(left, Num) else "int64"
            rt = right.dtype if isinstance(right, Num) else "int64"
            promoted = _promote(lt, rt, division=division)
            return Num(promoted) if promoted else OPAQUE
        return OPAQUE

    # -- calls -------------------------------------------------------------

    def _dtype_from(self, value: Any) -> str | None:
        if isinstance(value, Dt):
            return value.name
        return None

    def _dtype_from_node(self, node: ast.expr, env: dict[str, Any]) -> str | None:
        if isinstance(node, ast.Name) and node.id in _DTYPE_NAMES:
            return _canon_dtype(node.id)
        value = self._eval(node, env)
        return self._dtype_from(value)

    def _eval_call(self, node: ast.Call, env: dict[str, Any]) -> Any:
        func = node.func
        # Method-style calls on arrays: x.reshape / x.astype / ...
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value, env)
            if isinstance(base, Arr):
                return self._array_method(node, base, func.attr, env)
            if base is NP_MOD or isinstance(base, NpFunc):
                name = func.attr if base is NP_MOD else \
                    f"{base.name}.{func.attr}"  # pragma: no cover - defensive
                return self._numpy_call(node, name, env)
            method_contract = self.by_method.get(func.attr)
            if method_contract is not None:
                return self._contract_call(node, method_contract, env)
            for kw in node.keywords:
                self._eval(kw.value, env)
            for arg in node.args:
                self._eval(arg, env)
            return OPAQUE
        if isinstance(func, ast.Name):
            name = func.id
            if name == "len":
                return self._builtin_len(node, env)
            if name in ("range", "enumerate", "zip", "sorted", "list",
                        "tuple", "dict", "set", "print", "isinstance",
                        "getattr", "hasattr", "any", "all", "sum", "repr",
                        "str", "type"):
                for arg in node.args:
                    self._eval(arg, env)
                return OPAQUE
            if name in ("int", "max", "min", "abs", "round", "divmod"):
                for arg in node.args:
                    self._eval(arg, env)
                return Sym(ANY_DIM)
            if name == "float":
                return Num("float64")
            if name == "complex":
                return Num("complex128")
            func_contract = self.by_func.get(name)
            if func_contract is not None:
                return self._contract_call(node, func_contract, env)
        value = self._eval(func, env)
        if isinstance(value, NpFunc):
            return self._numpy_call(node, value.name, env)
        for arg in node.args:
            self._eval(arg, env)
        for kw in node.keywords:
            self._eval(kw.value, env)
        return OPAQUE

    def _builtin_len(self, node: ast.Call, env: dict[str, Any]) -> Any:
        if not node.args:
            return Sym(ANY_DIM)
        value = self._eval(node.args[0], env)
        if isinstance(value, Arr) and value.shape:
            return Sym(value.shape[0])
        if isinstance(value, (Tup, Lst)):
            return Sym(Dim(len(value.items)))
        if isinstance(value, Shp):
            return Sym(Dim(len(value.dims)))
        if isinstance(value, Pth):
            return self._lookup_path_len(value.path)
        return Sym(ANY_DIM)

    def _lookup_path_len(self, path: str) -> Any:
        key = f"len({path})"
        if key in self.inv_bind:
            return Sym(Dim(1, (self.inv_bind[key],)))
        return Sym(ANY_DIM)

    # -- array methods -----------------------------------------------------

    def _shape_args_to_dims(
        self, args: list[ast.expr], env: dict[str, Any],
    ) -> tuple[DimLike, ...] | None:
        nodes = args
        if len(args) == 1:
            if isinstance(args[0], (ast.Tuple, ast.List)):
                nodes = list(args[0].elts)
            else:
                single = self._eval(args[0], env)
                if isinstance(single, Shp):
                    return single.dims
                if isinstance(single, Tup):
                    return tuple(
                        i.dim if isinstance(i, Sym) else ANY_DIM
                        for i in single.items)
                if isinstance(single, Sym):
                    return (single.dim,)
                return None
        dims: list[DimLike] = []
        for item in nodes:
            if isinstance(item, ast.UnaryOp) and \
                    isinstance(item.op, ast.USub) and \
                    isinstance(item.operand, ast.Constant) and \
                    item.operand.value == 1:
                dims.append(ANY_DIM)  # -1: numpy infers; we leave it free
                continue
            value = self._eval(item, env)
            if isinstance(value, Sym):
                dims.append(value.dim)
            else:
                dims.append(ANY_DIM)
        return tuple(dims)

    def _check_reshape(
        self, node: ast.AST, old: tuple[DimLike, ...],
        new: tuple[DimLike, ...],
    ) -> None:
        old_p = _fold_product(old)
        new_p = _fold_product(new)
        if isinstance(old_p, _AnyDim) or isinstance(new_p, _AnyDim):
            return
        if _dims_compatible(old_p, new_p):
            return
        self._emit(
            "shape-contract-violation", node,
            f"reshape does not conserve elements: {_render_shape(old)} has "
            f"{old_p!r} elements, target {_render_shape(new)} has "
            f"{new_p!r}",
        )

    def _array_method(
        self, node: ast.Call, base: Arr, name: str, env: dict[str, Any],
    ) -> Any:
        if name == "reshape":
            dims = self._shape_args_to_dims(list(node.args), env)
            if dims is None:
                return OPAQUE
            self._check_reshape(node, base.shape, dims)
            return Arr(dims, base.dtype)
        if name == "astype":
            dtype = self._dtype_from_node(node.args[0], env) \
                if node.args else None
            return Arr(base.shape, dtype)
        if name in ("copy", "conj", "conjugate", "round"):
            return base
        if name in ("ravel", "flatten"):
            return Arr((_fold_product(base.shape),), base.dtype)
        if name in ("sum", "mean", "max", "min", "prod"):
            return self._reduce(node, base, env)
        if name in ("argsort", "argpartition"):
            return Arr(base.shape, "int64")
        if name == "sort":
            return OPAQUE  # in-place, returns None
        if name == "item":
            return Sym(ANY_DIM)
        if name == "tolist":
            return OPAQUE
        if name == "view":
            return OPAQUE  # dtype reinterpretation changes shapes
        if name == "fill":
            return OPAQUE
        for arg in node.args:
            self._eval(arg, env)
        return OPAQUE

    def _reduce(self, node: ast.Call, base: Arr, env: dict[str, Any]) -> Any:
        axis: int | None = None
        keepdims = False
        out_val: Any = None
        for kw in node.keywords:
            if kw.arg == "axis":
                if isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, int):
                    axis = kw.value.value
                else:
                    return OPAQUE
            elif kw.arg == "out":
                out_val = self._eval(kw.value, env)
            elif kw.arg == "keepdims":
                keepdims = True
        for arg in node.args[1:] if node.args else []:
            self._eval(arg, env)
        if keepdims:
            return OPAQUE
        if axis is None:
            reduced: Any = Num(base.dtype) if base.dtype else OPAQUE
        else:
            nd = len(base.shape)
            if not -nd <= axis < nd:
                return OPAQUE
            dims = tuple(d for i, d in enumerate(base.shape)
                         if i != axis % nd)
            reduced = Arr(dims, base.dtype)
        if out_val is not None and isinstance(out_val, Arr) \
                and isinstance(reduced, Arr):
            if len(out_val.shape) != len(reduced.shape) or not all(
                    _dims_compatible(a, b)
                    for a, b in zip(out_val.shape, reduced.shape)):
                self._emit(
                    "shape-contract-violation", node,
                    f"reduction result {_render_shape(reduced.shape)} "
                    f"cannot match out= buffer "
                    f"{_render_shape(out_val.shape)}",
                )
            return out_val
        return reduced

    # -- numpy module calls ------------------------------------------------

    def _numpy_call(self, node: ast.Call, name: str, env: dict[str, Any]) -> Any:
        args = [self._eval(a, env) for a in node.args]
        kw_nodes = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        dtype: str | None = None
        if "dtype" in kw_nodes:
            dtype = self._dtype_from_node(kw_nodes["dtype"], env)
        if name in ("asarray", "ascontiguousarray", "asfortranarray",
                    "array"):
            if not args:
                return OPAQUE
            src = args[0]
            if isinstance(src, Arr):
                return Arr(src.shape, dtype or src.dtype)
            if isinstance(src, (Tup, Lst)):
                return self._stack_items(node, src.items, dtype)
            if isinstance(node.args[0], (ast.ListComp, ast.GeneratorExp)) \
                    and dtype is not None:
                # np.array([scalar for ...], dtype=...): 1-D of unknown len
                return Arr((ANY_DIM,), dtype)
            if isinstance(src, Pth):
                return Arr((ANY_DIM,), dtype) if dtype else OPAQUE
            return OPAQUE
        if name in ("empty", "zeros", "ones", "full"):
            if not node.args:
                return OPAQUE
            dims = self._shape_args_to_dims([node.args[0]], env)
            if dims is None:
                return OPAQUE
            if name == "full" and dtype is None and len(args) > 1:
                fill = args[1]
                if isinstance(fill, Num):
                    dtype = fill.dtype
                elif isinstance(fill, Sym):
                    dtype = "int64"
            return Arr(dims, dtype or ("float64" if name != "full" else None))
        if name in ("empty_like", "zeros_like", "ones_like", "full_like"):
            if args and isinstance(args[0], Arr):
                return Arr(args[0].shape, dtype or args[0].dtype)
            return OPAQUE
        if name == "arange":
            if len(node.args) == 1:
                value = args[0]
                if isinstance(value, Sym):
                    return Arr((value.dim,), dtype or "int64")
            return Arr((ANY_DIM,), dtype or "int64")
        if name in ("abs", "absolute"):
            if args and isinstance(args[0], Arr):
                mapped = {"complex128": "float64",
                          "complex64": "float32"}.get(
                    args[0].dtype or "", args[0].dtype)
                return Arr(args[0].shape, mapped)
            return OPAQUE
        if name in ("exp", "cos", "sin", "sqrt", "log", "conj",
                    "conjugate", "angle"):
            if args and isinstance(args[0], Arr):
                src_dtype = args[0].dtype
                if name == "angle":
                    mapped = "float64"
                elif src_dtype in ("int64", "int32", "int16", "bool"):
                    mapped = "float64"
                else:
                    mapped = src_dtype
                return Arr(args[0].shape, mapped)
            if args and isinstance(args[0], Num):
                return args[0]
            return OPAQUE
        if name in ("minimum", "maximum", "add", "multiply", "where"):
            arrs = [a for a in args if isinstance(a, Arr)]
            if arrs and name != "where":
                shape = arrs[0].shape
                for other in arrs[1:]:
                    shape = self._broadcast(node, shape, other.shape)
                return Arr(shape, _promote(arrs[0].dtype,
                                           arrs[-1].dtype))
            return OPAQUE
        if name == "sum":
            if args and isinstance(args[0], Arr):
                return self._reduce(node, args[0], env)
            return OPAQUE
        if name == "reshape":
            if args and isinstance(args[0], Arr) and len(node.args) >= 2:
                dims = self._shape_args_to_dims(node.args[1:], env)
                if dims is None:
                    return OPAQUE
                self._check_reshape(node, args[0].shape, dims)
                return Arr(dims, args[0].dtype)
            return OPAQUE
        if name == "concatenate":
            if args and isinstance(args[0], (Tup, Lst)):
                items = [i for i in args[0].items if isinstance(i, Arr)]
                if items and len(items) == len(args[0].items):
                    nd = len(items[0].shape)
                    if all(len(i.shape) == nd for i in items) and nd >= 1:
                        cat_dims: tuple[DimLike, ...] = \
                            (ANY_DIM,) + items[0].shape[1:]
                        cat_dtype = items[0].dtype
                        for other in items[1:]:
                            cat_dtype = _promote(cat_dtype, other.dtype)
                        return Arr(cat_dims, cat_dtype)
            return OPAQUE
        if name == "stack":
            if args and isinstance(args[0], (Tup, Lst)):
                return self._stack_items(node, args[0].items, dtype)
            return OPAQUE
        if name == "outer":
            if len(args) >= 2 and isinstance(args[0], Arr) \
                    and isinstance(args[1], Arr):
                return Arr((_fold_product(args[0].shape),
                            _fold_product(args[1].shape)),
                           _promote(args[0].dtype, args[1].dtype))
            return OPAQUE
        if name == "flatnonzero":
            return Arr((ANY_DIM,), "int64")
        if name == "unique":
            if args and isinstance(args[0], Arr):
                return Arr((ANY_DIM,), args[0].dtype)
            return OPAQUE
        if name in ("argsort", "argpartition"):
            if args and isinstance(args[0], Arr):
                return Arr(args[0].shape, "int64")
            return OPAQUE
        if name == "sort":
            if args and isinstance(args[0], Arr):
                return args[0]
            return OPAQUE
        if name == "cumsum":
            if args and isinstance(args[0], Arr):
                if "axis" in kw_nodes or len(node.args) > 1:
                    return Arr(args[0].shape, args[0].dtype)
                return Arr((_fold_product(args[0].shape),), args[0].dtype)
            return OPAQUE
        if name == "repeat":
            return Arr((ANY_DIM,), args[0].dtype
                       if args and isinstance(args[0], Arr) else None)
        if name in ("median", "mean"):
            return OPAQUE
        if name == "atleast_2d":
            return OPAQUE
        if name == "split":
            return OPAQUE
        if name == "dtype":
            if node.args:
                inner = self._dtype_from_node(node.args[0], env)
                if inner:
                    return Dt(inner)
            return OPAQUE
        return OPAQUE

    def _stack_items(
        self, node: ast.AST, items: tuple[Any, ...], dtype: str | None,
    ) -> Any:
        if not items:
            return OPAQUE
        if all(isinstance(i, (Sym, Num)) for i in items):
            return Arr((Dim(len(items)),), dtype)
        arrs = [i for i in items if isinstance(i, Arr)]
        if len(arrs) != len(items):
            return OPAQUE
        nd = len(arrs[0].shape)
        if any(len(a.shape) != nd for a in arrs):
            return OPAQUE
        dims: list[DimLike] = [Dim(len(items))]
        for axis in range(nd):
            cand = arrs[0].shape[axis]
            for other in arrs[1:]:
                if not (isinstance(cand, Dim)
                        and isinstance(other.shape[axis], Dim)
                        and cand == other.shape[axis]):
                    cand = ANY_DIM
                    break
            dims.append(cand)
        out_dtype = dtype or arrs[0].dtype
        for other in arrs[1:]:
            out_dtype = out_dtype if dtype else _promote(out_dtype,
                                                         other.dtype)
        return Arr(tuple(dims), out_dtype)

    # -- contract-to-contract call sites ----------------------------------

    def _contract_call(
        self, node: ast.Call, callee: Contract, env: dict[str, Any],
    ) -> Any:
        if callee.fn is None:
            return OPAQUE
        try:
            params = list(inspect.signature(callee.fn).parameters)
        except (TypeError, ValueError):
            return OPAQUE
        if params and params[0] == "self":
            params = params[1:]
        argmap: dict[str, Any] = {}
        for i, arg_node in enumerate(node.args):
            if isinstance(arg_node, ast.Starred):
                self._eval(arg_node.value, env)
                continue
            value = self._eval(arg_node, env)
            if i < len(params):
                argmap[params[i]] = value
        for kw in node.keywords:
            value = self._eval(kw.value, env)
            if kw.arg is not None:
                argmap[kw.arg] = value
        # Substitution: caller-global symbols pass through by identity;
        # callee-only symbols unify from argument dims.
        subst: dict[str, DimLike] = {}
        for sym in callee.symbols():
            if sym in self.globals_syms:
                subst[sym] = Dim(1, (sym,))
        for pname, value in argmap.items():
            if isinstance(value, Sym) and pname in callee.symbols():
                subst.setdefault(pname, value.dim)
        for arg_spec in callee.inputs:
            value = argmap.get(arg_spec.name)
            if not isinstance(value, Arr) or arg_spec.spec.dims is None:
                continue
            declared = arg_spec.spec.dims
            if len(declared) != len(value.shape):
                self._emit(
                    "shape-contract-violation", node,
                    f"call to {callee.key}: argument "
                    f"{arg_spec.name!r} is {len(value.shape)}-D "
                    f"{_render_shape(value.shape)}, callee declares "
                    f"{arg_spec.spec.render_dims()}",
                )
                continue
            for axis, (want, got) in enumerate(zip(declared, value.shape)):
                if isinstance(want, _AnyDim) or isinstance(got, _AnyDim):
                    continue
                resolved = self._subst_dim(want, subst)
                if resolved is None:
                    # A single free bare symbol unifies from the argument
                    # (e.g. bucket_fft's M taking the caller's S*L).
                    if want.coeff == 1 and len(want.syms) == 1:
                        subst[want.syms[0]] = got
                    continue
                if not _dims_compatible(resolved, got):
                    self._emit(
                        "shape-contract-violation", node,
                        f"call to {callee.key}: argument "
                        f"{arg_spec.name!r} axis {axis} is {got!r}, "
                        f"callee declares {want!r} (= {resolved!r} here)",
                    )
            if arg_spec.spec.dtype is not None \
                    and not arg_spec.spec.dtype.startswith("@") \
                    and value.dtype is not None \
                    and _canon_dtype(arg_spec.spec.dtype) != value.dtype:
                self._emit(
                    "dtype-drift", node,
                    f"call to {callee.key}: argument {arg_spec.name!r} "
                    f"has dtype {value.dtype}, callee declares "
                    f"{_canon_dtype(arg_spec.spec.dtype)}",
                )
        out = callee.output
        if out.dims is None or out.shape_path is not None:
            return OPAQUE
        dims = tuple(self._subst_dim(d, subst) or ANY_DIM for d in out.dims)
        out_dtype = None
        if out.dtype is not None and not out.dtype.startswith("@"):
            out_dtype = _canon_dtype(out.dtype)
        return Arr(dims, out_dtype)

    @staticmethod
    def _subst_dim(
        dim: DimLike, subst: dict[str, DimLike],
    ) -> DimLike | None:
        """Map a callee dim through the substitution; None if underdefined."""
        if isinstance(dim, _AnyDim):
            return ANY_DIM
        out = Dim(dim.coeff)
        for sym in dim.syms:
            mapped = subst.get(sym)
            if mapped is None:
                return None
            if isinstance(mapped, _AnyDim):
                return ANY_DIM
            out = out.times(mapped)
        return out


# ---------------------------------------------------------------------------
# Battery driver


def _default_root() -> Path:
    # shapes.py lives at src/repro/analysis/staticcheck/; the repo root is
    # four levels up.
    return Path(__file__).resolve().parents[4]


def _source_for(contract: Contract) -> tuple[str, str, int] | None:
    """(source, absolute file, first line) for a contract's function."""
    fn = contract.fn
    if fn is None:
        return None
    try:
        file = inspect.getsourcefile(fn)
        lines, lineno = inspect.getsourcelines(fn)
    except (OSError, TypeError):
        return None
    if file is None:
        return None
    return textwrap.dedent("".join(lines)), file, lineno


def check_contract(
    contract: Contract,
    *,
    root: Path | None = None,
    by_func: dict[str, Contract] | None = None,
    by_method: dict[str, Contract] | None = None,
) -> list[Finding]:
    """Statically check one contract's body; returns raw findings
    (suppressions not yet applied)."""
    base = root or _default_root()
    if by_func is None or by_method is None:
        by_func, by_method = _contract_maps()
    located = _source_for(contract)
    if located is None:
        return []
    source, file, lineno = located
    tree = ast.parse(source)
    ast.increment_lineno(tree, lineno - 1)
    fn_node = tree.body[0]
    if not isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    relpath = os.path.relpath(file, base)
    checker = _BodyChecker(contract, relpath=relpath, by_func=by_func,
                           by_method=by_method)
    if isinstance(fn_node, ast.AsyncFunctionDef):
        return []
    return checker.check(fn_node)


def _contract_maps() -> tuple[dict[str, Contract], dict[str, Contract]]:
    by_func: dict[str, Contract] = {}
    by_method: dict[str, Contract] = {}
    for contract in registered_contracts():
        if contract.is_method:
            by_method[contract.name] = contract
        else:
            by_func[contract.name] = contract
    return by_func, by_method


def _apply_suppressions(
    findings: list[Finding], root: Path, cache: dict[str, Suppressions],
) -> list[Finding]:
    kept: list[Finding] = []
    for finding in findings:
        suppressions = cache.get(finding.path)
        if suppressions is None:
            try:
                text = (root / finding.path).read_text()
            except OSError:
                text = ""
            suppressions = Suppressions(text)
            cache[finding.path] = suppressions
        if not suppressions.covers(finding.rule, finding.line, finding.line):
            kept.append(finding)
    return kept


def check_contracts(root: str | Path | None = None) -> list[Finding]:
    """The shape battery: check every registered contract plus coverage.

    Imports the core modules (populating the registry), abstract-
    interprets each decorated body, enforces ``REQUIRED_CONTRACTS``, and
    guards the ``expect_violation`` negative controls.  Internal checker
    errors surface as ``shape-checker-selfcheck`` findings — broken
    tooling must not produce a green lint.
    """
    base = Path(root) if root is not None else _default_root()
    findings: list[Finding] = []
    for module in _CONTRACT_MODULES:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            findings.append(Finding(
                rule="shape-checker-selfcheck", severity="error",
                path=f"src/{module.replace('.', '/')}.py", line=1,
                message=f"cannot import contract module {module}: {exc}",
                engine="shape",
            ))
    by_func, by_method = _contract_maps()
    suppression_cache: dict[str, Suppressions] = {}
    registry_keys = set()
    for contract in registered_contracts():
        registry_keys.add(contract.key)
        located = _source_for(contract)
        relpath = os.path.relpath(located[1], base) if located else "unknown"
        line = located[2] if located else 1
        try:
            raw = check_contract(contract, root=base, by_func=by_func,
                                 by_method=by_method)
        except Exception as exc:  # noqa: BLE001 - must not break lint
            findings.append(Finding(
                rule="shape-checker-selfcheck", severity="error",
                path=relpath, line=line,
                message=(f"internal error checking {contract.key}: "
                         f"{type(exc).__name__}: {exc}"),
                engine="shape",
            ))
            continue
        raw = _apply_suppressions(raw, base, suppression_cache)
        if contract.expect_violation:
            if not any(f.rule == "shape-contract-violation" for f in raw):
                findings.append(Finding(
                    rule="shape-checker-selfcheck", severity="error",
                    path=relpath, line=line,
                    message=(
                        f"negative control {contract.key} no longer "
                        f"produces a shape-contract-violation — the "
                        f"checker has gone blind"
                    ),
                    engine="shape",
                ))
            continue
        findings.extend(raw)
    for key in REQUIRED_CONTRACTS:
        if key in registry_keys:
            continue
        module_path = "src/" + "/".join(key.split(".")[:3]) + ".py"
        findings.append(Finding(
            rule="contract-missing", severity="error",
            path=module_path, line=1,
            message=(f"public pipeline function {key} must declare a "
                     f"@shape_contract (REQUIRED_CONTRACTS)"),
            engine="shape",
        ))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
