"""Shape/dtype contracts for the core numpy dataflow.

The cusFFT pipeline is a chain of array transformations with exact
dimensional laws: permute/filter gathers ``(L, rounds*B)`` windows,
fused binning folds them to ``(L, B)`` (``(S, L, B)`` in the batch
path), the bucket FFT runs over ``(S*L, B)`` rows, recovery votes over
``S*n`` flat offset keys and reshapes them to ``(S, n)``.  This module
lets those laws be *declared* at the function boundary::

    @shape_contract("x:(n,) -> (L, B)", dtype="complex128",
                    bind={"n": "self.n", "L": "self.loops", "B": "self.B"})
    def bin_fused(self, x, out=None): ...

and consumed twice:

* **statically** — :mod:`.shapes` abstract-interprets each decorated
  body, propagating symbolic shapes through the repo's numpy idioms and
  discharging dimension equalities with :func:`..symbolic.prove_product_equal`;
* **dynamically** — with ``REPRO_CHECK_CONTRACTS=1`` (or
  :func:`set_enforcement`), a thin wrapper binds the symbolic dims
  against live arrays on every call and raises
  :class:`~repro.errors.ContractError` on drift, so the static and
  runtime views of the same declaration can never disagree silently.

Grammar
-------
``spec`` is ``"arg:(dims)[:dtype], ... -> (dims) | * | @path"``:

* a *dim* is a product of integer literals and symbols: ``n``, ``4``,
  ``S*L``, ``rounds*B``;
* ``*`` leaves a shape unconstrained (the arg/return still participates
  in dtype checks and static dataflow);
* an output of ``@self.shape`` defers to a runtime attribute (used by
  ``SharedArraySpec.as_array``, whose shape *is* its spec field);
* ``bind`` maps symbols to runtime paths (``"plan.n"``,
  ``"permutations[0].n"``, ``"len(selected)"``) so dims can be pinned
  from non-array arguments;
* ``attrs`` declares shapes/dtypes of attributes the body reads
  (``{"self.raw": "(L, B):complex128", "self._padded": "rounds*B"}``) —
  the static checker's window into instance state.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace
from typing import Any, TypeVar, cast

import numpy as np

from ...errors import ContractError, ParameterError

__all__ = [
    "ANY_DIM",
    "ArgSpec",
    "Contract",
    "Dim",
    "ShapeSpec",
    "contract_for",
    "enforcement_enabled",
    "parse_attr_spec",
    "parse_dim",
    "parse_shape_spec",
    "registered_contracts",
    "set_enforcement",
    "shape_contract",
]

# The one sanctioned env read outside the config seams: this flag is the
# runtime-enforcement master switch and must be readable before any core
# module (params included) is imported, or the decorators would already
# have chosen pass-through wrappers.
_enforce: bool = (
    os.environ.get("REPRO_CHECK_CONTRACTS", "")  # reprolint: ignore[env-read-outside-seam]
    not in ("", "0")
)


def enforcement_enabled() -> bool:
    """Whether runtime contract checks are currently active."""
    return _enforce


def set_enforcement(enabled: bool) -> bool:
    """Toggle runtime contract enforcement; returns the previous state.

    The tier-1 conftest calls this when ``REPRO_CHECK_CONTRACTS=1`` so a
    process that imported :mod:`repro` before setting the variable still
    enforces.
    """
    global _enforce
    previous = _enforce
    _enforce = bool(enabled)
    return previous


class _AnyDim:
    """The unconstrained dimension (spelled ``?`` in specs, shown as ``?``)."""

    _instance: "_AnyDim | None" = None

    def __new__(cls) -> "_AnyDim":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"


ANY_DIM = _AnyDim()


@dataclass(frozen=True)
class Dim:
    """A symbolic dimension in product normal form: ``coeff * prod(syms)``.

    ``syms`` is kept sorted, so structural equality *is* product equality
    up to commutativity — ``rounds*B == B*rounds`` by construction.
    """

    coeff: int = 1
    syms: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "syms", tuple(sorted(self.syms)))

    def times(self, other: "Dim") -> "Dim":
        return Dim(self.coeff * other.coeff, self.syms + other.syms)

    @property
    def is_constant(self) -> bool:
        return not self.syms

    def render(self) -> str:
        parts = list(self.syms)
        if self.coeff != 1 or not parts:
            parts.insert(0, str(self.coeff))
        return "*".join(parts)

    def __repr__(self) -> str:
        return self.render()


DimLike = Dim | _AnyDim

_IDENT_RE = re.compile(r"^[A-Za-z_]\w*$")
_INT_RE = re.compile(r"^\d+$")


def parse_dim(text: str) -> DimLike:
    """Parse one dim: ``"n"``, ``"4"``, ``"S*L"``, ``"rounds*B"``, ``"?"``."""
    text = text.strip()
    if text in ("?", "_"):
        return ANY_DIM
    coeff = 1
    syms: list[str] = []
    for factor in text.split("*"):
        factor = factor.strip()
        if _INT_RE.match(factor):
            coeff *= int(factor)
        elif _IDENT_RE.match(factor):
            syms.append(factor)
        else:
            raise ParameterError(f"malformed dim factor {factor!r} in {text!r}")
    return Dim(coeff, tuple(syms))


@dataclass(frozen=True)
class ShapeSpec:
    """One side of a contract: a dim tuple, or unconstrained, or deferred.

    ``dims is None`` means the shape is unconstrained (``*``);
    ``shape_path`` defers the expected shape to a runtime attribute path
    (``@self.shape``).  ``dtype`` may itself be a deferred ``@path``.
    """

    dims: tuple[DimLike, ...] | None = None
    dtype: str | None = None
    shape_path: str | None = None

    def render_dims(self) -> str:
        if self.shape_path is not None:
            return f"@{self.shape_path}"
        if self.dims is None:
            return "*"
        return "(" + ", ".join(repr(d) for d in self.dims) + ")"


@dataclass(frozen=True)
class ArgSpec:
    name: str
    spec: ShapeSpec


def _split_top_commas(text: str) -> list[str]:
    """Split on commas not nested inside parentheses/brackets."""
    parts: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    tail = text[start:]
    if tail.strip():
        parts.append(tail)
    return parts


def parse_shape_spec(text: str) -> ShapeSpec:
    """Parse ``"(S, n)"``, ``"(n,)"``, ``"*"``, ``"(L, B):complex128"``,
    ``"*:int64"``, or ``"@self.shape"``."""
    text = text.strip()
    if text.startswith("@"):
        return ShapeSpec(dims=None, dtype=None, shape_path=text[1:].strip())
    dtype: str | None = None
    if text.startswith("("):
        close = text.rfind(")")
        if close < 0:
            raise ParameterError(f"unbalanced parens in shape spec {text!r}")
        body, rest = text[1:close], text[close + 1:].strip()
        if rest:
            if not rest.startswith(":"):
                raise ParameterError(f"malformed shape spec {text!r}")
            dtype = rest[1:].strip()
        dims = tuple(parse_dim(part) for part in _split_top_commas(body))
        return ShapeSpec(dims=dims, dtype=dtype)
    if text.startswith("*"):
        rest = text[1:].strip()
        if rest:
            if not rest.startswith(":"):
                raise ParameterError(f"malformed shape spec {text!r}")
            dtype = rest[1:].strip()
        return ShapeSpec(dims=None, dtype=dtype)
    raise ParameterError(f"malformed shape spec {text!r}")


def parse_attr_spec(text: str) -> "ShapeSpec | DimLike":
    """Parse an ``attrs`` value: an array spec or a bare scalar dim.

    ``"(L, B):complex128"`` describes an array attribute; a bare product
    like ``"rounds*B"`` describes an integer attribute whose value the
    body may use as a dimension.
    """
    text = text.strip()
    if text.startswith(("(", "*", "@")):
        return parse_shape_spec(text)
    return parse_dim(text)


def _parse_contract_spec(spec: str) -> tuple[tuple[ArgSpec, ...], ShapeSpec]:
    if "->" not in spec:
        raise ParameterError(f"contract spec missing '->': {spec!r}")
    left, _, right = spec.partition("->")
    inputs: list[ArgSpec] = []
    for item in _split_top_commas(left):
        item = item.strip()
        if not item:
            continue
        colon = item.find(":")
        if colon < 0:
            raise ParameterError(
                f"input {item!r} in {spec!r} needs 'name:shape'"
            )
        name, shape_text = item[:colon].strip(), item[colon + 1:].strip()
        if not _IDENT_RE.match(name):
            raise ParameterError(f"malformed input name {name!r} in {spec!r}")
        inputs.append(ArgSpec(name=name, spec=parse_shape_spec(shape_text)))
    return tuple(inputs), parse_shape_spec(right.strip())


@dataclass
class Contract:
    """A parsed ``@shape_contract`` declaration bound to its function."""

    spec: str
    inputs: tuple[ArgSpec, ...]
    output: ShapeSpec
    bind: dict[str, str] = field(default_factory=dict)
    attrs: dict[str, str] = field(default_factory=dict)
    expect_violation: bool = False
    fn: Callable[..., Any] | None = None
    name: str = ""
    qualname: str = ""
    module: str = ""
    is_method: bool = False

    @property
    def key(self) -> str:
        return f"{self.module}.{self.qualname}"

    def attr_specs(self) -> dict[str, "ShapeSpec | DimLike"]:
        return {path: parse_attr_spec(text) for path, text in self.attrs.items()}

    def symbols(self) -> frozenset[str]:
        """Every symbol this contract mentions — its global vocabulary."""
        names: set[str] = set(self.bind)
        specs: list[ShapeSpec] = [arg.spec for arg in self.inputs]
        specs.append(self.output)
        for parsed in self.attr_specs().values():
            if isinstance(parsed, ShapeSpec):
                specs.append(parsed)
            elif isinstance(parsed, Dim):
                names.update(parsed.syms)
        for shape in specs:
            for dim in shape.dims or ():
                if isinstance(dim, Dim):
                    names.update(dim.syms)
        return frozenset(names)


_REGISTRY: dict[str, Contract] = {}


def registered_contracts() -> tuple[Contract, ...]:
    """All contracts registered by imported modules, in import order."""
    return tuple(_REGISTRY.values())


def contract_for(fn: Callable[..., Any]) -> Contract | None:
    """The contract attached to a decorated callable, if any."""
    found = getattr(fn, "__shape_contract__", None)
    return found if isinstance(found, Contract) else None


_PATH_SEG_RE = re.compile(r"^([A-Za-z_]\w*)((?:\[\d+\])*)$")


def _resolve_path(path: str, arguments: Mapping[str, Any]) -> Any:
    """Resolve a bind path like ``plan.params.B``, ``permutations[0].n``,
    or ``len(selected)`` against the call's bound arguments."""
    text = path.strip()
    wrap_len = False
    if text.startswith("len(") and text.endswith(")"):
        wrap_len = True
        text = text[4:-1].strip()
    value: Any = None
    for i, segment in enumerate(text.split(".")):
        match = _PATH_SEG_RE.match(segment.strip())
        if match is None:
            raise ParameterError(f"malformed bind path {path!r}")
        name, subscripts = match.group(1), match.group(2)
        if i == 0:
            value = arguments[name]
        else:
            value = getattr(value, name)
        for idx in re.findall(r"\[(\d+)\]", subscripts):
            value = value[int(idx)]
    return len(value) if wrap_len else value


_SKIP = (AttributeError, KeyError, IndexError, TypeError)


def _eval_dim(dim: Dim, env: dict[str, int]) -> tuple[int, list[str]]:
    """Split a dim into its known product and unresolved symbols."""
    known = dim.coeff
    unknown: list[str] = []
    for sym in dim.syms:
        if sym in env:
            known *= env[sym]
        else:
            unknown.append(sym)
    return known, unknown


def _check_shape(
    contract: Contract,
    where: str,
    dims: tuple[DimLike, ...],
    shape: tuple[int, ...],
    env: dict[str, int],
) -> None:
    if len(shape) != len(dims):
        raise ContractError(
            f"{contract.key}: {where}: expected {len(dims)}-D shape "
            f"{ShapeSpec(dims=dims).render_dims()}, got shape {shape} "
            f"[contract {contract.spec!r}]"
        )
    for axis, dim in enumerate(dims):
        if isinstance(dim, _AnyDim):
            continue
        actual = shape[axis]
        known, unknown = _eval_dim(dim, env)
        if not unknown:
            if known != actual:
                raise ContractError(
                    f"{contract.key}: {where}: axis {axis} is {actual}, "
                    f"contract requires {dim!r} = {known} "
                    f"[contract {contract.spec!r}]"
                )
        elif len(unknown) == 1:
            # One free symbol: solve it, requiring exact divisibility.
            if known <= 0 or actual % known != 0:
                raise ContractError(
                    f"{contract.key}: {where}: axis {axis} is {actual}, "
                    f"not a multiple of the bound factors of {dim!r} "
                    f"({known}) [contract {contract.spec!r}]"
                )
            env[unknown[0]] = actual // known
        # >= 2 free symbols: underdetermined — no check possible here.


def _check_dtype(
    contract: Contract,
    where: str,
    declared: str,
    value: Any,
    arguments: Mapping[str, Any],
) -> None:
    if declared.startswith("@"):
        try:
            declared = str(_resolve_path(declared[1:], arguments))
        except _SKIP:
            return
    actual = getattr(value, "dtype", None)
    if actual is None:
        return
    try:
        expected = np.dtype(declared)
    except TypeError:
        raise ParameterError(
            f"{contract.key}: contract declares unknown dtype {declared!r}"
        ) from None
    if np.dtype(actual) != expected:
        raise ContractError(
            f"{contract.key}: {where}: dtype is {actual}, contract "
            f"requires {expected} [contract {contract.spec!r}]"
        )


def _bind_env(
    contract: Contract, arguments: Mapping[str, Any]
) -> dict[str, int]:
    env: dict[str, int] = {}
    for sym, path in contract.bind.items():
        try:
            value = _resolve_path(path, arguments)
        except _SKIP:
            continue
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            env[sym] = int(value)
    return env


def _check_inputs(
    contract: Contract,
    arguments: Mapping[str, Any],
    env: dict[str, int],
) -> None:
    for arg in contract.inputs:
        if arg.name not in arguments:
            continue
        value = arguments[arg.name]
        if value is None:
            continue
        spec = arg.spec
        if spec.dims is not None:
            try:
                shape = tuple(int(d) for d in np.shape(value))
            except _SKIP + (ValueError,):
                continue
            _check_shape(contract, f"argument {arg.name!r}", spec.dims,
                         shape, env)
        if spec.dtype is not None and isinstance(value, np.ndarray):
            _check_dtype(contract, f"argument {arg.name!r}", spec.dtype,
                         value, arguments)


def _check_output(
    contract: Contract,
    result: Any,
    arguments: Mapping[str, Any],
    env: dict[str, int],
) -> None:
    out = contract.output
    if out.shape_path is not None:
        try:
            expected = tuple(int(d) for d in _resolve_path(out.shape_path,
                                                           arguments))
        except _SKIP:
            expected = None
        if expected is not None:
            actual = tuple(int(d) for d in np.shape(result))
            if actual != expected:
                raise ContractError(
                    f"{contract.key}: return value: shape {actual} != "
                    f"@{out.shape_path} = {expected} "
                    f"[contract {contract.spec!r}]"
                )
    elif out.dims is not None:
        actual = tuple(int(d) for d in np.shape(result))
        _check_shape(contract, "return value", out.dims, actual, env)
    if out.dtype is not None and isinstance(result, np.ndarray):
        _check_dtype(contract, "return value", out.dtype, result, arguments)


def check_call(
    contract: Contract,
    fn: Callable[..., Any],
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
) -> Any:
    """Run one enforced call: bind dims, check inputs, call, check output.

    Input violations are *deferred*: the wrapped function is given the
    chance to raise its own (typically more specific) validation error
    first, so ``pytest.raises(ParameterError, match=...)`` assertions on
    existing validation keep passing under enforcement.  Only if the
    function silently accepts an input the contract rejects does the
    :class:`ContractError` surface — which is exactly the drift the
    runtime mode exists to catch.
    """
    try:
        signature = inspect.signature(fn)
        bound = signature.bind_partial(*args, **kwargs)
        bound.apply_defaults()
        arguments: Mapping[str, Any] = bound.arguments
    except TypeError:
        return fn(*args, **kwargs)
    env = _bind_env(contract, arguments)
    deferred: ContractError | None = None
    try:
        _check_inputs(contract, arguments, env)
    except ContractError as exc:
        deferred = exc
    result = fn(*args, **kwargs)
    if deferred is not None:
        raise deferred
    _check_output(contract, result, arguments, env)
    return result


_F = TypeVar("_F", bound=Callable[..., Any])


def shape_contract(
    spec: str,
    *,
    dtype: str | None = None,
    bind: Mapping[str, str] | None = None,
    attrs: Mapping[str, str] | None = None,
    expect_violation: bool = False,
) -> Callable[[_F], _F]:
    """Declare a shape/dtype contract on a function (see module docstring).

    ``dtype`` constrains the return value (shorthand for an output
    ``:dtype`` suffix).  ``expect_violation=True`` marks a seeded
    negative control: the static checker must find a violation in the
    body or it emits a ``shape-checker-selfcheck`` error.
    """
    inputs, output = _parse_contract_spec(spec)
    if dtype is not None:
        if output.dtype is not None:
            raise ParameterError(
                f"contract {spec!r} declares dtype twice (suffix and kwarg)"
            )
        output = replace(output, dtype=dtype)
    contract = Contract(
        spec=spec,
        inputs=inputs,
        output=output,
        bind=dict(bind or {}),
        attrs=dict(attrs or {}),
        expect_violation=expect_violation,
    )

    def decorate(fn: _F) -> _F:
        contract.fn = fn
        contract.name = fn.__name__
        contract.qualname = fn.__qualname__
        contract.module = fn.__module__
        parameters = list(inspect.signature(fn).parameters)
        contract.is_method = bool(parameters) and parameters[0] == "self"
        for arg in contract.inputs:
            if arg.name not in parameters:
                raise ParameterError(
                    f"{contract.key}: contract names unknown parameter "
                    f"{arg.name!r}"
                )
        _REGISTRY[contract.key] = contract

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enforce:
                return fn(*args, **kwargs)
            return check_call(contract, fn, args, kwargs)

        setattr(wrapper, "__shape_contract__", contract)
        return cast(_F, wrapper)

    return decorate
