"""Simulated multicore CPU comparators: FFTW and PsFFT (Table II machine)."""

from .cpuspec import CPU_DEVICES, SANDY_BRIDGE_E5_2640, XEON_PHI_5110P, CpuSpec
from .fftw import FftwPlan
from .psfft import PsFFT, PsfftStepTimes

__all__ = [
    "CPU_DEVICES",
    "SANDY_BRIDGE_E5_2640",
    "XEON_PHI_5110P",
    "CpuSpec",
    "FftwPlan",
    "PsFFT",
    "PsfftStepTimes",
]
