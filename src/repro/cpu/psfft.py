"""PsFFT — the authors' OpenMP parallel sFFT on the multicore CPU.

The paper compares cusFFT against its own prior work (reference [6]), an
OpenMP parallelization of the same six-step pipeline.  Functionally that is
exactly :func:`repro.core.sfft` (same algorithm, same answers), so this
module wraps the core driver and adds the Table II cost model:

* **perm+filter** — ``w*L`` strided gathers from the length-``n`` signal.
  Each gather is a DRAM-latency-bound cache miss once ``n`` outgrows L3;
  the cores' aggregate memory-level parallelism sets the rate.
* **bucket FFT** — ``L`` FFTs of size ``B``; FLOP-bound (``B`` fits in L3
  for every size the paper sweeps).
* **cutoff** — one partial-selection pass over ``B*L`` magnitudes.
* **recovery** — ``L * select * n/B`` scatter votes into a dense score
  array: read-modify-write cache misses at the machine's random-access
  rate (the same Little's-law bound as the gathers).
* **estimation** — ``~k*L`` reconstruction bodies.

Every parallel step pays one OpenMP fork/join.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parameters import SfftParameters, derive_parameters
from ..core.plan import SfftPlan, make_plan
from ..core.sfft import SparseFFTResult, sfft
from ..perf.counts import StepCounts, sfft_step_counts
from ..utils.rng import RngLike
from .cpuspec import SANDY_BRIDGE_E5_2640, CpuSpec

__all__ = ["PsfftStepTimes", "PsFFT"]

_COMPLEX = 16


@dataclass(frozen=True)
class PsfftStepTimes:
    """Modeled per-step wall-clock of one PsFFT execution."""

    perm_filter: float
    bucket_fft: float
    cutoff: float
    recovery: float
    estimation: float
    sync: float

    @property
    def total(self) -> float:
        """End-to-end modeled time."""
        return (
            self.perm_filter
            + self.bucket_fft
            + self.cutoff
            + self.recovery
            + self.estimation
            + self.sync
        )

    def as_dict(self) -> dict[str, float]:
        """Step-name -> seconds mapping (same keys as the profiler uses)."""
        return {
            "perm_filter": self.perm_filter,
            "bucket_fft": self.bucket_fft,
            "cutoff": self.cutoff,
            "recovery": self.recovery,
            "estimation": self.estimation,
            "sync": self.sync,
        }


@dataclass
class PsFFT:
    """The OpenMP-parallel CPU sparse FFT (functional + modeled time)."""

    params: SfftParameters
    threads: int = 6
    cpu: CpuSpec = SANDY_BRIDGE_E5_2640
    _plan: SfftPlan | None = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        n: int,
        k: int,
        *,
        threads: int = 6,
        cpu: CpuSpec = SANDY_BRIDGE_E5_2640,
        **overrides,
    ) -> "PsFFT":
        """Build a PsFFT instance for an ``(n, k)`` problem."""
        return cls(params=derive_parameters(n, k, **overrides), threads=threads, cpu=cpu)

    # -- functional ---------------------------------------------------------

    def plan(self, seed: RngLike = None) -> SfftPlan:
        """Materialize (and cache) the execution plan."""
        if self._plan is None:
            self._plan = make_plan(
                self.params.n, self.params.k, seed=seed, params=self.params
            )
        return self._plan

    def execute(self, x, *, seed: RngLike = None) -> SparseFFTResult:
        """Run the transform (same answers as :func:`repro.core.sfft`)."""
        return sfft(x, plan=self.plan(seed))

    # -- modeled time ---------------------------------------------------------

    def step_counts(self) -> StepCounts:
        """Operation counts shared with the GPU model."""
        return sfft_step_counts(self.params)

    def estimated_times(self) -> PsfftStepTimes:
        """Modeled per-step times on the configured CPU."""
        c = self.step_counts()
        cpu = self.cpu
        cores = min(self.threads, cpu.cores)
        scale = (cores / cpu.cores) * cpu.parallel_efficiency
        flops_rate = cpu.effective_flops * max(scale, 1e-6)
        random_rate = (cores * cpu.mlp_per_core / cpu.mem_latency_s)

        # perm+filter: latency-bound gathers once the signal spills L3,
        # streaming-bound (cheap) while it still fits.
        if c.signal_bytes <= cpu.l3_bytes:
            gather_s = c.gathers * _COMPLEX / cpu.effective_bandwidth
        else:
            gather_s = c.gathers / random_rate
        filter_flop_s = 8.0 * c.filter_flops / flops_rate
        perm_filter = max(gather_s, filter_flop_s)

        fft_flops = 5.0 * c.B * np.log2(max(2, c.B)) * c.fft_batch
        bucket_fft = fft_flops / flops_rate

        cutoff = 4.0 * c.cutoff_elements / flops_rate

        # Dense score-array votes: every vote is a read-modify-write cache
        # miss on the length-n score array — latency-bound random access at
        # exactly the gather rate.
        recovery = c.votes / random_rate

        estimation = 60.0 * c.estimation_ops / flops_rate

        sync = 5 * cpu.sync_overhead_s * cores  # one fork/join per step
        return PsfftStepTimes(
            perm_filter=perm_filter,
            bucket_fft=bucket_fft,
            cutoff=cutoff,
            recovery=recovery,
            estimation=estimation,
            sync=sync,
        )

    def estimated_time(self) -> float:
        """Total modeled wall-clock of one execution."""
        return self.estimated_times().total
