"""Simulated parallel FFTW (the paper's multicore CPU dense baseline).

Functional execution resolves through the shared FFT backend registry
(:mod:`repro.core.fft_backend`) — numerically the identical transform
under every backend; with the ``scipy``/``pyfftw`` backends the plan's
``threads`` become a real intra-call fan-out.
The cost model prices a planned, multithreaded FFTW execution on the
Table II machine:

* arithmetic: ``~5 n log2 n`` real FLOPs at the machine's tuned-code
  efficiency (all cores);
* memory: a cache-oblivious FFT streams the working set through DRAM
  ``ceil(log2 n / log2 Z)`` times (``Z`` = elements fitting in L3), in and
  out per pass;
* the execution time is the roofline max of the two plus per-thread
  fork/join overhead.

Small transforms fit in cache and are FLOP-bound; the crossover to
bandwidth-bound behaviour around ``n ~ 2^20`` (L3 = 15 MB) is what bends
FFTW's runtime curve upward in Figure 5(a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..utils.modmath import is_power_of_two
from ..utils.validation import as_complex_signal
from .cpuspec import SANDY_BRIDGE_E5_2640, CpuSpec

__all__ = ["FftwPlan"]

_COMPLEX = 16


@dataclass(frozen=True)
class FftwPlan:
    """A planned multithreaded dense FFT on the simulated CPU."""

    n: int
    threads: int = 6
    cpu: CpuSpec = SANDY_BRIDGE_E5_2640

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ParameterError(f"n must be a power of two, got {self.n}")
        if self.threads < 1:
            raise ParameterError(f"threads must be >= 1, got {self.threads}")

    def execute(self, x) -> np.ndarray:
        """Run the transform (functional; numerically identical to FFTW).

        Dispatches through :func:`repro.core.fft_backend.get_backend`, so
        the process-wide backend selection (CLI flag / env var) applies to
        the dense comparator exactly as it does to the bucket FFT.
        """
        from ..core.fft_backend import get_backend

        return get_backend().fft(
            as_complex_signal(x, self.n), axis=-1, workers=self.threads
        )

    # -- cost ---------------------------------------------------------------

    @property
    def flops(self) -> float:
        """Standard FFT operation count, ``5 n log2 n``."""
        return 5.0 * self.n * math.log2(self.n)

    @property
    def dram_passes(self) -> int:
        """Times the working set streams through DRAM (1 if cache-resident)."""
        if self.n * _COMPLEX <= self.cpu.l3_bytes:
            return 0
        cache_elems = max(2, self.cpu.l3_bytes // _COMPLEX)
        return max(1, math.ceil(math.log2(self.n) / math.log2(cache_elems)))

    def estimated_time(self) -> float:
        """Modeled wall-clock of one planned execution."""
        cores = min(self.threads, self.cpu.cores)
        scale = (cores / self.cpu.cores) * self.cpu.parallel_efficiency
        flop_s = self.flops / (self.cpu.effective_flops * max(scale, 1e-6))
        mem_s = (
            self.dram_passes * 2 * self.n * _COMPLEX / self.cpu.effective_bandwidth
        )
        fork_join = self.cpu.sync_overhead_s * cores
        return max(flop_s, mem_s) + fork_join
