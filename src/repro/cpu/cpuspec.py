"""Simulated multicore CPU model (the paper's Table II test-bench).

The CPU comparators (parallel FFTW and the authors' OpenMP PsFFT) ran on a
six-core Intel Sandy Bridge Xeon E5-2640.  As with the GPU, the machine is
an explicit model: published peak rates plus achievable-fraction derates.
Random-access throughput follows the same Little's-law shape as the GPU
model — ``cores x mlp`` outstanding misses over the DRAM latency — which is
what prices PsFFT's strided signal gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuSpec", "SANDY_BRIDGE_E5_2640", "XEON_PHI_5110P", "CPU_DEVICES"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a simulated multicore CPU."""

    name: str
    architecture: str
    cores: int
    clock_hz: float
    l1d_bytes: int
    l2_bytes: int
    l3_bytes: int
    dram_bytes: int
    peak_bandwidth: float            # bytes/s
    achievable_bandwidth_fraction: float
    dp_flops: float                  # peak double precision, all cores
    flop_efficiency: float           # fraction tuned code (FFTW) achieves
    mem_latency_s: float             # DRAM random-access latency
    mlp_per_core: float              # outstanding misses per core
    parallel_efficiency: float       # OpenMP scaling efficiency
    sync_overhead_s: float           # one barrier / parallel-region entry

    @property
    def effective_bandwidth(self) -> float:
        """Sustainable streaming bandwidth, bytes/s."""
        return self.peak_bandwidth * self.achievable_bandwidth_fraction

    @property
    def effective_flops(self) -> float:
        """FLOP/s tuned numeric kernels sustain across all cores."""
        return self.dp_flops * self.flop_efficiency

    @property
    def random_access_rate(self) -> float:
        """Independent random accesses/s (Little's law over DRAM latency)."""
        return self.cores * self.mlp_per_core / self.mem_latency_s


#: Paper Table II: Intel Xeon E5-2640 (Sandy Bridge), 6 cores @ 2.50 GHz,
#: 6 x 32 KB L1D, 6 x 256 KB L2, 15 MB shared L3, 64 GB DRAM.
SANDY_BRIDGE_E5_2640 = CpuSpec(
    name="Intel Xeon E5-2640",
    architecture="Sandy Bridge",
    cores=6,
    clock_hz=2.5e9,
    l1d_bytes=32 * 1024,
    l2_bytes=256 * 1024,
    l3_bytes=15 * 1024**2,
    dram_bytes=64 * 1024**3,
    peak_bandwidth=42.6e9,              # 3-channel DDR3-1333
    achievable_bandwidth_fraction=0.45,   # strided FFT traffic, not STREAM
    dp_flops=6 * 2.5e9 * 8,             # AVX: 4 adds + 4 muls per cycle
    flop_efficiency=0.45,
    mem_latency_s=90e-9,
    mlp_per_core=2.0,                   # dependent index chains keep only ~2
                                        # of the 10 LFBs busy per core
    parallel_efficiency=0.85,
    sync_overhead_s=8e-6,
)


#: Intel Xeon Phi 5110P (Knights Corner) — the paper's named future-work
#: target: 60 in-order cores @ 1.053 GHz, 8 GB GDDR5 at 320 GB/s.  Wide
#: parallelism but weak single-thread and high sync costs; PsFFT's
#: latency-bound gathers benefit from the 60-way MLP, its serial phases do
#: not.
XEON_PHI_5110P = CpuSpec(
    name="Intel Xeon Phi 5110P",
    architecture="Knights Corner",
    cores=60,
    clock_hz=1.053e9,
    l1d_bytes=32 * 1024,
    l2_bytes=512 * 1024,
    l3_bytes=30 * 1024**2,          # aggregate coherent L2 acts as LLC
    dram_bytes=8 * 1024**3,
    peak_bandwidth=320e9,
    achievable_bandwidth_fraction=0.50,
    dp_flops=1.01e12,
    flop_efficiency=0.30,           # hard to fill 512-bit VPUs from FFTs
    mem_latency_s=300e-9,           # GDDR5 + ring latency
    mlp_per_core=8.0,
    parallel_efficiency=0.70,
    sync_overhead_s=20e-6,
)

#: All simulated CPU-style devices, for cross-architecture sweeps.
CPU_DEVICES = (SANDY_BRIDGE_E5_2640, XEON_PHI_5110P)
