"""Sharded, pipelined batch execution — the paper's stream overlap on CPU.

cusFFT's optimization #3 runs the data-layout remap kernel of chunk *i+1*
on one CUDA stream while the execution kernel of chunk *i* occupies another
(DESIGN §1, table row 3).  This module reproduces that structure for the
batched engine: an ``(S, n)`` signal stack is split into **shards**, and a
:class:`ShardedExecutor` drives each shard through the fused stage pipeline
(:func:`~repro.core.batch.run_stack_pipeline` — gather/bin → bucket FFT →
cutoff → recovery → estimation) on a thread pool.  NumPy releases the GIL
inside the large fancy-indexed gathers and the pocketfft bucket FFT, so
with two or more workers shard *i*'s bucket FFT genuinely overlaps shard
*i+1*'s gather — the same remap/exec overlap, with worker threads standing
in for streams.

Correctness is structural, not approximate: every pipeline stage is
per-signal independent (the property suite asserts it), so running rows
``[lo:hi]`` as a shard is *bit-identical* to the same rows of one
whole-stack :func:`~repro.core.batch.sfft_batch_fused` pass, for every
worker count, shard size, and FFT backend.

Concurrency hygiene mirrors the GPU resource model:

* each worker leases a private :meth:`PlanWorkspace.clone
  <repro.core.workspace.PlanWorkspace.clone>` — shared immutable gather /
  tap matrices, per-worker scratch — the CPU analog of per-stream device
  buffers;
* the bucket FFT resolves through the pluggable backend registry
  (:mod:`repro.core.fft_backend`), so ``scipy``'s ``workers=`` fan-out (or
  ``pyfftw`` threads) can parallelize *within* a shard while the pool
  parallelizes *across* shards;
* Comb masks (data-dependent, possibly Generator-seeded) are built
  serially in stack order before sharding, so seeding semantics match the
  serial engine exactly.

Observability: each shard's stage spans land on its worker's trace track
(``worker0``, ``worker1``, ... — mirroring the simulator's per-stream
tracks, so Perfetto shows the overlap), all nested under one
``executor.run`` root span on the ``executor`` track; every span carries
the DAG metadata the critical-path engine (:mod:`repro.obs.critical`)
reconstructs runs from — ``shard`` / ``worker`` ids, a ``parent`` link,
and the shard's measured ``queue_wait_s``.  Every run also publishes the
``sfft.executor.*`` metrics family: shard/signal counts, queue wait (as a
histogram *and* ``queue_wait_p50_s``/``p90``/``p99`` tail gauges),
per-shard wall, the achieved overlap ratio (total busy seconds over
elapsed wall, clamped to ``[0, workers]`` — values above 1.0 mean stages
genuinely overlapped, and a 1-worker run can never report more than 1.0),
and the leased-workspace footprint (``workspace_shared_bytes`` for the
immutable arrays the pool shares, ``worker_scratch_bytes`` /
``clone_bytes`` for the private per-worker scratch and its pool total).
"""

from __future__ import annotations

import queue
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

from ..errors import ParameterError
from ..obs import MetricsRegistry, Tracer, global_registry, monotonic
from ..utils.rng import RngLike
from .batch import as_signal_stack, comb_masks_for_stack, run_stack_pipeline
from .fft_backend import get_backend
from .plan import SfftPlan
from .sfft import SparseFFTResult

__all__ = ["ShardedExecutor", "EXECUTOR_TRACK"]

#: Trace track label for executor-level (non-shard) spans.
EXECUTOR_TRACK = "executor"


class ShardedExecutor:
    """Drives signal stacks through the pipeline on a sharded thread pool.

    Parameters
    ----------
    workers:
        Thread-pool width.  ``1`` degenerates to serial execution through
        the identical code path (useful as a like-for-like baseline).
    shard_size:
        Signals per shard.  Default: ``ceil(S / (2 * workers))`` — two
        shards per worker, so the pool always has a queued shard to start
        the moment a worker's current shard finishes (the double-buffering
        that makes gather/FFT overlap continuous rather than lockstep).
    fft_backend:
        Registered FFT backend name for the shards' bucket FFTs (``None``
        = process default, see :mod:`repro.core.fft_backend`).  Unknown
        names raise :class:`~repro.errors.ParameterError` here, at
        construction.
    fft_workers:
        Intra-call thread fan-out handed to the backend (scipy/pyfftw).

    Instances are reusable across runs and stacks; each :meth:`run` leases
    per-worker workspace clones for its plan.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        shard_size: int | None = None,
        fft_backend: str | None = None,
        fft_workers: int = 1,
    ):
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if shard_size is not None and shard_size < 1:
            raise ParameterError(
                f"shard_size must be >= 1 (or None), got {shard_size}"
            )
        if fft_workers < 1:
            raise ParameterError(
                f"fft_workers must be >= 1, got {fft_workers}"
            )
        if fft_backend is not None:
            get_backend(fft_backend)  # unknown names fail fast, here
        self.workers = int(workers)
        self.shard_size = None if shard_size is None else int(shard_size)
        self.fft_backend = fft_backend
        self.fft_workers = int(fft_workers)

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(workers={self.workers}, "
            f"shard_size={self.shard_size}, "
            f"fft_backend={self.fft_backend!r}, "
            f"fft_workers={self.fft_workers})"
        )

    def shard_bounds(self, S: int) -> list[tuple[int, int]]:
        """The ``[lo, hi)`` row ranges this executor splits ``S`` rows into."""
        if S < 1:
            raise ParameterError(f"stack must have >= 1 signals, got {S}")
        size = self.shard_size
        if size is None:
            size = max(1, -(-S // (2 * self.workers)))
        return [(lo, min(lo + size, S)) for lo in range(0, S, size)]

    def run(
        self,
        X: np.ndarray,
        plan: SfftPlan,
        *,
        cutoff_method: str = "topk",
        comb_width: int | None = None,
        comb_loops: int = 3,
        trim_to_k: bool = True,
        strict: bool = False,
        seed: RngLike = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> list[SparseFFTResult]:
        """Transform an ``(S, n)`` stack; results match the serial engine.

        Execution options mirror :func:`~repro.core.batch.sfft_batch_fused`
        (which also defines the reference output this method is
        bit-identical to).  ``tracer`` receives per-shard stage spans on
        per-worker tracks; ``metrics`` (default: the global registry)
        receives the ``sfft.executor.*`` family.
        """
        X = as_signal_stack(X, plan)
        S = X.shape[0]
        registry = metrics if metrics is not None else global_registry()
        bounds = self.shard_bounds(S)
        nw = min(self.workers, len(bounds))
        run_t0 = monotonic()

        masks = None
        if comb_width is not None:
            # Serial, in stack order: Generator seeds must draw the same
            # permutation sequence the serial engine would.
            t0 = monotonic()
            masks = comb_masks_for_stack(
                X, plan, comb_width, comb_loops, seed
            )
            if tracer is not None:
                tracer.add_span(
                    "comb", start_s=t0 - run_t0,
                    duration_s=monotonic() - t0,
                    category="executor", track=EXECUTOR_TRACK, depth=1,
                    attrs={"W": comb_width, "loops": comb_loops,
                           "parent": "executor.run"},
                )

        # One leased workspace per worker: shared immutable gather/taps,
        # private scratch and FFT-backend binding (double-buffered in the
        # sense that a worker's next shard reuses its own buffers while
        # other workers' shards are mid-flight).
        base = plan.workspace()
        pool: queue.SimpleQueue = queue.SimpleQueue()
        clones = []
        for w in range(nw):
            clone = base.clone(
                fft_backend=self.fft_backend, fft_workers=self.fft_workers,
            )
            clones.append(clone)
            pool.put((w, clone))

        # Memory attribution of the lease: the immutable gather/tap arrays
        # are shared once across the pool, the scratch is paid per clone.
        base_mem = base.memory_breakdown()
        scratch_each = (
            clones[0].memory_breakdown()["scratch_bytes"] if clones else 0
        )
        registry.gauge("sfft.executor.workspace_shared_bytes").set(
            base_mem["gather_bytes"] + base_mem["tap_bytes"]
        )
        registry.gauge("sfft.executor.worker_scratch_bytes").set(scratch_each)
        registry.gauge("sfft.executor.clone_bytes").set(scratch_each * nw)

        @contextmanager
        def _stage_span(name: str, track: str, attrs: dict):
            t0 = monotonic()
            try:
                yield
            finally:
                tracer.add_span(
                    name, start_s=max(0.0, t0 - run_t0),
                    duration_s=monotonic() - t0,
                    category="executor", track=track, depth=1, attrs=attrs,
                )

        def _task(idx: int, lo: int, hi: int, submit_t: float):
            t_pick = monotonic()
            w, ws = pool.get()
            track = f"worker{w}"
            stage = None
            if tracer is not None:
                def stage(name, **attrs):
                    return _stage_span(
                        f"shard{idx}.{name}", track,
                        {"shard": idx, "worker": w,
                         "parent": f"shard{idx}", **attrs},
                    )
            try:
                out = run_stack_pipeline(
                    X[lo:hi], plan,
                    workspace=ws,
                    cutoff_method=cutoff_method,
                    residue_filters=None if masks is None else masks[lo:hi],
                    trim_to_k=trim_to_k,
                    strict=strict,
                    signal_offset=lo,
                    stage=stage,
                )
            finally:
                pool.put((w, ws))
            t_end = monotonic()
            if tracer is not None:
                tracer.add_span(
                    f"shard{idx}", start_s=max(0.0, t_pick - run_t0),
                    duration_s=t_end - t_pick,
                    category="executor", track=track,
                    attrs={"signals": hi - lo, "lo": lo, "hi": hi,
                           "shard": idx, "worker": w,
                           "queue_wait_s": max(0.0, t_pick - submit_t),
                           "parent": "executor.run"},
                )
            return out, t_pick - submit_t, t_end - t_pick

        with ThreadPoolExecutor(
            max_workers=nw, thread_name_prefix="sfft-exec"
        ) as ex:
            futures = [
                ex.submit(_task, idx, lo, hi, monotonic())
                for idx, (lo, hi) in enumerate(bounds)
            ]
            # .result() re-raises the first shard failure (e.g. a strict
            # RecoveryError naming the global signal index).
            shard_outs = [f.result() for f in futures]

        wall = monotonic() - run_t0
        waits = [max(0.0, wait) for _, wait, _ in shard_outs]
        busys = [busy for _, _, busy in shard_outs]
        if tracer is not None:
            # Root of the span DAG: every comb/shard/stage span carries a
            # `parent` attr pointing (transitively) here, and the critical
            # path engine charges otherwise-uncovered intervals to this
            # span rather than to "(idle)".
            tracer.add_span(
                "executor.run", start_s=0.0, duration_s=wall,
                category="executor", track=EXECUTOR_TRACK,
                attrs={"workers": nw, "shards": len(bounds), "signals": S},
            )
        registry.gauge("sfft.executor.workers").set(nw)
        registry.counter("sfft.executor.shards").inc(len(bounds))
        registry.counter("sfft.executor.signals").inc(S)
        wait_hist = registry.histogram("sfft.executor.queue_wait_s")
        wait_hist.observe_many(waits)
        # Tail visibility for the attribution layer: the histogram's sum
        # hides whether queue wait is spread thin or one shard starved.
        for q, suffix in ((50, "p50"), (90, "p90"), (99, "p99")):
            registry.gauge(f"sfft.executor.queue_wait_{suffix}_s").set(
                wait_hist.percentile(q)
            )
        registry.histogram("sfft.executor.shard_wall_s").observe_many(busys)
        registry.histogram("sfft.executor.run_wall_s").observe(wall)
        # Busy-over-wall: 1.0 is perfectly serial, > 1.0 means shards
        # genuinely overlapped.  Clamped to [0, workers] so timer jitter
        # cannot report impossible overlap (in particular a 1-worker run
        # can never exceed 1.0, keeping attribution ratios well-posed);
        # a degenerate zero-wall run reports 0.0.
        overlap = sum(busys) / wall if wall > 0 else 0.0
        registry.gauge("sfft.executor.overlap_ratio").set(
            min(max(0.0, overlap), float(nw))
        )

        results: list[SparseFFTResult] = []
        for out, _, _ in shard_outs:
            results.extend(out)
        return results
