"""Sharded, pipelined batch execution — the paper's stream overlap on CPU.

cusFFT's optimization #3 runs the data-layout remap kernel of chunk *i+1*
on one CUDA stream while the execution kernel of chunk *i* occupies another
(DESIGN §1, table row 3).  This module reproduces that structure for the
batched engine: an ``(S, n)`` signal stack is split into **shards**, and a
:class:`ShardedExecutor` drives each shard through the fused stage pipeline
(:func:`~repro.core.batch.run_stack_pipeline` — gather/bin → bucket FFT →
cutoff → recovery → estimation) on a worker pool.

Two execution modes share one contract:

* ``mode="thread"`` — a thread pool.  NumPy releases the GIL inside the
  large fancy-indexed gathers and the pocketfft bucket FFT, so with two or
  more workers shard *i*'s bucket FFT genuinely overlaps shard *i+1*'s
  gather — but the pure-Python stage orchestration still serializes on the
  GIL.
* ``mode="process"`` — a warm **forkserver process pool** over
  ``multiprocessing.shared_memory``.  The signal stack and the plan's
  immutable derived arrays (gather-index matrix, padded taps) are packed
  into segments once (:mod:`repro.core.shm`); workers attach zero-copy,
  hold a private per-process plan/workspace lease, run their shards, and
  write result rows straight into a shared output segment.  Nothing
  Python-level is shared, so shards scale past the GIL — the mode that
  makes the paper's "saturate every lane" structure real on multi-core
  hosts.  Pools are cached per ``(workers, start_method)`` and stay warm
  across runs; segments are per-run and are **always unlinked** before
  :meth:`ShardedExecutor.run` returns, success or failure.

Correctness is structural, not approximate: every pipeline stage is
per-signal independent (the property suite asserts it), so running rows
``[lo:hi]`` as a shard is *bit-identical* to the same rows of one
whole-stack :func:`~repro.core.batch.sfft_batch_fused` pass, for every
mode, worker count, shard size, and FFT backend.

Concurrency hygiene mirrors the GPU resource model:

* each thread worker leases a private :meth:`PlanWorkspace.clone
  <repro.core.workspace.PlanWorkspace.clone>`; each process worker builds
  the same split from shared memory (:meth:`PlanWorkspace.adopt_shared`)
  — shared immutable gather / tap matrices, per-worker scratch — the CPU
  analog of per-stream device buffers;
* the bucket FFT resolves through the pluggable backend registry
  (:mod:`repro.core.fft_backend`), so ``scipy``'s ``workers=`` fan-out (or
  ``pyfftw`` threads) can parallelize *within* a shard while the pool
  parallelizes *across* shards;
* Comb masks (data-dependent, possibly Generator-seeded) are built
  serially in stack order before sharding, so seeding semantics match the
  serial engine exactly — in every mode and under every start method.

Observability: each shard's stage spans land on its worker's trace track
(``worker0``, ``worker1``, ... — mirroring the simulator's per-stream
tracks, so Perfetto shows the overlap), all nested under one
``executor.run`` root span on the ``executor`` track; every span carries
the DAG metadata the critical-path engine (:mod:`repro.obs.critical`)
reconstructs runs from — ``shard`` / ``worker`` ids, a ``parent`` link,
and the shard's measured ``queue_wait_s``.  Process workers clock their
stages on the same ``CLOCK_MONOTONIC`` timebase the parent uses and ship
the timings home in the task result, so the merged trace is
indistinguishable from thread mode.  Every run also publishes the
``sfft.executor.*`` metrics family: shard/signal counts, queue wait (as a
histogram *and* ``queue_wait_p50_s``/``p90``/``p99`` tail gauges),
per-shard wall, the achieved overlap ratio (total busy seconds over
elapsed wall, clamped to ``[0, workers]``), the leased-workspace footprint
(``workspace_shared_bytes`` / ``worker_scratch_bytes`` / ``clone_bytes``)
and, in process mode, the shared-segment footprint (``shm_bytes``) plus a
``worker_failures`` counter that ticks when a worker process dies
mid-run (the run then raises :class:`~repro.errors.ExecutorError` after
unlinking every segment).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import signal as _signal
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ExecutorError, ParameterError
from ..obs import MetricsRegistry, Tracer, global_registry, monotonic
from ..utils.rng import RngLike
from .batch import as_signal_stack, comb_masks_for_stack, run_stack_pipeline
from .fft_backend import get_backend
from .plan import SfftPlan
from .sfft import SparseFFTResult
from .shm import (
    AttachedSegment,
    PlanDescriptor,
    SegmentBundle,
    SharedArraySpec,
    describe_plan,
    plan_shared_arrays,
    worker_lease,
)

__all__ = ["ShardedExecutor", "EXECUTOR_TRACK", "EXECUTOR_MODES"]

#: Trace track label for executor-level (non-shard) spans.
EXECUTOR_TRACK = "executor"

#: The executor's execution-mode axis.
EXECUTOR_MODES = ("thread", "process")

#: Environment default for :class:`ShardedExecutor`'s ``mode`` (CI runs the
#: whole executor battery under ``REPRO_EXECUTOR_MODE=process``).
MODE_ENV = "REPRO_EXECUTOR_MODE"

#: Test-only fault injection: a shard index whose worker process kills
#: itself (``SIGKILL``) before touching any shared state.  Read in the
#: *parent* at run time and shipped in the task payload, so it works even
#: against an already-warm pool.
_KILL_ENV = "REPRO_EXECUTOR_KILL_SHARD"

_START_METHODS = ("fork", "forkserver", "spawn")

#: Warm process pools, keyed ``(workers, start_method)``.  Forkserver
#: workers import this module once and then stay resident, so repeat runs
#: pay no spawn cost — the "warm pool" half of the process mode.
_PROCESS_POOLS: dict[tuple[int, str], ProcessPoolExecutor] = {}


def _process_pool(workers: int, start_method: str) -> ProcessPoolExecutor:
    key = (workers, start_method)
    pool = _PROCESS_POOLS.get(key)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(start_method),
        )
        _PROCESS_POOLS[key] = pool
    return pool


def _discard_pool(workers: int, start_method: str) -> None:
    """Drop a (presumed broken) pool so the next run gets a fresh one."""
    pool = _PROCESS_POOLS.pop((workers, start_method), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _shutdown_pools() -> None:
    while _PROCESS_POOLS:
        _, pool = _PROCESS_POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(_shutdown_pools)


@contextmanager
def _worker_stage(spans: list, name: str, attrs: dict):
    t0 = monotonic()
    try:
        yield
    finally:
        spans.append((name, t0, monotonic(), attrs))


@shape_contract("desc:*, data_specs:* -> *")
def _process_shard(
    desc: PlanDescriptor,
    data_specs: dict[str, SharedArraySpec],
    idx: int,
    lo: int,
    hi: int,
    options: dict,
    want_stages: bool,
    kill: bool,
):
    """One shard, executed inside a pool worker process.

    Attaches the run's data segment, runs the pipeline against the
    worker's cached plan lease, writes result rows into the shared output
    arrays (or returns them pickled when the run asked for untrimmed
    results), and ships stage timings home on the parent's monotonic
    timebase.  Raises exactly what the pipeline raises — a strict
    :class:`~repro.errors.RecoveryError` crosses the process boundary
    naming the same global signal index.
    """
    t_pick = monotonic()
    if kill:
        # Fault injection for the crash tests: die the hard way, before
        # touching any shared state, exactly like an OOM-killed worker.
        os.kill(os.getpid(), _signal.SIGKILL)
    lease = worker_lease(desc)
    spans: list = []
    stage = None
    if want_stages:
        def stage(name, **attrs):
            return _worker_stage(spans, name, attrs)
    data = AttachedSegment(data_specs["stack"].segment)
    try:
        stack = data.view(data_specs["stack"])
        masks = None
        if "masks" in data_specs:
            masks = data.view(data_specs["masks"])
        out = run_stack_pipeline(
            stack[lo:hi], lease.plan,
            workspace=lease.workspace,
            cutoff_method=options["cutoff_method"],
            residue_filters=None if masks is None else masks[lo:hi],
            trim_to_k=options["trim_to_k"],
            strict=options["strict"],
            signal_offset=lo,
            stage=stage,
        )
        if "out_locations" in data_specs:
            out_locs = data.view(data_specs["out_locations"], writeable=True)
            out_vals = data.view(data_specs["out_values"], writeable=True)
            out_votes = data.view(data_specs["out_votes"], writeable=True)
            out_counts = data.view(data_specs["out_counts"], writeable=True)
            for j, res in enumerate(out):
                s = lo + j
                c = res.locations.size
                out_counts[s] = c
                out_locs[s, :c] = res.locations
                out_vals[s, :c] = res.values
                out_votes[s, :c] = res.votes
            results = None
        else:
            # Untrimmed runs have no per-signal size bound, so the shared
            # (S, k) output layout cannot hold them; fall back to pickling.
            results = [(r.locations, r.values, r.votes) for r in out]
    finally:
        data.close()
    return {
        "pid": os.getpid(),
        "t_pick": t_pick,
        "t_end": monotonic(),
        "stages": spans,
        "results": results,
    }


class ShardedExecutor:
    """Drives signal stacks through the pipeline on a sharded worker pool.

    Parameters
    ----------
    workers:
        Pool width.  ``1`` degenerates to serial execution through the
        identical code path (useful as a like-for-like baseline).
    shard_size:
        Signals per shard.  Default: ``ceil(S / (2 * workers))`` — two
        shards per worker, so the pool always has a queued shard to start
        the moment a worker's current shard finishes (the double-buffering
        that makes gather/FFT overlap continuous rather than lockstep).
    fft_backend:
        Registered FFT backend name for the shards' bucket FFTs (``None``
        = process default, see :mod:`repro.core.fft_backend`).  Unknown
        names raise :class:`~repro.errors.ParameterError` here, at
        construction.
    fft_workers:
        Intra-call thread fan-out handed to the backend (scipy/pyfftw).
    mode:
        ``"thread"`` (GIL-bound pool, zero setup cost) or ``"process"``
        (shared-memory process pool — scales Python-level stage work
        across cores).  ``None`` reads the ``REPRO_EXECUTOR_MODE``
        environment variable, defaulting to ``"thread"``.  Results are
        bit-identical across modes.
    start_method:
        Multiprocessing start method for ``mode="process"`` pools
        (default ``"forkserver"`` — fork-speed workers without inheriting
        the parent's full heap; ``"fork"`` and ``"spawn"`` are accepted
        where the platform offers them).

    Instances are reusable across runs and stacks; each :meth:`run` leases
    per-worker workspace state for its plan, and process pools stay warm
    between runs.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        shard_size: int | None = None,
        fft_backend: str | None = None,
        fft_workers: int = 1,
        mode: str | None = None,
        start_method: str = "forkserver",
    ):
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if shard_size is not None and shard_size < 1:
            raise ParameterError(
                f"shard_size must be >= 1 (or None), got {shard_size}"
            )
        if fft_workers < 1:
            raise ParameterError(
                f"fft_workers must be >= 1, got {fft_workers}"
            )
        if fft_backend is not None:
            get_backend(fft_backend)  # unknown names fail fast, here
        if mode is None:
            mode = os.environ.get(MODE_ENV) or "thread"
        if mode not in EXECUTOR_MODES:
            raise ParameterError(
                f"mode must be one of {EXECUTOR_MODES}, got {mode!r}"
            )
        if start_method not in _START_METHODS:
            raise ParameterError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {start_method!r}"
            )
        if mode == "process" \
                and start_method not in multiprocessing.get_all_start_methods():
            raise ParameterError(
                f"start_method {start_method!r} is unavailable on this "
                f"platform"
            )
        self.workers = int(workers)
        self.shard_size = None if shard_size is None else int(shard_size)
        self.fft_backend = fft_backend
        self.fft_workers = int(fft_workers)
        self.mode = mode
        self.start_method = start_method

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(workers={self.workers}, "
            f"shard_size={self.shard_size}, "
            f"fft_backend={self.fft_backend!r}, "
            f"fft_workers={self.fft_workers}, "
            f"mode={self.mode!r})"
        )

    @shape_contract("S:* -> *")
    def shard_bounds(self, S: int) -> list[tuple[int, int]]:
        """The ``[lo, hi)`` row ranges this executor splits ``S`` rows into."""
        if S < 1:
            raise ParameterError(f"stack must have >= 1 signals, got {S}")
        size = self.shard_size
        if size is None:
            size = max(1, -(-S // (2 * self.workers)))
        return [(lo, min(lo + size, S)) for lo in range(0, S, size)]

    @shape_contract("X:*, plan:* -> *", bind={"n": "plan.n"})
    def run(
        self,
        X: np.ndarray,
        plan: SfftPlan,
        *,
        cutoff_method: str = "topk",
        comb_width: int | None = None,
        comb_loops: int = 3,
        trim_to_k: bool = True,
        strict: bool = False,
        seed: RngLike = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> list[SparseFFTResult]:
        """Transform an ``(S, n)`` stack; results match the serial engine.

        Execution options mirror :func:`~repro.core.batch.sfft_batch_fused`
        (which also defines the reference output this method is
        bit-identical to, in both modes).  ``tracer`` receives per-shard
        stage spans on per-worker tracks; ``metrics`` (default: the global
        registry) receives the ``sfft.executor.*`` family.

        In process mode a worker death surfaces as
        :class:`~repro.errors.ExecutorError` — after every shared segment
        has been unlinked and the broken pool discarded (the next run
        builds a fresh one).
        """
        X = as_signal_stack(X, plan)
        S = X.shape[0]
        registry = metrics if metrics is not None else global_registry()
        bounds = self.shard_bounds(S)
        nw = min(self.workers, len(bounds))
        run_t0 = monotonic()

        masks = None
        if comb_width is not None:
            # Serial, in stack order: Generator seeds must draw the same
            # permutation sequence the serial engine would — regardless of
            # mode or start method.
            t0 = monotonic()
            masks = comb_masks_for_stack(
                X, plan, comb_width, comb_loops, seed
            )
            if tracer is not None:
                tracer.add_span(
                    "comb", start_s=t0 - run_t0,
                    duration_s=monotonic() - t0,
                    category="executor", track=EXECUTOR_TRACK, depth=1,
                    attrs={"W": comb_width, "loops": comb_loops,
                           "parent": "executor.run"},
                )

        if self.mode == "process":
            results, waits, busys = self._run_processes(
                X, plan, bounds=bounds, nw=nw, masks=masks, run_t0=run_t0,
                registry=registry, tracer=tracer,
                cutoff_method=cutoff_method, trim_to_k=trim_to_k,
                strict=strict,
            )
        else:
            results, waits, busys = self._run_threads(
                X, plan, bounds=bounds, nw=nw, masks=masks, run_t0=run_t0,
                registry=registry, tracer=tracer,
                cutoff_method=cutoff_method, trim_to_k=trim_to_k,
                strict=strict,
            )

        wall = monotonic() - run_t0
        if tracer is not None:
            # Root of the span DAG: every comb/shard/stage span carries a
            # `parent` attr pointing (transitively) here, and the critical
            # path engine charges otherwise-uncovered intervals to this
            # span rather than to "(idle)".
            tracer.add_span(
                "executor.run", start_s=0.0, duration_s=wall,
                category="executor", track=EXECUTOR_TRACK,
                attrs={"workers": nw, "shards": len(bounds), "signals": S,
                       "mode": self.mode},
            )
        registry.gauge("sfft.executor.workers").set(nw)
        registry.counter("sfft.executor.shards").inc(len(bounds))
        registry.counter("sfft.executor.signals").inc(S)
        wait_hist = registry.histogram("sfft.executor.queue_wait_s")
        wait_hist.observe_many(waits)
        # Tail visibility for the attribution layer: the histogram's sum
        # hides whether queue wait is spread thin or one shard starved.
        for q, suffix in ((50, "p50"), (90, "p90"), (99, "p99")):
            registry.gauge(f"sfft.executor.queue_wait_{suffix}_s").set(
                wait_hist.percentile(q)
            )
        registry.histogram("sfft.executor.shard_wall_s").observe_many(busys)
        registry.histogram("sfft.executor.run_wall_s").observe(wall)
        # Busy-over-wall: 1.0 is perfectly serial, > 1.0 means shards
        # genuinely overlapped.  Clamped to [0, workers] so timer jitter
        # cannot report impossible overlap (in particular a 1-worker run
        # can never exceed 1.0, keeping attribution ratios well-posed);
        # a degenerate zero-wall run reports 0.0.
        overlap = sum(busys) / wall if wall > 0 else 0.0
        registry.gauge("sfft.executor.overlap_ratio").set(
            min(max(0.0, overlap), float(nw))
        )
        return results

    # -- thread mode ---------------------------------------------------------

    def _run_threads(
        self, X, plan, *, bounds, nw, masks, run_t0, registry, tracer,
        cutoff_method, trim_to_k, strict,
    ):
        # One leased workspace per worker: shared immutable gather/taps,
        # private scratch and FFT-backend binding (double-buffered in the
        # sense that a worker's next shard reuses its own buffers while
        # other workers' shards are mid-flight).
        base = plan.workspace()
        pool: queue.SimpleQueue = queue.SimpleQueue()
        clones = []
        for w in range(nw):
            clone = base.clone(
                fft_backend=self.fft_backend, fft_workers=self.fft_workers,
            )
            clones.append(clone)
            pool.put((w, clone))

        # Memory attribution of the lease: the immutable gather/tap arrays
        # are shared once across the pool, the scratch is paid per clone.
        base_mem = base.memory_breakdown()
        scratch_each = (
            clones[0].memory_breakdown()["scratch_bytes"] if clones else 0
        )
        registry.gauge("sfft.executor.workspace_shared_bytes").set(
            base_mem["gather_bytes"] + base_mem["tap_bytes"]
        )
        registry.gauge("sfft.executor.worker_scratch_bytes").set(scratch_each)
        registry.gauge("sfft.executor.clone_bytes").set(scratch_each * nw)

        @contextmanager
        def _stage_span(name: str, track: str, attrs: dict):
            t0 = monotonic()
            try:
                yield
            finally:
                tracer.add_span(
                    name, start_s=max(0.0, t0 - run_t0),
                    duration_s=monotonic() - t0,
                    category="executor", track=track, depth=1, attrs=attrs,
                )

        def _task(idx: int, lo: int, hi: int, submit_t: float):
            t_pick = monotonic()
            w, ws = pool.get()
            track = f"worker{w}"
            stage = None
            if tracer is not None:
                def stage(name, **attrs):
                    return _stage_span(
                        f"shard{idx}.{name}", track,
                        {"shard": idx, "worker": w,
                         "parent": f"shard{idx}", **attrs},
                    )
            try:
                out = run_stack_pipeline(
                    X[lo:hi], plan,
                    workspace=ws,
                    cutoff_method=cutoff_method,
                    residue_filters=None if masks is None else masks[lo:hi],
                    trim_to_k=trim_to_k,
                    strict=strict,
                    signal_offset=lo,
                    stage=stage,
                )
            finally:
                pool.put((w, ws))
            t_end = monotonic()
            if tracer is not None:
                tracer.add_span(
                    f"shard{idx}", start_s=max(0.0, t_pick - run_t0),
                    duration_s=t_end - t_pick,
                    category="executor", track=track,
                    attrs={"signals": hi - lo, "lo": lo, "hi": hi,
                           "shard": idx, "worker": w,
                           "queue_wait_s": max(0.0, t_pick - submit_t),
                           "parent": "executor.run"},
                )
            return out, t_pick - submit_t, t_end - t_pick

        with ThreadPoolExecutor(
            max_workers=nw, thread_name_prefix="sfft-exec"
        ) as ex:
            futures = [
                ex.submit(_task, idx, lo, hi, monotonic())
                for idx, (lo, hi) in enumerate(bounds)
            ]
            # .result() re-raises the first shard failure (e.g. a strict
            # RecoveryError naming the global signal index).
            shard_outs = [f.result() for f in futures]

        waits = [max(0.0, w) for _, w, _ in shard_outs]
        busys = [busy for _, _, busy in shard_outs]
        results: list[SparseFFTResult] = []
        for out, _, _ in shard_outs:
            results.extend(out)
        return results, waits, busys

    # -- process mode --------------------------------------------------------

    def _run_processes(
        self, X, plan, *, bounds, nw, masks, run_t0, registry, tracer,
        cutoff_method, trim_to_k, strict,
    ):
        S = X.shape[0]
        k = plan.params.k
        base = plan.workspace()
        # Same lease accounting as thread mode: the derived arrays are
        # shared (now via shm instead of by reference), scratch is private
        # per worker process.
        base_arrays = plan_shared_arrays(plan, base)  # forces gather/taps
        base_mem = base.memory_breakdown()
        scratch_each = base_mem["scratch_bytes"]
        registry.gauge("sfft.executor.workspace_shared_bytes").set(
            base_mem["gather_bytes"] + base_mem["tap_bytes"]
        )
        registry.gauge("sfft.executor.worker_scratch_bytes").set(scratch_each)
        registry.gauge("sfft.executor.clone_bytes").set(scratch_each * nw)

        kill_raw = os.environ.get(_KILL_ENV, "")
        kill_idx = int(kill_raw) if kill_raw.lstrip("-").isdigit() else None

        plan_bundle = SegmentBundle.create(base_arrays, label="sfft-plan")
        try:
            data_arrays: dict[str, np.ndarray] = {"stack": X}
            if masks is not None:
                data_arrays["masks"] = masks
            if trim_to_k:
                # Trimmed results are bounded by k per signal, so shards
                # write straight into one shared output block.
                data_arrays["out_locations"] = np.zeros((S, k), np.int64)
                data_arrays["out_values"] = np.zeros((S, k), np.complex128)
                data_arrays["out_votes"] = np.zeros((S, k), np.int64)
                data_arrays["out_counts"] = np.zeros(S, np.int64)
            data_bundle = SegmentBundle.create(data_arrays, label="sfft-data")
        except BaseException:
            plan_bundle.close()
            raise

        desc = describe_plan(
            plan, plan_bundle.specs,
            fft_backend=self.fft_backend, fft_workers=self.fft_workers,
        )
        options = {
            "cutoff_method": cutoff_method,
            "trim_to_k": trim_to_k,
            "strict": strict,
        }
        registry.gauge("sfft.executor.shm_bytes").set(
            plan_bundle.nbytes + data_bundle.nbytes
        )

        try:
            submits: list[float] = []
            futures: list = []
            for attempt in range(2):
                pool = _process_pool(nw, self.start_method)
                submits = []
                futures = []
                broken_at_submit: BrokenProcessPool | None = None
                try:
                    for idx, (lo, hi) in enumerate(bounds):
                        submits.append(monotonic())
                        futures.append(pool.submit(
                            _process_shard, desc, data_bundle.specs, idx,
                            lo, hi, options, tracer is not None,
                            kill_idx == idx,
                        ))
                except BrokenProcessPool as exc:
                    # The pool broke while shards were still being
                    # submitted: either an earlier run's casualty left a
                    # poisoned pool in the cache, or this run's own dying
                    # worker raced the submit loop.  Either way the pool
                    # must not survive in the cache.
                    broken_at_submit = exc
                # Wait for *all* shards before raising anything: no worker
                # may attach after the segments are unlinked below.
                wait(futures)
                error = broken_at_submit or next(
                    (f.exception() for f in futures if f.exception()), None
                )
                if isinstance(error, BrokenProcessPool):
                    registry.counter("sfft.executor.worker_failures").inc()
                    _discard_pool(nw, self.start_method)
                    if broken_at_submit is not None and attempt == 0:
                        # Submit-time breakage can predate this run (a
                        # stale poisoned pool); one retry on a fresh pool
                        # separates that from a genuine worker death,
                        # which will break again and error out below.
                        continue
                    raise ExecutorError(
                        f"a worker process died mid-run "
                        f"(mode=process, workers={nw}, "
                        f"start_method={self.start_method}); shared "
                        f"segments unlinked, pool discarded"
                    ) from error
                if error is not None:
                    raise error
                break
            payloads = [f.result() for f in futures]

            # Copy result rows out of the shared output block *before* the
            # finally unlinks it.
            if trim_to_k:
                locs = np.array(data_bundle.view("out_locations"))
                vals = np.array(data_bundle.view("out_values"))
                votes = np.array(data_bundle.view("out_votes"))
                counts = np.array(data_bundle.view("out_counts"))
        finally:
            data_bundle.close()
            plan_bundle.close()

        # Merge worker telemetry: pids map to stable worker ordinals in
        # first-seen order, so traces read worker0/worker1/... exactly as
        # thread mode's do.
        ordinals: dict[int, int] = {}
        waits: list[float] = []
        busys: list[float] = []
        for idx, payload in enumerate(payloads):
            w = ordinals.setdefault(payload["pid"], len(ordinals) % nw)
            t_pick, t_end = payload["t_pick"], payload["t_end"]
            waits.append(max(0.0, t_pick - submits[idx]))
            busys.append(t_end - t_pick)
            if tracer is None:
                continue
            track = f"worker{w}"
            lo, hi = bounds[idx]
            for name, s0, s1, attrs in payload["stages"]:
                tracer.add_span(
                    f"shard{idx}.{name}", start_s=max(0.0, s0 - run_t0),
                    duration_s=s1 - s0,
                    category="executor", track=track, depth=1,
                    attrs={"shard": idx, "worker": w,
                           "parent": f"shard{idx}", **attrs},
                )
            tracer.add_span(
                f"shard{idx}", start_s=max(0.0, t_pick - run_t0),
                duration_s=t_end - t_pick,
                category="executor", track=track,
                attrs={"signals": hi - lo, "lo": lo, "hi": hi,
                       "shard": idx, "worker": w,
                       "queue_wait_s": waits[idx],
                       "parent": "executor.run"},
            )

        results: list[SparseFFTResult] = []
        if trim_to_k:
            for s in range(S):
                c = int(counts[s])
                results.append(SparseFFTResult(
                    n=plan.params.n, locations=locs[s, :c],
                    values=vals[s, :c], votes=votes[s, :c],
                ))
        else:
            for payload in payloads:
                for loc, val, vote in payload["results"]:
                    results.append(SparseFFTResult(
                        n=plan.params.n, locations=loc, values=val,
                        votes=vote,
                    ))
        return results, waits, busys
