"""The sparse FFT driver — paper Section III end-to-end (CPU reference).

This is the orchestrator that strings the six steps together:

1-2. permute + filter + fold into buckets  (:mod:`~repro.core.binning`)
3.   batched ``B``-point FFT               (:mod:`~repro.core.subsampled`)
4.   cutoff                                (:mod:`~repro.core.cutoff`)
5.   reverse hash + voting                 (:mod:`~repro.core.recovery`)
6.   median magnitude reconstruction       (:mod:`~repro.core.estimation`)

It doubles as the profiling harness behind Figure 2: with ``profile=True``
it wall-clocks each step, which is how the paper identified perm+filter as
the dominant cost.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError, RecoveryError
from ..obs import MetricsRegistry, Tracer, emit_sfft_metrics, global_registry
from ..utils.rng import RngLike
from ..utils.validation import as_complex_signal
from .binning import bin_loop_partition, bin_serial, bin_vectorized
from .comb import comb_approved_residues
from .cutoff import cutoff_rows
from .estimation import estimate_values
from .params import resolve_sfft_config
from .plan import SfftPlan
from .plan_cache import cached_plan
from .recovery import recover_locations
from .subsampled import bucket_fft

__all__ = ["SparseFFTResult", "sfft", "STEP_NAMES"]

STEP_NAMES = ("perm_filter", "bucket_fft", "cutoff", "recovery", "estimation")

_BINNERS = {
    "serial": bin_serial,
    "vectorized": bin_vectorized,
    "loop_partition": bin_loop_partition,
}


@dataclass(frozen=True)
class SparseFFTResult:
    """Sparse transform output: the recovered ``(location, value)`` pairs.

    Attributes
    ----------
    n:
        Transform size the locations index into.
    locations:
        Recovered frequencies, ascending ``int64``.
    values:
        Complex coefficient estimates aligned with ``locations``
        (``numpy.fft.fft`` scale).
    votes:
        Location-loop vote count per recovered frequency.
    step_times:
        Wall-clock seconds per pipeline step when profiling was requested,
        else ``None``.  A view over ``trace``: each step's spans summed.
        Includes a ``"comb"`` entry when the sFFT-2.0 pre-filter ran.
    trace:
        The :class:`~repro.obs.Tracer` that clocked the run (profiling
        only); ``trace.export_chrome_trace()`` renders it for
        ``chrome://tracing`` / Perfetto.
    """

    n: int
    locations: np.ndarray
    values: np.ndarray
    votes: np.ndarray
    step_times: dict[str, float] | None = field(default=None, compare=False)
    trace: Tracer | None = field(default=None, compare=False, repr=False)

    @property
    def k_found(self) -> int:
        """Number of recovered coefficients."""
        return self.locations.size

    def to_dense(self) -> np.ndarray:
        """Dense length-``n`` spectrum with the recovered coefficients."""
        spec = np.zeros(self.n, dtype=np.complex128)
        spec[self.locations] = self.values
        return spec

    def top(self, k: int) -> "SparseFFTResult":
        """Restrict to the ``k`` largest-magnitude coefficients."""
        if k >= self.k_found:
            return self
        order = np.argpartition(np.abs(self.values), -k)[-k:]
        order = order[np.argsort(self.locations[order])]
        return SparseFFTResult(
            n=self.n,
            locations=self.locations[order],
            values=self.values[order],
            votes=self.votes[order],
            step_times=self.step_times,
            trace=self.trace,
        )

    def as_dict(self) -> dict[int, complex]:
        """``{frequency: value}`` mapping (convenient for assertions)."""
        return {int(f): complex(v) for f, v in zip(self.locations, self.values)}


def sfft(
    x,
    k: int | None = None,
    *,
    plan: SfftPlan | None = None,
    seed: RngLike = None,
    binning: str = "vectorized",
    cutoff_method: str = "topk",
    comb_width: int | None = None,
    comb_loops: int = 3,
    trim_to_k: bool = True,
    strict: bool = False,
    profile: bool = False,
    verify: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    **plan_overrides,
) -> SparseFFTResult:
    """Compute the sparse FFT of ``x``.

    Parameters
    ----------
    x:
        Length-``n`` signal (``n`` a power of two); real inputs are widened
        to complex.
    k:
        Target sparsity.  Optional when ``plan`` is given.
    plan:
        A reusable :class:`~repro.core.plan.SfftPlan`; obtained from the
        process-level plan cache (with ``seed`` / ``plan_overrides``) when
        omitted, so repeat convenience calls of one shape pay filter
        synthesis once — see :mod:`repro.core.plan_cache`.
    binning:
        ``"vectorized"`` (default), ``"loop_partition"`` (mirrors the GPU
        kernel), or ``"serial"`` (Algorithm 1 verbatim; slow, tests only).
        The default runs through the plan's fused execution workspace
        (:mod:`repro.core.workspace`): one gather + fold for all ``L``
        loops, reusing plan-resident scratch.
    cutoff_method:
        ``"topk"`` (baseline sort&select) or ``"threshold"`` (fast
        k-selection).
    comb_width:
        Enable the sFFT-2.0 Comb pre-filter with ``W = comb_width`` residue
        classes (a power of two dividing ``n``): ``comb_loops`` cheap
        aliasing passes screen the spectrum and location recovery only
        votes for approved residues.  ``None`` (default) disables it.
    trim_to_k:
        Keep only the ``k`` largest recovered coefficients (the paper
        reports exactly ``k``).
    strict:
        Raise :class:`~repro.errors.RecoveryError` if fewer than ``k``
        coefficients survive voting.
    profile:
        Record per-step wall-clock times in the result (as spans on a
        :class:`~repro.obs.Tracer`, surfaced through ``step_times``).
    tracer:
        Record spans into this tracer instead of a fresh one (implies
        profiling); lets a run-scoped trace hold many transforms.
    metrics:
        Registry receiving the ``sfft.*`` metrics (bucket occupancy,
        recovery votes/hits, collisions).  Defaults to
        :func:`repro.obs.global_registry` when profiling is active.
    verify:
        Debugging aid: additionally compute the dense FFT and raise
        :class:`~repro.errors.RecoveryError` unless the recovered support
        matches its top-``k`` (costs ``O(n log n)`` — development only).

    Returns
    -------
    SparseFFTResult
    """
    if binning not in _BINNERS:
        raise ParameterError(
            f"unknown binning {binning!r}; choose from {sorted(_BINNERS)}"
        )
    binner = _BINNERS[binning]

    if plan is None:
        if k is None:
            raise ParameterError("either k or a plan must be provided")
        x = as_complex_signal(x)
        # The resolution seam: explicit overrides win verbatim; otherwise
        # a configured wisdom store, then env pins, then paper defaults
        # (see repro.core.params).
        resolved = resolve_sfft_config(
            x.size, k, explicit=plan_overrides, comb_width=comb_width,
        )
        if comb_width is None:
            comb_width = resolved.comb_width
        plan = cached_plan(x.size, k, seed=seed, **resolved.overrides)
    else:
        x = as_complex_signal(x, plan.n)
        if k is None:
            k = plan.k
    params = plan.params
    B, L = params.B, params.loops

    profiling = profile or tracer is not None
    if profiling and tracer is None:
        tracer = Tracer()
    span_start = len(tracer.spans) if profiling else 0

    def step(name: str, **attrs):
        return tracer.span(name, category="sfft", **attrs) if profiling \
            else nullcontext()

    # Optional sFFT-2.0 Comb screen — timed as its own step so Figure-2
    # style breakdowns account for every stage that ran.
    residue_filter = None
    if comb_width is not None:
        with step("comb", W=comb_width, loops=comb_loops):
            residue_filter = comb_approved_residues(
                x, comb_width, params.k, loops=comb_loops, seed=seed
            )

    # Steps 1-2: permutation + filter + fold, one row per loop.  The
    # default binning runs fused through the plan workspace (one gather for
    # all loops into plan-resident scratch); the explicit binner variants
    # keep their per-loop structure for kernel-shape fidelity.  The fusion
    # only engages while the dispatch entry is the stock binner, so
    # patching ``_BINNERS["vectorized"]`` (tests inject slow/instrumented
    # binners there) still takes effect.
    ws = plan.workspace() if binner is bin_vectorized else None
    with step("perm_filter", loops=L, B=B):
        if ws is not None:
            raw = ws.bin_fused(x)
        else:
            raw = np.empty((L, B), dtype=np.complex128)
            for r, perm in enumerate(plan.permutations):
                raw[r] = binner(x, plan.filt, B, perm)

    # Step 3: batched B-point FFT.
    with step("bucket_fft", B=B, batch=L):
        rows = bucket_fft(raw)

    # Step 4: cutoff — only the voting loops need it (the reference
    # implementation's location/estimation split).  One batched top-k over
    # all voting rows at once.
    v_loops = params.voting_loops
    with step("cutoff", method=cutoff_method):
        selected = cutoff_rows(
            np.abs(rows[:v_loops]), params.select_count, method=cutoff_method
        )

    # Step 5: reverse hash + voting over the location loops.
    with step("recovery", loops=v_loops):
        hits, votes = recover_locations(
            selected, list(plan.permutations[:v_loops]), B,
            params.vote_threshold, residue_filter=residue_filter,
            scores_out=ws.scores if ws is not None else None,
        )

    if strict and hits.size < params.k:
        raise RecoveryError(
            f"recovered only {hits.size} of k={params.k} coefficients"
        )

    # Step 6: magnitude reconstruction.
    with step("estimation", hits=int(hits.size)):
        values = estimate_values(
            hits, rows, list(plan.permutations), plan.filt, B
        )

    times: dict[str, float] | None = None
    if profiling:
        emit_sfft_metrics(
            metrics if metrics is not None else global_registry(),
            B=B,
            n=params.n,
            selected_sizes=[int(s.size) for s in selected],
            hits=hits,
            votes=votes,
            permutations=list(plan.permutations[:v_loops]),
        )
        # step_times is a view over this call's spans: same keys as the
        # old accumulating clock, plus "comb" when the pre-filter ran.
        by_name: dict[str, float] = {}
        for sp in tracer.spans[span_start:]:
            if sp.category == "sfft":
                by_name[sp.name] = by_name.get(sp.name, 0.0) + sp.duration_s
        times = {name: by_name.get(name, 0.0) for name in STEP_NAMES}
        if "comb" in by_name:
            times = {"comb": by_name["comb"], **times}

    result = SparseFFTResult(
        n=params.n,
        locations=hits,
        values=values,
        votes=votes,
        step_times=times,
        trace=tracer if profiling else None,
    )
    if trim_to_k:
        result = result.top(params.k)
    if verify:
        # Verification deliberately uses the numpy oracle, not the
        # configured backend, so verify-mode checks the backend too.
        dense = np.fft.fft(x)  # reprolint: ignore[fft-registry-bypass]
        top = np.argpartition(np.abs(dense), -params.k)[-params.k :]
        want = set(int(f) for f in top)
        got = set(int(f) for f in result.locations)
        if got != want:
            raise RecoveryError(
                f"verification failed: sparse support {sorted(got)[:8]}... "
                f"!= dense top-k {sorted(want)[:8]}..."
            )
    return result
