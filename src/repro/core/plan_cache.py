"""Process-level LRU plan cache — FFTW-wisdom economics for `sfft(x, k)`.

Plan synthesis is the expensive half of the transform (the flat-window
filter costs an ``O(n log n)`` FFT); execution is sub-linear.  The
convenience form ``sfft(x, k)`` historically paid synthesis on *every*
call.  This cache amortizes it: plans are keyed by the **resolved**
parameter set plus the seed, so two spellings of the same configuration
(``loops=6`` vs. a ``profile`` that derives ``loops=6``) share one entry,
while distinct seeds or overrides never collide.

Cache traffic is observable through the shared metrics registry
(:func:`repro.obs.global_registry`):

* ``sfft.plan_cache.hit``       — calls served from the cache;
* ``sfft.plan_cache.miss``      — calls that paid plan synthesis;
* ``sfft.plan_cache.evictions`` — LRU entries displaced at capacity;
* ``sfft.plan_cache.hit_rate``  — derived gauge, hits / (hits + misses);
* ``sfft.plan_cache.bytes``     — resident footprint (:meth:`PlanCache.
  nbytes`: filter arrays plus each plan's built workspace);
* ``sfft.plan_cache.entries``   — resident plan count.

Keying notes:

* ``seed`` may be ``None`` or an ``int``.  ``None`` is itself a key: repeat
  anonymous ``sfft(x, k)`` calls of one shape deliberately share a plan —
  plan reuse is the point.  Callers that need per-call fresh randomness
  pass a :class:`numpy.random.Generator`, which **bypasses** the cache (a
  generator's future draws are not a stable identity) and counts as a miss.
* eviction is LRU at a fixed capacity; plans are immutable, so a cached
  plan can be handed to any number of callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import astuple

import numpy as np

from ..errors import ParameterError
from ..utils.rng import RngLike
from .fft_backend import default_backend_name
from .parameters import SfftParameters, derive_parameters
from .plan import SfftPlan, make_plan

__all__ = ["PlanCache", "global_plan_cache", "cached_plan"]

#: Default number of distinct (shape, overrides, seed) plans kept resident.
DEFAULT_CAPACITY = 32


class PlanCache:
    """Thread-safe LRU cache of :class:`~repro.core.plan.SfftPlan` objects.

    Parameters
    ----------
    capacity:
        Maximum number of plans kept; the least recently used entry is
        evicted when a new plan would exceed it.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, SfftPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(
        n: int, k: int, seed: RngLike, params: SfftParameters | None,
        overrides: dict,
    ) -> tuple | None:
        """Resolved cache key, or ``None`` when the call is uncacheable.

        The key includes the *resolved* default FFT backend name: a plan's
        lazily built workspace caches backend-sized scratch, and a
        wisdom- or env-driven backend switch mid-process must never be
        served a workspace planned under the previous backend.
        """
        if isinstance(seed, np.random.Generator):
            return None
        if params is None:
            params = derive_parameters(n, k, **overrides)
        return (*astuple(params), seed, default_backend_name())

    def get_or_make(
        self,
        n: int,
        k: int,
        *,
        seed: RngLike = None,
        params: SfftParameters | None = None,
        **overrides,
    ) -> SfftPlan:
        """Return the cached plan for this configuration, building on miss.

        Accepts exactly the :func:`~repro.core.plan.make_plan` signature.
        Parameter resolution (cheap, closed-form) always runs so the key
        reflects *resolved* overrides; filter synthesis (the expensive
        part) runs only on a miss.
        """
        from ..obs import global_registry

        key = self._key(n, k, seed, params, overrides)
        if key is None:
            # Generator seeds are intentionally uncacheable; build fresh.
            global_registry().counter("sfft.plan_cache.miss").inc()
            self.misses += 1
            self._publish()
            return make_plan(n, k, seed=seed, params=params, **overrides)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
        if plan is not None:
            global_registry().counter("sfft.plan_cache.hit").inc()
            self._publish()
            return plan
        plan = make_plan(n, k, seed=seed, params=params, **overrides)
        evicted = 0
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            self.misses += 1
        registry = global_registry()
        registry.counter("sfft.plan_cache.miss").inc()
        if evicted:
            registry.counter("sfft.plan_cache.evictions").inc(evicted)
        self._publish()
        return plan

    def _publish(self) -> None:
        """Refresh the derived gauges after any traffic or residency change.

        Gauges land on the global registry (like the hit/miss counters),
        outside :attr:`_lock` — counter/gauge updates fan out to registry
        subscribers (flight recorders), and those callbacks must never run
        under a cache-internal lock.
        """
        from ..obs import global_registry

        stats = self.stats()
        registry = global_registry()
        total = stats["hits"] + stats["misses"]
        if total:
            registry.gauge("sfft.plan_cache.hit_rate").set(
                stats["hits"] / total
            )
        registry.gauge("sfft.plan_cache.bytes").set(self.nbytes())
        registry.gauge("sfft.plan_cache.entries").set(stats["size"])

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._plans

    def clear(self) -> None:
        """Drop every cached plan and reset the local tallies."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        """``{"hits", "misses", "evictions", "size", "capacity"}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._plans),
                "capacity": self.capacity,
            }

    # -- memory accounting -------------------------------------------------

    @staticmethod
    def plan_nbytes(plan: SfftPlan) -> int:
        """Accountable bytes of one resident plan.

        Filter arrays (time + frequency taps) plus the plan's cached
        workspace when one has been built — via
        :meth:`~repro.core.workspace.PlanWorkspace.memory_breakdown`,
        which already excludes no-copy views of the filter, so nothing is
        double counted.  Permutations and parameters are a few plain ints
        each; they are deliberately left out so the sum stays exactly
        reproducible from array shapes.
        """
        total = int(plan.filt.time.nbytes) + int(plan.filt.freq.nbytes)
        ws = plan._workspace
        if ws is not None:
            total += int(ws.memory_breakdown()["total_bytes"])
        return total

    def nbytes(self) -> int:
        """Total accountable bytes across every resident plan."""
        with self._lock:
            plans = list(self._plans.values())
        return sum(self.plan_nbytes(plan) for plan in plans)

    def memory_breakdown(self) -> list[dict]:
        """Per-entry byte attribution, least recently used first.

        One dict per resident plan: shape (``n``, ``k``), the filter's
        array bytes, the built workspace's gather/tap/scratch split (zeros
        while the lazy arrays are untouched), and the entry total.
        """
        with self._lock:
            plans = list(self._plans.values())
        out: list[dict] = []
        for plan in plans:
            entry: dict = {
                "n": plan.n,
                "k": plan.k,
                "filter_bytes": int(plan.filt.time.nbytes)
                + int(plan.filt.freq.nbytes),
                "gather_bytes": 0,
                "tap_bytes": 0,
                "scratch_bytes": 0,
            }
            ws = plan._workspace
            if ws is not None:
                breakdown = ws.memory_breakdown()
                entry["gather_bytes"] = breakdown["gather_bytes"]
                entry["tap_bytes"] = breakdown["tap_bytes"]
                entry["scratch_bytes"] = breakdown["scratch_bytes"]
            entry["total_bytes"] = (
                entry["filter_bytes"] + entry["gather_bytes"]
                + entry["tap_bytes"] + entry["scratch_bytes"]
            )
            out.append(entry)
        return out


_GLOBAL_CACHE = PlanCache()


def global_plan_cache() -> PlanCache:
    """The process-wide plan cache ``sfft(x, k)`` convenience calls use."""
    return _GLOBAL_CACHE


def cached_plan(
    n: int,
    k: int,
    *,
    seed: RngLike = None,
    params: SfftParameters | None = None,
    **overrides,
) -> SfftPlan:
    """:func:`~repro.core.plan.make_plan` through the global LRU cache."""
    return _GLOBAL_CACHE.get_or_make(
        n, k, seed=seed, params=params, **overrides
    )
