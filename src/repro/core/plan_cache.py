"""Process-level LRU plan cache — FFTW-wisdom economics for `sfft(x, k)`.

Plan synthesis is the expensive half of the transform (the flat-window
filter costs an ``O(n log n)`` FFT); execution is sub-linear.  The
convenience form ``sfft(x, k)`` historically paid synthesis on *every*
call.  This cache amortizes it: plans are keyed by the **resolved**
parameter set plus the seed, so two spellings of the same configuration
(``loops=6`` vs. a ``profile`` that derives ``loops=6``) share one entry,
while distinct seeds or overrides never collide.

Cache traffic is observable through the shared metrics registry
(:func:`repro.obs.global_registry`):

* ``sfft.plan_cache.hit``  — calls served from the cache;
* ``sfft.plan_cache.miss`` — calls that paid plan synthesis.

Keying notes:

* ``seed`` may be ``None`` or an ``int``.  ``None`` is itself a key: repeat
  anonymous ``sfft(x, k)`` calls of one shape deliberately share a plan —
  plan reuse is the point.  Callers that need per-call fresh randomness
  pass a :class:`numpy.random.Generator`, which **bypasses** the cache (a
  generator's future draws are not a stable identity) and counts as a miss.
* eviction is LRU at a fixed capacity; plans are immutable, so a cached
  plan can be handed to any number of callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import astuple

import numpy as np

from ..errors import ParameterError
from ..utils.rng import RngLike
from .parameters import SfftParameters, derive_parameters
from .plan import SfftPlan, make_plan

__all__ = ["PlanCache", "global_plan_cache", "cached_plan"]

#: Default number of distinct (shape, overrides, seed) plans kept resident.
DEFAULT_CAPACITY = 32


class PlanCache:
    """Thread-safe LRU cache of :class:`~repro.core.plan.SfftPlan` objects.

    Parameters
    ----------
    capacity:
        Maximum number of plans kept; the least recently used entry is
        evicted when a new plan would exceed it.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, SfftPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(
        n: int, k: int, seed: RngLike, params: SfftParameters | None,
        overrides: dict,
    ) -> tuple | None:
        """Resolved cache key, or ``None`` when the call is uncacheable."""
        if isinstance(seed, np.random.Generator):
            return None
        if params is None:
            params = derive_parameters(n, k, **overrides)
        return (*astuple(params), seed)

    def get_or_make(
        self,
        n: int,
        k: int,
        *,
        seed: RngLike = None,
        params: SfftParameters | None = None,
        **overrides,
    ) -> SfftPlan:
        """Return the cached plan for this configuration, building on miss.

        Accepts exactly the :func:`~repro.core.plan.make_plan` signature.
        Parameter resolution (cheap, closed-form) always runs so the key
        reflects *resolved* overrides; filter synthesis (the expensive
        part) runs only on a miss.
        """
        from ..obs import global_registry

        key = self._key(n, k, seed, params, overrides)
        if key is None:
            # Generator seeds are intentionally uncacheable; build fresh.
            global_registry().counter("sfft.plan_cache.miss").inc()
            self.misses += 1
            return make_plan(n, k, seed=seed, params=params, **overrides)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
        if plan is not None:
            global_registry().counter("sfft.plan_cache.hit").inc()
            return plan
        plan = make_plan(n, k, seed=seed, params=params, **overrides)
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
            self.misses += 1
        global_registry().counter("sfft.plan_cache.miss").inc()
        return plan

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._plans

    def clear(self) -> None:
        """Drop every cached plan and reset the local hit/miss tallies."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        """``{"hits", "misses", "size", "capacity"}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._plans),
                "capacity": self.capacity,
            }


_GLOBAL_CACHE = PlanCache()


def global_plan_cache() -> PlanCache:
    """The process-wide plan cache ``sfft(x, k)`` convenience calls use."""
    return _GLOBAL_CACHE


def cached_plan(
    n: int,
    k: int,
    *,
    seed: RngLike = None,
    params: SfftParameters | None = None,
    **overrides,
) -> SfftPlan:
    """:func:`~repro.core.plan.make_plan` through the global LRU cache."""
    return _GLOBAL_CACHE.get_or_make(
        n, k, seed=seed, params=params, **overrides
    )
