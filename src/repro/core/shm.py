"""Shared-memory plumbing for the process-pool executor.

The process execution mode (:mod:`repro.core.executor`, ``mode="process"``)
ships work to a pool of worker *processes*, so nothing can be handed over
by reference.  Copying the inputs into every worker would erase the win —
the signal stack and the plan's derived arrays (gather-index matrix, padded
tap matrix) dwarf everything else the pipeline touches.  This module keeps
the hand-off zero-copy: the parent packs those arrays into
``multiprocessing.shared_memory`` segments **once**, and workers attach to
the same physical pages and reconstruct NumPy views over them.

What crosses the process boundary is therefore *descriptors*, not bytes:

* :class:`SharedArraySpec` — one array's address inside a segment
  (segment name, shape, dtype, byte offset); picklable and tiny.
* :class:`SegmentBundle` — the parent-side owner of one segment holding
  several arrays.  Creation copies each array in at a 64-byte-aligned
  offset and records its spec; :meth:`SegmentBundle.close` is idempotent
  and **always unlinks**, even when a leaked view keeps the mapping alive
  (the ``/dev/shm`` name must die with the run — reprolint's
  ``shm-lifecycle`` rule keeps every creation site inside this module so
  that guarantee is auditable).
* :class:`PlanDescriptor` — a whole :class:`~repro.core.plan.SfftPlan` +
  :class:`~repro.core.workspace.PlanWorkspace` as primitives and specs:
  resolved parameters, ``(sigma, tau)`` pairs (``sigma_inv`` is
  re-derived, exactly like :func:`~repro.core.plan.load_plan`), filter
  metadata, and specs for the filter taps / frequency response / gather
  matrix / padded taps.

Worker-side, :func:`worker_lease` materializes a descriptor into a real
plan and workspace whose derived arrays are **read-only views into the
shared segment** (adopted via
:meth:`~repro.core.workspace.PlanWorkspace.adopt_shared` — scratch stays
private per process).  Leases are cached in a small per-process LRU keyed
by the descriptor's plan fingerprint: a warm worker re-runs shards of the
same plan with zero attach/rebuild cost, the process-pool analog of the
thread executor's per-worker workspace clones (and of the process-level
:class:`~repro.core.plan_cache.PlanCache`).

Lifecycle rules this module enforces:

* the **parent owns every segment**: workers attach but never create or
  unlink;
* pool workers share the parent's ``resource_tracker`` process (the
  tracker fd is inherited under every start method), so a worker's
  attach-register is an idempotent duplicate of the parent's own entry —
  workers neither unregister nor unlink, and the parent's end-of-run
  unlink retires the name exactly once;
* an unlinked segment stays valid for processes that already mapped it —
  cached worker leases therefore survive the parent's end-of-run unlink,
  and their memory is returned when the LRU evicts them (or the worker
  exits).  Nothing is ever left in ``/dev/shm``.
"""

from __future__ import annotations

import hashlib
import os
import secrets
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError

__all__ = [
    "SharedArraySpec",
    "SegmentBundle",
    "AttachedSegment",
    "PlanDescriptor",
    "WorkerLease",
    "describe_plan",
    "plan_fingerprint",
    "plan_shared_arrays",
    "worker_lease",
    "worker_cache_clear",
]

#: Byte alignment for every array packed into a segment (one cache line —
#: keeps vectorized loads on views as fast as on fresh allocations).
_ALIGN = 64

#: Per-process cap on cached worker leases (plans this worker keeps warm).
WORKER_PLAN_CACHE_CAP = 4


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment as a non-owner.

    Python 3.11 registers every POSIX ``SharedMemory`` — attaches
    included — with the ``resource_tracker``.  Pool workers inherit the
    *parent's* tracker process (the tracker fd rides along under fork,
    forkserver, and spawn alike), so a worker's attach-register is an
    idempotent set-add on the name the parent already registered, and the
    parent's end-of-run ``unlink`` retires it exactly once.  Crucially the
    worker must **not** ``resource_tracker.unregister`` here: with a
    shared tracker that would strip the parent's own registration, losing
    crash-cleanup coverage and making the parent's later unlink a noisy
    double-unregister.
    """
    return shared_memory.SharedMemory(name=name)


def _close_quietly(seg: shared_memory.SharedMemory) -> None:
    """Close a mapping, tolerating still-exported buffer views.

    ``mmap.close`` raises ``BufferError`` while NumPy views over the
    buffer are alive; the mapping then simply lives until the views are
    collected.  Never let that block the caller's cleanup.
    """
    try:
        seg.close()
    except BufferError:
        pass


@dataclass(frozen=True)
class SharedArraySpec:
    """Address of one ndarray inside a shared-memory segment.

    This — not the array's bytes — is what crosses the process boundary:
    ``segment`` names the POSIX shared-memory object, and
    ``shape``/``dtype``/``offset`` are everything NumPy needs to rebuild a
    zero-copy view over the attached buffer.
    """

    segment: str
    shape: tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        """Bytes this array occupies in the segment."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    @shape_contract("seg:* -> @self.shape", dtype="@self.dtype")
    def as_array(
        self,
        seg: shared_memory.SharedMemory,
        *,
        writeable: bool = False,
    ) -> np.ndarray:
        """A NumPy view of this array over an attached segment.

        Views default to read-only: most shared arrays are the immutable
        side of the workspace contract, and a read-only flag turns an
        accidental cross-process write into an immediate error instead of
        a heisenbug.  Output arrays pass ``writeable=True`` explicitly.
        """
        end = self.offset + self.nbytes
        if end > seg.size:
            raise ParameterError(
                f"shared array {self.shape}/{self.dtype} at offset "
                f"{self.offset} overruns segment {self.segment!r} "
                f"({end} > {seg.size} bytes)"
            )
        arr: np.ndarray = np.ndarray(
            self.shape, dtype=np.dtype(self.dtype), buffer=seg.buf,
            offset=self.offset,
        )
        arr.flags.writeable = writeable
        return arr


class SegmentBundle:
    """Parent-side owner of one segment packing several named arrays.

    Built with :meth:`create`; exposes per-array :attr:`specs` for
    shipping to workers and :meth:`view` for the parent's own zero-copy
    access (e.g. reading results back out of an output segment).
    :meth:`close` is idempotent and unconditionally unlinks — use the
    bundle as a context manager or close it in a ``finally`` so no
    ``/dev/shm`` entry can outlive the run, whatever the workers did.
    """

    def __init__(
        self,
        seg: shared_memory.SharedMemory,
        specs: dict[str, SharedArraySpec],
    ):
        self._seg = seg
        self.specs = dict(specs)
        self._closed = False

    @classmethod
    def create(
        cls, arrays: dict[str, np.ndarray], *, label: str = "sfft"
    ) -> "SegmentBundle":
        """Allocate one segment and copy ``arrays`` in, aligned.

        The single-segment layout keeps the attach cost per worker at one
        ``shm_open``+``mmap`` regardless of how many arrays ride along.
        On any copy-in failure the half-built segment is unlinked before
        the error propagates.
        """
        if not arrays:
            raise ParameterError("a segment bundle needs at least one array")
        packed = {
            key: np.ascontiguousarray(arr) for key, arr in arrays.items()
        }
        offsets: dict[str, int] = {}
        cursor = 0
        for key, arr in packed.items():
            cursor = _align(cursor)
            offsets[key] = cursor
            cursor += int(arr.nbytes)
        name = f"{label}-{os.getpid()}-{secrets.token_hex(6)}"
        seg = shared_memory.SharedMemory(
            create=True, size=max(1, cursor), name=name,
        )
        try:
            specs: dict[str, SharedArraySpec] = {}
            for key, arr in packed.items():
                dst: np.ndarray = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=seg.buf,
                    offset=offsets[key],
                )
                dst[...] = arr
                specs[key] = SharedArraySpec(
                    segment=seg.name, shape=tuple(arr.shape),
                    dtype=arr.dtype.str, offset=offsets[key],
                )
            del dst
        except BaseException:
            _close_quietly(seg)
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise
        return cls(seg, specs)

    @property
    def name(self) -> str:
        """The segment's shared-memory name."""
        return self._seg.name

    @property
    def nbytes(self) -> int:
        """Total segment size in bytes."""
        return int(self._seg.size)

    def view(self, key: str, *, writeable: bool = False) -> np.ndarray:
        """The parent's zero-copy view of one packed array."""
        if self._closed:
            raise ParameterError(
                f"segment bundle {self.name!r} is closed"
            )
        return self.specs[key].as_array(self._seg, writeable=writeable)

    def close(self) -> None:
        """Close and **unlink**; idempotent, never raises for leaked views.

        Unlink succeeds even while other processes (or leaked local
        views) still map the segment — POSIX keeps the memory alive until
        the last unmap, but the name is gone immediately, which is the
        no-leak guarantee CI's ``/dev/shm`` check enforces.
        """
        if self._closed:
            return
        self._closed = True
        _close_quietly(self._seg)
        try:
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass

    def __enter__(self) -> "SegmentBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{self.nbytes}B"
        return (
            f"SegmentBundle({self.name!r}, {sorted(self.specs)}, {state})"
        )


class AttachedSegment:
    """A worker's non-owning attachment to a parent-created segment.

    Attach-only lifecycle: :meth:`close` releases this process's mapping
    and **never unlinks** — the parent owns the name.  Use per task for
    short-lived data (signal stacks, output arrays); long-lived plan
    arrays go through :func:`worker_lease` instead.
    """

    def __init__(self, name: str):
        self._seg = _attach(name)

    @shape_contract("spec:* -> @spec.shape", dtype="@spec.dtype")
    def view(
        self, spec: "SharedArraySpec", *, writeable: bool = False
    ) -> np.ndarray:
        """A NumPy view of ``spec`` over this attachment."""
        if spec.segment != self._seg.name:
            raise ParameterError(
                f"spec addresses segment {spec.segment!r}, attached to "
                f"{self._seg.name!r}"
            )
        return spec.as_array(self._seg, writeable=writeable)

    def close(self) -> None:
        """Release the mapping (idempotent; tolerates live views)."""
        _close_quietly(self._seg)

    def __enter__(self) -> "AttachedSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class PlanDescriptor:
    """A plan + workspace as picklable primitives and array specs.

    ``params`` is the :class:`~repro.core.parameters.SfftParameters`
    field tuple; ``sigmas``/``taus`` rebuild the permutation schedule
    (``sigma_inv`` is re-derived via ``mod_inverse``, the
    :func:`~repro.core.plan.load_plan` idiom); ``filter_meta`` is
    ``(window_name, lobefrac, tolerance, box_width)``.  ``arrays`` maps
    ``filter_time`` / ``filter_freq`` / ``taps_flat`` (may alias
    ``filter_time`` byte-for-byte when the padded width equals the tap
    count) / optionally ``gather`` (absent above the workspace's gather
    cap — workers then regenerate rows on the fly, same as the thread
    path) to their shared locations.  ``token`` is the plan fingerprint
    worker-side lease caching keys on.
    """

    token: str
    params: tuple
    sigmas: tuple[int, ...]
    taus: tuple[int, ...]
    filter_meta: tuple
    arrays: dict[str, SharedArraySpec]
    fft_backend: str | None
    fft_workers: int


def plan_fingerprint(plan, fft_backend: str | None, fft_workers: int) -> str:
    """Stable identity of (plan schedule, FFT binding) for lease caching.

    Two runs over the same plan object — or equal plans — map to the same
    token, so warm workers reuse their materialized plan/workspace across
    runs instead of re-attaching and rebuilding.
    """
    p = plan.params
    payload = repr((
        p.n, p.k, p.B, p.loops, p.vote_threshold, p.select_count,
        p.window, p.tolerance, p.lobefrac, p.loc_loops,
        tuple((q.sigma, q.tau) for q in plan.permutations),
        fft_backend, fft_workers,
    )).encode()
    return hashlib.sha1(payload).hexdigest()[:16]


def plan_shared_arrays(plan, workspace) -> dict[str, np.ndarray]:
    """The immutable arrays a plan ships to workers, keyed for packing.

    Forces the workspace's lazy gather/taps first so every worker shares
    one materialization.  ``taps_flat`` is omitted when it *is* the
    filter's tap array (the no-copy case) — :func:`describe_plan` aliases
    the spec instead of double-packing the bytes.
    """
    arrays: dict[str, np.ndarray] = {
        "filter_time": plan.filt.time,
        "filter_freq": plan.filt.freq,
    }
    taps = workspace.taps_flat
    if taps is not plan.filt.time:
        arrays["taps_flat"] = taps
    gather = workspace.gather
    if gather is not None:
        arrays["gather"] = gather
    return arrays


def describe_plan(
    plan,
    specs: dict[str, SharedArraySpec],
    *,
    fft_backend: str | None,
    fft_workers: int,
) -> PlanDescriptor:
    """Build the :class:`PlanDescriptor` for packed plan arrays."""
    p = plan.params
    arrays = dict(specs)
    if "taps_flat" not in arrays:
        # The padded taps were a no-copy view of the filter's own taps;
        # the shared layout aliases the same bytes.
        arrays["taps_flat"] = arrays["filter_time"]
    return PlanDescriptor(
        token=plan_fingerprint(plan, fft_backend, fft_workers),
        params=(
            p.n, p.k, p.B, p.loops, p.vote_threshold, p.select_count,
            p.window, p.tolerance, p.lobefrac, p.loc_loops,
        ),
        sigmas=tuple(q.sigma for q in plan.permutations),
        taus=tuple(q.tau for q in plan.permutations),
        filter_meta=(
            plan.filt.window_name, plan.filt.lobefrac,
            plan.filt.tolerance, plan.filt.box_width,
        ),
        arrays=arrays,
        fft_backend=fft_backend,
        fft_workers=fft_workers,
    )


class WorkerLease:
    """A worker process's materialized view of one shared plan.

    Holds the attached segments (keeping the pages mapped even after the
    parent unlinks), the rebuilt :class:`~repro.core.plan.SfftPlan`, and a
    private :class:`~repro.core.workspace.PlanWorkspace` whose derived
    arrays are read-only views into the shared segment and whose scratch
    is this process's own.
    """

    def __init__(self, plan, workspace, segments):
        self.plan = plan
        self.workspace = workspace
        self._segments = tuple(segments)

    def release(self) -> None:
        """Drop the plan/workspace and close the mappings."""
        self.plan = None
        self.workspace = None
        for seg in self._segments:
            _close_quietly(seg)
        self._segments = ()


def _materialize_plan(desc: PlanDescriptor, view):
    """Rebuild a real plan from a descriptor (worker side)."""
    from ..filters.base import FlatFilter
    from ..utils.modmath import mod_inverse
    from .parameters import SfftParameters
    from .permutation import Permutation
    from .plan import SfftPlan

    (n, k, B, loops, vote_threshold, select_count, window, tolerance,
     lobefrac, loc_loops) = desc.params
    params = SfftParameters(
        n=n, k=k, B=B, loops=loops, vote_threshold=vote_threshold,
        select_count=select_count, window=window, tolerance=tolerance,
        lobefrac=lobefrac, loc_loops=loc_loops,
    )
    window_name, f_lobefrac, f_tolerance, box_width = desc.filter_meta
    filt = FlatFilter(
        n=n,
        time=view("filter_time"),
        freq=view("filter_freq"),
        window_name=window_name,
        lobefrac=f_lobefrac,
        tolerance=f_tolerance,
        box_width=box_width,
    )
    perms = tuple(
        Permutation(n=n, sigma=s, sigma_inv=mod_inverse(s, n), tau=t)
        for s, t in zip(desc.sigmas, desc.taus)
    )
    return SfftPlan(params=params, filt=filt, permutations=perms)


#: token -> WorkerLease, most-recently-used last (per worker process).
_WORKER_LEASES: "OrderedDict[str, WorkerLease]" = OrderedDict()


def worker_lease(desc: PlanDescriptor) -> WorkerLease:
    """The cached (or freshly materialized) lease for a descriptor.

    This is the worker's private per-process plan cache: a hit costs a
    dict lookup; a miss attaches the plan segment, rebuilds the plan, and
    builds a workspace that adopts the shared gather/taps.  Old leases
    evict LRU at :data:`WORKER_PLAN_CACHE_CAP`, closing their mappings.
    """
    lease = _WORKER_LEASES.get(desc.token)
    if lease is not None:
        _WORKER_LEASES.move_to_end(desc.token)
        return lease

    from .workspace import PlanWorkspace

    names = sorted({spec.segment for spec in desc.arrays.values()})
    segments = []
    try:
        for nm in names:
            segments.append(_attach(nm))
        by_name = {seg.name: seg for seg in segments}

        def view(key: str) -> np.ndarray:
            spec = desc.arrays[key]
            return spec.as_array(by_name[spec.segment])

        plan = _materialize_plan(desc, view)
        workspace = PlanWorkspace(
            plan,
            fft_backend=desc.fft_backend,
            fft_workers=desc.fft_workers,
        )
        workspace.adopt_shared(
            taps_flat=view("taps_flat"),
            gather=view("gather") if "gather" in desc.arrays else None,
        )
    except BaseException:
        for seg in segments:
            _close_quietly(seg)
        raise
    lease = WorkerLease(plan, workspace, segments)
    _WORKER_LEASES[desc.token] = lease
    while len(_WORKER_LEASES) > WORKER_PLAN_CACHE_CAP:
        _, old = _WORKER_LEASES.popitem(last=False)
        old.release()
    return lease


def worker_cache_clear() -> None:
    """Release every cached lease (tests; also safe in workers)."""
    while _WORKER_LEASES:
        _, old = _WORKER_LEASES.popitem(last=False)
        old.release()
