"""Subsampled (bucket) FFT — paper step 3.

After folding, a single ``B``-point FFT turns the time-domain buckets into
frequency-domain buckets.  Because all ``L`` loops transform the same size
``B``, the GPU implementation batches them into one cuFFT call (shared
twiddle factors); the CPU path mirrors that with one vectorized call over a
``(L, B)`` array, routed through the pluggable backend registry
(:mod:`repro.core.fft_backend`) so the vendor FFT is swappable exactly as
cuFFT/FFTW are in the paper's builds.

The *fold-subsample identity* (tested) is what makes this legitimate:
``fft_B(fold_B(y)) == fft_n(y)[::n//B]`` for any length-``n`` ``y``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError
from .fft_backend import get_backend

__all__ = ["bucket_fft", "subsample_spectrum"]


@shape_contract("buckets:* -> *", dtype="complex128")
def bucket_fft(
    buckets: np.ndarray,
    *,
    backend: str | None = None,
    workers: int = 1,
) -> np.ndarray:
    """FFT the buckets of one loop (1-D) or all loops batched (2-D, last axis).

    Matches the batched-cuFFT call of the paper's step 3.  ``backend``
    names a registered FFT backend (default: the process default — see
    :func:`repro.core.fft_backend.get_backend`); ``workers`` is the
    intra-call thread fan-out for backends that support it.
    """
    b = np.asarray(buckets, dtype=np.complex128)
    if b.ndim not in (1, 2):
        raise ParameterError(f"buckets must be 1-D or 2-D, got shape {b.shape}")
    return get_backend(backend).fft(b, axis=-1, workers=workers)


@shape_contract("spectrum:*, B:* -> (b,)", bind={"b": "B"})
def subsample_spectrum(spectrum: np.ndarray, B: int) -> np.ndarray:
    """Reference: take every ``n/B``-th bin of a dense length-``n`` spectrum.

    Used by tests to validate the fold-subsample identity; never on the hot
    path (it needs the dense spectrum).
    """
    spec = np.asarray(spectrum)
    n = spec.size
    if B < 1 or n % B != 0:
        raise ParameterError(f"B={B} must divide n={n}")
    return spec[:: n // B].copy()
