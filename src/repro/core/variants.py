"""Transform variants built on the core driver: inverse, real-input, batch.

These are the convenience surface a downstream user expects from an FFT
library, expressed through the forward sparse transform:

* **inverse** — ``ifft(x)[t] = conj(fft(conj(x)))[t] / n``, so a sparse
  inverse costs exactly one forward sparse transform;
* **real-input** — a real signal's spectrum is conjugate-symmetric,
  ``xhat[n-f] = conj(xhat[f])``; the recovered coefficients are symmetrized
  (pairing mirror frequencies and averaging) which both halves the noise on
  each estimate and guarantees an exactly-real reconstruction;
* **batch** — many signals under one plan (plan reuse is where the
  sub-linear asymptotics pay off).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..utils.rng import RngLike
from ..utils.validation import as_complex_signal
from .batch import sfft_batch_fused
from .params import resolve_sfft_config
from .plan import SfftPlan
from .plan_cache import cached_plan
from .sfft import SparseFFTResult, sfft

__all__ = ["isfft", "rsfft", "sfft_batch"]


def isfft(x, k: int | None = None, **kwargs) -> SparseFFTResult:
    """Sparse *inverse* DFT: the k significant entries of ``numpy.fft.ifft(x)``.

    Accepts the same arguments as :func:`~repro.core.sfft.sfft`.  The
    returned ``locations`` index time samples and ``values`` are on the
    ``ifft`` scale (including the ``1/n`` factor).
    """
    x = as_complex_signal(x)
    res = sfft(np.conj(x), k, **kwargs)
    return SparseFFTResult(
        n=res.n,
        locations=res.locations,
        values=np.conj(res.values) / res.n,
        votes=res.votes,
        step_times=res.step_times,
    )


def rsfft(x, k: int | None = None, **kwargs) -> SparseFFTResult:
    """Sparse FFT of a *real* signal with conjugate symmetry enforced.

    ``k`` counts total coefficients (mirror pairs included, as a dense FFT
    would report them).  Mirror pairs ``(f, n-f)`` are symmetrized:
    ``v[f] <- (v[f] + conj(v[n-f])) / 2``; a recovered frequency whose
    mirror was missed donates its conjugate, so the output support is
    always symmetric and ``ifft`` of the dense form is exactly real.
    """
    arr = np.asarray(x)
    if np.iscomplexobj(arr) and np.abs(arr.imag).max() > 0:
        raise ParameterError("rsfft expects a real signal")
    res = sfft(arr.real, k, **kwargs)
    n = res.n

    found = res.as_dict()
    votes = {int(f): int(v) for f, v in zip(res.locations, res.votes)}
    sym: dict[int, complex] = {}
    for f, v in found.items():
        mirror = (-f) % n
        if f in sym:
            continue
        if mirror == f:  # DC or Nyquist: must be real
            sym[f] = complex(v.real, 0.0)
        elif mirror in found:
            avg = (v + np.conj(found[mirror])) / 2.0
            sym[f] = complex(avg)
            sym[mirror] = complex(np.conj(avg))
        else:
            sym[f] = complex(v)
            sym[mirror] = complex(np.conj(v))

    locs = np.array(sorted(sym), dtype=np.int64)
    vals = np.array([sym[int(f)] for f in locs], dtype=np.complex128)
    vts = np.array([votes.get(int(f), votes.get(int((-f) % n), 0)) for f in locs])
    return SparseFFTResult(
        n=n, locations=locs, values=vals, votes=vts, step_times=res.step_times
    )


_EXEC_KEYS = ("binning", "cutoff_method", "comb_width", "comb_loops",
              "trim_to_k", "strict", "profile", "fft_backend", "fft_workers")


def sfft_batch(
    signals,
    k: int | None = None,
    *,
    plan: SfftPlan | None = None,
    seed: RngLike = None,
    executor=None,
    **kwargs,
) -> list[SparseFFTResult]:
    """Transform a batch of equal-length signals under one shared plan.

    ``signals`` is a ``(batch, n)`` array or a sequence of length-``n``
    arrays.  The plan (filter + permutation schedule) comes from the
    process-level cache when not supplied; the stack then runs through the
    fused batch engine (:mod:`repro.core.batch`) — one gather, one
    ``(S*L, B)`` bucket FFT, one vote pass for every signal.  Per-signal
    results match ``sfft(signals[s], plan=plan)`` exactly.

    ``executor`` parallelizes the fused engine across shards of the stack:
    pass a :class:`~repro.core.executor.ShardedExecutor`, or an ``int``
    worker count as shorthand for ``ShardedExecutor(workers=N)`` (the
    shorthand inherits the executor's default mode — ``thread``, or
    whatever ``REPRO_EXECUTOR_MODE`` says; construct the executor
    explicitly for ``mode="process"``, the shared-memory process pool).
    Sharded results are bit-identical to the serial fused engine in every
    mode.  ``fft_backend`` / ``fft_workers`` keyword arguments select the
    bucket-FFT implementation (:mod:`repro.core.fft_backend`).

    Requests the fused engine cannot express (an explicit non-default
    ``binning``, or ``profile=True`` for per-step timing) fall back to the
    per-signal driver loop — ignoring ``executor`` — preserving the old
    semantics.
    """
    if isinstance(signals, np.ndarray):
        # Rows of a contiguous stack validate without copying; the fused
        # engine consumes the original array as-is.
        stack = np.atleast_2d(signals)
        rows = [as_complex_signal(s) for s in stack]
        if stack.dtype != np.complex128 or not stack.flags.c_contiguous:
            stack = np.stack(rows)
    else:
        rows = [as_complex_signal(s) for s in signals]
        stack = None
    if not rows:
        raise ParameterError("batch must contain at least one signal")
    n = rows[0].size
    for r in rows:
        if r.size != n:
            raise ParameterError("all batch signals must share one length")
    if plan is None:
        if k is None:
            raise ParameterError("either k or a plan must be provided")
        plan_kwargs = {
            key: val for key, val in kwargs.items() if key not in _EXEC_KEYS
        }
        # The resolution seam (repro.core.params): a wisdom hit supplies
        # B/loops/comb for the plan plus — because the batch surface owns
        # them — the execution knobs (backend, executor mode, workers,
        # shard size), never overriding anything the caller pinned.
        resolved = resolve_sfft_config(
            n, k, batch_size=len(rows), explicit=plan_kwargs,
            comb_width=kwargs.get("comb_width"),
        )
        plan = cached_plan(n, k, seed=seed, **resolved.overrides)
        if resolved.source == "wisdom":
            if kwargs.get("comb_width") is None \
                    and resolved.comb_width is not None:
                kwargs["comb_width"] = resolved.comb_width
            explicit_exec = (
                executor is not None
                or kwargs.get("fft_backend") is not None
                or kwargs.get("fft_workers") is not None
            )
            if not explicit_exec:
                if resolved.executor_mode is not None or resolved.workers > 1:
                    from .executor import ShardedExecutor

                    executor = ShardedExecutor(
                        workers=resolved.workers,
                        shard_size=resolved.shard_size,
                        fft_backend=resolved.fft_backend,
                        mode=resolved.executor_mode,
                    )
                elif resolved.fft_backend is not None:
                    kwargs["fft_backend"] = resolved.fft_backend
    exec_kwargs = {
        key: val for key, val in kwargs.items() if key in _EXEC_KEYS
    }
    fused_ok = (
        exec_kwargs.get("binning", "vectorized") == "vectorized"
        and not exec_kwargs.get("profile", False)
    )
    if fused_ok:
        exec_kwargs.pop("binning", None)
        exec_kwargs.pop("profile", None)
        X = stack if stack is not None else np.stack(rows)
        if executor is not None:
            from .executor import ShardedExecutor

            if isinstance(executor, int):
                executor = ShardedExecutor(workers=executor)
            if not isinstance(executor, ShardedExecutor):
                raise ParameterError(
                    f"executor must be a ShardedExecutor or an int worker "
                    f"count, got {type(executor).__name__}"
                )
            # The executor owns its FFT-backend binding; per-call
            # fft_backend/fft_workers would silently fight it.
            for key in ("fft_backend", "fft_workers"):
                if key in exec_kwargs:
                    raise ParameterError(
                        f"pass {key} to the ShardedExecutor, not alongside "
                        f"executor="
                    )
            return executor.run(X, plan, seed=seed, **exec_kwargs)
        return sfft_batch_fused(X, plan, seed=seed, **exec_kwargs)
    exec_kwargs.pop("fft_backend", None)
    exec_kwargs.pop("fft_workers", None)
    return [sfft(r, plan=plan, seed=seed, **exec_kwargs) for r in rows]
