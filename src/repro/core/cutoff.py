"""Cutoff — keep the buckets that plausibly hold large coefficients (step 4).

Two strategies, matching the paper:

* :func:`select_topk` — the baseline *sort & select* (Algorithm 3): exact
  top-``m`` bucket magnitudes.  On the GPU this is a Thrust
  ``sort_by_key``; here an ``argpartition`` (O(B)) gives identical output
  without the full sort.
* :func:`select_threshold` — the optimized *fast k-selection*
  (Algorithm 6): one pass keeping every bucket above a noise-floor
  threshold.  Linear time, no sort; may return slightly more than ``m``
  buckets, which downstream voting absorbs (the paper: "this approach will
  yield slightly more than the number of k elements, but this is ignored").

:func:`noise_floor_threshold` picks the threshold from the bucket-magnitude
statistics themselves: with ``B >> k``, the median bucket magnitude *is* the
noise level, so a constant multiple of it separates signal from noise — the
"empirically obtained" threshold of Section V-B made deterministic.
"""

from __future__ import annotations

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError

__all__ = [
    "select_topk",
    "noise_floor_threshold",
    "select_threshold",
    "cutoff",
    "cutoff_rows",
]


@shape_contract("magnitudes:*, m:* -> *", dtype="int64")
def select_topk(magnitudes: np.ndarray, m: int) -> np.ndarray:
    """Indices of the ``m`` largest entries (unordered), exact.

    Equivalent to the paper's Algorithm 3 (sort descending, take ``m``)
    but via partial selection.
    """
    mags = np.asarray(magnitudes)
    if mags.ndim != 1:
        raise ParameterError(f"magnitudes must be 1-D, got shape {mags.shape}")
    if not 1 <= m <= mags.size:
        raise ParameterError(f"m={m} must be in [1, {mags.size}]")
    if m == mags.size:
        return np.arange(mags.size, dtype=np.int64)
    return np.argpartition(mags, -m)[-m:].astype(np.int64)


def noise_floor_threshold(magnitudes: np.ndarray, factor: float = 4.0) -> float:
    """Noise-floor estimate: ``factor`` times the median bucket magnitude.

    Robust because at most ~``k`` of the ``B >> 2k`` buckets hold signal, so
    the median is untouched by them.
    """
    mags = np.asarray(magnitudes)
    if mags.size == 0:
        raise ParameterError("cannot estimate a threshold from zero buckets")
    if factor <= 0:
        raise ParameterError(f"factor must be positive, got {factor}")
    return float(factor * np.median(mags))


@shape_contract("magnitudes:*, threshold:* -> *", dtype="int64")
def select_threshold(
    magnitudes: np.ndarray,
    threshold: float,
    *,
    cap: int | None = None,
) -> np.ndarray:
    """Indices with magnitude strictly above ``threshold`` (Algorithm 6).

    ``cap`` bounds the output size: if the threshold proved too permissive
    (more than ``cap`` survivors), the largest ``cap`` are kept — the
    safety net for the "threshold too small" failure mode the paper warns
    about.
    """
    mags = np.asarray(magnitudes)
    if mags.ndim != 1:
        raise ParameterError(f"magnitudes must be 1-D, got shape {mags.shape}")
    chosen = np.flatnonzero(mags > threshold).astype(np.int64)
    if cap is not None and chosen.size > cap:
        order = np.argpartition(mags[chosen], -cap)[-cap:]
        chosen = chosen[order]
    return chosen


@shape_contract("magnitudes:*, m:* -> *", dtype="int64")
def cutoff(
    magnitudes: np.ndarray,
    m: int,
    *,
    method: str = "topk",
    threshold_factor: float = 4.0,
    cap_factor: int = 4,
) -> np.ndarray:
    """Unified cutoff entry point used by the transforms.

    ``method="topk"`` is the exact baseline; ``method="threshold"`` the fast
    single-pass variant with a ``cap_factor * m`` survivor cap and a top-k
    fallback when the threshold keeps *fewer* than ``m`` buckets (threshold
    too large — the other failure mode of Section V-B).
    """
    if method == "topk":
        return select_topk(magnitudes, m)
    if method == "threshold":
        thr = noise_floor_threshold(magnitudes, threshold_factor)
        chosen = select_threshold(magnitudes, thr, cap=cap_factor * m)
        if chosen.size < m:
            return select_topk(magnitudes, m)
        return chosen
    raise ParameterError(f"unknown cutoff method {method!r}")


@shape_contract("magnitudes:(R, B), m:* -> *")
def cutoff_rows(
    magnitudes: np.ndarray,
    m: int,
    *,
    method: str = "topk",
    threshold_factor: float = 4.0,
    cap_factor: int = 4,
) -> list[np.ndarray]:
    """Per-row cutoff over a 2-D magnitude matrix — one call, all loops.

    The fused execution engine computes ``|Z|`` for every voting row at
    once (a ``(rows, B)`` matrix spanning all loops, and all signals in the
    batched case) and selects here with a single batched ``argpartition``
    instead of a Python-level loop of :func:`select_topk` calls.  Row ``r``
    of the result is element-for-element what ``cutoff(magnitudes[r], m,
    method=...)`` returns.

    ``method="threshold"`` stays per-row (its noise floor is a data-
    dependent median of each row).
    """
    mags = np.asarray(magnitudes)
    if mags.ndim != 2:
        raise ParameterError(f"magnitudes must be 2-D, got shape {mags.shape}")
    B = mags.shape[1]
    if method == "threshold":
        return [
            cutoff(row, m, method="threshold",
                   threshold_factor=threshold_factor, cap_factor=cap_factor)
            for row in mags
        ]
    if method != "topk":
        raise ParameterError(f"unknown cutoff method {method!r}")
    if not 1 <= m <= B:
        raise ParameterError(f"m={m} must be in [1, {B}]")
    if m == B:
        return [np.arange(B, dtype=np.int64) for _ in range(mags.shape[0])]
    chosen = np.argpartition(mags, -m, axis=1)[:, -m:].astype(np.int64)
    return list(chosen)
