"""Permutation + filtering + folding into buckets (paper steps 1-2).

Three formulations of the same computation, kept deliberately separate:

* :func:`bin_serial` — the paper's Algorithm 1, a literal serial loop with
  the ``index`` recurrence.  Reference semantics; used by tests only.
* :func:`bin_vectorized` — index mapping (Figure 3) plus a reshape-sum fold.
  This is the production CPU path.
* :func:`bin_loop_partition` — the paper's Algorithm 2: outer loop over the
  ``B`` buckets (one CUDA thread each), inner loop over ``w/B`` rounds.
  Collision-free by construction (within a round, bucket indices are the
  distinct ``0..B-1``), so no atomics and no per-thread sub-histograms.
  The NumPy realization iterates rounds and vectorizes across "threads",
  mirroring the kernel's access pattern round-for-round.

All three produce identical buckets:
``buckets[j] = sum_{i ≡ j (mod B)} x[(sigma*i + tau) % n] * filter[i]``.
The B-point FFT of those buckets equals the length-``n`` spectrum of the
filtered permuted signal subsampled at multiples of ``n/B`` (tested as the
"fold-subsample identity").
"""

from __future__ import annotations

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError
from ..filters.base import FlatFilter
from .permutation import Permutation, permuted_indices

__all__ = ["bin_serial", "bin_vectorized", "bin_loop_partition"]


def _check_args(x: np.ndarray, filt: FlatFilter, B: int, perm: Permutation) -> None:
    if x.size != filt.n or x.size != perm.n:
        raise ParameterError(
            f"signal length {x.size} inconsistent with filter n={filt.n} / perm n={perm.n}"
        )
    if B < 1 or filt.n % B != 0:
        raise ParameterError(f"B={B} must divide n={filt.n}")


@shape_contract("x:(n,) -> (B,)", dtype="complex128",
                bind={"n": "perm.n", "B": "B", "W": "filt.width"},
                attrs={"filt.time": "(W,):complex128"})
def bin_serial(
    x: np.ndarray, filt: FlatFilter, B: int, perm: Permutation
) -> np.ndarray:
    """Algorithm 1 verbatim: serial loop with the loop-carried ``index``.

    O(w) Python-level iterations — use only for small test cases.
    """
    _check_args(x, filt, B, perm)
    n = x.size
    buckets = np.zeros(B, dtype=np.complex128)
    index = perm.tau % n
    for i in range(filt.width):
        buckets[i % B] += x[index] * filt.time[i]
        index = (index + perm.sigma) % n
    return buckets


@shape_contract("x:(n,) -> (B,)", dtype="complex128",
                bind={"n": "perm.n", "B": "B", "W": "filt.width"},
                attrs={"filt.time": "(W,):complex128"})
def bin_vectorized(
    x: np.ndarray, filt: FlatFilter, B: int, perm: Permutation
) -> np.ndarray:
    """Index-mapped gather + reshape-sum fold.  Production CPU path.

    ``w`` need not be a multiple of ``B``, but plans always pad taps to one
    (``pad_to_multiple=B``), so the production case folds the gather output
    in place — the zero-tail copy only runs for ad-hoc unpadded filters.
    """
    _check_args(x, filt, B, perm)
    w = filt.width
    y = x[permuted_indices(perm, w)]
    y *= filt.time
    rounds = -(-w // B)
    if rounds * B != w:
        y = np.concatenate([y, np.zeros(rounds * B - w, dtype=np.complex128)])
    return y.reshape(rounds, B).sum(axis=0)


@shape_contract("x:(n,) -> (B,)", dtype="complex128",
                bind={"n": "perm.n", "B": "B", "W": "filt.width"},
                attrs={"filt.time": "(W,):complex128"})
def bin_loop_partition(
    x: np.ndarray, filt: FlatFilter, B: int, perm: Permutation
) -> np.ndarray:
    """Algorithm 2 structure: one "thread" per bucket, ``w/B`` rounds each.

    Follows the kernel loop shape exactly (round-major accumulation into a
    per-thread register ``myBucket``); each round ``j`` reads signal indices
    ``((tid + B*j)*sigma + tau) % n`` for all ``tid`` — the strided pattern
    the asynchronous layout transformation later coalesces.
    """
    _check_args(x, filt, B, perm)
    w = filt.width
    rounds = -(-w // B)
    tid = np.arange(B, dtype=np.int64)
    my_bucket = np.zeros(B, dtype=np.complex128)
    if rounds * B == w:
        # Plans pad taps to a multiple of B: every round is full, so the
        # whole tap schedule is one reshape — no per-round mask or zeros.
        tap_rounds = filt.time.reshape(rounds, B)
        for j in range(rounds):
            idx = ((tid + B * j) * perm.sigma + perm.tau) % perm.n
            my_bucket += x[idx] * tap_rounds[j]
        return my_bucket
    for j in range(rounds):
        off = tid + B * j
        live = off < w
        idx = (off * perm.sigma + perm.tau) % perm.n
        taps = np.zeros(B, dtype=np.complex128)
        taps[live] = filt.time[off[live]]
        my_bucket += x[idx] * taps
    return my_bucket
