"""Random spectrum permutation (paper Section III step 1, Definition 1).

Reading the signal at stride ``sigma`` with offset ``tau`` —
``y[i] = x[(sigma*i + tau) % n]`` — relabels the spectrum: the coefficient at
frequency ``f`` moves to ``(sigma*f) % n`` and picks up the phase
``exp(2j*pi*tau*f/n)``.  A random invertible ``sigma`` therefore scatters
adjacent spectral coefficients far apart, so each lands in its own bucket.

This module provides the closed-form *index mapping* of the paper's Figure 3
(the parallelizable form of the serial ``index = (index + step) % n``
recurrence) and a dense reference permutation used by tests to check
Definition 1 numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError
from ..utils.modmath import gcd, mod_inverse, mod_mult_range, random_invertible
from ..utils.rng import RngLike, ensure_rng

__all__ = ["Permutation", "random_permutation", "permuted_indices", "permute_dense"]


@dataclass(frozen=True)
class Permutation:
    """One loop's permutation parameters ``(sigma, sigma_inv, tau)``.

    ``sigma`` is the time-domain stride (equal to the frequency-domain
    dilation), ``sigma_inv`` its inverse mod ``n`` (used by location recovery
    to map permuted positions back), and ``tau`` the time offset (a linear
    phase in frequency, undone during estimation).
    """

    n: int
    sigma: int
    sigma_inv: int
    tau: int

    def __post_init__(self) -> None:
        if gcd(self.sigma, self.n) != 1:
            raise ParameterError(f"sigma={self.sigma} not invertible mod n={self.n}")
        if (self.sigma * self.sigma_inv) % self.n != 1:
            raise ParameterError("sigma_inv is not the inverse of sigma")
        if not 0 <= self.tau < self.n:
            raise ParameterError(f"tau={self.tau} out of range [0, {self.n})")

    def source_frequency(self, permuted: np.ndarray) -> np.ndarray:
        """Map permuted spectral positions back to original frequencies."""
        p = np.asarray(permuted, dtype=np.int64)
        return (p * self.sigma_inv) % self.n

    def permuted_frequency(self, original: np.ndarray) -> np.ndarray:
        """Map original frequencies to their permuted spectral positions."""
        f = np.asarray(original, dtype=np.int64)
        return (f * self.sigma) % self.n

    def phase_correction(self, frequencies: np.ndarray) -> np.ndarray:
        """``exp(-2j*pi*tau*f/n)`` — undoes the permutation's phase twist."""
        f = np.asarray(frequencies, dtype=np.float64)
        return np.exp(-2j * np.pi * self.tau * f / self.n)


def random_permutation(n: int, rng: RngLike = None) -> Permutation:
    """Draw a uniformly random spectral permutation for size ``n``."""
    gen = ensure_rng(rng)
    sigma = random_invertible(n, gen)
    tau = int(gen.integers(0, n))
    return Permutation(n=n, sigma=sigma, sigma_inv=mod_inverse(sigma, n), tau=tau)


@shape_contract("perm:*, count:* -> (count,)", dtype="int64",
                bind={"count": "count"})
def permuted_indices(perm: Permutation, count: int) -> np.ndarray:
    """Signal indices touched by the first ``count`` filter taps.

    This is the index-mapped (Figure 3) form: ``(i*sigma + tau) % n`` as a
    closed form on the loop iterator — each entry independent, hence
    parallelizable — rather than the serial recurrence of Algorithm 1.
    """
    return mod_mult_range(perm.tau, count, perm.sigma, perm.n)


@shape_contract("x:(n,) -> (n,)", bind={"n": "perm.n"})
def permute_dense(x: np.ndarray, perm: Permutation) -> np.ndarray:
    """Full-length permuted signal ``y[i] = x[(sigma*i + tau) % n]``.

    O(n) — reference/diagnostic only; the transform itself never materializes
    this (it reads just ``w`` permuted samples through the filter).
    """
    x = np.asarray(x)
    if x.size != perm.n:
        raise ParameterError(f"signal length {x.size} != permutation n={perm.n}")
    return x[permuted_indices(perm, perm.n)]
