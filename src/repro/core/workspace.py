"""Per-plan execution workspaces — allocate once, transform many times.

A :class:`~repro.core.plan.SfftPlan` holds everything that is *logically*
reusable across executions (filter, permutation schedule); this module holds
everything that is *physically* reusable: the derived index matrices and the
scratch buffers the hot path would otherwise rebuild per call.

For one plan the workspace precomputes

* the ``(L, w)`` **gather-index matrix** — each row is the permuted signal
  index stream ``(i*sigma_r + tau_r) mod n`` of loop ``r``, the closed-form
  index mapping of the paper's Figure 3 materialized for all loops at once;
* the **padded tap matrix** — the filter taps zero-extended to ``rounds*B``
  and reshaped ``(rounds, B)``, the exact layout Algorithm 2's loop-partition
  kernel reads round by round;
* **scratch buffers** — the raw ``(L, B)`` time-domain bucket matrix and the
  ``int16`` vote-score array the recovery step accumulates into.

With those in place, :meth:`PlanWorkspace.bin_fused` performs the paper's
steps 1-2 for *all* ``L`` loops as one fancy-indexed gather plus one
reshape-sum — no Python-level loop over loops, no per-call allocation — and
:meth:`PlanWorkspace.bin_fused_stack` extends the same fusion over a stack
of ``S`` signals for the batched engine (:mod:`repro.core.batch`).

This is the CPU analog of ``cusim``'s
:class:`~repro.cusim.memory_pool.DeviceMemoryPool`: device codes keep
per-plan index/scratch arrays resident between launches for the same
reason.

Workspaces are cached on their plan (see
:meth:`repro.core.plan.SfftPlan.workspace`) and are **not thread-safe** —
the scratch buffers are shared state.  Concurrent executors call
:meth:`PlanWorkspace.clone` for a private twin per worker: the immutable
derived arrays (gather matrix, tap layout) are *shared* while the scratch
buffers are fresh, so an N-worker pool pays the index precomputation once.
:meth:`SfftPlan.reseeded` returns a *new* plan object, so a reseeded
schedule never sees a stale gather matrix.

Taking the :data:`GATHER_ELEMENT_CAP` fallback (regenerating gather rows on
the fly instead of materializing the index matrix) is visible as the
``sfft.workspace.gather_cap_fallback`` counter in the global metrics
registry — the path trades speed for footprint and should never engage
silently.
"""

from __future__ import annotations

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError
from .permutation import permuted_indices
from .subsampled import bucket_fft as _dispatch_bucket_fft

__all__ = ["PlanWorkspace", "GATHER_ELEMENT_CAP"]

#: Above this many gather-matrix elements (``L * w``) the workspace stops
#: materializing the ``(L, w)`` index matrix and regenerates rows on the
#: fly instead — the asymptotic regime where the index matrix would rival
#: the signal itself in footprint (int64 gather entries are 8 bytes each).
GATHER_ELEMENT_CAP = 1 << 25

#: Per-chunk budget (complex elements) for the stacked gather intermediate.
#: One giant ``(S, L, w)`` gather output defeats the cache it is trying to
#: feed — measured on the bench workload (n=2^18, S=16), whole-stack
#: gathers run ~3x slower than cache-sized chunks.  2^17 complex elements
#: is 2 MB: small plans still gather many signals per chunk, large plans
#: degrade gracefully to one signal at a time.
STACK_CHUNK_ELEMENTS = 1 << 17


class PlanWorkspace:
    """Precomputed gather indices, tap layout, and scratch for one plan.

    Parameters
    ----------
    plan:
        The :class:`~repro.core.plan.SfftPlan` to execute.  The workspace
        snapshots the plan's permutations and filter at construction; it
        must be rebuilt for a reseeded plan (``plan.reseeded()`` returns a
        fresh plan whose :meth:`~repro.core.plan.SfftPlan.workspace` does
        exactly that).
    gather_cap:
        Override for :data:`GATHER_ELEMENT_CAP` (tests exercise the
        fallback path without paying for a huge plan).
    fft_backend:
        Name of the FFT backend :meth:`bucket_fft` resolves (``None`` =
        process default); ``fft_workers`` is its intra-call thread fan-out.
    """

    def __init__(
        self,
        plan,
        *,
        gather_cap: int | None = None,
        fft_backend: str | None = None,
        fft_workers: int = 1,
    ):
        params = plan.params
        self.plan = plan
        self.n = params.n
        self.B = params.B
        self.loops = params.loops
        self.width = plan.filt.width
        self.rounds = plan.rounds
        self._padded = self.rounds * self.B
        self._gather_cap = GATHER_ELEMENT_CAP if gather_cap is None \
            else int(gather_cap)
        self._materialize_gather = (
            self.loops * self._padded <= self._gather_cap
        )
        if not self._materialize_gather:
            # Regenerating rows on the fly is a graceful degradation, not a
            # silent one: surface it in the shared metrics registry.
            from ..obs import global_registry

            global_registry().counter(
                "sfft.workspace.gather_cap_fallback"
            ).inc()
        self.fft_backend = fft_backend
        self.fft_workers = int(fft_workers)
        self._gather: np.ndarray | None = None
        self._taps_flat: np.ndarray | None = None
        self._taps_matrix: np.ndarray | None = None
        #: raw time-domain bucket scratch, one row per loop
        self.raw = np.empty((self.loops, self.B), dtype=np.complex128)
        #: vote-score scratch (int16: scores are bounded by the loop count)
        self.scores = np.zeros(self.n, dtype=np.int16)

    # -- derived arrays (lazy) ---------------------------------------------

    @property
    def taps_flat(self) -> np.ndarray:
        """Filter taps zero-extended to ``rounds * B`` (often a no-copy view)."""
        if self._taps_flat is None:
            time = self.plan.filt.time
            if time.size == self._padded:
                self._taps_flat = time
            else:
                padded = np.zeros(self._padded, dtype=np.complex128)
                padded[: time.size] = time
                self._taps_flat = padded
        return self._taps_flat

    @property
    def taps_matrix(self) -> np.ndarray:
        """The padded taps reshaped ``(rounds, B)`` — Algorithm 2's layout."""
        if self._taps_matrix is None:
            self._taps_matrix = self.taps_flat.reshape(self.rounds, self.B)
        return self._taps_matrix

    @property
    def gather(self) -> np.ndarray | None:
        """The ``(L, rounds*B)`` gather-index matrix, or ``None`` above cap.

        Row ``r`` holds ``(i*sigma_r + tau_r) mod n`` for ``i`` in
        ``range(rounds*B)``; entries past the true filter width ``w`` are
        still valid indices but meet zero taps, so their gathers contribute
        nothing.
        """
        if self._gather is None and self._materialize_gather:
            self._gather = np.stack(
                [self._gather_row(r) for r in range(self.loops)]
            )
        return self._gather

    @shape_contract(
        "r:* -> (rounds*B,)", dtype="int64",
        bind={"rounds": "self.rounds", "B": "self.B"},
        attrs={"self._padded": "rounds*B"},
    )
    def _gather_row(self, r: int) -> np.ndarray:
        return permuted_indices(self.plan.permutations[r], self._padded)

    # -- memory accounting -------------------------------------------------

    def memory_breakdown(self) -> dict[str, int]:
        """Current footprint in bytes, split the way :meth:`clone` shares.

        Counts only *materialized* arrays (the lazy gather/tap properties
        stay at zero until first touched, so accounting never forces an
        allocation).  ``gather_bytes`` and ``tap_bytes`` are the immutable
        arrays clones share; ``scratch_bytes`` is the private per-worker
        part.  ``tap_bytes`` is 0 when :attr:`taps_flat` resolved to a
        no-copy view of the plan's own filter (the plan already owns those
        bytes); the reshaped :attr:`taps_matrix` is always a view and never
        counted.
        """
        gather_bytes = 0 if self._gather is None else int(self._gather.nbytes)
        tap_bytes = 0
        if self._taps_flat is not None \
                and self._taps_flat is not self.plan.filt.time:
            tap_bytes = int(self._taps_flat.nbytes)
        scratch_bytes = int(self.raw.nbytes) + int(self.scores.nbytes)
        return {
            "gather_bytes": gather_bytes,
            "tap_bytes": tap_bytes,
            "scratch_bytes": scratch_bytes,
            "total_bytes": gather_bytes + tap_bytes + scratch_bytes,
        }

    # -- concurrency -------------------------------------------------------

    def clone(
        self,
        *,
        fft_backend: str | None = None,
        fft_workers: int | None = None,
    ) -> "PlanWorkspace":
        """A private twin for a concurrent worker: shared indices, own scratch.

        The derived arrays (gather matrix, padded taps) are immutable on
        the hot path, so the clone *shares* them — an N-worker pool pays
        index precomputation once — while the mutable scratch (``raw``,
        ``scores``) is freshly allocated per clone.  ``fft_backend`` /
        ``fft_workers`` override the parent's FFT dispatch for this clone.
        """
        if self._materialize_gather:
            _ = self.gather  # build once here, before sharing
        _ = self.taps_flat
        twin = PlanWorkspace(
            self.plan,
            gather_cap=self._gather_cap,
            fft_backend=self.fft_backend if fft_backend is None
            else fft_backend,
            fft_workers=self.fft_workers if fft_workers is None
            else fft_workers,
        )
        twin._gather = self._gather
        twin._taps_flat = self._taps_flat
        twin._taps_matrix = self._taps_matrix
        return twin

    def adopt_shared(
        self,
        *,
        taps_flat: np.ndarray,
        gather: np.ndarray | None = None,
    ) -> None:
        """Adopt externally shared derived arrays (process-pool workers).

        The process execution mode (:mod:`repro.core.executor`,
        ``mode="process"``) places the immutable derived arrays in
        shared memory; worker processes rebuild their workspace around
        read-only views of those segments instead of recomputing them —
        the cross-process twin of what :meth:`clone` does for threads.
        Scratch (``raw``, ``scores``) stays private to this instance.

        ``gather=None`` leaves the gather matrix unmaterialized (the
        above-cap regime, where rows regenerate on the fly); shapes and
        dtypes are validated against this workspace's plan so a stale
        descriptor fails loudly instead of corrupting the transform.
        """
        expected = (self._padded,)
        if taps_flat.shape != expected or taps_flat.dtype != np.complex128:
            raise ParameterError(
                f"shared taps_flat must be complex128 {expected}, got "
                f"{taps_flat.dtype} {taps_flat.shape}"
            )
        self._taps_flat = taps_flat
        self._taps_matrix = taps_flat.reshape(self.rounds, self.B)
        if gather is not None:
            gshape = (self.loops, self._padded)
            if gather.shape != gshape or gather.dtype != np.int64:
                raise ParameterError(
                    f"shared gather matrix must be int64 {gshape}, got "
                    f"{gather.dtype} {gather.shape}"
                )
            self._gather = gather
            self._materialize_gather = True

    # -- bucket FFT dispatch -----------------------------------------------

    @shape_contract("buckets:(M, K) -> (M, K)", dtype="complex128")
    def bucket_fft(self, buckets: np.ndarray) -> np.ndarray:
        """Step 3 through this workspace's FFT backend binding.

        Same transform as :func:`repro.core.subsampled.bucket_fft`, with
        the backend/worker fan-out chosen at workspace construction (the
        sharded executor binds them per worker).
        """
        return _dispatch_bucket_fft(
            buckets, backend=self.fft_backend, workers=self.fft_workers
        )

    # -- fused binning -----------------------------------------------------

    @shape_contract(
        "x:(n,) -> (L, B)", dtype="complex128",
        bind={"n": "self.n", "L": "self.loops", "B": "self.B",
              "rounds": "self.rounds"},
        attrs={"self.raw": "(L, B):complex128",
               "self.gather": "(L, rounds*B):int64",
               "self.taps_flat": "(rounds*B,):complex128",
               "self._padded": "rounds*B"},
    )
    def bin_fused(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Steps 1-2 for all ``L`` loops at once: gather, tap, fold.

        One ``(L, rounds*B)`` fancy-indexed gather replaces the per-loop
        binner calls; the reshape-sum fold produces the same ``(L, B)``
        bucket matrix as ``L`` :func:`~repro.core.binning.bin_vectorized`
        calls (row for row).  With ``out`` omitted the plan-owned scratch
        is reused, so steady-state executions allocate nothing here.
        """
        if x.size != self.n:
            raise ParameterError(
                f"signal length {x.size} != plan n={self.n}"
            )
        buckets = self.raw if out is None else out
        if buckets.shape != (self.loops, self.B):
            raise ParameterError(
                f"out must have shape {(self.loops, self.B)}, got {buckets.shape}"
            )
        gather = self.gather
        if gather is not None:
            y = x[gather]
            y *= self.taps_flat
            np.sum(y.reshape(self.loops, self.rounds, self.B), axis=1,
                   out=buckets)
        else:
            taps = self.taps_flat
            for r in range(self.loops):
                y = x[self._gather_row(r)]
                y *= taps
                np.sum(y.reshape(self.rounds, self.B), axis=0,
                       out=buckets[r])
        return buckets

    @shape_contract(
        "X:(S, n) -> (S, L, B)", dtype="complex128",
        bind={"n": "self.n", "L": "self.loops", "B": "self.B",
              "rounds": "self.rounds"},
        attrs={"self.gather": "(L, rounds*B):int64",
               "self.taps_flat": "(rounds*B,):complex128",
               "self._padded": "rounds*B"},
    )
    def bin_fused_stack(self, X: np.ndarray) -> np.ndarray:
        """Fused binning over an ``(S, n)`` signal stack -> ``(S, L, B)``.

        Per-signal rows are identical to :meth:`bin_fused` on that signal;
        the stack form exists so the batched engine gathers whole chunks of
        the batch at once.  Chunking (see :data:`STACK_CHUNK_ELEMENTS`)
        bounds the gather intermediate so the fold stays cache-resident
        even for large stacks.
        """
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != self.n:
            raise ParameterError(
                f"signal stack must be (S, {self.n}), got {X.shape}"
            )
        S = X.shape[0]
        gather = self.gather
        out = np.empty((S, self.loops, self.B), dtype=np.complex128)
        if gather is None:
            for s in range(S):
                self.bin_fused(X[s], out=out[s])
            return out
        per_signal = self.loops * self._padded
        chunk = max(1, STACK_CHUNK_ELEMENTS // per_signal)
        for lo in range(0, S, chunk):
            hi = min(lo + chunk, S)
            y = X[lo:hi, gather]
            y *= self.taps_flat
            np.sum(
                y.reshape(hi - lo, self.loops, self.rounds, self.B), axis=2,
                out=out[lo:hi],
            )
        return out

    @shape_contract(
        "x:(n,) -> (L, B)", dtype="complex128",
        bind={"n": "self.n", "L": "self.loops", "B": "self.B",
              "rounds": "self.rounds"},
        attrs={"self.gather": "(L, rounds*B):int64",
               "self.taps_flat": "(rounds*B,):complex128"},
        expect_violation=True,
    )
    def _selfcheck_transposed_fold(self, x: np.ndarray) -> np.ndarray:
        """Negative control for the shape checker — never call this.

        A deliberately transposed fold: the reshape conserves elements
        (so reshape-conservation alone cannot catch it) but the result is
        ``(B, L)`` where the contract — and every real consumer — demands
        ``(L, B)``.  The static checker must flag the return or
        ``shape-checker-selfcheck`` fires, exactly as the naive histogram
        keeps the race detector honest.  Runtime enforcement rejects it
        too: under ``REPRO_CHECK_CONTRACTS=1`` calling this raises
        :class:`~repro.errors.ContractError`.
        """
        y = x[self.gather]
        y *= self.taps_flat
        folded = np.sum(y.reshape(self.loops, self.rounds, self.B), axis=1)
        return folded.reshape(self.B, self.loops)
