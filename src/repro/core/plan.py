"""Transform plans: precomputed filters and permutation schedules.

Like FFTW/cuFFT, sFFT separates *planning* (design the flat-window filter,
derive bucket/loop counts, draw the per-loop permutations) from *execution*
(the six steps on actual data).  Filter synthesis costs ``O(n log n)`` once;
execution is sub-linear, so reusing a plan across many transforms of the
same ``(n, k)`` shape is where the asymptotic win lives.  The paper times
executions against cuFFT/FFTW execution the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..filters.base import FlatFilter
from ..filters.flat_window import make_flat_window
from ..utils.rng import RngLike, ensure_rng
from .parameters import SfftParameters, derive_parameters
from .permutation import Permutation, random_permutation

__all__ = ["SfftPlan", "make_plan", "save_plan", "load_plan"]


@dataclass(frozen=True)
class SfftPlan:
    """Everything reusable across executions of one ``(n, k)`` shape.

    Attributes
    ----------
    params:
        Resolved :class:`~repro.core.parameters.SfftParameters`.
    filt:
        The flat-window filter (taps zero-padded to a multiple of ``B`` so
        the GPU loop-partition kernel gets whole rounds).
    permutations:
        One :class:`~repro.core.permutation.Permutation` per loop.  Fixed at
        plan time for reproducibility; :meth:`reseeded` draws a fresh
        schedule.
    """

    params: SfftParameters
    filt: FlatFilter
    permutations: tuple[Permutation, ...]
    #: lazily built execution workspace (gather matrix + scratch); never
    #: part of equality/serialization — pure derived state.
    _workspace: object = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n(self) -> int:
        """Signal size."""
        return self.params.n

    @property
    def k(self) -> int:
        """Target sparsity."""
        return self.params.k

    @property
    def B(self) -> int:
        """Bucket count."""
        return self.params.B

    @property
    def loops(self) -> int:
        """Number of inner loops ``L``."""
        return self.params.loops

    @property
    def rounds(self) -> int:
        """Inner-loop trip count of the loop-partition kernel (``w / B``)."""
        return -(-self.filt.width // self.params.B)

    @property
    def filter_capped(self) -> bool:
        """True when the filter support hit the signal length.

        In this regime (``n`` too small for the requested ``B``/tolerance,
        i.e. the problem is not meaningfully sparse) the passband narrows
        and value estimates degrade; locations are still recovered, but
        expect percent-level value errors instead of the design tolerance.
        """
        return self.filt.width >= self.params.n - self.params.B

    def workspace(self) -> "PlanWorkspace":
        """The plan's cached execution workspace (built on first use).

        The workspace precomputes the ``(L, w)`` gather-index matrix, the
        padded ``(rounds, B)`` tap matrix, and reusable scratch buffers —
        see :mod:`repro.core.workspace`.  Cached per plan object, so
        repeated executions of one plan allocate nothing on the hot path.
        Not thread-safe (shared scratch); concurrent executors should
        construct a private ``PlanWorkspace(plan)`` each.
        """
        if self._workspace is None:
            from .workspace import PlanWorkspace

            # frozen dataclass: the cache slot is set through the back door
            # (the same idiom FlatFilter uses for its derived arrays).
            object.__setattr__(self, "_workspace", PlanWorkspace(self))
        return self._workspace

    def reseeded(self, seed: RngLike = None) -> "SfftPlan":
        """Same filter and parameters, fresh random permutations.

        Returns a *new* plan object, so any cached :meth:`workspace` —
        whose gather matrix bakes in the old permutations — is left behind
        with the old plan rather than silently reused.
        """
        rng = ensure_rng(seed)
        perms = tuple(
            random_permutation(self.params.n, rng) for _ in range(self.params.loops)
        )
        return replace(self, permutations=perms)

    def describe(self) -> str:
        """Human-readable plan summary."""
        return (
            f"SfftPlan[{self.params.describe()} w={self.filt.width} "
            f"rounds={self.rounds}]"
        )


def make_plan(
    n: int,
    k: int,
    *,
    seed: RngLike = None,
    params: SfftParameters | None = None,
    **overrides,
) -> SfftPlan:
    """Create a plan for ``(n, k)``.

    ``overrides`` are forwarded to
    :func:`~repro.core.parameters.derive_parameters` (e.g. ``loops=8``,
    ``B=4096``, ``window="gaussian"``); alternatively pass a fully resolved
    ``params``.
    """
    if params is None:
        params = derive_parameters(n, k, **overrides)
    rng = ensure_rng(seed)
    filt = make_flat_window(
        params.n,
        params.B,
        window=params.window,
        tolerance=params.tolerance,
        lobefrac=params.lobefrac,
        pad_to_multiple=params.B,
    )
    perms = tuple(random_permutation(params.n, rng) for _ in range(params.loops))
    return SfftPlan(params=params, filt=filt, permutations=perms)


def save_plan(plan: SfftPlan, path) -> None:
    """Persist a plan to ``path`` (NumPy ``.npz``).

    Plans are the expensive artifact (filter synthesis runs an O(n log n)
    FFT); long-running services save them once and reload per process,
    exactly like FFTW wisdom.
    """
    import numpy as np

    p = plan.params
    np.savez_compressed(
        path,
        schema=np.array([1]),
        n=p.n, k=p.k, B=p.B, loops=p.loops,
        vote_threshold=p.vote_threshold, select_count=p.select_count,
        window=np.array(p.window), tolerance=p.tolerance, lobefrac=p.lobefrac,
        loc_loops=np.array([-1 if p.loc_loops is None else p.loc_loops]),
        filter_time=plan.filt.time, filter_freq=plan.filt.freq,
        filter_box_width=plan.filt.box_width,
        sigmas=np.array([q.sigma for q in plan.permutations], dtype=np.int64),
        taus=np.array([q.tau for q in plan.permutations], dtype=np.int64),
    )


def load_plan(path) -> SfftPlan:
    """Reload a plan written by :func:`save_plan`."""
    import numpy as np

    from ..errors import ParameterError
    from ..filters.base import FlatFilter
    from ..utils.modmath import mod_inverse
    from .parameters import SfftParameters

    with np.load(path, allow_pickle=False) as data:
        if int(data["schema"][0]) != 1:
            raise ParameterError(f"unsupported plan schema in {path!r}")
        params = SfftParameters(
            n=int(data["n"]), k=int(data["k"]), B=int(data["B"]),
            loops=int(data["loops"]),
            vote_threshold=int(data["vote_threshold"]),
            select_count=int(data["select_count"]),
            window=str(data["window"]),
            tolerance=float(data["tolerance"]),
            lobefrac=float(data["lobefrac"]),
            loc_loops=(
                None
                if "loc_loops" not in data or int(data["loc_loops"][0]) < 0
                else int(data["loc_loops"][0])
            ),
        )
        filt = FlatFilter(
            n=params.n,
            time=np.array(data["filter_time"]),
            freq=np.array(data["filter_freq"]),
            window_name=params.window,
            lobefrac=params.lobefrac,
            tolerance=params.tolerance,
            box_width=int(data["filter_box_width"]),
        )
        perms = tuple(
            Permutation(
                n=params.n, sigma=int(s), sigma_inv=mod_inverse(int(s), params.n),
                tau=int(t),
            )
            for s, t in zip(data["sigmas"], data["taus"])
        )
    return SfftPlan(params=params, filt=filt, permutations=perms)
