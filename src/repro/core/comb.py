"""Comb pre-filter — the sFFT 2.0 heuristic (Hassanieh et al., SODA'12).

The second MIT algorithm prepends a cheap screening pass: sampling the
signal at ``W`` points spaced ``n/W`` apart aliases the whole spectrum into
``W`` residue classes,

    ``zhat[f] = (W/n) * sum_{g ≡ f (mod W)} xhat[g] * exp(2j*pi*tau*g/n)``,

so a ``W``-point FFT reveals which classes contain energy.  Repeating with
random offsets ``tau`` (fresh phases each time, so coefficients sharing a
class rarely cancel twice) and voting yields a set of *approved residues*;
location recovery then only votes for candidate frequencies whose residue
``f mod W`` is approved, shrinking the score/voting work by roughly
``W / (approved classes)``.

This is exact screening for exactly-sparse spectra (a class holding a large
coefficient is large unless phases cancel, and the vote across loops makes
repeated cancellation improbable); for noisy spectra it trades a small
recall risk for the speedup, as in the original heuristic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..utils.modmath import is_power_of_two
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import as_complex_signal
from .cutoff import select_topk
from .subsampled import bucket_fft

__all__ = ["comb_spectrum", "comb_approved_residues"]


def comb_spectrum(x: np.ndarray, W: int, tau: int) -> np.ndarray:
    """One comb pass: alias the spectrum into ``W`` residue classes.

    Returns the length-``W`` aliased spectrum for offset ``tau``.
    """
    x = as_complex_signal(x)
    n = x.size
    if not is_power_of_two(W) or W > n or n % W != 0:
        raise ParameterError(
            f"W={W} must be a power of two dividing n={n}"
        )
    if not 0 <= tau < n:
        raise ParameterError(f"tau={tau} out of range [0, {n})")
    d = n // W
    idx = (tau + np.arange(W, dtype=np.int64) * d) % n
    return bucket_fft(x[idx])


def comb_approved_residues(
    x: np.ndarray,
    W: int,
    k: int,
    *,
    loops: int = 3,
    vote_threshold: int | None = None,
    keep_factor: int = 4,
    seed: RngLike = None,
) -> np.ndarray:
    """Boolean mask over residues mod ``W``: which classes may hold energy.

    Each of ``loops`` passes keeps the ``keep_factor * k`` largest classes;
    a residue is approved when it survives at least ``vote_threshold``
    passes (default: majority).  The true support's residues are approved
    with overwhelming probability; most empty classes are rejected.
    """
    x = as_complex_signal(x)
    if loops < 1:
        raise ParameterError(f"loops must be >= 1, got {loops}")
    if vote_threshold is None:
        vote_threshold = loops // 2 + 1
    if not 1 <= vote_threshold <= loops:
        raise ParameterError(
            f"vote_threshold={vote_threshold} must be in [1, {loops}]"
        )
    keep = min(W, max(1, keep_factor * k))
    rng = ensure_rng(seed)
    votes = np.zeros(W, dtype=np.int32)
    for _ in range(loops):
        tau = int(rng.integers(0, x.size))
        mags = np.abs(comb_spectrum(x, W, tau))
        votes[select_topk(mags, keep)] += 1
    return votes >= vote_threshold
