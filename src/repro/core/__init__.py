"""The sparse FFT core: parameters, plans, and the six-step pipeline."""

from .binning import bin_loop_partition, bin_serial, bin_vectorized
from .comb import comb_approved_residues, comb_spectrum
from .cutoff import cutoff, noise_floor_threshold, select_threshold, select_topk
from .dense import dense_fft, dense_topk, reconstruct_time
from .estimation import componentwise_median, estimate_values, loop_estimates
from .exact import ExactSfftStats, sfft_exact
from .parameters import PROFILES, SfftParameters, derive_parameters
from .permutation import (
    Permutation,
    permute_dense,
    permuted_indices,
    random_permutation,
)
from .plan import SfftPlan, load_plan, make_plan, save_plan
from .recovery import VoteAccumulator, candidate_frequencies, recover_locations
from .sfft import STEP_NAMES, SparseFFTResult, sfft
from .subsampled import bucket_fft, subsample_spectrum
from .variants import isfft, rsfft, sfft_batch

__all__ = [
    "bin_loop_partition",
    "comb_approved_residues",
    "comb_spectrum",
    "bin_serial",
    "bin_vectorized",
    "cutoff",
    "noise_floor_threshold",
    "select_threshold",
    "select_topk",
    "dense_fft",
    "dense_topk",
    "reconstruct_time",
    "componentwise_median",
    "ExactSfftStats",
    "sfft_exact",
    "estimate_values",
    "loop_estimates",
    "PROFILES",
    "SfftParameters",
    "derive_parameters",
    "Permutation",
    "permute_dense",
    "permuted_indices",
    "random_permutation",
    "SfftPlan",
    "load_plan",
    "make_plan",
    "save_plan",
    "VoteAccumulator",
    "candidate_frequencies",
    "recover_locations",
    "STEP_NAMES",
    "SparseFFTResult",
    "sfft",
    "bucket_fft",
    "subsample_spectrum",
    "isfft",
    "rsfft",
    "sfft_batch",
]
