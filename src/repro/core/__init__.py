"""The sparse FFT core: parameters, plans, and the six-step pipeline."""

from .batch import run_stack_pipeline, sfft_batch_fused
from .binning import bin_loop_partition, bin_serial, bin_vectorized
from .executor import EXECUTOR_MODES, ShardedExecutor
from .fft_backend import (
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    set_default_backend,
)
from .comb import comb_approved_residues, comb_spectrum
from .cutoff import (
    cutoff,
    cutoff_rows,
    noise_floor_threshold,
    select_threshold,
    select_topk,
)
from .dense import dense_fft, dense_topk, reconstruct_time
from .estimation import (
    clean_loop_counts,
    componentwise_median,
    estimate_values,
    estimate_values_stack,
    loop_estimates,
    median_reliable,
)
from .exact import ExactSfftStats, sfft_exact
from .parameters import PROFILES, SfftParameters, derive_parameters
from .params import (
    ENV_B,
    ENV_LOOPS,
    ENV_WISDOM,
    RESOLUTION_SOURCES,
    ResolvedConfig,
    resolve_sfft_config,
)
from .permutation import (
    Permutation,
    permute_dense,
    permuted_indices,
    random_permutation,
)
from .plan import SfftPlan, load_plan, make_plan, save_plan
from .plan_cache import PlanCache, cached_plan, global_plan_cache
from .recovery import (
    VoteAccumulator,
    candidate_frequencies,
    recover_locations,
    recover_locations_stack,
)
from .sfft import STEP_NAMES, SparseFFTResult, sfft
from .shm import SegmentBundle, SharedArraySpec
from .subsampled import bucket_fft, subsample_spectrum
from .variants import isfft, rsfft, sfft_batch
from .workspace import GATHER_ELEMENT_CAP, PlanWorkspace

__all__ = [
    "bin_loop_partition",
    "comb_approved_residues",
    "comb_spectrum",
    "bin_serial",
    "bin_vectorized",
    "cutoff",
    "cutoff_rows",
    "noise_floor_threshold",
    "select_threshold",
    "select_topk",
    "dense_fft",
    "dense_topk",
    "reconstruct_time",
    "clean_loop_counts",
    "componentwise_median",
    "median_reliable",
    "ExactSfftStats",
    "sfft_exact",
    "estimate_values",
    "estimate_values_stack",
    "loop_estimates",
    "PROFILES",
    "SfftParameters",
    "derive_parameters",
    "ENV_B",
    "ENV_LOOPS",
    "ENV_WISDOM",
    "RESOLUTION_SOURCES",
    "ResolvedConfig",
    "resolve_sfft_config",
    "Permutation",
    "permute_dense",
    "permuted_indices",
    "random_permutation",
    "SfftPlan",
    "load_plan",
    "make_plan",
    "save_plan",
    "PlanCache",
    "cached_plan",
    "global_plan_cache",
    "VoteAccumulator",
    "candidate_frequencies",
    "recover_locations",
    "recover_locations_stack",
    "STEP_NAMES",
    "SparseFFTResult",
    "sfft",
    "bucket_fft",
    "subsample_spectrum",
    "isfft",
    "rsfft",
    "sfft_batch",
    "sfft_batch_fused",
    "run_stack_pipeline",
    "ShardedExecutor",
    "EXECUTOR_MODES",
    "SegmentBundle",
    "SharedArraySpec",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "set_default_backend",
    "GATHER_ELEMENT_CAP",
    "PlanWorkspace",
]
