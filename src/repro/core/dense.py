"""Dense-FFT reference helpers.

Thin wrappers over :func:`numpy.fft.fft` that extract sparse ground truth —
what the accuracy experiments compare sFFT output against, and what the
quickstart example shows side by side.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..utils.validation import as_complex_signal

__all__ = ["dense_fft", "dense_topk", "reconstruct_time"]


def dense_fft(x) -> np.ndarray:
    """Full forward DFT (the ``O(n log n)`` baseline the paper beats)."""
    # Ground-truth reference is pinned to numpy on purpose: correctness
    # oracles must not move when the production backend is swapped.
    return np.fft.fft(as_complex_signal(x))  # reprolint: ignore[fft-registry-bypass]


def dense_topk(spectrum: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` largest-magnitude coefficients of a dense spectrum.

    Returns ``(locations_ascending, values)`` — the ground truth a correct
    sparse transform must reproduce.
    """
    spec = np.asarray(spectrum)
    if spec.ndim != 1:
        raise ParameterError(f"spectrum must be 1-D, got shape {spec.shape}")
    if not 1 <= k <= spec.size:
        raise ParameterError(f"k={k} must be in [1, {spec.size}]")
    idx = np.argpartition(np.abs(spec), -k)[-k:]
    idx = np.sort(idx).astype(np.int64)
    return idx, spec[idx]


def reconstruct_time(locations: np.ndarray, values: np.ndarray, n: int) -> np.ndarray:
    """Inverse transform of a sparse spectrum back to ``n`` time samples."""
    locs = np.asarray(locations, dtype=np.int64)
    vals = np.asarray(values, dtype=np.complex128)
    if locs.shape != vals.shape:
        raise ParameterError("locations and values must align")
    spec = np.zeros(n, dtype=np.complex128)
    spec[locs % n] = vals
    return np.fft.ifft(spec)  # reprolint: ignore[fft-registry-bypass]
