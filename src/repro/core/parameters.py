"""sFFT parameter derivation (bucket counts, loop counts, filter spec).

The paper fixes the asymptotics — ``B = O(sqrt(n*k / log n))`` buckets,
``L = O(log n)`` location loops, vote threshold ``> L/2`` — and leaves the
constants to tuning.  :func:`derive_parameters` encodes defaults that give
exact recovery on well-separated inputs while keeping the per-loop work
(`w` filter taps + a ``B``-point FFT + ``k * n/B`` candidate votes) balanced,
mirroring the reference implementation's ``Bcst`` knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..utils.modmath import ilog2, is_power_of_two, next_power_of_two
from ..utils.validation import check_positive_int, check_power_of_two

__all__ = ["SfftParameters", "derive_parameters"]


@dataclass(frozen=True)
class SfftParameters:
    """Fully resolved parameter set for one sparse transform.

    Attributes
    ----------
    n, k:
        Signal size (power of two) and target sparsity.
    B:
        Bucket count; a power of two dividing ``n``.
    loops:
        Number of inner (location+estimation) loops ``L``.
    vote_threshold:
        Minimum number of loops in which a candidate location must be
        selected — the paper keeps ``s_i > L/2``.
    select_count:
        Buckets kept by the cutoff per loop (``2k`` by default: one bucket
        can hold a collided pair, and noise occasionally promotes a bucket).
    loc_loops:
        Loops that participate in location voting (the reference
        implementation's location/estimation loop split: only the first
        ``loc_loops`` loops run cutoff + reverse-hash; *all* loops feed
        magnitude estimation).  ``None`` (default) votes in every loop —
        more robust, more recovery work.
    window:
        Base window name for the flat filter.
    tolerance:
        Filter stop-band leakage ``delta``.
    lobefrac:
        Filter main-lobe half-width as a fraction of ``n``.
    """

    n: int
    k: int
    B: int
    loops: int
    vote_threshold: int
    select_count: int
    window: str
    tolerance: float
    lobefrac: float
    loc_loops: int | None = None

    def __post_init__(self) -> None:
        check_power_of_two(self.n, "n")
        check_positive_int(self.k, "k")
        check_power_of_two(self.B, "B")
        if self.k >= self.n:
            raise ParameterError(f"k={self.k} must be < n={self.n}")
        if self.B < 2 or self.B > self.n // 2:
            raise ParameterError(f"B={self.B} must be in [2, n/2={self.n // 2}]")
        if self.n % self.B != 0:
            raise ParameterError(f"B={self.B} must divide n={self.n}")
        if self.loops < 1:
            raise ParameterError(f"loops must be >= 1, got {self.loops}")
        if not 1 <= self.vote_threshold <= self.loops:
            raise ParameterError(
                f"vote_threshold={self.vote_threshold} must be in [1, loops={self.loops}]"
            )
        if self.select_count < 1 or self.select_count > self.B:
            raise ParameterError(
                f"select_count={self.select_count} must be in [1, B={self.B}]"
            )
        if self.loc_loops is not None:
            if not 1 <= self.loc_loops <= self.loops:
                raise ParameterError(
                    f"loc_loops={self.loc_loops} must be in [1, loops={self.loops}]"
                )
            if self.vote_threshold > self.loc_loops:
                raise ParameterError(
                    f"vote_threshold={self.vote_threshold} exceeds "
                    f"loc_loops={self.loc_loops}"
                )

    @property
    def n_div_B(self) -> int:
        """Bucket width in frequency bins."""
        return self.n // self.B

    @property
    def voting_loops(self) -> int:
        """Loops that actually vote (``loc_loops`` or all of them)."""
        return self.loops if self.loc_loops is None else self.loc_loops

    def describe(self) -> str:
        """One-line human-readable summary (used by the harness logs)."""
        return (
            f"n=2^{ilog2(self.n)} k={self.k} B={self.B} loops={self.loops} "
            f"thresh={self.vote_threshold} select={self.select_count} "
            f"window={self.window} delta={self.tolerance:g}"
        )


#: Filter design profiles.  ``accurate`` (the default) buys ~1e-8 estimation
#: error with a wider filter (support ~24*B taps); ``fast`` matches the
#: reference implementation's economics (support ~9*B taps, ~1e-5 error) and
#: is what the paper-scale benchmarks use.
PROFILES = {
    "accurate": {"lobefrac_times_B": 0.25, "tolerance": 1e-8},
    "fast": {"lobefrac_times_B": 0.5, "tolerance": 1e-6},
}


def derive_parameters(
    n: int,
    k: int,
    *,
    bucket_constant: float = 2.0,
    loops: int | None = None,
    vote_threshold: int | None = None,
    select_count: int | None = None,
    loc_loops: int | None = None,
    window: str = "dolph-chebyshev",
    profile: str = "accurate",
    tolerance: float | None = None,
    lobefrac: float | None = None,
    B: int | None = None,
) -> SfftParameters:
    """Derive a consistent :class:`SfftParameters` for an ``(n, k)`` problem.

    ``B`` targets ``bucket_constant * sqrt(n*k / log2 n)`` rounded to a power
    of two, clamped to ``[4k rounded up, n/2]`` so each loop has enough
    buckets to isolate coefficients, and never below 4.  ``profile`` picks
    the filter-design trade-off (see :data:`PROFILES`); explicit
    ``tolerance`` / ``lobefrac`` override it.  Any field can be overridden
    explicitly; overrides are validated together.
    """
    n = check_power_of_two(n, "n")
    k = check_positive_int(k, "k")
    if k >= n:
        raise ParameterError(f"k={k} must be < n={n}")
    if profile not in PROFILES:
        raise ParameterError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )

    if B is None:
        logn = max(1.0, math.log2(n))
        target = bucket_constant * math.sqrt(n * k / logn)
        B_val = next_power_of_two(max(4, int(round(target))))
        # Enough buckets that collisions are rare (>= ~4k), but at most n/2
        # so the bucket width n/B stays >= 2 bins.
        B_val = max(B_val, min(next_power_of_two(4 * k), n // 2))
        B_val = min(B_val, n // 2)
        B_val = max(B_val, 2)
    else:
        B_val = int(B)

    if loops is None:
        loops = max(4, min(10, round(math.log2(n) / 3) + 3))
    if vote_threshold is None:
        vote_threshold = (loc_loops if loc_loops is not None else loops) // 2 + 1
    if select_count is None:
        select_count = min(B_val, 2 * k)

    prof = PROFILES[profile]
    if tolerance is None:
        tolerance = prof["tolerance"]
    if lobefrac is None:
        lobefrac = prof["lobefrac_times_B"] / B_val

    return SfftParameters(
        n=n,
        k=k,
        B=B_val,
        loops=int(loops),
        vote_threshold=int(vote_threshold),
        select_count=int(select_count),
        window=window,
        tolerance=float(tolerance),
        lobefrac=float(lobefrac),
        loc_loops=loc_loops,
    )
