"""Exactly-sparse sparse FFT (the paper's reference [3], sFFT-3.0 style).

The paper's Section II-C cites Hassanieh et al.'s *Nearly Optimal Sparse
Fourier Transform* as the asymptotically faster successor of the algorithm
cusFFT parallelizes.  For *exactly* sparse spectra its key idea replaces
the location machinery (candidate regions + voting over ``O(log n)``
loops) with **phase-encoded location**:

* bin the spectrum as usual (permute, flat-window filter, fold, ``B``-point
  FFT), and bin a *one-sample-shifted* copy of the permuted signal the same
  way.  Shifting permuted time by one multiplies the coefficient at
  permuted position ``p`` by ``e^{2πi p / n}`` — and the filter response
  cancels in the ratio of the two bucket values, so for a bucket holding a
  single coefficient the ratio's phase reveals ``p`` *directly*;
* a singleton is certified by ``|u[m]| == |v[m]|`` (the shift is a pure
  phase) plus the consistency check that the decoded ``p`` hashes back to
  the bucket it was read from;
* buckets that fail (collisions) are deferred: recovered coefficients are
  subtracted *analytically* from later rounds, whose fresh permutations
  re-scatter the survivors (iterative peeling).

A note on why the filter is still needed: plain aliasing (subsample by
``n/B``) would be cheaper, but its classes are residues mod ``B`` and a
dilation only *permutes* residue classes — two frequencies congruent mod
``B`` collide under **every** ``σ``.  The window's hash depends on the full
permuted position, so the permutation genuinely separates coefficients.

Each round costs two ``w``-tap gathers and two ``B``-point FFTs and decodes
locations in ``O(B)`` — against the windowed pipeline's ``L`` loops plus an
``O(select · n/B)`` reverse-hash search.  The price is robustness: a single
phase carries no redundancy, so this variant is for noiseless
(machine-precision) sparse spectra; use :func:`repro.core.sfft` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError, RecoveryError
from ..filters.flat_window import make_flat_window
from ..utils.modmath import next_power_of_two
from ..utils.rng import RngLike, ensure_rng
from ..utils.validation import as_complex_signal, check_positive_int
from .binning import bin_vectorized
from .permutation import Permutation, random_permutation
from .sfft import SparseFFTResult
from .subsampled import bucket_fft

__all__ = ["ExactSfftStats", "sfft_exact"]


@dataclass
class ExactSfftStats:
    """Diagnostics of one exactly-sparse transform run."""

    rounds: int = 0
    samples_touched: int = 0
    singletons_found: int = 0
    collisions_seen: int = 0
    per_round_found: list[int] = field(default_factory=list)


def _subtract_found(
    u: np.ndarray,
    v: np.ndarray,
    found: dict[int, complex],
    perm: Permutation,
    freq: np.ndarray,
    n: int,
    B: int,
) -> None:
    """Remove already-recovered coefficients from both bucket vectors."""
    if not found:
        return
    n_div_b = n // B
    fs = np.fromiter(found.keys(), dtype=np.int64, count=len(found))
    vals = np.fromiter(found.values(), dtype=np.complex128, count=len(found))
    p = (fs * perm.sigma) % n
    hashed = (p + n_div_b // 2) // n_div_b
    dist = p - hashed * n_div_b
    phase_tau = np.exp(2j * np.pi * perm.tau * fs.astype(np.float64) / n)
    shift_phase = np.exp(2j * np.pi * p / n)
    # A coefficient registers in its own bucket and — through the filter's
    # transition region — in the immediate neighbours; subtract all three
    # (the response two buckets out is at the design tolerance).
    for db in (-1, 0, 1):
        g = freq[(-(dist - db * n_div_b)) % n]
        contrib = vals * phase_tau * g / n
        np.subtract.at(u, (hashed + db) % B, contrib)
        np.subtract.at(v, (hashed + db) % B, contrib * shift_phase)


def sfft_exact(
    x,
    k: int | None = None,
    *,
    bucket_factor: int = 4,
    max_rounds: int = 12,
    seed: RngLike = None,
    rel_tol: float = 1e-6,
    strict: bool = True,
) -> tuple[SparseFFTResult, ExactSfftStats]:
    """Recover an exactly ``k``-sparse spectrum by phase decoding + peeling.

    Parameters
    ----------
    x:
        Length-``n`` signal, ``n`` a power of two, whose spectrum has at
        most ``k`` nonzero coefficients (to machine precision).
    k:
        Sparsity bound.
    bucket_factor:
        Buckets per coefficient (``B = next_pow2(bucket_factor * k)``).
    max_rounds:
        Peeling rounds before giving up.
    rel_tol:
        Relative tolerance for the singleton test and the noise-dust floor.
    strict:
        Raise :class:`~repro.errors.RecoveryError` if unresolved energy
        remains after ``max_rounds``; otherwise return what was found.

    Returns
    -------
    (result, stats):
        Recovered coefficients (same container as :func:`repro.core.sfft`)
        plus peeling diagnostics.
    """
    x = as_complex_signal(x)
    n = x.size
    if n & (n - 1):
        raise ParameterError(f"n must be a power of two, got {n}")
    k = check_positive_int(k, "k")
    if k >= n:
        raise ParameterError(f"k={k} must be < n={n}")
    B = min(n // 2, next_power_of_two(max(4, bucket_factor * k)))
    n_div_b = n // B
    rng = ensure_rng(seed)
    filt = make_flat_window(n, B, tolerance=1e-9, pad_to_multiple=B)
    scale_ref = float(np.abs(x).max()) * n

    found: dict[int, complex] = {}
    found_rounds: dict[int, int] = {}
    stats = ExactSfftStats()

    for round_idx in range(max_rounds):
        perm = random_permutation(n, rng)
        shifted = Permutation(
            n=n, sigma=perm.sigma, sigma_inv=perm.sigma_inv,
            tau=(perm.tau + perm.sigma) % n,
        )
        u = bucket_fft(bin_vectorized(x, filt, B, perm))
        v = bucket_fft(bin_vectorized(x, filt, B, shifted))
        stats.rounds += 1
        stats.samples_touched += 2 * filt.width

        _subtract_found(u, v, found, perm, filt.freq, n, B)

        mags = np.abs(u)
        floor = rel_tol * max(scale_ref / n, float(mags.max()) if mags.size else 1.0)
        live = np.flatnonzero(mags > floor)
        new_found = 0
        for m in live:
            a, b = u[m], v[m]
            # Singleton: the one-sample shift is a pure phase.
            if abs(abs(a) - abs(b)) > rel_tol * abs(a):
                stats.collisions_seen += 1
                continue
            phase = np.angle(b / a)
            p = int(round(phase / (2 * np.pi / n))) % n
            # Consistency: the decoded position must hash to this bucket.
            if ((p + n_div_b // 2) // n_div_b) % B != m:
                stats.collisions_seen += 1
                continue
            dist = p - ((p + n_div_b // 2) // n_div_b) * n_div_b
            g = filt.freq[(-dist) % n]
            if abs(g) < 0.1:   # outside the reliable passband
                stats.collisions_seen += 1
                continue
            f = int((p * perm.sigma_inv) % n)
            val = complex(
                n * a / g * np.exp(-2j * np.pi * perm.tau * f / n)
            )
            if f in found:
                found[f] += val
            else:
                found[f] = val
                found_rounds[f] = round_idx
            stats.singletons_found += 1
            new_found += 1
        stats.per_round_found.append(new_found)

        # Drop entries peeled down to numerical dust (self-corrections).
        for f in [f for f, c in found.items() if abs(c) <= rel_tol * scale_ref / n]:
            del found[f]

        if new_found == 0 and (len(found) >= k or not live.size):
            break

    if strict:
        # Residual check on a fresh permutation.
        perm = random_permutation(n, rng)
        u = bucket_fft(bin_vectorized(x, filt, B, perm))
        v = u.copy()
        _subtract_found(u, v, found, perm, filt.freq, n, B)
        if np.abs(u).max() > 100 * rel_tol * scale_ref / n:
            raise RecoveryError(
                f"exact recovery incomplete after {stats.rounds} rounds "
                f"({len(found)} of <= {k} coefficients; residual remains — "
                "is the input truly exactly sparse?)"
            )

    locs = np.array(sorted(found), dtype=np.int64)

    # Residual-driven refinement: estimate each value's *error* from fresh
    # residual buckets (everything found subtracted) and correct.  Because
    # the corrections are bounded by the residual — already small — bucket
    # collisions only corrupt error-of-error, unlike a raw re-estimation.
    if locs.size:
        from .estimation import estimate_values

        for _ in range(2):
            polish_perms = [random_permutation(n, rng) for _ in range(3)]
            rows = np.empty((len(polish_perms), B), dtype=np.complex128)
            for r, perm in enumerate(polish_perms):
                rows[r] = bucket_fft(bin_vectorized(x, filt, B, perm))
                dummy = rows[r].copy()
                _subtract_found(rows[r], dummy, found, perm, filt.freq, n, B)
            stats.samples_touched += len(polish_perms) * filt.width
            delta = estimate_values(locs, rows, polish_perms, filt, B)
            for f, dv in zip(locs, delta):
                found[int(f)] += complex(dv)
        vals = np.array([found[int(f)] for f in locs], dtype=np.complex128)
    else:
        vals = np.empty(0, dtype=np.complex128)

    votes = np.array(
        [stats.rounds - found_rounds[int(f)] for f in locs], dtype=np.int64
    )
    result = SparseFFTResult(n=n, locations=locs, values=vals, votes=votes)
    return result.top(k), stats
