"""The single parameter-resolution seam: explicit > wisdom > env > defaults.

Every plan-less transform call (``sfft(x, k)``, ``sfft_batch(stack, k)``)
routes its tuned knobs through :func:`resolve_sfft_config` before touching
the plan cache.  Precedence, highest first:

1. **explicit kwargs** — any derivation override (or an explicit
   ``comb_width``) passed by the caller pins the configuration verbatim;
2. **wisdom store** — a fresh ``repro.wisdom/1`` entry for the workload
   class (``REPRO_WISDOM`` names the store; see :mod:`repro.tune.wisdom`);
   entries whose plan fingerprint no longer matches current derivation
   code are *stale* and skipped;
3. **environment** — ``REPRO_SFFT_B`` / ``REPRO_SFFT_LOOPS`` integer
   pins (the ops-level escape hatch, mirroring ``REPRO_FFT_BACKEND``);
4. **paper defaults** — :func:`~repro.core.parameters.derive_parameters`
   untouched.

Consumption is observable: when a wisdom store is configured, every
resolution increments exactly one of ``sfft.wisdom.hit`` /
``sfft.wisdom.miss`` / ``sfft.wisdom.stale`` on the **global** metrics
registry (never on a per-run registry: run registries keep CPU/GPU metric
name parity, and the device model has no resolution step), and the chosen
``source`` string is what run records echo as ``config_source``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..errors import ParameterError

__all__ = [
    "ENV_WISDOM",
    "ENV_B",
    "ENV_LOOPS",
    "RESOLUTION_SOURCES",
    "ResolvedConfig",
    "resolve_sfft_config",
]

ENV_WISDOM = "REPRO_WISDOM"
ENV_B = "REPRO_SFFT_B"
ENV_LOOPS = "REPRO_SFFT_LOOPS"

#: Where a resolved configuration can come from, highest precedence first.
RESOLUTION_SOURCES = ("explicit", "wisdom", "env", "default")


@dataclass(frozen=True)
class ResolvedConfig:
    """One resolution verdict: the overrides to apply and their provenance.

    ``overrides`` feeds plan derivation (:func:`~repro.core.plan_cache.
    cached_plan`); the execution fields (``fft_backend``,
    ``executor_mode``, ``workers``, ``shard_size``) only apply to batch
    calls, which are the surface that owns those knobs.
    """

    source: str
    overrides: dict[str, Any] = field(default_factory=dict)
    comb_width: int | None = None
    fft_backend: str | None = None
    executor_mode: str | None = None
    workers: int = 1
    shard_size: int | None = None
    class_key: str | None = None


def _count(name: str) -> None:
    from ..obs import global_registry

    global_registry().counter(name).inc()


def _env_int(var: str) -> int | None:
    raw = os.environ.get(var)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ParameterError(
            f"{var} must be an integer, got {raw!r}"
        ) from None


def _from_wisdom(n: int, k: int, *, batch_size: int, noise_class: str,
                 path: str) -> ResolvedConfig | None:
    """The wisdom leg: lookup, staleness check, metrics. ``None`` = miss."""
    from ..tune.wisdom import (
        is_stale,
        load_wisdom,
        lookup_records,
        wisdom_overrides,
    )

    record = lookup_records(
        load_wisdom(path), n, k,
        noise_class=noise_class, batch_size=batch_size,
    )
    if record is None:
        _count("sfft.wisdom.miss")
        return None
    if is_stale(record, n, k):
        _count("sfft.wisdom.stale")
        return None
    _count("sfft.wisdom.hit")
    config = record["config"]
    return ResolvedConfig(
        source="wisdom",
        overrides=wisdom_overrides(record),
        comb_width=config.get("comb_width"),
        fft_backend=config.get("fft_backend"),
        executor_mode=config.get("executor_mode"),
        workers=int(config.get("workers", 1) or 1),
        shard_size=config.get("shard_size"),
        class_key=record["class"],
    )


def resolve_sfft_config(
    n: int,
    k: int,
    *,
    batch_size: int = 1,
    noise_class: str = "exact",
    explicit: dict[str, Any] | None = None,
    comb_width: int | None = None,
    wisdom_path: str | None = None,
) -> ResolvedConfig:
    """Resolve the tuned knobs for one ``(n, k)`` call site.

    ``explicit`` is the caller's derivation-override dict (possibly
    empty); any entry — or an explicit ``comb_width`` — short-circuits the
    whole chain, so passing overrides always behaves exactly as before
    wisdom existed.  ``wisdom_path`` overrides ``$REPRO_WISDOM`` (mostly
    for tests); an empty string disables the wisdom leg outright.
    """
    explicit = dict(explicit or {})
    if explicit or comb_width is not None:
        return ResolvedConfig(
            source="explicit", overrides=explicit, comb_width=comb_width
        )

    path = wisdom_path if wisdom_path is not None \
        else os.environ.get(ENV_WISDOM, "")
    if path:
        resolved = _from_wisdom(
            n, k, batch_size=batch_size, noise_class=noise_class,
            path=path,
        )
        if resolved is not None:
            return resolved

    env_overrides: dict[str, Any] = {}
    env_b, env_loops = _env_int(ENV_B), _env_int(ENV_LOOPS)
    if env_b is not None:
        env_overrides["B"] = env_b
    if env_loops is not None:
        env_overrides["loops"] = env_loops
    if env_overrides:
        return ResolvedConfig(source="env", overrides=env_overrides)

    return ResolvedConfig(source="default")
