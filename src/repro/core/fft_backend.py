"""Pluggable FFT backends — one dispatch point for every dense FFT we run.

The paper's step 3 is "call the vendor FFT on the buckets": cuFFT on the
GPU, FFTW on the CPU baseline.  This module is the CPU-side analog of that
vendor seam: a registry of named backends all exposing one pair of
operations — ``fft``/``ifft`` with ``(a, axis=-1, workers=1)`` over
``complex128`` — so the bucket FFT
(:func:`repro.core.subsampled.bucket_fft`), the execution workspace, the
sharded executor (:mod:`repro.core.executor`), and the simulated-FFTW
comparator (:mod:`repro.cpu.fftw`) all resolve their transform through the
same point and can be switched together.

Built-in backends:

* ``numpy`` — :func:`numpy.fft.fft`; always available, the default.
  ``workers`` is accepted and ignored (NumPy's pocketfft is
  single-threaded per call).
* ``scipy`` — :func:`scipy.fft.fft` with its ``workers=`` fan-out: batched
  2-D transforms split rows across threads inside one call.  Bit-identical
  to NumPy (both are pocketfft).
* ``pyfftw`` — FFTW via :mod:`pyfftw`'s NumPy-compatible interface with the
  interface plan cache enabled, so repeated shapes reuse FFTW plans
  (wisdom accumulates per process).  Optional: when the package is not
  installed the registry logs a warning and serves ``numpy`` instead.

Resolution order when no explicit name is given:

1. the process default set via :func:`set_default_backend` (the CLI's
   ``--fft-backend`` lands here);
2. the :data:`ENV_VAR` environment variable (``REPRO_FFT_BACKEND``);
3. ``"numpy"``.

An explicitly requested *unknown* name raises
:class:`~repro.errors.ParameterError`; a *known but unavailable* backend
(e.g. ``pyfftw`` without the package) falls back to ``numpy`` with a logged
warning — ambient configuration must never crash the library.  The same
forgiving rule applies to an unknown name arriving through the environment
variable.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Callable

import numpy as np

from ..errors import ParameterError

__all__ = [
    "ENV_VAR",
    "FftBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backends",
    "set_default_backend",
]

#: Environment variable naming the process-wide default backend.
ENV_VAR = "REPRO_FFT_BACKEND"

_log = logging.getLogger("repro.core.fft_backend")


class FftBackend:
    """One FFT implementation behind the common dispatch surface.

    Subclasses implement :meth:`fft`; ``name`` identifies the backend in
    the registry, run records, and warnings.
    """

    name = "abstract"

    def fft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        """Complex DFT of ``a`` along ``axis``.

        ``workers`` is the intra-call thread fan-out for backends that
        support it (scipy/pyfftw); backends without threading accept and
        ignore it so callers never need to special-case.
        """
        raise NotImplementedError

    def ifft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        """Inverse complex DFT of ``a`` along ``axis`` (same contract)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FftBackend {self.name}>"


class _NumpyBackend(FftBackend):
    """:func:`numpy.fft.fft` — the always-available default."""

    name = "numpy"

    def fft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        return np.fft.fft(a, axis=axis)

    def ifft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        return np.fft.ifft(a, axis=axis)


class _ScipyBackend(FftBackend):
    """:func:`scipy.fft.fft` with ``workers=`` batch fan-out."""

    name = "scipy"

    def __init__(self) -> None:
        import scipy.fft as _sfft  # raises ImportError when absent

        self._fft = _sfft.fft
        self._ifft = _sfft.ifft

    def fft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        return self._fft(a, axis=axis, workers=max(1, int(workers)))

    def ifft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        return self._ifft(a, axis=axis, workers=max(1, int(workers)))


class _PyfftwBackend(FftBackend):
    """FFTW via :mod:`pyfftw` with the interface plan cache (wisdom) on."""

    name = "pyfftw"

    def __init__(self) -> None:
        import pyfftw  # raises ImportError when absent
        import pyfftw.interfaces.numpy_fft as _fftw_fft

        # The interface cache keeps FFTW plans alive between calls, so the
        # first transform of a shape pays planning and the rest reuse it —
        # the same wisdom economics as our own SfftPlan cache.
        pyfftw.interfaces.cache.enable()
        pyfftw.interfaces.cache.set_keepalive_time(60.0)
        self._fft = _fftw_fft.fft
        self._ifft = _fftw_fft.ifft

    def fft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        return self._fft(a, axis=axis, threads=max(1, int(workers)))

    def ifft(self, a: np.ndarray, *, axis: int = -1, workers: int = 1) -> np.ndarray:
        return self._ifft(a, axis=axis, threads=max(1, int(workers)))


_lock = threading.Lock()
_factories: dict[str, Callable[[], FftBackend]] = {
    "numpy": _NumpyBackend,
    "scipy": _ScipyBackend,
    "pyfftw": _PyfftwBackend,
}
_instances: dict[str, FftBackend] = {}
_default_name: str | None = None


def register_backend(
    name: str, factory: Callable[[], FftBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called lazily on first :func:`get_backend` resolution;
    it may raise ``ImportError`` to signal a missing optional dependency
    (the registry then falls back to ``numpy``).  Re-registering an
    existing name raises :class:`~repro.errors.ParameterError` unless
    ``replace=True`` (tests swap in instrumented backends that way).
    """
    if not name or not isinstance(name, str):
        raise ParameterError(f"backend name must be a non-empty string, got {name!r}")
    with _lock:
        if name in _factories and not replace:
            raise ParameterError(
                f"FFT backend {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _factories[name] = factory
        _instances.pop(name, None)


def registered_backends() -> list[str]:
    """Every registered backend name (installable or not), sorted."""
    with _lock:
        return sorted(_factories)


def available_backends() -> list[str]:
    """Registered backends whose dependencies import on this machine."""
    names = []
    for name in registered_backends():
        if _instantiate(name) is not None:
            names.append(name)
    return names


def _instantiate(name: str) -> FftBackend | None:
    """Backend instance for a *registered* name, or ``None`` if unavailable."""
    with _lock:
        inst = _instances.get(name)
        factory = _factories.get(name)
    if inst is not None:
        return inst
    if factory is None:
        return None
    try:
        inst = factory()
    except ImportError:
        return None
    with _lock:
        _instances.setdefault(name, inst)
        return _instances[name]


def set_default_backend(name: str | None) -> str:
    """Set (or with ``None`` clear) the process-default backend.

    Returns the *resolved* backend name — the requested one, or ``numpy``
    when the requested backend's dependency is missing (with a logged
    warning), so callers can echo what will actually run.
    """
    global _default_name
    if name is None:
        _default_name = None
        return get_backend().name
    if name not in registered_backends():
        raise ParameterError(
            f"unknown FFT backend {name!r}; registered: "
            f"{', '.join(registered_backends())}"
        )
    _default_name = name
    return get_backend().name


def default_backend_name() -> str:
    """The name :func:`get_backend` would resolve with no arguments."""
    return get_backend().name


def get_backend(name: str | None = None) -> FftBackend:
    """Resolve a backend: explicit name > process default > env var > numpy.

    An explicit unknown ``name`` raises
    :class:`~repro.errors.ParameterError`.  A known-but-unavailable backend
    (missing optional dependency), or an unknown name arriving via the
    environment variable, logs a warning and resolves to ``numpy``.
    """
    if name is None:
        name = _default_name
    if name is None:
        name = os.environ.get(ENV_VAR) or None
        if name is not None and name not in registered_backends():
            _log.warning(
                "%s=%r is not a registered FFT backend (registered: %s); "
                "using numpy", ENV_VAR, name, ", ".join(registered_backends()),
            )
            name = None
    if name is None:
        name = "numpy"
    if name not in registered_backends():
        raise ParameterError(
            f"unknown FFT backend {name!r}; registered: "
            f"{', '.join(registered_backends())}"
        )
    inst = _instantiate(name)
    if inst is None:
        _log.warning(
            "FFT backend %r is registered but unavailable "
            "(optional dependency not installed); falling back to numpy",
            name,
        )
        inst = _instantiate("numpy")
        assert inst is not None  # numpy is always importable here
    return inst
