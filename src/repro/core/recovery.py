"""Location recovery — reverse the hash, vote across loops (paper step 5).

Each selected bucket ``J`` of a loop covers the permuted spectral positions
within half a bucket width of its centre, ``p in [ceil((J-0.5)*n/B),
ceil((J+0.5)*n/B))``.  Undoing the permutation (multiply by ``sigma^{-1}``)
turns those into candidate *original* frequencies; a frequency that is truly
large falls in a selected bucket of (almost) every loop, while noise
candidates repeat rarely.  Keeping candidates with at least
``vote_threshold`` votes across the ``L`` loops is the paper's
``I' = { i : s_i > L/2 }``.

The GPU kernel (Algorithm 4) does exactly this with one thread per selected
bucket and ``atomicAdd`` on a length-``n`` score array; here the votes are a
vectorized ``np.add.at`` — the same scatter-add, minus the hardware.
"""

from __future__ import annotations

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError
from .permutation import Permutation

__all__ = [
    "candidate_frequencies",
    "VoteAccumulator",
    "recover_locations",
    "recover_locations_stack",
]


def _distinct_int64(values: np.ndarray) -> np.ndarray:
    """Distinct values of a 1-D int64 array, ascending — sort-based.

    Semantically ``np.unique``, but routed through an explicit sort: on
    NumPy builds where ``unique`` takes a hash-table path, the sort is an
    order of magnitude faster at the candidate volumes voting produces
    (tens of thousands to a few hundred thousand int64 keys per loop).
    """
    if values.size <= 1:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


@shape_contract("selected_buckets:*, perm:* -> *", dtype="int64",
                bind={"n": "perm.n", "B": "B"})
def candidate_frequencies(
    selected_buckets: np.ndarray, perm: Permutation, B: int
) -> np.ndarray:
    """Original-domain candidate frequencies for the selected buckets.

    Returns a flat int64 array of ``len(selected) * (n//B)`` candidates
    (duplicates possible when regions abut).  Mirrors Algorithm 4's
    ``low``/``high`` region and ``loc = (low + j) * a % n`` walk, in closed
    form.
    """
    n = perm.n
    if B < 1 or n % B != 0:
        raise ParameterError(f"B={B} must divide n={n}")
    n_div_b = n // B
    J = np.asarray(selected_buckets, dtype=np.int64)
    if J.ndim != 1:
        raise ParameterError(f"selected buckets must be 1-D, got shape {J.shape}")
    if J.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any((J < 0) | (J >= B)):
        raise ParameterError("bucket indices out of range")
    # ceil((J - 0.5) * n/B) == J*n_div_b - n_div_b//2 in exact integer
    # arithmetic (n_div_b is a power of two), avoiding float rounding at big n.
    low = J * n_div_b - n_div_b // 2
    offsets = np.arange(n_div_b, dtype=np.int64)
    permuted = (low[:, None] + offsets[None, :]) % n
    return ((permuted * perm.sigma_inv) % n).ravel()


class VoteAccumulator:
    """Per-transform vote scores over the ``n`` frequencies.

    A dense ``int16`` score array — the direct analog of the GPU kernel's
    ``score[n]`` buffer (Algorithm 4).  ``int16`` suffices because scores
    are bounded by the loop count.

    ``scores_out`` lets a caller supply the buffer (the per-plan workspace
    keeps one resident so the hot path allocates nothing); it is zeroed on
    entry and owned by the accumulator for the transform's duration.
    """

    def __init__(self, n: int, *, scores_out: np.ndarray | None = None):
        if n < 1:
            raise ParameterError(f"n must be positive, got {n}")
        self.n = int(n)
        if scores_out is None:
            self.scores = np.zeros(self.n, dtype=np.int16)
        else:
            if scores_out.shape != (self.n,) or scores_out.dtype != np.int16:
                raise ParameterError(
                    f"scores_out must be int16 of shape ({self.n},), got "
                    f"{scores_out.dtype} {scores_out.shape}"
                )
            scores_out.fill(0)
            self.scores = scores_out

    def add_loop_votes(self, candidates: np.ndarray) -> None:
        """Add one loop's candidates (each distinct frequency votes once).

        Within a loop the same frequency can appear from two adjacent
        selected buckets' overlapping edges; deduplicate so a loop
        contributes at most one vote per frequency, keeping the
        across-loop vote count meaningful.
        """
        if candidates.size == 0:
            return
        uniq = _distinct_int64(np.asarray(candidates, dtype=np.int64))
        self.scores[uniq] += 1

    def hits(self, threshold: int) -> np.ndarray:
        """Frequencies with at least ``threshold`` votes, ascending."""
        if threshold < 1:
            raise ParameterError(f"threshold must be >= 1, got {threshold}")
        return np.flatnonzero(self.scores >= threshold).astype(np.int64)


@shape_contract("selected_per_loop:*, permutations:* -> *",
                bind={"n": "permutations[0].n", "B": "B"})
def recover_locations(
    selected_per_loop: list[np.ndarray],
    permutations: list[Permutation],
    B: int,
    vote_threshold: int,
    *,
    residue_filter: np.ndarray | None = None,
    scores_out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run voting over all loops; return ``(hit_frequencies, their_scores)``.

    ``residue_filter`` is the optional sFFT-2.0 Comb screen (see
    :mod:`repro.core.comb`): a boolean mask of length ``W`` — candidates
    whose residue ``f mod W`` is not approved never enter the vote, cutting
    the scatter-add work to the approved classes.  ``scores_out`` is an
    optional preallocated ``int16`` score buffer (zeroed here), letting the
    workspace-driven path vote without allocating a length-``n`` array.
    """
    if len(selected_per_loop) != len(permutations):
        raise ParameterError("one selected-bucket set per permutation required")
    if not permutations:
        raise ParameterError("at least one loop is required")
    if residue_filter is not None:
        residue_filter = np.asarray(residue_filter, dtype=bool)
        if residue_filter.ndim != 1 or residue_filter.size < 1:
            raise ParameterError("residue_filter must be a 1-D boolean mask")
    acc = VoteAccumulator(permutations[0].n, scores_out=scores_out)
    for sel, perm in zip(selected_per_loop, permutations):
        cands = candidate_frequencies(sel, perm, B)
        if residue_filter is not None and cands.size:
            cands = cands[residue_filter[cands % residue_filter.size]]
        acc.add_loop_votes(cands)
    hits = acc.hits(vote_threshold)
    return hits, acc.scores[hits].astype(np.int64)


@shape_contract("selected:*, permutations:* -> *",
                bind={"S": "len(selected)", "n": "permutations[0].n",
                      "B": "B"})
def recover_locations_stack(
    selected: list[list[np.ndarray]],
    permutations: list[Permutation],
    B: int,
    vote_threshold: int,
    *,
    residue_filters: np.ndarray | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Voting for a whole signal stack — the batched engine's step 5.

    ``selected[s][r]`` holds signal ``s``'s selected buckets in loop ``r``
    (the loops share one permutation schedule — that is what "one plan"
    means).  Instead of ``S`` separate accumulators, one flat ``(S * n)``
    ``int16`` score array votes for all signals at once: per loop, every
    signal's candidate frequencies are offset by ``s * n`` and deduplicated
    in a single pass over the whole batch, so the sort + scatter-add runs
    once per loop rather than once per ``(signal, loop)``.

    ``residue_filters`` is the optional per-signal Comb screen, one boolean
    mask row per signal (masks are data-dependent, so they cannot be shared
    across the stack).  Returns per-signal ``(hits, votes)`` lists matching
    :func:`recover_locations` signal for signal.
    """
    S = len(selected)
    if S < 1:
        raise ParameterError("at least one signal is required")
    if not permutations:
        raise ParameterError("at least one loop is required")
    loops = len(permutations)
    for rows in selected:
        if len(rows) != loops:
            raise ParameterError(
                "one selected-bucket set per (signal, permutation) required"
            )
    masks = None
    if residue_filters is not None:
        masks = np.asarray(residue_filters, dtype=bool)
        if masks.ndim != 2 or masks.shape[0] != S or masks.shape[1] < 1:
            raise ParameterError(
                f"residue_filters must be (S, W) boolean, got {masks.shape}"
            )
    n = permutations[0].n
    scores = np.zeros(S * n, dtype=np.int16)
    for r, perm in enumerate(permutations):
        sizes = [np.asarray(selected[s][r]).size for s in range(S)]
        if not any(sizes):
            continue
        buckets = np.concatenate(
            [np.asarray(selected[s][r], dtype=np.int64) for s in range(S)]
        )
        sig_idx = np.repeat(np.arange(S, dtype=np.int64), sizes)
        cands = candidate_frequencies(buckets, perm, B).reshape(
            buckets.size, n // B
        )
        flat_sig = np.repeat(sig_idx, n // B)
        flat = cands.ravel()
        if masks is not None:
            keep = masks[flat_sig, flat % masks.shape[1]]
            flat = flat[keep]
            flat_sig = flat_sig[keep]
        if flat.size == 0:
            continue
        # One vote per distinct (signal, frequency) pair per loop: the
        # signal offset folds the whole batch into one key space, so a
        # single dedupe + scatter-add covers all S signals.
        uniq = _distinct_int64(flat_sig * n + flat)
        scores[uniq] += 1
    per_signal = scores.reshape(S, n)
    hits = [np.flatnonzero(per_signal[s] >= vote_threshold).astype(np.int64)
            for s in range(S)]
    votes = [per_signal[s, h].astype(np.int64) for s, h in enumerate(hits)]
    return hits, votes
