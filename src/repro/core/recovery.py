"""Location recovery — reverse the hash, vote across loops (paper step 5).

Each selected bucket ``J`` of a loop covers the permuted spectral positions
within half a bucket width of its centre, ``p in [ceil((J-0.5)*n/B),
ceil((J+0.5)*n/B))``.  Undoing the permutation (multiply by ``sigma^{-1}``)
turns those into candidate *original* frequencies; a frequency that is truly
large falls in a selected bucket of (almost) every loop, while noise
candidates repeat rarely.  Keeping candidates with at least
``vote_threshold`` votes across the ``L`` loops is the paper's
``I' = { i : s_i > L/2 }``.

The GPU kernel (Algorithm 4) does exactly this with one thread per selected
bucket and ``atomicAdd`` on a length-``n`` score array; here the votes are a
vectorized ``np.add.at`` — the same scatter-add, minus the hardware.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from .permutation import Permutation

__all__ = ["candidate_frequencies", "VoteAccumulator", "recover_locations"]


def candidate_frequencies(
    selected_buckets: np.ndarray, perm: Permutation, B: int
) -> np.ndarray:
    """Original-domain candidate frequencies for the selected buckets.

    Returns a flat int64 array of ``len(selected) * (n//B)`` candidates
    (duplicates possible when regions abut).  Mirrors Algorithm 4's
    ``low``/``high`` region and ``loc = (low + j) * a % n`` walk, in closed
    form.
    """
    n = perm.n
    if B < 1 or n % B != 0:
        raise ParameterError(f"B={B} must divide n={n}")
    n_div_b = n // B
    J = np.asarray(selected_buckets, dtype=np.int64)
    if J.ndim != 1:
        raise ParameterError(f"selected buckets must be 1-D, got shape {J.shape}")
    if J.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any((J < 0) | (J >= B)):
        raise ParameterError("bucket indices out of range")
    # ceil((J - 0.5) * n/B) == J*n_div_b - n_div_b//2 in exact integer
    # arithmetic (n_div_b is a power of two), avoiding float rounding at big n.
    low = J * n_div_b - n_div_b // 2
    offsets = np.arange(n_div_b, dtype=np.int64)
    permuted = (low[:, None] + offsets[None, :]) % n
    return ((permuted * perm.sigma_inv) % n).ravel()


class VoteAccumulator:
    """Per-transform vote scores over the ``n`` frequencies.

    A dense ``int16`` score array — the direct analog of the GPU kernel's
    ``score[n]`` buffer (Algorithm 4).  ``int16`` suffices because scores
    are bounded by the loop count.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ParameterError(f"n must be positive, got {n}")
        self.n = int(n)
        self.scores = np.zeros(self.n, dtype=np.int16)

    def add_loop_votes(self, candidates: np.ndarray) -> None:
        """Add one loop's candidates (each distinct frequency votes once).

        Within a loop the same frequency can appear from two adjacent
        selected buckets' overlapping edges; deduplicate so a loop
        contributes at most one vote per frequency, keeping the
        across-loop vote count meaningful.
        """
        if candidates.size == 0:
            return
        uniq = np.unique(candidates)
        self.scores[uniq] += 1

    def hits(self, threshold: int) -> np.ndarray:
        """Frequencies with at least ``threshold`` votes, ascending."""
        if threshold < 1:
            raise ParameterError(f"threshold must be >= 1, got {threshold}")
        return np.flatnonzero(self.scores >= threshold).astype(np.int64)


def recover_locations(
    selected_per_loop: list[np.ndarray],
    permutations: list[Permutation],
    B: int,
    vote_threshold: int,
    *,
    residue_filter: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run voting over all loops; return ``(hit_frequencies, their_scores)``.

    ``residue_filter`` is the optional sFFT-2.0 Comb screen (see
    :mod:`repro.core.comb`): a boolean mask of length ``W`` — candidates
    whose residue ``f mod W`` is not approved never enter the vote, cutting
    the scatter-add work to the approved classes.
    """
    if len(selected_per_loop) != len(permutations):
        raise ParameterError("one selected-bucket set per permutation required")
    if not permutations:
        raise ParameterError("at least one loop is required")
    if residue_filter is not None:
        residue_filter = np.asarray(residue_filter, dtype=bool)
        if residue_filter.ndim != 1 or residue_filter.size < 1:
            raise ParameterError("residue_filter must be a 1-D boolean mask")
    acc = VoteAccumulator(permutations[0].n)
    for sel, perm in zip(selected_per_loop, permutations):
        cands = candidate_frequencies(sel, perm, B)
        if residue_filter is not None and cands.size:
            cands = cands[residue_filter[cands % residue_filter.size]]
        acc.add_loop_votes(cands)
    hits = acc.hits(vote_threshold)
    return hits, acc.scores[hits].astype(np.int64)
