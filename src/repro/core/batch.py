"""Batched sparse-FFT execution — one plan, a stack of signals, one pass.

The per-call driver (:func:`~repro.core.sfft.sfft`) already amortizes plan
synthesis; this module amortizes *execution* overhead across a ``(S, n)``
signal stack the way the GPU implementation amortizes kernel launches:

* steps 1-2 run as **one** fancy-indexed gather over the whole stack
  (:meth:`~repro.core.workspace.PlanWorkspace.bin_fused_stack`);
* step 3 is a single ``(S*L, B)`` batched bucket FFT — the shape a batched
  cuFFT call would take;
* step 4 selects buckets with one batched top-k over all ``S * v_loops``
  voting rows (:func:`~repro.core.cutoff.cutoff_rows`);
* step 5 votes for every signal in one flat ``(S * n)`` score array
  (:func:`~repro.core.recovery.recover_locations_stack`);
* step 6 estimates all signals' hits in one vectorized pass
  (:func:`~repro.core.estimation.estimate_values_stack`).

Every stage is a reshape of the exact computation the single-signal driver
performs, so ``sfft_batch_fused(X, plan)[s]`` recovers the same support as
``sfft(X[s], plan=plan)`` with (floating-point-)identical values — the
property suite asserts this signal for signal, with and without the Comb
pre-filter.

The stage pipeline itself is exposed as :func:`run_stack_pipeline` so the
sharded executor (:mod:`repro.core.executor`) can drive slices of a stack
through it concurrently — every stage is per-signal independent, so a
shard's results are bit-identical to the same rows of one whole-stack
pass.

The public entry point is :func:`repro.core.variants.sfft_batch`, which
routes eligible calls here and falls back to the per-signal loop for
non-default binning modes.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError, RecoveryError
from ..utils.rng import RngLike
from ..utils.validation import as_complex_signal
from .comb import comb_approved_residues
from .cutoff import cutoff_rows
from .estimation import estimate_values_stack
from .plan import SfftPlan
from .recovery import recover_locations_stack
from .sfft import SparseFFTResult

__all__ = ["sfft_batch_fused", "run_stack_pipeline", "as_signal_stack",
           "comb_masks_for_stack"]


@shape_contract("X:*, plan:* -> (S, n)", dtype="complex128",
                bind={"n": "plan.n"})
def as_signal_stack(X: np.ndarray, plan: SfftPlan) -> np.ndarray:
    """Validate ``X`` as an ``(S, n)`` complex stack for ``plan``, no-copy
    when it already is one (C-contiguous ``complex128``)."""
    X = np.atleast_2d(np.asarray(X))
    if X.ndim != 2:
        raise ParameterError(f"signal stack must be 2-D, got shape {X.shape}")
    if X.dtype == np.complex128 and X.flags.c_contiguous:
        # Already the working layout: validate the shape, never copy the
        # stack (it can dwarf every buffer the transform itself touches).
        if X.shape[1] != plan.n:
            raise ParameterError(
                f"signal length {X.shape[1]} != plan n={plan.n}"
            )
        if X.shape[0] == 0:
            raise ParameterError("batch must contain at least one signal")
        return X
    return np.stack([as_complex_signal(row, plan.n) for row in X])


@shape_contract("X:(S, n), plan:* -> (S, W)",
                bind={"n": "plan.n", "W": "comb_width"})
def comb_masks_for_stack(
    X: np.ndarray,
    plan: SfftPlan,
    comb_width: int,
    comb_loops: int,
    seed: RngLike,
) -> np.ndarray:
    """Per-signal sFFT-2.0 Comb masks, built row by row in stack order.

    The masks are data-dependent, hence per-signal; each row is built
    exactly as the per-signal driver would.  Computed in *stack order* so a
    :class:`numpy.random.Generator` seed draws the same permutation
    sequence whether the stack later runs serially or sharded.
    """
    return np.stack([
        comb_approved_residues(
            X[s], comb_width, plan.params.k, loops=comb_loops, seed=seed
        )
        for s in range(X.shape[0])
    ])


@shape_contract("X:(S, n):complex128, plan:* -> *",
                bind={"n": "plan.n", "B": "plan.params.B",
                      "L": "plan.params.loops",
                      "v": "plan.params.voting_loops"})
def run_stack_pipeline(
    X: np.ndarray,
    plan: SfftPlan,
    *,
    workspace=None,
    cutoff_method: str = "topk",
    residue_filters: np.ndarray | None = None,
    trim_to_k: bool = True,
    strict: bool = False,
    signal_offset: int = 0,
    stage=None,
) -> list[SparseFFTResult]:
    """Drive a validated ``(S, n)`` stack through the fused stage pipeline.

    This is the shard-runnable core of :func:`sfft_batch_fused`: ``X`` must
    already be a validated stack (see :func:`as_signal_stack`) and any Comb
    masks must be precomputed (``residue_filters``, one row per signal).
    ``workspace`` is the :class:`~repro.core.workspace.PlanWorkspace` to
    execute with — the sharded executor passes a per-worker clone; the
    default is the plan's cached workspace.  ``signal_offset`` shifts
    signal indices in ``strict`` error messages so shard errors name the
    global stack row.  ``stage`` is an optional ``stage(name, **attrs)``
    callable returning a context manager, used to clock each stage (the
    executor emits per-shard spans through it).
    """
    S = X.shape[0]
    params = plan.params
    B, L = params.B, params.loops
    v_loops = params.voting_loops
    ws = plan.workspace() if workspace is None else workspace
    if stage is None:
        def stage(name, **attrs):
            return nullcontext()

    # Steps 1-2: one gather + fold for the whole stack.
    with stage("perm_filter", signals=S, loops=L, B=B):
        raw = ws.bin_fused_stack(X)

    # Step 3: one (S*L, B) batched bucket FFT through the workspace's
    # backend binding.
    with stage("bucket_fft", B=B, batch=S * L):
        rows = ws.bucket_fft(raw.reshape(S * L, B)).reshape(S, L, B)

    # Step 4: batched cutoff over all (signal, voting-loop) rows at once.
    with stage("cutoff", method=cutoff_method):
        flat_sel = cutoff_rows(
            np.abs(rows[:, :v_loops, :]).reshape(S * v_loops, B),
            params.select_count,
            method=cutoff_method,
        )
        selected = [
            flat_sel[s * v_loops:(s + 1) * v_loops] for s in range(S)
        ]

    # Step 5: one flat vote pass for every signal.
    perms_v = list(plan.permutations[:v_loops])
    with stage("recovery", loops=v_loops):
        hits, votes = recover_locations_stack(
            selected, perms_v, B, params.vote_threshold,
            residue_filters=residue_filters,
        )

    if strict:
        for s in range(S):
            if hits[s].size < params.k:
                raise RecoveryError(
                    f"signal {signal_offset + s}: recovered only "
                    f"{hits[s].size} of k={params.k} coefficients"
                )

    # Step 6: all signals' estimates in one vectorized pass.
    with stage("estimation", hits=int(sum(h.size for h in hits))):
        values = estimate_values_stack(
            hits, rows, list(plan.permutations), plan.filt, B
        )

    results = []
    for s in range(S):
        res = SparseFFTResult(
            n=params.n, locations=hits[s], values=values[s], votes=votes[s]
        )
        if trim_to_k:
            res = res.top(params.k)
        results.append(res)
    return results


@shape_contract("X:*, plan:* -> *", bind={"n": "plan.n"})
def sfft_batch_fused(
    X: np.ndarray,
    plan: SfftPlan,
    *,
    cutoff_method: str = "topk",
    comb_width: int | None = None,
    comb_loops: int = 3,
    trim_to_k: bool = True,
    strict: bool = False,
    seed: RngLike = None,
    fft_backend: str | None = None,
    fft_workers: int = 1,
) -> list[SparseFFTResult]:
    """Transform an ``(S, n)`` signal stack under one plan, fully batched.

    Parameters mirror :func:`~repro.core.sfft.sfft`'s execution options
    (``cutoff_method``, ``comb_width``/``comb_loops``, ``trim_to_k``,
    ``strict``); ``seed`` only seeds the Comb pre-filter's permutations,
    exactly as it does in the per-signal driver.  ``fft_backend`` /
    ``fft_workers`` select the bucket-FFT implementation (see
    :mod:`repro.core.fft_backend`); the default resolves the process-wide
    backend.  Returns one :class:`~repro.core.sfft.SparseFFTResult` per
    stack row.
    """
    X = as_signal_stack(X, plan)

    # Optional sFFT-2.0 Comb screen.
    residue_filters = None
    if comb_width is not None:
        residue_filters = comb_masks_for_stack(
            X, plan, comb_width, comb_loops, seed
        )

    if fft_backend is None and fft_workers == 1:
        ws = plan.workspace()
    else:
        ws = plan.workspace().clone(
            fft_backend=fft_backend, fft_workers=fft_workers
        )
    return run_stack_pipeline(
        X, plan,
        workspace=ws,
        cutoff_method=cutoff_method,
        residue_filters=residue_filters,
        trim_to_k=trim_to_k,
        strict=strict,
    )
