"""Magnitude reconstruction — paper step 6 / GPU Algorithm 5.

For a recovered frequency ``f`` and loop ``r`` with permutation
``(sigma_r, tau_r)``:

* its permuted position is ``p = sigma_r * f mod n``;
* it hashed to the *nearest* bucket ``m = round(p / (n/B)) mod B`` with a
  signed offset ``o = p - m*(n/B)`` (``|o| <= n/(2B)``, inside the filter's
  flat passband by design);
* the frequency-domain bucket value satisfies
  ``Z_r[m] ≈ (1/n) * x_hat[f] * exp(2j*pi*tau_r*f/n) * G_hat[-o]``,

so each loop yields the unbiased estimate

    ``est_r = n * Z_r[m] / G_hat[(-o) mod n] * exp(-2j*pi*tau_r*f/n)``.

The final value is the coordinate-wise median (real and imaginary parts
separately — exactly the paper's step 6) over the ``L`` loops, which rejects
the occasional loop where ``f`` collided with another coefficient.
"""

from __future__ import annotations

import numpy as np

from ..analysis.staticcheck.contracts import shape_contract
from ..errors import ParameterError
from ..filters.base import FlatFilter
from .permutation import Permutation

__all__ = [
    "loop_estimates",
    "estimate_values",
    "estimate_values_stack",
    "componentwise_median",
    "clean_loop_counts",
    "median_reliable",
]


@shape_contract("frequencies:(F,), bucket_rows:(L, B):complex128 -> (F, L)",
                dtype="complex128",
                bind={"B": "B", "n": "filt.n"},
                attrs={"filt.freq": "(n,):complex128"})
def loop_estimates(
    frequencies: np.ndarray,
    bucket_rows: np.ndarray,
    permutations: list[Permutation],
    filt: FlatFilter,
    B: int,
) -> np.ndarray:
    """Per-loop estimates, shape ``(len(frequencies), L)``.

    ``bucket_rows`` is the ``(L, B)`` array of frequency-domain buckets (the
    batched FFT output).  Vectorized over both hits and loops — the direct
    translation of Algorithm 5's per-``(tid, j)`` body.
    """
    freqs = np.asarray(frequencies, dtype=np.int64)
    rows = np.asarray(bucket_rows)
    if rows.ndim != 2 or rows.shape[1] != B:
        raise ParameterError(f"bucket_rows must be (L, B), got {rows.shape}")
    L = rows.shape[0]
    if len(permutations) != L:
        raise ParameterError(f"{len(permutations)} permutations for L={L} rows")
    n = filt.n
    n_div_b = n // B
    if freqs.size == 0:
        return np.empty((0, L), dtype=np.complex128)
    if np.any((freqs < 0) | (freqs >= n)):
        raise ParameterError("frequencies out of range")

    sigmas = np.array([p.sigma for p in permutations], dtype=np.int64)
    taus = np.array([p.tau for p in permutations], dtype=np.float64)

    # permuted position per (hit, loop); int64 is safe: f, sigma < n <= 2^31.
    p = (freqs[:, None] * sigmas[None, :]) % n
    hashed = ((p + n_div_b // 2) // n_div_b) % B
    dist = p - ((p + n_div_b // 2) // n_div_b) * n_div_b  # signed offset o

    z = rows[np.arange(L)[None, :], hashed]
    g = filt.freq[(-dist) % n]
    phase = np.exp(-2j * np.pi * taus[None, :] * freqs[:, None].astype(np.float64) / n)
    return n * z / g * phase


def clean_loop_counts(
    frequencies: np.ndarray,
    permutations: list[Permutation],
    n: int,
    B: int,
) -> np.ndarray:
    """How many loops estimate each frequency free of cross-contamination.

    A loop is *clean* for frequency ``f`` when no other frequency in
    ``frequencies`` permutes to within one bucket width ``n/B`` of ``f``'s
    bucket center.  Inside that window a neighbor either hashes to the
    same bucket (circular distance ``<= n/(2B)``) or sits in the filter's
    transition band, where ``G_hat`` has decayed from the flat passband
    but not yet to the stop-band floor — both bias that loop's estimate
    for ``f`` far beyond the design tolerance.

    The returned counts ground a deterministic reliability predicate for
    the componentwise median (see :func:`median_reliable`): the loop
    schedule is fixed at plan time, so whether a given support is
    vulnerable is a pure function of ``(locations, permutations, n, B)``
    — no randomness at execution time.
    """
    freqs = np.asarray(frequencies, dtype=np.int64)
    L = len(permutations)
    if freqs.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any((freqs < 0) | (freqs >= n)):
        raise ParameterError("frequencies out of range")
    w = n // B
    sigmas = np.array([p.sigma for p in permutations], dtype=np.int64)
    p = (freqs[:, None] * sigmas[None, :]) % n  # (F, L)
    centers = (((p + w // 2) // w) * w) % n
    # Circular distance of every frequency's permuted position from every
    # *other* frequency's bucket center, per loop: (F_center, F_other, L).
    d = (p[None, :, :] - centers[:, None, :]) % n
    d = np.minimum(d, n - d)
    near = d < w
    idx = np.arange(freqs.size)
    near[idx, idx, :] = False  # a frequency never contaminates itself
    dirty = near.any(axis=1)  # (F, L)
    return np.asarray(L - dirty.sum(axis=1), dtype=np.int64)


def median_reliable(
    frequencies: np.ndarray,
    permutations: list[Permutation],
    n: int,
    B: int,
) -> np.ndarray:
    """Whether the median estimate of each frequency is collision-proof.

    ``True`` where a strict majority of loops are clean (see
    :func:`clean_loop_counts`): the componentwise median of ``L`` loop
    estimates then falls on or between clean samples in each component,
    so it inherits the design accuracy.  Where this returns ``False`` the
    median can be dragged by contaminated loops — the documented
    probabilistic failure mode of the paper's step 6, not an estimator
    bug — and only a loose accuracy bound holds.
    """
    counts = clean_loop_counts(frequencies, permutations, n, B)
    return counts > len(permutations) // 2


def componentwise_median(estimates: np.ndarray) -> np.ndarray:
    """Median of real and imaginary parts separately along the last axis."""
    est = np.asarray(estimates)
    if est.size == 0:
        return np.empty(est.shape[:-1], dtype=np.complex128)
    return np.median(est.real, axis=-1) + 1j * np.median(est.imag, axis=-1)


@shape_contract("frequencies:(F,), bucket_rows:(L, B):complex128 -> (F,)",
                dtype="complex128", bind={"B": "B"})
def estimate_values(
    frequencies: np.ndarray,
    bucket_rows: np.ndarray,
    permutations: list[Permutation],
    filt: FlatFilter,
    B: int,
) -> np.ndarray:
    """Final coefficient estimates for ``frequencies`` (median over loops)."""
    return componentwise_median(
        loop_estimates(frequencies, bucket_rows, permutations, filt, B)
    )


@shape_contract("hits_per_signal:*, bucket_rows_stack:(S, L, B):complex128"
                " -> *",
                bind={"S": "len(hits_per_signal)", "B": "B", "n": "filt.n"},
                attrs={"filt.freq": "(n,):complex128"})
def estimate_values_stack(
    hits_per_signal: list[np.ndarray],
    bucket_rows_stack: np.ndarray,
    permutations: list[Permutation],
    filt: FlatFilter,
    B: int,
) -> list[np.ndarray]:
    """Step 6 for a whole signal stack — one vectorized pass over all hits.

    ``bucket_rows_stack`` is the ``(S, L, B)`` frequency-domain bucket tensor
    of the batched engine.  All signals' hit frequencies are concatenated and
    estimated in one shot (the per-``(hit, loop)`` formulas are elementwise,
    so batching cannot change any value); the result is split back into one
    value array per signal, each identical to :func:`estimate_values` on
    that signal's rows.
    """
    stack = np.asarray(bucket_rows_stack)
    if stack.ndim != 3 or stack.shape[2] != B:
        raise ParameterError(
            f"bucket_rows_stack must be (S, L, B), got {stack.shape}"
        )
    S, L = stack.shape[0], stack.shape[1]
    if len(hits_per_signal) != S:
        raise ParameterError(
            f"{len(hits_per_signal)} hit sets for a stack of {S} signals"
        )
    if len(permutations) != L:
        raise ParameterError(f"{len(permutations)} permutations for L={L} rows")
    n = filt.n
    n_div_b = n // B
    sizes = [np.asarray(h).size for h in hits_per_signal]
    bounds = np.cumsum(sizes)
    if bounds[-1] == 0:
        return [np.empty(0, dtype=np.complex128) for _ in range(S)]
    freqs = np.concatenate(
        [np.asarray(h, dtype=np.int64) for h in hits_per_signal]
    )
    if np.any((freqs < 0) | (freqs >= n)):
        raise ParameterError("frequencies out of range")
    sig_of = np.repeat(np.arange(S, dtype=np.int64), sizes)

    sigmas = np.array([p.sigma for p in permutations], dtype=np.int64)
    taus = np.array([p.tau for p in permutations], dtype=np.float64)

    p = (freqs[:, None] * sigmas[None, :]) % n
    hashed = ((p + n_div_b // 2) // n_div_b) % B
    dist = p - ((p + n_div_b // 2) // n_div_b) * n_div_b

    z = stack[sig_of[:, None], np.arange(L)[None, :], hashed]
    g = filt.freq[(-dist) % n]
    phase = np.exp(
        -2j * np.pi * taus[None, :] * freqs[:, None].astype(np.float64) / n
    )
    values = componentwise_median(n * z / g * phase)
    return list(np.split(values, bounds[:-1]))
