"""Simulated CUDA substrate: device model, memory/coalescing, kernels,
streams, and an event-driven overlap scheduler."""

from .atomics import AtomicProfile, atomic_add, atomic_time
from .audit import AccessAudit, audit_addresses, classify_pattern
from .device import GPU_DEVICES, KEPLER_K20X, KEPLER_K40, MAXWELL_M40, DeviceSpec, Occupancy
from .kernel import KernelSpec, KernelTiming, estimate_kernel
from .memory_pool import Allocation, DeviceMemoryPool
from .memory import (
    AccessPattern,
    GlobalAccess,
    measure_transactions,
    transaction_count,
    useful_bytes,
    wire_bytes,
)
from .profiler import (
    KernelSummary,
    kernel_self_times,
    render_summary,
    render_timeline,
    summarize,
)
from .simt import MemEvent, SimtReport, VBuffer, WarpContext, simt_price, simt_run
from .shared import (
    SharedAccess,
    bank_conflict_factor,
    measure_bank_conflicts,
    shared_time,
)
from .stream import Event, OpKind, Operation, Stream
from .thrust import inclusive_scan, reduce_sum, sort_by_key, sort_passes
from .timeline import GpuSimulation, OpRecord, TimelineReport

__all__ = [
    "AtomicProfile",
    "atomic_add",
    "atomic_time",
    "AccessAudit",
    "audit_addresses",
    "classify_pattern",
    "GPU_DEVICES",
    "KEPLER_K20X",
    "KEPLER_K40",
    "MAXWELL_M40",
    "DeviceSpec",
    "Occupancy",
    "KernelSpec",
    "KernelTiming",
    "estimate_kernel",
    "Allocation",
    "DeviceMemoryPool",
    "AccessPattern",
    "GlobalAccess",
    "measure_transactions",
    "transaction_count",
    "useful_bytes",
    "wire_bytes",
    "MemEvent",
    "SimtReport",
    "VBuffer",
    "WarpContext",
    "simt_price",
    "simt_run",
    "SharedAccess",
    "bank_conflict_factor",
    "measure_bank_conflicts",
    "shared_time",
    "KernelSummary",
    "kernel_self_times",
    "render_summary",
    "render_timeline",
    "summarize",
    "Event",
    "OpKind",
    "Operation",
    "Stream",
    "inclusive_scan",
    "reduce_sum",
    "sort_by_key",
    "sort_passes",
    "GpuSimulation",
    "OpRecord",
    "TimelineReport",
]
