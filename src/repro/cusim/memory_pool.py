"""Device memory accounting.

The K20x carries 6 GB; at the paper's largest size the input signal alone
is 2 GB (2^27 complex doubles), so a real implementation budgets carefully.
:class:`DeviceMemoryPool` is a simple bump accountant: named allocations
against the device's capacity, failing with
:class:`~repro.errors.DeviceMemoryError` when the footprint would not fit —
which callers (cusFFT's planner) use to reject shapes the physical card
could not run.

This is bookkeeping, not data: buffers live in host NumPy arrays; the pool
tracks what their device twins would occupy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceMemoryError, ParameterError
from .device import DeviceSpec

__all__ = ["Allocation", "DeviceMemoryPool"]


@dataclass(frozen=True)
class Allocation:
    """One named device allocation."""

    name: str
    nbytes: int


@dataclass
class DeviceMemoryPool:
    """Tracks allocations against a device's global memory."""

    device: DeviceSpec
    reserved_bytes: int = 64 * 1024 * 1024   # runtime/context overhead
    _allocs: dict[str, Allocation] = field(default_factory=dict)

    @property
    def capacity(self) -> int:
        """Usable bytes (global memory minus the runtime reservation)."""
        return self.device.global_mem_bytes - self.reserved_bytes

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(a.nbytes for a in self._allocs.values())

    @property
    def free(self) -> int:
        """Bytes remaining."""
        return self.capacity - self.used

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` under ``name``.

        Raises :class:`DeviceMemoryError` when it does not fit and
        :class:`ParameterError` on a duplicate name or non-positive size.
        """
        if nbytes <= 0:
            raise ParameterError(f"allocation size must be positive, got {nbytes}")
        if name in self._allocs:
            raise ParameterError(f"allocation {name!r} already exists")
        if nbytes > self.free:
            raise DeviceMemoryError(
                f"{name}: {nbytes / 1e9:.2f} GB requested, "
                f"{self.free / 1e9:.2f} GB free of "
                f"{self.capacity / 1e9:.2f} GB on {self.device.name}"
            )
        a = Allocation(name=name, nbytes=int(nbytes))
        self._allocs[name] = a
        return a

    def release(self, name: str) -> None:
        """Free the allocation ``name``."""
        if name not in self._allocs:
            raise ParameterError(f"no allocation named {name!r}")
        del self._allocs[name]

    def summary(self) -> dict[str, int]:
        """``{name: bytes}`` of live allocations."""
        return {a.name: a.nbytes for a in self._allocs.values()}
