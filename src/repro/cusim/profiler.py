"""nvprof-style aggregation of a simulated timeline.

The paper's Figure 2 comes from profiling — per-step time shares as ``n``
and ``k`` vary.  This module turns a
:class:`~repro.cusim.timeline.TimelineReport` into per-kernel-name summaries
(calls, total/avg time, share of makespan, memory-bound fraction) and a
rendered table, so the reproduction's profiling harness reads like
``nvprof --print-gpu-summary`` output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.tables import format_seconds, format_table
from .stream import OpKind
from .timeline import TimelineReport

__all__ = [
    "KernelSummary",
    "summarize",
    "kernel_self_times",
    "render_summary",
    "render_timeline",
]


@dataclass(frozen=True)
class KernelSummary:
    """Aggregate statistics for all launches sharing one kernel name."""

    name: str
    calls: int
    total_s: float
    avg_s: float
    share: float           # of total device busy time
    wire_bytes: int
    coalescing_efficiency: float


def summarize(report: TimelineReport) -> list[KernelSummary]:
    """Group kernel records by name; descending total time."""
    groups: dict[str, list] = {}
    for rec in report.records:
        if rec.kind is not OpKind.KERNEL:
            continue
        groups.setdefault(rec.name, []).append(rec)
    busy = sum(r.isolated_s for recs in groups.values() for r in recs)
    out = []
    for name, recs in groups.items():
        total = sum(r.isolated_s for r in recs)
        wire = sum(r.timing.wire_bytes for r in recs if r.timing)
        useful = sum(r.timing.useful_bytes for r in recs if r.timing)
        out.append(
            KernelSummary(
                name=name,
                calls=len(recs),
                total_s=total,
                avg_s=total / len(recs),
                share=total / busy if busy > 0 else 0.0,
                wire_bytes=wire,
                coalescing_efficiency=(useful / wire) if wire else 1.0,
            )
        )
    out.sort(key=lambda s: s.total_s, reverse=True)
    return out


def kernel_self_times(report: TimelineReport) -> list[tuple[str, str, float]]:
    """Per-(stream, kernel) *self* time for collapsed-stack exports.

    Under the processor-sharing model, a record's ``isolated_s`` is exactly
    the integral of its progress rate over its wall interval — the time
    attributable to the kernel itself, excluding slowdown from contention.
    That makes it the right "self" value for flamegraph attribution (the
    wall interval ``span_s`` would double-count overlap).

    Returns ``(stream label, kernel name, self seconds)`` triples, streams
    labelled ordinally (``stream0``, ``stream1``, ...) exactly as
    :func:`render_timeline` and :meth:`~repro.obs.trace.Tracer.add_timeline`
    label them, sorted by stream then descending self time.
    """
    ordinals = {sid: i for i, sid in enumerate(report.stream_ids())}
    agg: dict[tuple[int, str], float] = {}
    for rec in report.records:
        if rec.kind is not OpKind.KERNEL:
            continue
        key = (ordinals[rec.stream_id], rec.name)
        agg[key] = agg.get(key, 0.0) + rec.isolated_s
    return [
        (f"stream{ordinal}", name, self_s)
        for (ordinal, name), self_s in sorted(
            agg.items(), key=lambda kv: (kv[0][0], -kv[1])
        )
    ]


def render_summary(report: TimelineReport, title: str = "GPU kernel summary") -> str:
    """Render the per-kernel table plus transfer/makespan footer."""
    rows = [
        [
            s.name,
            s.calls,
            format_seconds(s.total_s),
            format_seconds(s.avg_s),
            f"{100 * s.share:.1f}%",
            f"{100 * s.coalescing_efficiency:.0f}%",
        ]
        for s in summarize(report)
    ]
    table = format_table(
        ["kernel", "calls", "total", "avg", "share", "coalesce"],
        rows,
        title=title,
    )
    transfers = [
        r for r in report.records if r.kind in (OpKind.H2D, OpKind.D2H)
    ]
    xfer_s = sum(r.isolated_s for r in transfers)
    footer = (
        f"\ntransfers: {len(transfers)} ({format_seconds(xfer_s)})"
        f"   makespan: {format_seconds(report.makespan_s)}"
        f"   peak concurrency: {report.max_concurrency()}"
    )
    return table + footer


def render_timeline(
    report: TimelineReport, *, width: int = 72, max_rows: int = 24
) -> str:
    """ASCII Gantt of the simulated timeline (a text-mode nvvp).

    One row per stream, time flowing left to right across ``width``
    columns; each op paints its interval with the first letter of its
    name (kernels) or ``<``/``>`` (H2D/D2H transfers).  Streams beyond
    ``max_rows`` are summarized.
    """
    if not report.records or report.makespan_s <= 0:
        return "(empty timeline)"
    scale = width / report.makespan_s

    # Assign each kernel name a distinct symbol, deterministically: names
    # in first-appearance order prefer a letter from the (prefix-stripped)
    # name, then fall back through a fixed pool.  Only when the pool is
    # truly exhausted do names share "?", and the legend reports that
    # overflow group explicitly instead of listing ambiguous duplicates.
    _POOL = (
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789"
        "!@#$%&*+=~^:;"
    )
    names: list[str] = []
    for rec in report.records:
        if rec.kind is OpKind.KERNEL and rec.name not in names:
            names.append(rec.name)
    symbols: dict[str, str] = {}
    used: set[str] = set()
    overflow: list[str] = []
    for name in names:
        stripped = name.replace("cusfft_", "").replace("thrust_", "")
        pick = next(
            (c for c in stripped + _POOL
             if (c.isalnum() or c in _POOL) and c not in used),
            None,
        )
        if pick is None:
            overflow.append(name)
            symbols[name] = "?"
        else:
            symbols[name] = pick
            used.add(pick)

    streams: dict[int, list] = {}
    for rec in report.records:
        streams.setdefault(rec.stream_id, []).append(rec)

    lines = [f"timeline ({format_seconds(report.makespan_s)} total, "
             f"1 col = {format_seconds(report.makespan_s / width)})"]
    shown = 0
    # Label streams ordinally within this report (raw Stream ids are
    # globally unique and carry no meaning to the reader).
    for ordinal, sid in enumerate(sorted(streams)):
        if shown >= max_rows:
            lines.append(f"... {len(streams) - shown} more streams")
            break
        shown += 1
        row = [" "] * width
        for rec in streams[sid]:
            lo = min(width - 1, int(rec.start_s * scale))
            hi = min(width, max(lo + 1, int(rec.end_s * scale)))
            if rec.kind is OpKind.H2D:
                ch = "<"
            elif rec.kind is OpKind.D2H:
                ch = ">"
            elif rec.kind is OpKind.HOST:
                ch = "."
            else:
                ch = symbols.get(rec.name, "?")
            for i in range(lo, hi):
                row[i] = ch
        lines.append(f"s{ordinal:<3d} |{''.join(row)}|")
    legend = sorted(
        f"{sym}={name}" for name, sym in symbols.items() if sym != "?"
    )
    if overflow:
        legend.append(f"?={len(overflow)} more kernels")
    lines.append("legend: " + ", ".join(legend) + ", <=H2D, >=D2H")
    return "\n".join(lines)
