"""Kernel launch descriptions and the per-launch cost model.

A :class:`KernelSpec` is the simulator's stand-in for a compiled CUDA
kernel: launch geometry plus *countable* resource demands — FLOPs, global
memory access streams, atomics, a serialized-dependency depth.  The cost
model combines them roofline-style:

``total = launch_overhead + max(compute, memory, latency_chain) + atomics``

with two occupancy effects the paper leans on:

* low occupancy throttles compute (not enough resident warps to fill the
  pipelines), and
* **memory-level parallelism** caps achievable bandwidth by Little's law:
  a kernel with few resident warps cannot keep enough transactions in
  flight to saturate DRAM (``bytes_in_flight / latency`` < peak).  This is
  exactly why the asynchronous layout transformation helps — concurrent
  kernels on different streams add their in-flight transactions together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import LaunchConfigError
from .atomics import AtomicProfile, atomic_time
from .device import DeviceSpec, Occupancy
from .memory import GlobalAccess, transaction_count, useful_bytes, wire_bytes
from .shared import SharedAccess, shared_time

__all__ = ["KernelSpec", "KernelTiming", "estimate_kernel"]


@dataclass(frozen=True)
class KernelSpec:
    """Resource model of one kernel launch.

    Attributes
    ----------
    name:
        Kernel identifier (profiler aggregation key).
    grid_blocks / threads_per_block:
        Launch geometry.
    flops_per_thread:
        Arithmetic per thread (double-precision FLOPs; a complex
        multiply-add counts 8).
    accesses:
        Global-memory streams (see :class:`~repro.cusim.memory.GlobalAccess`).
    shared_accesses:
        Shared-memory streams with their bank-conflict strides (see
        :class:`~repro.cusim.shared.SharedAccess`).
    atomics:
        Optional atomic workload.
    dependent_rounds:
        Longest chain of *serially dependent* global accesses in one thread
        (a pointer-chase or accumulation loop with one load per round);
        bounds the kernel below by ``rounds * mem_latency / mlp``.
    registers_per_thread / shared_per_block:
        Occupancy inputs.
    """

    name: str
    grid_blocks: int
    threads_per_block: int
    flops_per_thread: float = 0.0
    accesses: tuple[GlobalAccess, ...] = field(default_factory=tuple)
    shared_accesses: tuple[SharedAccess, ...] = field(default_factory=tuple)
    atomics: AtomicProfile | None = None
    dependent_rounds: int = 1
    registers_per_thread: int = 32
    shared_per_block: int = 0

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise LaunchConfigError(f"grid_blocks must be >= 1, got {self.grid_blocks}")
        if self.flops_per_thread < 0:
            raise LaunchConfigError("flops_per_thread must be >= 0")
        if self.dependent_rounds < 1:
            raise LaunchConfigError("dependent_rounds must be >= 1")

    @property
    def total_threads(self) -> int:
        """Threads across the whole grid."""
        return self.grid_blocks * self.threads_per_block


@dataclass(frozen=True)
class KernelTiming:
    """Cost-model output for one launch (isolated, i.e. no stream sharing)."""

    name: str
    compute_s: float
    memory_s: float
    latency_s: float
    atomic_s: float
    overhead_s: float
    occupancy: Occupancy
    transactions: int
    wire_bytes: int
    useful_bytes: int
    sm_demand: float

    @property
    def total_s(self) -> float:
        """Isolated kernel duration."""
        return (
            self.overhead_s
            + max(self.compute_s, self.memory_s, self.latency_s)
            + self.atomic_s
        )

    @property
    def bound(self) -> str:
        """Which term dominates: compute / memory / latency."""
        terms = {
            "compute": self.compute_s,
            "memory": self.memory_s,
            "latency": self.latency_s,
        }
        return max(terms, key=terms.get)

    @property
    def coalescing_efficiency(self) -> float:
        """Useful bytes / wire bytes (1.0 = perfectly coalesced)."""
        if self.wire_bytes == 0:
            return 1.0
        return self.useful_bytes / self.wire_bytes


def estimate_kernel(spec: KernelSpec, device: DeviceSpec) -> KernelTiming:
    """Price one kernel launch on ``device`` (isolated execution)."""
    occ = device.occupancy(
        spec.threads_per_block,
        registers_per_thread=spec.registers_per_thread,
        shared_per_block=spec.shared_per_block,
    )

    # Resident warps actually achievable for this grid (a tiny grid cannot
    # fill the machine no matter the per-block occupancy).
    grid_warps = math.ceil(spec.total_threads / device.warp_size)
    resident_capacity = device.sm_count * occ.active_warps_per_sm
    resident_warps = min(grid_warps, resident_capacity)
    machine_warps = device.sm_count * occ.max_warps_per_sm

    # --- compute time ----------------------------------------------------
    # Utilization scales with resident warps up to the point the pipelines
    # are full (~half the maximum warp population suffices on Kepler).
    fill = min(1.0, resident_warps / (0.5 * machine_warps))
    total_flops = spec.flops_per_thread * spec.total_threads
    compute_s = 0.0
    if total_flops > 0:
        compute_s = total_flops / (device.dp_flops * max(fill, 1e-3))
    # Shared-memory traffic (bank conflicts included) contends with the
    # arithmetic pipelines, so it lands on the compute side of the roofline.
    compute_s += shared_time(spec.shared_accesses, device) / max(fill, 1e-3)

    # --- memory time ------------------------------------------------------
    txns = sum(transaction_count(a, device) for a in spec.accesses)
    wire = sum(wire_bytes(a, device) for a in spec.accesses)
    useful = sum(useful_bytes(a, device) for a in spec.accesses)
    memory_s = 0.0
    if wire > 0:
        # Little's law cap: bytes the resident warps keep in flight.
        in_flight = resident_warps * device.mlp_per_warp * device.transaction_bytes
        mlp_bw = in_flight / device.mem_latency_s
        achievable = min(device.effective_bandwidth, mlp_bw)
        memory_s = wire / achievable

    # --- latency chain ----------------------------------------------------
    # One thread's serially dependent loads cannot be overlapped with each
    # other; mlp_per_warp independent accumulations soften the chain.
    latency_s = 0.0
    if spec.accesses:
        latency_s = (
            spec.dependent_rounds * device.mem_latency_s / device.mlp_per_warp
        )

    atomic_s = atomic_time(spec.atomics, device)

    # Fraction of the machine this kernel occupies while resident — used by
    # the stream scheduler to decide how much concurrency is possible.
    sm_demand = max(1.0 / device.sm_count, resident_warps / machine_warps)

    return KernelTiming(
        name=spec.name,
        compute_s=compute_s,
        memory_s=memory_s,
        latency_s=latency_s,
        atomic_s=atomic_s,
        overhead_s=device.kernel_launch_overhead_s,
        occupancy=occ,
        transactions=txns,
        wire_bytes=wire,
        useful_bytes=useful,
        sm_demand=min(1.0, sm_demand),
    )
