"""Shared-memory bank-conflict model.

Kepler's shared memory is organized as 32 banks of 4 (or 8) bytes;
simultaneous accesses by a warp's lanes to *different words in the same
bank* serialize.  The model mirrors the transaction model's two faces:

* **analytic** — :func:`bank_conflict_factor` maps an access stride to the
  replay factor (1 = conflict-free, 32 = fully serialized), the textbook
  ``32 / gcd-cycle`` rule;
* **measured** — :func:`measure_bank_conflicts` counts the worst per-bank
  collision count for actual lane addresses, which is what the
  ``shared_ld_bank_conflict`` hardware counter reports.

Kernels declare shared traffic via :class:`SharedAccess`; the cost model
adds ``replays * accesses / shared_throughput`` to the compute side (shared
memory is an SM-local resource, not a DRAM one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from .device import DeviceSpec

__all__ = [
    "SharedAccess",
    "bank_conflict_factor",
    "measure_bank_conflicts",
    "shared_time",
]

#: Banks on every CUDA generation this simulator targets.
N_BANKS = 32
#: Bank word size (Kepler default mode).
BANK_BYTES = 4


@dataclass(frozen=True)
class SharedAccess:
    """One shared-memory access stream of a kernel.

    Attributes
    ----------
    accesses:
        Warp-level shared accesses across the whole grid (each access
        moves one word per lane).
    stride_words:
        Word stride between consecutive lanes (1 = conflict-free,
        even strides conflict; 32 = fully serialized on one bank).
    """

    accesses: int
    stride_words: int = 1

    def __post_init__(self) -> None:
        if self.accesses < 0:
            raise ParameterError(f"accesses must be >= 0, got {self.accesses}")
        if self.stride_words < 0:
            raise ParameterError(
                f"stride_words must be >= 0, got {self.stride_words}"
            )


def bank_conflict_factor(stride_words: int) -> int:
    """Replay factor for a warp accessing with lane stride ``stride_words``.

    The classic result: lanes ``i`` touch banks ``(i * stride) % 32``; the
    number of lanes sharing the busiest bank is ``gcd(stride, 32)`` — except
    stride 0 (a broadcast), which the hardware serves in one cycle.
    """
    if stride_words < 0:
        raise ParameterError("stride must be >= 0")
    if stride_words == 0:
        return 1  # broadcast is conflict-free
    return math.gcd(stride_words, N_BANKS)


def measure_bank_conflicts(lane_word_addresses: np.ndarray) -> int:
    """Replay factor for measured per-lane word addresses (one warp).

    Lanes hitting the *same word* broadcast (no conflict); lanes hitting
    different words in one bank serialize.  Returns the worst per-bank
    distinct-word count.
    """
    addr = np.asarray(lane_word_addresses)
    if addr.ndim != 1 or addr.size == 0 or addr.size > N_BANKS:
        raise ParameterError(
            f"expected 1..{N_BANKS} lane addresses, got shape {addr.shape}"
        )
    if np.issubdtype(addr.dtype, np.floating):
        raise ParameterError("addresses must be integers")
    banks = addr.astype(np.int64) % N_BANKS
    worst = 1
    for b in np.unique(banks):
        distinct_words = np.unique(addr[banks == b]).size
        worst = max(worst, distinct_words)
    return worst


def shared_time(
    accesses: tuple[SharedAccess, ...], device: DeviceSpec
) -> float:
    """Seconds a kernel spends on shared-memory traffic.

    Each SM serves one warp-wide shared access per cycle; replays multiply.
    Aggregate throughput is ``sm_count * clock`` warp-accesses per second.
    """
    if not accesses:
        return 0.0
    warp_ops = 0.0
    for a in accesses:
        warp_ops += (a.accesses / device.warp_size) * bank_conflict_factor(
            a.stride_words
        )
    return warp_ops / (device.sm_count * device.clock_hz)
