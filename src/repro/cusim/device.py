"""Simulated CUDA device model.

No GPU exists in this environment, so the paper's testbed (Table I: a Tesla
K20x, Kepler GK110) is reproduced as an explicit machine model.  Everything
performance-related in the reproduction flows through this object:

* static limits (SMs, warp size, registers, shared memory) feed the
  :class:`Occupancy` calculator, exactly as NVIDIA's occupancy spreadsheet
  computes them;
* rate parameters (bandwidth, double-precision FLOP rate, memory latency,
  memory-level parallelism per warp) feed the kernel cost model in
  :mod:`repro.cusim.kernel`;
* the stream scheduler (:mod:`repro.cusim.timeline`) uses ``sm_count`` and
  ``max_concurrent_kernels`` to decide how kernels share the machine.

Calibration note: all *shape* claims in the reproduced figures (who wins,
crossovers, scaling slopes) come from operation/transaction counts; the
constants below only set absolute scale.  They are the K20x's published
numbers with an ``achievable_bandwidth_fraction`` derate reflecting ECC and
real-world efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LaunchConfigError

__all__ = [
    "DeviceSpec",
    "Occupancy",
    "KEPLER_K20X",
    "KEPLER_K40",
    "MAXWELL_M40",
    "GPU_DEVICES",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated CUDA device.

    Attributes mirror the hardware data sheet; see :data:`KEPLER_K20X` for
    the paper's Table I instance.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_hz: float
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int          # bytes usable as shared memory
    global_mem_bytes: int
    peak_bandwidth: float           # bytes/s
    achievable_bandwidth_fraction: float
    dp_flops: float                 # peak double-precision FLOP/s
    transaction_bytes: int          # global-memory transaction granularity
    mem_latency_s: float            # global load round-trip latency
    mlp_per_warp: float             # outstanding transactions a warp sustains
    kernel_launch_overhead_s: float
    max_concurrent_kernels: int
    atomic_throughput: float        # conflict-free global atomics per second
    atomic_serial_latency_s: float  # added latency per serialized conflict
    pcie_bandwidth: float           # bytes/s per copy-engine direction
    pcie_latency_s: float
    copy_engines: int
    ldg_transaction_bytes: int = 32  # read-only/texture path granularity

    @property
    def total_cores(self) -> int:
        """Total CUDA cores across all SMs."""
        return self.sm_count * self.cores_per_sm

    @property
    def effective_bandwidth(self) -> float:
        """Sustainable global-memory bandwidth in bytes/s."""
        return self.peak_bandwidth * self.achievable_bandwidth_fraction

    def occupancy(
        self,
        threads_per_block: int,
        *,
        registers_per_thread: int = 32,
        shared_per_block: int = 0,
    ) -> "Occupancy":
        """Compute the occupancy of a launch configuration on this device.

        Raises :class:`LaunchConfigError` when the block cannot run at all
        (too many threads, registers, or shared memory for one SM).
        """
        if threads_per_block < 1 or threads_per_block > self.max_threads_per_block:
            raise LaunchConfigError(
                f"threads_per_block={threads_per_block} outside "
                f"[1, {self.max_threads_per_block}]"
            )
        if registers_per_thread < 1:
            raise LaunchConfigError("registers_per_thread must be >= 1")
        if shared_per_block < 0:
            raise LaunchConfigError("shared_per_block must be >= 0")

        warps_per_block = -(-threads_per_block // self.warp_size)
        limits = {
            "blocks": self.max_blocks_per_sm,
            "threads": self.max_threads_per_sm // (warps_per_block * self.warp_size),
            "registers": self.registers_per_sm
            // (registers_per_thread * warps_per_block * self.warp_size),
        }
        if shared_per_block > 0:
            limits["shared"] = self.shared_mem_per_sm // shared_per_block
        blocks_per_sm = min(limits.values())
        if blocks_per_sm < 1:
            limiter = min(limits, key=limits.get)
            raise LaunchConfigError(
                f"block of {threads_per_block} threads cannot be scheduled: "
                f"{limiter} limit exceeded"
            )
        active_warps = blocks_per_sm * warps_per_block
        max_warps = self.max_threads_per_sm // self.warp_size
        limiter = min(limits, key=limits.get)
        return Occupancy(
            blocks_per_sm=blocks_per_sm,
            active_warps_per_sm=min(active_warps, max_warps),
            max_warps_per_sm=max_warps,
            limiter=limiter,
        )


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one launch configuration."""

    blocks_per_sm: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    limiter: str

    @property
    def fraction(self) -> float:
        """Occupancy as the classic warps-resident / warps-possible ratio."""
        return self.active_warps_per_sm / self.max_warps_per_sm


#: The paper's GPU test-bench (Table I): Tesla K20x, Kepler GK110.
#: 14 SMs x 192 cores, 732 MHz, 6 GB, 250 GB/s, CUDA capability 3.5.
KEPLER_K20X = DeviceSpec(
    name="Tesla K20x",
    sm_count=14,
    cores_per_sm=192,
    clock_hz=732e6,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    shared_mem_per_sm=48 * 1024,
    global_mem_bytes=6 * 1024**3,
    peak_bandwidth=250e9,
    achievable_bandwidth_fraction=0.72,   # ECC on, ~180 GB/s STREAM-like
    dp_flops=1.31e12,                     # K20x peak double precision
    transaction_bytes=128,
    mem_latency_s=600 / 732e6,            # ~600 cycles
    mlp_per_warp=4.0,
    kernel_launch_overhead_s=5e-6,
    max_concurrent_kernels=32,
    atomic_throughput=2.4e9,
    atomic_serial_latency_s=22 / 732e6,   # ~1 op / 22 cycles per L2 slice
                                          # on same-address conflict chains
    pcie_bandwidth=6e9,                   # PCIe gen2 x16 effective
    pcie_latency_s=8e-6,
    copy_engines=2,
)


#: Kepler K40: the K20x's bigger sibling (15 SMs, 12 GB, 288 GB/s) — the
#: paper's "future work on emerging architectures" starts here.
KEPLER_K40 = DeviceSpec(
    name="Tesla K40",
    sm_count=15,
    cores_per_sm=192,
    clock_hz=745e6,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    shared_mem_per_sm=48 * 1024,
    global_mem_bytes=12 * 1024**3,
    peak_bandwidth=288e9,
    achievable_bandwidth_fraction=0.72,
    dp_flops=1.43e12,
    transaction_bytes=128,
    mem_latency_s=600 / 745e6,
    mlp_per_warp=4.0,
    kernel_launch_overhead_s=5e-6,
    max_concurrent_kernels=32,
    atomic_throughput=2.6e9,
    atomic_serial_latency_s=22 / 745e6,
    pcie_bandwidth=6e9,
    pcie_latency_s=8e-6,
    copy_engines=2,
)

#: Maxwell M40: weak double precision (1/32 rate) but strong bandwidth and
#: much faster atomics — an instructive target because sFFT is memory- and
#: atomics-bound, not FLOP-bound, so it ports well despite the DP cut.
MAXWELL_M40 = DeviceSpec(
    name="Tesla M40 (Maxwell)",
    sm_count=24,
    cores_per_sm=128,
    clock_hz=948e6,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    shared_mem_per_sm=96 * 1024,
    global_mem_bytes=12 * 1024**3,
    peak_bandwidth=288e9,
    achievable_bandwidth_fraction=0.78,
    dp_flops=0.21e12,                     # 1/32 of SP — Maxwell's DP cut
    transaction_bytes=128,
    mem_latency_s=368 / 948e6,
    mlp_per_warp=6.0,
    kernel_launch_overhead_s=4e-6,
    max_concurrent_kernels=32,
    atomic_throughput=6.0e9,              # Maxwell's shared/global atomics
    atomic_serial_latency_s=12 / 948e6,
    pcie_bandwidth=12e9,                  # PCIe gen3
    pcie_latency_s=6e-6,
    copy_engines=2,
)

#: All simulated GPU devices, for cross-architecture sweeps.
GPU_DEVICES = (KEPLER_K20X, KEPLER_K40, MAXWELL_M40)
