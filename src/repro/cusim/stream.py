"""CUDA stream / event abstractions for the simulator.

Streams give the paper its Section V-A optimization: "we take advantage of
CUDA concurrent kernel executions where multiple kernels execute
concurrently on different CUDA streams".  The simulator reproduces the
semantics that matter:

* operations enqueued on one stream execute in order;
* operations on different streams may overlap, subject to machine
  resources and the device's concurrent-kernel limit;
* events provide cross-stream ordering (op B ``after`` event E recorded
  behind op A).

The actual scheduling/overlap math lives in :mod:`repro.cusim.timeline`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..errors import StreamError
from .kernel import KernelTiming

__all__ = ["OpKind", "Operation", "Event", "Stream"]


class OpKind(enum.Enum):
    """What an enqueued operation does."""

    KERNEL = "kernel"
    H2D = "h2d"
    D2H = "d2h"
    HOST = "host"


@dataclass
class Operation:
    """One enqueued operation awaiting simulation.

    ``duration_s`` is the *isolated* duration (the cost model's output);
    the timeline stretches it when the machine is shared.  ``demand`` is
    the fraction of the machine the op wants while running (kernels: SM
    demand; copies: 1.0 of one copy engine direction).
    """

    name: str
    kind: OpKind
    duration_s: float
    demand: float
    stream_id: int
    seq: int
    after: tuple["Event", ...] = field(default_factory=tuple)
    timing: KernelTiming | None = None
    bytes_moved: int = 0

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise StreamError(f"duration must be >= 0, got {self.duration_s}")
        if not 0 < self.demand <= 1.0:
            raise StreamError(f"demand must be in (0, 1], got {self.demand}")


@dataclass(frozen=True)
class Event:
    """Marker recorded after an operation; others can wait on it."""

    op: Operation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event(after={self.op.name!r})"


class Stream:
    """An in-order queue of operations (one CUDA stream)."""

    _ids = itertools.count()

    def __init__(self) -> None:
        self.id = next(Stream._ids)
        self.ops: list[Operation] = []

    def append(self, op: Operation) -> None:
        """Internal: enqueue an operation (driver code uses GpuSimulation)."""
        if op.stream_id != self.id:
            raise StreamError("operation enqueued on the wrong stream")
        self.ops.append(op)

    def record_event(self) -> Event:
        """CUDA ``cudaEventRecord``: marks completion of the last op."""
        if not self.ops:
            raise StreamError("cannot record an event on an empty stream")
        return Event(op=self.ops[-1])

    def __len__(self) -> int:
        return len(self.ops)
