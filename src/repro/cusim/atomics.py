"""Atomic-operation contention model.

Section IV-C rejects the conventional GPU histogram because "the usage of
atomic operations can be a major bottleneck".  The simulator needs to price
that claim: conflict-free atomics stream at the device's atomic throughput,
while atomics hitting the *same* address serialize — each serialized update
pays an L2 round trip.

The model: ``ops`` atomic operations spread over ``distinct_addresses``
hotspots produce an expected longest serial chain of roughly
``ops / distinct_addresses`` (balanced case) and the kernel cannot retire
faster than that chain, nor faster than raw throughput allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from .device import DeviceSpec

__all__ = ["AtomicProfile", "atomic_add", "atomic_time"]


def atomic_add(data: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
    """Functional ``atomicAdd``: serialized accumulate into ``data[idx]``.

    ``np.add.at`` applies every update even when lanes target the same
    element — the read-modify-write never loses an increment, exactly the
    guarantee device atomics buy (at the serialization cost
    :func:`atomic_time` prices).  This is the one sanctioned way for a
    SIMT kernel to do conflicting writes; the race detector treats stores
    routed here (via :meth:`repro.cusim.simt.WarpContext.atomic_add`) as
    conflict-free by contract.
    """
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= data.size):
        raise ParameterError(
            f"atomic_add index out of range [0, {data.size})"
        )
    np.add.at(data, idx, np.asarray(values, dtype=data.dtype))


@dataclass(frozen=True)
class AtomicProfile:
    """Atomic workload description for one kernel launch.

    Attributes
    ----------
    ops:
        Total atomic operations issued by the grid.
    distinct_addresses:
        Number of distinct target addresses (1 = a single global counter,
        the worst case; ``ops`` = fully conflict-free).
    """

    ops: int
    distinct_addresses: int

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ParameterError(f"ops must be >= 0, got {self.ops}")
        if self.distinct_addresses < 1 and self.ops > 0:
            raise ParameterError("distinct_addresses must be >= 1 when ops > 0")

    @property
    def conflict_chain(self) -> float:
        """Expected serialized updates on the hottest address."""
        if self.ops == 0:
            return 0.0
        return self.ops / self.distinct_addresses


def atomic_time(profile: AtomicProfile | None, device: DeviceSpec) -> float:
    """Seconds a kernel spends bound by its atomic traffic.

    ``max(throughput time, serialization time)`` — a kernel with a million
    conflict-free atomics is throughput-bound; a thousand atomics on one
    counter are latency-chain-bound.
    """
    if profile is None or profile.ops == 0:
        return 0.0
    throughput_s = profile.ops / device.atomic_throughput
    serial_s = profile.conflict_chain * device.atomic_serial_latency_s
    return max(throughput_s, serial_s)
