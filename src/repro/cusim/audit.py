"""Spec auditing: check declared access patterns against measured addresses.

The cost model trusts each kernel's *declared* access patterns (a
``GlobalAccess`` saying "this gather is random").  An audit closes the
loop: given the actual per-thread byte addresses a kernel would issue, it
measures the transaction count and classifies the observed pattern, so
tests can assert that, e.g., the Algorithm-2 gather really does pay ~one
transaction per element for real plans — not just by declaration.

This is the simulator's equivalent of checking a performance model against
``nvprof``'s ``gld_transactions`` counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from .device import DeviceSpec
from .memory import AccessPattern, GlobalAccess, measure_transactions, transaction_count

__all__ = ["AccessAudit", "audit_addresses", "classify_pattern"]


@dataclass(frozen=True)
class AccessAudit:
    """Measured access statistics for one address trace.

    Attributes
    ----------
    elements:
        Addresses in the trace.
    transactions:
        Measured 128-byte transactions (warp-granular distinct segments).
    transactions_per_element:
        The coalescing figure of merit: 1.0 = fully scattered,
        ``element_bytes/128`` = perfectly coalesced.
    classified:
        The :class:`AccessPattern` whose analytic count best matches.
    analytic_counts:
        Analytic transaction count per candidate pattern.
    """

    elements: int
    element_bytes: int
    transactions: int
    transactions_per_element: float
    classified: AccessPattern
    analytic_counts: dict[AccessPattern, int]

    def matches(self, declared: AccessPattern, *, rel_tol: float = 0.15) -> bool:
        """True when the measured count is within ``rel_tol`` of the
        declared pattern's analytic count."""
        expect = self.analytic_counts[declared]
        if expect == 0:
            return self.transactions == 0
        return abs(self.transactions - expect) <= rel_tol * expect


def audit_addresses(
    byte_addresses: np.ndarray, element_bytes: int, device: DeviceSpec
) -> AccessAudit:
    """Measure and classify one per-thread address trace."""
    addr = np.asarray(byte_addresses)
    if addr.ndim != 1 or addr.size == 0:
        raise ParameterError("need a non-empty 1-D address trace")
    measured = measure_transactions(addr, device)
    analytic = {
        pattern: transaction_count(
            GlobalAccess(pattern, addr.size, element_bytes), device
        )
        for pattern in (
            AccessPattern.COALESCED,
            AccessPattern.RANDOM,
            AccessPattern.BROADCAST,
        )
    }
    classified = min(
        analytic, key=lambda p: abs(analytic[p] - measured)
    )
    return AccessAudit(
        elements=int(addr.size),
        element_bytes=int(element_bytes),
        transactions=measured,
        transactions_per_element=measured / addr.size,
        classified=classified,
        analytic_counts=analytic,
    )


def classify_pattern(
    byte_addresses: np.ndarray, element_bytes: int, device: DeviceSpec
) -> AccessPattern:
    """Shorthand: just the best-matching pattern for a trace."""
    return audit_addresses(byte_addresses, element_bytes, device).classified
