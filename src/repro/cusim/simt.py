"""SIMT micro-interpreter: execute warp-lockstep kernels with full tracing.

The analytic cost model prices kernels from *declared* access patterns; the
audit module checks address traces.  This module closes the last gap: it
**runs** a kernel — written as a Python function over 32-lane vectors — in
warp lockstep against virtual global-memory buffers, recording every load
and store.  The result is both the functional output *and* the measured
transaction/divergence statistics, so a test can hand the same kernel body
to the interpreter and to the cost model and require that they agree.

It is deliberately tiny: lanes are NumPy vectors, a warp executes
statements in lockstep (exactly the SIMT contract), and predication is
explicit via the ``active`` mask.  Use it for validation at small sizes;
the production functional path stays fully vectorized.

Example — a gather-accumulate kernel (the heart of Algorithm 2)::

    def kernel(w: WarpContext) -> None:
        acc = np.zeros(w.tid.size, dtype=np.complex128)
        for j in range(rounds):
            idx = (w.tid + B * j) * sigma % n
            acc += w.load(signal_buf, idx) * w.load(filter_buf, w.tid + B * j)
        w.store(bucket_buf, w.tid, acc)

    report = simt_run(kernel, total_threads=B, device=KEPLER_K20X)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from .device import DeviceSpec

__all__ = ["VBuffer", "WarpContext", "MemEvent", "SimtReport", "simt_run",
           "simt_price"]

#: Virtual buffers are placed on disjoint, segment-aligned base addresses.
_BASE_ALIGN = 1 << 20


class VBuffer:
    """A virtual global-memory buffer (NumPy array + base address)."""

    def __init__(self, data: np.ndarray, base: int):
        arr = np.asarray(data)
        if arr.ndim != 1:
            raise ParameterError("virtual buffers must be 1-D")
        self.data = arr.copy()
        self.base = int(base)

    @property
    def element_bytes(self) -> int:
        """Bytes per element."""
        return self.data.dtype.itemsize

    def addresses(self, idx: np.ndarray) -> np.ndarray:
        """Byte addresses of the elements at ``idx``."""
        return self.base + np.asarray(idx, dtype=np.int64) * self.element_bytes


@dataclass
class MemEvent:
    """One warp-level memory operation, as recorded by the interpreter.

    The race detector (:mod:`repro.analysis.staticcheck.races`) consumes
    the full event stream: ``tids`` are the global thread ids of the lanes
    that actually issued the access, ``indices`` the *raw* per-lane element
    indices as computed by the kernel (before the functional ``% size``
    wrap, so out-of-bounds addressing stays visible), and ``atomic`` marks
    accesses routed through :mod:`repro.cusim.atomics`.
    """

    kind: str               # "load" | "store"
    buffer: VBuffer
    addresses: np.ndarray   # per active lane (wrapped, byte addresses)
    active_lanes: int
    warp_lanes: int
    tids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    indices: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    atomic: bool = False


#: Backward-compatible alias (the event type used to be private).
_Event = MemEvent


class WarpContext:
    """One warp's view during lockstep execution.

    Attributes
    ----------
    tid:
        Global thread ids of this warp's lanes (length <= warp size).
    active:
        Predication mask; :meth:`push_mask` narrows it (an ``if`` branch),
        :meth:`pop_mask` restores it.
    """

    def __init__(self, tid: np.ndarray, device: DeviceSpec, events: list[_Event]):
        self.tid = tid
        self.device = device
        self.active = np.ones(tid.size, dtype=bool)
        self._mask_stack: list[np.ndarray] = []
        self._events = events

    # -- memory -----------------------------------------------------------

    def load(self, buf: VBuffer, idx) -> np.ndarray:
        """Gather ``buf[idx]`` for the active lanes (others read zero)."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.shape != self.tid.shape:
            raise ParameterError("per-lane index shape mismatch")
        out = np.zeros(self.tid.shape, dtype=buf.data.dtype)
        act = self.active
        if act.any():
            lane_idx = idx[act] % buf.data.size
            out[act] = buf.data[lane_idx]
            self._events.append(
                MemEvent("load", buf, buf.addresses(lane_idx), int(act.sum()),
                         self.tid.size, tids=self.tid[act].copy(),
                         indices=idx[act].copy())
            )
        return out

    def store(self, buf: VBuffer, idx, values) -> None:
        """Scatter ``values`` to ``buf[idx]`` for the active lanes."""
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values)
        if idx.shape != self.tid.shape or values.shape != self.tid.shape:
            raise ParameterError("per-lane index/value shape mismatch")
        act = self.active
        if act.any():
            lane_idx = idx[act] % buf.data.size
            buf.data[lane_idx] = values[act]
            self._events.append(
                MemEvent("store", buf, buf.addresses(lane_idx),
                         int(act.sum()), self.tid.size,
                         tids=self.tid[act].copy(), indices=idx[act].copy())
            )

    def atomic_add(self, buf: VBuffer, idx, values) -> None:
        """Atomically accumulate ``values`` into ``buf[idx]`` (active lanes).

        Routed through :func:`repro.cusim.atomics.atomic_add`: duplicate
        per-lane targets serialize instead of losing updates, exactly like
        device ``atomicAdd`` — and the recorded event is marked ``atomic``,
        which is what exempts it from the race detector's conflict rules.
        """
        from .atomics import atomic_add as _atomic_add

        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values)
        if idx.shape != self.tid.shape or values.shape != self.tid.shape:
            raise ParameterError("per-lane index/value shape mismatch")
        act = self.active
        if act.any():
            lane_idx = idx[act] % buf.data.size
            _atomic_add(buf.data, lane_idx, values[act])
            self._events.append(
                MemEvent("store", buf, buf.addresses(lane_idx),
                         int(act.sum()), self.tid.size,
                         tids=self.tid[act].copy(), indices=idx[act].copy(),
                         atomic=True)
            )

    # -- predication --------------------------------------------------------

    def push_mask(self, condition) -> None:
        """Enter a divergent branch: lanes failing ``condition`` sleep."""
        cond = np.asarray(condition, dtype=bool)
        if cond.shape != self.tid.shape:
            raise ParameterError("condition shape mismatch")
        self._mask_stack.append(self.active.copy())
        self.active = self.active & cond

    def pop_mask(self) -> None:
        """Leave the branch: restore the previous mask."""
        if not self._mask_stack:
            raise ParameterError("pop_mask without matching push_mask")
        self.active = self._mask_stack.pop()


@dataclass
class SimtReport:
    """Measured statistics of one lockstep kernel run."""

    total_threads: int
    loads: int = 0
    stores: int = 0
    #: stores issued through :meth:`WarpContext.atomic_add` (subset of
    #: ``stores`` — atomics still move bytes over the wire)
    atomic_ops: int = 0
    transactions: int = 0
    wire_bytes: int = 0
    useful_bytes: int = 0
    #: average fraction of lanes active across memory operations
    lane_utilization: float = 1.0
    per_buffer_transactions: dict[int, int] = field(default_factory=dict)
    #: the full memory-event trace, in issue order (race-detector input)
    events: list[MemEvent] = field(default_factory=list, repr=False,
                                   compare=False)

    @property
    def coalescing_efficiency(self) -> float:
        """Useful / wire bytes, like the cost model reports."""
        if self.wire_bytes == 0:
            return 1.0
        return self.useful_bytes / self.wire_bytes


def simt_run(
    kernel,
    total_threads: int,
    device: DeviceSpec,
    *buffers: np.ndarray,
) -> tuple[SimtReport, list[VBuffer]]:
    """Execute ``kernel`` over ``total_threads`` in warp lockstep.

    ``buffers`` are the arrays the kernel touches; each is wrapped into a
    :class:`VBuffer` on its own aligned base address and passed to
    ``kernel`` after the warp context:  ``kernel(warp, *vbuffers)``.

    Returns ``(report, vbuffers)`` — the vbuffers hold the kernel's output
    state for functional checks.
    """
    if total_threads < 1:
        raise ParameterError("total_threads must be >= 1")
    vbufs = [
        VBuffer(arr, base=(i + 1) * _BASE_ALIGN * 64) for i, arr in enumerate(buffers)
    ]
    events: list[_Event] = []
    ws = device.warp_size
    for start in range(0, total_threads, ws):
        tid = np.arange(start, min(start + ws, total_threads), dtype=np.int64)
        warp = WarpContext(tid, device, events)
        kernel(warp, *vbufs)
        if warp._mask_stack:
            raise ParameterError("kernel exited with an unbalanced mask stack")

    report = SimtReport(total_threads=total_threads, events=events)
    utilizations = []
    for ev in events:
        segs = np.unique(ev.addresses // device.transaction_bytes).size
        report.transactions += segs
        report.wire_bytes += segs * device.transaction_bytes
        report.useful_bytes += ev.active_lanes * ev.buffer.element_bytes
        key = ev.buffer.base
        report.per_buffer_transactions[key] = (
            report.per_buffer_transactions.get(key, 0) + segs
        )
        utilizations.append(ev.active_lanes / ev.warp_lanes)
        if ev.kind == "load":
            report.loads += ev.active_lanes
        else:
            report.stores += ev.active_lanes
            if ev.atomic:
                report.atomic_ops += ev.active_lanes
    if utilizations:
        report.lane_utilization = float(np.mean(utilizations))
    return report, vbufs


def simt_price(
    kernel,
    total_threads: int,
    device: DeviceSpec,
    *buffers: np.ndarray,
    flops_per_thread: float = 0.0,
    threads_per_block: int = 256,
):
    """Run a kernel in lockstep AND price it from its measured behaviour.

    Bridges the interpreter and the cost model: the kernel executes
    (functional results land in the returned buffers) while its measured
    transaction count replaces any declared access pattern — memory time is
    ``measured_wire_bytes / achievable_bandwidth`` with the same MLP cap
    and launch overhead the analytic path uses.

    Returns ``(report, vbuffers, seconds)``.
    """
    from .kernel import KernelSpec, estimate_kernel
    from .memory import AccessPattern, GlobalAccess

    report, vbufs = simt_run(kernel, total_threads, device, *buffers)
    # Encode the measured traffic as one synthetic coalesced stream whose
    # wire bytes equal the measurement (segment-exact), so estimate_kernel
    # prices exactly what was observed.
    elems = report.wire_bytes // device.transaction_bytes
    accesses = ()
    if elems > 0:
        accesses = (
            GlobalAccess(
                AccessPattern.COALESCED,
                elems * (device.transaction_bytes // 16),
                16,
            ),
        )
    spec = KernelSpec(
        name=getattr(kernel, "__name__", "simt_kernel"),
        grid_blocks=max(1, -(-total_threads // threads_per_block)),
        threads_per_block=threads_per_block,
        flops_per_thread=flops_per_thread,
        accesses=accesses,
    )
    timing = estimate_kernel(spec, device)
    return report, vbufs, timing.total_s
