"""Device-side primitive library (the simulator's stand-in for Thrust).

The paper's baseline cutoff uses Thrust's ``sort_by_key`` (Algorithm 3) and
its discussion prices sorting at ``B log B`` versus the linear-time
selection of Algorithm 6.  This module provides the primitives with both a
*functional* NumPy body and a *kernel-cost* description matching how the
real library executes:

* ``sort_by_key`` — LSD radix sort: ``passes`` sweeps, each reading and
  writing the full key+value payload (plus a histogram/scan per pass);
* ``reduce`` — single coalesced read of the input;
* ``inclusive_scan`` — Blelloch scan, ~2 passes over the data.

Each primitive returns ``(result, [KernelSpec, ...])`` so callers can both
use the values and enqueue the specs on a stream for timing.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError
from .memory import AccessPattern, GlobalAccess
from .kernel import KernelSpec

__all__ = ["RADIX_BITS", "sort_passes", "sort_by_key", "reduce_sum", "inclusive_scan"]

#: Radix width Thrust's LSD sort uses on Kepler-era hardware.
RADIX_BITS = 4
_BLOCK = 256


def sort_passes(key_bits: int) -> int:
    """Number of radix passes to fully order ``key_bits``-bit keys."""
    if key_bits < 1:
        raise ParameterError(f"key_bits must be >= 1, got {key_bits}")
    return math.ceil(key_bits / RADIX_BITS)


def _grid(n: int) -> int:
    return max(1, -(-n // _BLOCK))


def sort_by_key(
    keys: np.ndarray,
    values: np.ndarray,
    *,
    descending: bool = True,
    key_bits: int = 64,
) -> tuple[tuple[np.ndarray, np.ndarray], list[KernelSpec]]:
    """Radix ``sort_by_key``: returns sorted ``(keys, values)`` plus specs.

    Functional result is exact (NumPy argsort, stable); the cost specs model
    ``sort_passes(key_bits)`` sweeps, each moving keys and values twice.
    """
    k = np.asarray(keys)
    v = np.asarray(values)
    if k.shape != v.shape or k.ndim != 1:
        raise ParameterError("keys and values must be equal-length 1-D arrays")
    order = np.argsort(k, kind="stable")
    if descending:
        order = order[::-1]
    n = k.size
    passes = sort_passes(key_bits)
    payload = k.dtype.itemsize + v.dtype.itemsize
    specs = []
    for p in range(passes):
        specs.append(
            KernelSpec(
                name="thrust_radix_histogram",
                grid_blocks=_grid(n),
                threads_per_block=_BLOCK,
                flops_per_thread=4.0,
                accesses=(
                    GlobalAccess(AccessPattern.COALESCED, n, k.dtype.itemsize),
                ),
            )
        )
        specs.append(
            KernelSpec(
                name="thrust_radix_scatter",
                grid_blocks=_grid(n),
                threads_per_block=_BLOCK,
                flops_per_thread=8.0,
                accesses=(
                    GlobalAccess(AccessPattern.COALESCED, n, payload),
                    # Scatter writes land wherever the digit ordering sends
                    # them — effectively random within the pass.
                    GlobalAccess(AccessPattern.RANDOM, n, payload, is_write=True),
                ),
            )
        )
    return (k[order], v[order]), specs


def reduce_sum(values: np.ndarray) -> tuple[complex, list[KernelSpec]]:
    """Device reduction: sum of ``values`` plus its cost spec."""
    v = np.asarray(values)
    if v.ndim != 1:
        raise ParameterError("values must be 1-D")
    spec = KernelSpec(
        name="thrust_reduce",
        grid_blocks=_grid(v.size),
        threads_per_block=_BLOCK,
        flops_per_thread=2.0,
        accesses=(GlobalAccess(AccessPattern.COALESCED, v.size, v.dtype.itemsize),),
        shared_per_block=_BLOCK * v.dtype.itemsize,
    )
    return v.sum(), [spec]


def inclusive_scan(values: np.ndarray) -> tuple[np.ndarray, list[KernelSpec]]:
    """Device inclusive prefix sum plus its cost specs (~2 data passes)."""
    v = np.asarray(values)
    if v.ndim != 1:
        raise ParameterError("values must be 1-D")
    eb = v.dtype.itemsize
    specs = [
        KernelSpec(
            name="thrust_scan_upsweep",
            grid_blocks=_grid(v.size),
            threads_per_block=_BLOCK,
            flops_per_thread=2.0,
            accesses=(GlobalAccess(AccessPattern.COALESCED, v.size, eb),),
            shared_per_block=_BLOCK * eb,
        ),
        KernelSpec(
            name="thrust_scan_downsweep",
            grid_blocks=_grid(v.size),
            threads_per_block=_BLOCK,
            flops_per_thread=2.0,
            accesses=(
                GlobalAccess(AccessPattern.COALESCED, v.size, eb),
                GlobalAccess(AccessPattern.COALESCED, v.size, eb, is_write=True),
            ),
            shared_per_block=_BLOCK * eb,
        ),
    ]
    return np.cumsum(v), specs
