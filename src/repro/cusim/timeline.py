"""Event-driven fluid scheduler: turns queued stream operations into a
timeline with realistic overlap.

The model is processor sharing: every active kernel asks for a fraction
``demand`` of the compute machine; while the total demand of concurrently
active kernels stays below 1 they all run at full speed (true concurrency —
the win the asynchronous layout transformation banks on), and once the
machine is oversubscribed everyone slows down by ``1 / total_demand``.
Copy engines are separate resources (one per direction on the K20x), which
is why transfers overlap kernels for free.

Invariants the tests pin down:

* two independent kernels with demand <= 0.5 each finish in the time of one;
* two demand-1.0 kernels take exactly the sum of their durations;
* stream order is respected; events order across streams;
* no more than ``device.max_concurrent_kernels`` kernels are ever active.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StreamError
from .device import DeviceSpec
from .kernel import KernelSpec, KernelTiming, estimate_kernel
from .stream import Event, OpKind, Operation, Stream

__all__ = ["OpRecord", "TimelineReport", "GpuSimulation"]

_EPS = 1e-15


@dataclass(frozen=True)
class OpRecord:
    """Completed operation with its simulated interval."""

    name: str
    kind: OpKind
    stream_id: int
    start_s: float
    end_s: float
    isolated_s: float
    timing: KernelTiming | None = None

    @property
    def span_s(self) -> float:
        """Wall-clock the op occupied (>= isolated duration)."""
        return self.end_s - self.start_s


@dataclass
class TimelineReport:
    """Result of simulating all queued work."""

    makespan_s: float
    records: list[OpRecord] = field(default_factory=list)

    def by_kind(self, kind: OpKind) -> list[OpRecord]:
        """Records of one kind, in completion order."""
        return [r for r in self.records if r.kind == kind]

    def kernel_time_sum(self) -> float:
        """Sum of isolated kernel durations (the no-overlap lower bound)."""
        return sum(r.isolated_s for r in self.records if r.kind is OpKind.KERNEL)

    def stream_ids(self) -> list[int]:
        """Distinct stream ids appearing in the timeline, ascending."""
        return sorted({r.stream_id for r in self.records})

    def emit_metrics(self, registry, prefix: str = "cusim") -> None:
        """Publish derived gauges/counters into a metrics registry.

        ``registry`` is any :class:`~repro.obs.MetricsRegistry`-shaped
        object (duck-typed to keep this module free of an obs dependency).
        Names follow the ``<prefix>.<object>.<measure>`` scheme documented
        in ``docs/observability.md``.
        """
        kernels = [r for r in self.records if r.kind is OpKind.KERNEL]
        transfers = [
            r for r in self.records if r.kind in (OpKind.H2D, OpKind.D2H)
        ]
        registry.gauge(f"{prefix}.timeline.makespan_s").set(self.makespan_s)
        registry.gauge(f"{prefix}.timeline.kernel_time_s").set(
            self.kernel_time_sum()
        )
        registry.gauge(f"{prefix}.timeline.max_concurrency").set(
            self.max_concurrency()
        )
        registry.counter(f"{prefix}.launches").inc(len(kernels))
        registry.counter(f"{prefix}.transfers").inc(len(transfers))
        wire = sum(r.timing.wire_bytes for r in kernels if r.timing)
        useful = sum(r.timing.useful_bytes for r in kernels if r.timing)
        registry.counter(f"{prefix}.kernel.wire_bytes").inc(wire)
        registry.gauge(f"{prefix}.kernel.coalescing_efficiency").set(
            useful / wire if wire else 1.0
        )

    def max_concurrency(self) -> int:
        """Peak number of simultaneously active operations."""
        edges: list[tuple[float, int]] = []
        for r in self.records:
            edges.append((r.start_s, 1))
            edges.append((r.end_s, -1))
        # Ends sort before starts at the same instant, so back-to-back ops
        # do not double-count.
        peak = cur = 0
        for _, delta in sorted(edges, key=lambda e: (e[0], e[1])):
            cur += delta
            peak = max(peak, cur)
        return peak


class GpuSimulation:
    """Driver-side facade: enqueue kernels/transfers on streams, then run.

    Functional results are computed eagerly by the caller (NumPy); this
    object only accounts for *time*.  A fresh instance per transform keeps
    timelines independent.
    """

    #: Host-side serialization between kernel/copy enqueues.  Streams hide
    #: *device* launch latency, but the CPU thread still issues launches one
    #: by one (~4 us each on CUDA 5.5) — at small problem sizes this issue
    #: rate, not the device, bounds a many-small-kernel pipeline.
    HOST_LAUNCH_GAP_S = 4e-6

    def __init__(self, device: DeviceSpec, *, host_launch_gap_s: float | None = None):
        self.device = device
        self.streams: list[Stream] = []
        self._seq = 0
        self.host_launch_gap_s = (
            self.HOST_LAUNCH_GAP_S if host_launch_gap_s is None else host_launch_gap_s
        )

    # -- construction -----------------------------------------------------

    def stream(self) -> Stream:
        """Create a new stream."""
        s = Stream()
        self.streams.append(s)
        return s

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def launch(
        self,
        stream: Stream,
        spec: KernelSpec,
        *,
        after: tuple[Event, ...] = (),
    ) -> KernelTiming:
        """Enqueue a kernel launch; returns its isolated-cost estimate."""
        timing = estimate_kernel(spec, self.device)
        op = Operation(
            name=spec.name,
            kind=OpKind.KERNEL,
            duration_s=timing.total_s,
            demand=timing.sm_demand,
            stream_id=stream.id,
            seq=self._next_seq(),
            after=tuple(after),
            timing=timing,
        )
        stream.append(op)
        return timing

    def memcpy(
        self,
        stream: Stream,
        nbytes: int,
        direction: str,
        *,
        after: tuple[Event, ...] = (),
    ) -> float:
        """Enqueue a PCIe transfer (``"h2d"`` or ``"d2h"``); returns its time."""
        if direction not in ("h2d", "d2h"):
            raise StreamError(f"direction must be h2d or d2h, got {direction!r}")
        if nbytes < 0:
            raise StreamError(f"nbytes must be >= 0, got {nbytes}")
        dur = self.device.pcie_latency_s + nbytes / self.device.pcie_bandwidth
        op = Operation(
            name=f"memcpy_{direction}",
            kind=OpKind.H2D if direction == "h2d" else OpKind.D2H,
            duration_s=dur,
            demand=1.0,
            stream_id=stream.id,
            seq=self._next_seq(),
            after=tuple(after),
            bytes_moved=int(nbytes),
        )
        stream.append(op)
        return dur

    def host_work(self, stream: Stream, name: str, seconds: float) -> None:
        """Enqueue fixed-duration host-side work serialized on ``stream``."""
        op = Operation(
            name=name,
            kind=OpKind.HOST,
            duration_s=float(seconds),
            demand=1e-9 + 0.001,
            stream_id=stream.id,
            seq=self._next_seq(),
        )
        stream.append(op)

    # -- simulation --------------------------------------------------------

    def run(self) -> TimelineReport:
        """Simulate all enqueued work; returns the timeline."""
        pending: dict[int, list[Operation]] = {
            s.id: list(s.ops) for s in self.streams
        }
        finished: set[int] = set()          # op seq numbers
        active: list[_Active] = []
        records: list[OpRecord] = []
        now = 0.0
        total_ops = sum(len(v) for v in pending.values())

        def issue_time(op: Operation) -> float:
            # Host ops are free; device launches pay the CPU issue gap in
            # enqueue order.
            if op.kind is OpKind.HOST:
                return 0.0
            return op.seq * self.host_launch_gap_s

        # One picosecond of slack absorbs accumulated float error in `now`;
        # all modeled durations are nanoseconds or more.
        _SLACK = 1e-12

        def ready(op: Operation) -> bool:
            return (
                all(ev.op.seq in finished for ev in op.after)
                and issue_time(op) <= now + _SLACK
            )

        guard = 0
        while len(records) < total_ops:
            guard += 1
            if guard > 10 * total_ops + 100:
                raise StreamError(
                    "scheduler failed to make progress (dependency cycle?)"
                )
            # Admit every stream-head op whose dependencies are satisfied,
            # honouring the concurrent-kernel limit (FIFO by seq).
            heads = [ops[0] for ops in pending.values() if ops]
            heads.sort(key=lambda o: o.seq)
            kernels_active = sum(1 for a in active if a.op.kind is OpKind.KERNEL)
            # CUDA stream semantics: an op starts only after its stream's
            # previous op completed.
            busy_streams = {a.op.stream_id for a in active}
            admitted = False
            for op in heads:
                if op.stream_id in busy_streams or not ready(op):
                    continue
                if (
                    op.kind is OpKind.KERNEL
                    and kernels_active >= self.device.max_concurrent_kernels
                ):
                    continue
                pending[op.stream_id].pop(0)
                active.append(_Active(op=op, start=now, remaining=op.duration_s))
                busy_streams.add(op.stream_id)
                if op.kind is OpKind.KERNEL:
                    kernels_active += 1
                admitted = True

            # Heads blocked only on the host issue gap: the next issue
            # instant is a scheduling event too.
            next_issue = min(
                (
                    issue_time(op)
                    for op in heads
                    if op.stream_id not in busy_streams
                    and all(ev.op.seq in finished for ev in op.after)
                    and issue_time(op) > now + _SLACK
                ),
                default=float("inf"),
            )

            if not active:
                if admitted:
                    continue
                if next_issue < float("inf"):
                    now = next_issue
                    continue
                if not heads:
                    continue
                raise StreamError(
                    "deadlock: operations pending but none can start "
                    "(event recorded on a later op in the same stream?)"
                )

            rates = self._rates(active)
            # Advance to the earliest completion or the next host issue.
            dt = min(
                (a.remaining / r if r > 0 else float("inf"))
                for a, r in zip(active, rates)
            )
            if dt == float("inf"):
                raise StreamError("scheduler stalled: all rates are zero")
            dt = min(dt, max(0.0, next_issue - now))
            now += dt
            still: list[_Active] = []
            for a, r in zip(active, rates):
                a.remaining -= r * dt
                if a.remaining <= _EPS * max(1.0, a.op.duration_s):
                    finished.add(a.op.seq)
                    records.append(
                        OpRecord(
                            name=a.op.name,
                            kind=a.op.kind,
                            stream_id=a.op.stream_id,
                            start_s=a.start,
                            end_s=now,
                            isolated_s=a.op.duration_s,
                            timing=a.op.timing,
                        )
                    )
                else:
                    still.append(a)
            active = still

        records.sort(key=lambda r: (r.start_s, r.end_s))
        return TimelineReport(makespan_s=now, records=records)

    def _rates(self, active: list["_Active"]) -> list[float]:
        """Progress rate (fraction of isolated speed) per active op."""
        kernel_demand = sum(
            a.op.demand for a in active if a.op.kind is OpKind.KERNEL
        )
        # Copy engines: one per direction when the device has two engines,
        # otherwise both directions share one.
        h2d = [a for a in active if a.op.kind is OpKind.H2D]
        d2h = [a for a in active if a.op.kind is OpKind.D2H]
        rates: list[float] = []
        for a in active:
            if a.op.kind is OpKind.KERNEL:
                rates.append(min(1.0, 1.0 / kernel_demand) if kernel_demand > 0 else 1.0)
            elif a.op.kind is OpKind.HOST:
                rates.append(1.0)
            else:
                group = h2d if a.op.kind is OpKind.H2D else d2h
                if self.device.copy_engines >= 2:
                    rates.append(1.0 / len(group))
                else:
                    rates.append(1.0 / (len(h2d) + len(d2h)))
        return rates


@dataclass
class _Active:
    op: Operation
    start: float
    remaining: float
