"""Global-memory access modeling: coalescing and transaction counting.

Section IV-B of the paper is all about this: "all threads of a warp should
read/write global memory in a coalesced way ... non-coalesced memory access
could lead to more memory transactions than necessary".  The simulator makes
that statement quantitative in two ways:

* **analytic** — :func:`transaction_count` maps a declared access *pattern*
  (coalesced / strided / random / broadcast) to the number of 128-byte
  transactions a warp issues, exactly the rules of the Kepler coalescer;
* **measured** — :func:`measure_transactions` takes the actual per-thread
  byte addresses a (virtual) warp issues and counts the distinct memory
  segments touched, which is what the hardware's ``gld_transactions``
  counter reports.  Tests cross-check the two.

Wire traffic (``transactions x 128B``) versus useful traffic
(``elements x element_bytes``) is the coalescing inefficiency that the
asynchronous data-layout transformation (Section V-A) attacks.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from .device import DeviceSpec

__all__ = [
    "AccessPattern",
    "GlobalAccess",
    "segment_bytes",
    "transaction_count",
    "wire_bytes",
    "useful_bytes",
    "measure_transactions",
]


class AccessPattern(enum.Enum):
    """How consecutive threads of a warp address global memory."""

    #: thread ``i`` touches element ``base + i`` — perfectly coalesced.
    COALESCED = "coalesced"
    #: thread ``i`` touches element ``base + i*stride`` (stride in elements).
    STRIDED = "strided"
    #: threads touch effectively uncorrelated addresses (data-dependent
    #: gather, e.g. ``signal[(i*sigma) % n]`` with random ``sigma``).
    RANDOM = "random"
    #: every thread in the warp reads the same address.
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class GlobalAccess:
    """One logical global-memory access stream of a kernel.

    Attributes
    ----------
    pattern:
        Warp-level address pattern.
    elements:
        Total elements moved across the whole grid (all threads, all
        iterations).
    element_bytes:
        Size of one element (16 for ``complex128``).
    stride:
        Element stride between consecutive lanes for ``STRIDED``.
    is_write:
        Stores instead of loads (same transaction rules on Kepler).
    use_ldg:
        Route loads through Kepler's 48 KB read-only data cache
        (``__ldg()`` / ``const __restrict__``): transactions shrink to the
        texture path's 32-byte granularity, which quarters the wire traffic
        of scattered small-element gathers.  Loads only.
    """

    pattern: AccessPattern
    elements: int
    element_bytes: int
    stride: int = 1
    is_write: bool = False
    use_ldg: bool = False

    def __post_init__(self) -> None:
        if self.elements < 0:
            raise ParameterError(f"elements must be >= 0, got {self.elements}")
        if self.element_bytes < 1:
            raise ParameterError(
                f"element_bytes must be >= 1, got {self.element_bytes}"
            )
        if self.pattern is AccessPattern.STRIDED and self.stride < 1:
            raise ParameterError(f"stride must be >= 1, got {self.stride}")
        if self.use_ldg and self.is_write:
            raise ParameterError("the read-only (__ldg) path cannot write")


def transaction_count(access: GlobalAccess, device: DeviceSpec) -> int:
    """Number of global-memory transactions for ``access`` on ``device``.

    Warp-granular analytic model of the Kepler coalescer with 128-byte
    segments:

    * coalesced: a warp's ``32 * element_bytes`` contiguous bytes need
      ``ceil(32*eb / 128)`` segments;
    * strided: consecutive lanes are ``stride*eb`` bytes apart, so a warp
      spans ``32*stride*eb`` bytes -> ``min(32, ceil(span/128))`` segments
      (once the stride exceeds a segment, every lane pays its own);
    * random: every lane touches its own segment -> 32 per warp (one per
      element);
    * broadcast: one segment serves the whole warp.
    """
    if access.elements == 0:
        return 0
    ws = device.warp_size
    tb = segment_bytes(access, device)
    eb = access.element_bytes
    warps = math.ceil(access.elements / ws)

    # Warp-granular coalesced count: each warp issues its own transactions
    # (two warps never share a segment fetch even when their addresses
    # abut), so small-element accesses pay at least one segment per warp.
    full_warps, rem = divmod(access.elements, ws)
    coalesced = full_warps * math.ceil(ws * eb / tb)
    if rem:
        coalesced += math.ceil(rem * eb / tb)
    random = int(access.elements) * max(1, math.ceil(eb / tb))

    if access.pattern is AccessPattern.COALESCED:
        return coalesced
    if access.pattern is AccessPattern.STRIDED:
        span = ws * access.stride * eb
        per_warp = min(ws, math.ceil(span / tb))
        raw = warps * max(per_warp, math.ceil(ws * eb / tb))
        # A strided access never beats fully-dense coalescing and never
        # exceeds one transaction per element (partial warps cap it).
        return max(coalesced, min(raw, random))
    if access.pattern is AccessPattern.RANDOM:
        return random
    if access.pattern is AccessPattern.BROADCAST:
        return warps
    raise ParameterError(f"unhandled pattern {access.pattern}")


def segment_bytes(access: GlobalAccess, device: DeviceSpec) -> int:
    """Transaction granularity this access pays: 128 B through L1, 32 B
    through the read-only (texture) path."""
    return device.ldg_transaction_bytes if access.use_ldg else device.transaction_bytes


def wire_bytes(access: GlobalAccess, device: DeviceSpec) -> int:
    """Bytes actually moved on the memory bus (transactions x segment size)."""
    return transaction_count(access, device) * segment_bytes(access, device)


def useful_bytes(access: GlobalAccess, device: DeviceSpec) -> int:
    """Bytes the kernel actually consumes from this stream.

    For a broadcast every lane reads the *same* element, so the warp
    consumes one element, not 32.
    """
    if access.pattern is AccessPattern.BROADCAST:
        warps = math.ceil(access.elements / device.warp_size) if access.elements else 0
        return warps * access.element_bytes
    return access.elements * access.element_bytes


def measure_transactions(
    byte_addresses: np.ndarray, device: DeviceSpec
) -> int:
    """Count transactions for *measured* per-thread byte addresses.

    ``byte_addresses`` holds the address each consecutive thread touches
    (1-D, grid-linearized).  Threads are grouped into warps of
    ``device.warp_size``; each warp pays one transaction per distinct
    ``transaction_bytes``-aligned segment its lanes touch — the definition
    of the hardware transaction counter.
    """
    addr = np.asarray(byte_addresses)
    if addr.ndim != 1:
        raise ParameterError(f"addresses must be 1-D, got shape {addr.shape}")
    if addr.size == 0:
        return 0
    if np.issubdtype(addr.dtype, np.floating):
        raise ParameterError("addresses must be integers")
    ws = device.warp_size
    segs = addr.astype(np.int64) // device.transaction_bytes
    total = 0
    for start in range(0, segs.size, ws):
        total += np.unique(segs[start : start + ws]).size
    return total
