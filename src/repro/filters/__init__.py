"""Flat-window filters (Gaussian / Dolph-Chebyshev) for spectrum binning."""

from .analysis import FilterReport, analyze_filter
from .base import FlatFilter
from .dolph_chebyshev import chebyshev_support, dolph_chebyshev_window
from .flat_window import dirichlet_kernel, make_flat_window
from .gaussian import gaussian_support, gaussian_window

__all__ = [
    "FilterReport",
    "analyze_filter",
    "FlatFilter",
    "chebyshev_support",
    "dolph_chebyshev_window",
    "dirichlet_kernel",
    "make_flat_window",
    "gaussian_support",
    "gaussian_window",
]
