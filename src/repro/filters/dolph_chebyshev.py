"""Dolph-Chebyshev base window, implemented from scratch.

This is the window the reference sFFT implementation (and the paper) use by
default: among all length-``w`` windows it has the *narrowest main lobe for a
given equiripple side-lobe level* ``delta``, which directly minimizes the
filter support ``w`` — the size of the paper's permutation+filter loop.

The construction samples the closed-form Chebyshev spectrum

    ``W(j) = T_{w-1}(beta * cos(pi * j / w))``,  ``beta = cosh(acosh(1/delta)/(w-1))``

at the ``w`` DFT frequencies and inverse-transforms.  ``T_m`` is evaluated
through the stable ``cos``/``cosh`` branches, never the polynomial recurrence.
Odd lengths only (even-length Dolph-Chebyshev needs a half-sample phase term;
the caller rounds up, which is always safe for a window support).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.fft_backend import get_backend
from ..errors import FilterDesignError

__all__ = ["chebyshev_support", "dolph_chebyshev_window", "chebyshev_poly"]


def chebyshev_poly(m: int, x: np.ndarray) -> np.ndarray:
    """Chebyshev polynomial of the first kind ``T_m`` on arbitrary reals.

    Uses ``cos(m*acos x)`` for ``|x| <= 1`` and ``±cosh(m*acosh|x|)`` outside,
    which is numerically stable for the large arguments (``~1/delta``) this
    module needs.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    inside = np.abs(x) <= 1.0
    out[inside] = np.cos(m * np.arccos(x[inside]))
    above = x > 1.0
    out[above] = np.cosh(m * np.arccosh(x[above]))
    below = x < -1.0
    sign = -1.0 if (m % 2) else 1.0
    out[below] = sign * np.cosh(m * np.arccosh(-x[below]))
    return out


def chebyshev_support(lobefrac: float, tolerance: float) -> int:
    """Minimal (odd) tap count meeting the (lobefrac, delta) spec.

    Solves ``T_{w-1}(1/cos(pi*lobefrac)) >= 1/delta`` for ``w``; for small
    ``lobefrac`` this is the familiar sFFT sizing
    ``w ≈ (1/pi) * (1/lobefrac) * acosh(1/delta)``.
    """
    if not 0 < lobefrac < 0.5:
        raise FilterDesignError(f"lobefrac must be in (0, 0.5), got {lobefrac}")
    if not 0 < tolerance < 1:
        raise FilterDesignError(f"tolerance must be in (0, 1), got {tolerance}")
    beta = 1.0 / math.cos(math.pi * lobefrac)
    w = 1 + int(math.ceil(math.acosh(1.0 / tolerance) / math.acosh(beta)))
    w = max(w, 3)
    return w if w % 2 == 1 else w + 1


def dolph_chebyshev_window(w: int, tolerance: float) -> np.ndarray:
    """Dolph-Chebyshev taps of odd length ``w``, peak normalized to 1.

    All side lobes of the (untruncated, length-``w``) spectrum sit at exactly
    ``tolerance`` relative to the main-lobe peak.
    """
    if w < 3 or w % 2 == 0:
        raise FilterDesignError(f"window length must be odd and >= 3, got {w}")
    if not 0 < tolerance < 1:
        raise FilterDesignError(f"tolerance must be in (0, 1), got {tolerance}")
    m = w - 1
    beta = math.cosh(math.acosh(1.0 / tolerance) / m)
    j = np.arange(w, dtype=np.float64)
    spectrum = chebyshev_poly(m, beta * np.cos(math.pi * j / w))
    taps = get_backend().ifft(spectrum)
    # Centre the (real, even) impulse response at (w-1)/2.
    taps = np.roll(taps, (w - 1) // 2)
    taps = taps.real
    peak = taps.max()
    if peak <= 0:
        raise FilterDesignError("degenerate Chebyshev window (non-positive peak)")
    return taps / peak
