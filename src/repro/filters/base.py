"""Flat-window filter container.

A *flat window* is the signal-processing heart of sFFT: a filter ``G`` whose
time-domain support is a short ``w ≪ n`` taps while its frequency response is
approximately 1 over a "pass region" of about one bucket width ``n/B`` and
approximately 0 (below a design tolerance ``delta``) outside roughly twice
that region.  Multiplying the permuted signal by ``G`` and folding into ``B``
buckets therefore bins each spectral coefficient into one bucket with
negligible leakage — in only ``O(w)`` time.

The container keeps the time taps and the *exact* ``n``-point frequency
response of those (truncated) taps, so downstream estimation — which divides
a bucket value by ``G_hat`` at the coefficient's offset — is unbiased by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FilterDesignError

__all__ = ["FlatFilter"]


@dataclass(frozen=True)
class FlatFilter:
    """A flat-window filter for binning spectra into ``B`` buckets.

    Attributes
    ----------
    n:
        Signal size the filter was designed for.
    time:
        Complex time-domain taps, length ``w`` (possibly zero-padded at the
        tail so ``w`` is a multiple of ``B`` — see
        :func:`~repro.filters.flat_window.make_flat_window`).  The binning
        step computes ``y[i] = x[(sigma*i + tau) % n] * time[i]``.
    freq:
        Exact length-``n`` DFT of the taps placed at positions ``0..w-1`` of
        a length-``n`` array.  ``freq[d]`` is the response a coefficient
        picks up when it sits ``d`` bins *below* the sampled bucket center
        (estimation divides by ``freq[(-offset) % n]``).
    window_name:
        Which base window built this filter (``"gaussian"`` or
        ``"dolph-chebyshev"``).
    lobefrac:
        Design half-width of the base window's spectral main lobe as a
        fraction of ``n``.
    tolerance:
        Design stop-band leakage level ``delta``.
    box_width:
        Width (in bins) of the frequency-domain boxcar that flattens the
        passband.
    """

    n: int
    time: np.ndarray
    freq: np.ndarray
    window_name: str
    lobefrac: float
    tolerance: float
    box_width: int
    _freq_abs: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.time.ndim != 1 or self.freq.ndim != 1:
            raise FilterDesignError("filter arrays must be 1-D")
        if self.freq.size != self.n:
            raise FilterDesignError(
                f"freq length {self.freq.size} != n={self.n}"
            )
        if self.time.size > self.n:
            raise FilterDesignError(
                f"filter support {self.time.size} exceeds signal size {self.n}"
            )
        object.__setattr__(self, "_freq_abs", np.abs(self.freq))

    @property
    def width(self) -> int:
        """Time-domain support ``w`` (number of taps, including padding)."""
        return self.time.size

    def response_at(self, offsets: np.ndarray) -> np.ndarray:
        """Frequency response at (possibly negative) bin offsets.

        ``offsets`` are reduced modulo ``n``; the return has the same shape.
        """
        idx = np.mod(np.asarray(offsets, dtype=np.int64), self.n)
        return self.freq[idx]

    def passband_halfwidth(self) -> int:
        """Half-width (bins) of the region where ``|freq|`` stays above 1/2.

        Measured from the actual response rather than the design spec, so
        tests can assert the construction met its contract.
        """
        half = self.n // 2
        mags = self._freq_abs
        # Walk outward from DC until the response first drops below 0.5.
        for d in range(1, half):
            if mags[d] < 0.5:
                return d - 1
        return half - 1

    def stopband_leakage(self, beyond: int) -> float:
        """Max ``|freq|`` at offsets with ``beyond <= |offset| <= n/2``."""
        if beyond >= self.n // 2:
            return 0.0
        mags = self._freq_abs
        hi = self.n - beyond
        return float(max(mags[beyond : self.n // 2 + 1].max(), mags[self.n // 2 : hi + 1].max()))
