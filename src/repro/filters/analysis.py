"""Quality metrics for flat-window filters.

These back the filter unit tests and the documentation plots: given a
:class:`~repro.filters.base.FlatFilter` they measure how flat the passband
really is, how much energy leaks past the design stop-band, and how sharp the
transition region is — the properties Section III of the paper relies on
("nearly flat inside the pass region and has an exponential tail outside").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import FlatFilter

__all__ = ["FilterReport", "analyze_filter"]


@dataclass(frozen=True)
class FilterReport:
    """Measured characteristics of a flat-window filter.

    Attributes
    ----------
    passband_min / passband_max:
        Extremes of ``|freq|`` over the in-bucket offsets ``|o| <= n/(2B)``.
    passband_ripple:
        ``1 - passband_min / passband_max``.
    stopband_max:
        Max ``|freq|`` at offsets beyond one bucket spacing (``|o| >= n/B``).
    transition_width:
        Bins between the last offset with response >= 0.9 and the first
        with response <= 0.1 (one-sided).
    support:
        Time-domain tap count.
    """

    passband_min: float
    passband_max: float
    passband_ripple: float
    stopband_max: float
    transition_width: int
    support: int


def analyze_filter(filt: FlatFilter, B: int) -> FilterReport:
    """Measure ``filt`` against the bucket geometry implied by ``B`` buckets."""
    n = filt.n
    n_div_b = n // B
    half_bucket = n_div_b // 2
    mags = np.abs(filt.freq)

    # Offsets within the own-bucket region, both sides of DC.
    pos = mags[: half_bucket + 1]
    neg = mags[n - half_bucket :] if half_bucket > 0 else np.empty(0)
    band = np.concatenate([pos, neg])
    pb_min = float(band.min())
    pb_max = float(band.max())

    stop = filt.stopband_leakage(beyond=n_div_b)

    # One-sided transition sharpness on the positive-offset side.
    hi_idx = 0
    for d in range(half_bucket, n // 2):
        if mags[d] < 0.9 * pb_max:
            break
        hi_idx = d
    lo_idx = n // 2 - 1
    for d in range(hi_idx, n // 2):
        if mags[d] <= 0.1 * pb_max:
            lo_idx = d
            break

    return FilterReport(
        passband_min=pb_min,
        passband_max=pb_max,
        passband_ripple=0.0 if pb_max == 0 else 1.0 - pb_min / pb_max,
        stopband_max=stop,
        transition_width=max(0, lo_idx - hi_idx),
        support=filt.width,
    )
