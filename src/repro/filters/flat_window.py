"""Flat-window construction (paper Section III, step 2).

A base window (Gaussian or Dolph-Chebyshev) concentrates energy both in time
(support ``w``) and in frequency (main lobe of half-width ``lobefrac * n``
bins, side lobes below ``delta``).  Convolving its *spectrum* with a width-
``b`` boxcar turns the single lobe into a flat plateau — and by the
convolution theorem that costs nothing in time-domain support, because it is
just a pointwise multiplication of the taps by the Dirichlet kernel

    ``D_b(t) = sin(pi*b*t/n) / sin(pi*t/n)``.

The defaults tie the geometry to the bucket width ``n/B``:

* boxcar half-width ``b2 = 0.75 * n/B``  (box width ``b = 2*b2 + 1``),
* window main lobe ``lobefrac = 0.25 / B``  (i.e. ``0.25 * n/B`` bins),

so the response is ~1 for all offsets a coefficient can have inside its own
bucket (``|o| <= n/(2B) = b2 - lobe``) and ~0 beyond one bucket spacing
(``|o| >= n/B = b2 + lobe``).  Estimation divides bucket values by the
*measured* response, so the plateau only needs to stay well away from zero,
not be exactly 1.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.fft_backend import get_backend
from ..errors import FilterDesignError
from .base import FlatFilter
from .dolph_chebyshev import chebyshev_support, dolph_chebyshev_window
from .gaussian import gaussian_support, gaussian_window

__all__ = ["make_flat_window", "dirichlet_kernel"]

_WINDOWS = ("dolph-chebyshev", "gaussian")


def dirichlet_kernel(t: np.ndarray, b: int, n: int) -> np.ndarray:
    """Dirichlet kernel ``sum_{d=-b2}^{b2} exp(2j*pi*d*t/n)`` for odd ``b``.

    Evaluates the closed form ``sin(pi*b*t/n)/sin(pi*t/n)`` with the
    removable singularities at multiples of ``n`` filled in with ``b``.
    Real-valued because the boxcar is symmetric.
    """
    if b % 2 == 0 or b < 1:
        raise FilterDesignError(f"boxcar width must be odd and >= 1, got {b}")
    t = np.asarray(t, dtype=np.float64)
    phase = np.pi * t / n
    denom = np.sin(phase)
    out = np.full(t.shape, float(b))
    ok = np.abs(denom) > 1e-12
    out[ok] = np.sin(b * phase[ok]) / denom[ok]
    return out


def make_flat_window(
    n: int,
    B: int,
    *,
    window: str = "dolph-chebyshev",
    tolerance: float = 1e-8,
    lobefrac: float | None = None,
    box_halfwidth: int | None = None,
    pad_to_multiple: int | None = None,
) -> FlatFilter:
    """Build a :class:`FlatFilter` binning an ``n``-point spectrum into ``B`` buckets.

    Parameters
    ----------
    n:
        Signal size (positive; power of two not required here, but the sFFT
        planner only calls with powers of two).
    B:
        Number of buckets; ``2 <= B`` and ``B`` must divide ``n``.
    window:
        ``"dolph-chebyshev"`` (default, minimal support) or ``"gaussian"``.
    tolerance:
        Stop-band leakage target ``delta``.
    lobefrac:
        Main-lobe half-width as a fraction of ``n``; default ``0.25 / B``.
    box_halfwidth:
        Boxcar half-width in bins; default ``round(0.75 * n / B)``.
    pad_to_multiple:
        Zero-pad the taps so their count is a multiple of this (the GPU
        loop-partition kernel wants ``w`` divisible by ``B``).

    Notes
    -----
    If the spec demands more taps than ``n``, the support is capped at ``n``
    (whole-signal filter); the effective main lobe then widens and the
    recorded ``lobefrac`` reflects the achieved value, not the request.
    """
    n = int(n)
    B = int(B)
    if n < 4:
        raise FilterDesignError(f"n must be >= 4, got {n}")
    if B < 2 or n % B != 0:
        raise FilterDesignError(f"B must be >= 2 and divide n; got B={B}, n={n}")
    if window not in _WINDOWS:
        raise FilterDesignError(f"unknown window {window!r}; choose from {_WINDOWS}")
    if not 0 < tolerance < 1:
        raise FilterDesignError(f"tolerance must be in (0, 1), got {tolerance}")

    n_div_b = n // B
    if lobefrac is None:
        lobefrac = 0.25 / B
    if not 0 < lobefrac < 0.5:
        raise FilterDesignError(f"lobefrac must be in (0, 0.5), got {lobefrac}")
    if box_halfwidth is None:
        box_halfwidth = max(1, round(0.75 * n_div_b))
    box_width = 2 * int(box_halfwidth) + 1

    if window == "gaussian":
        w = gaussian_support(lobefrac, tolerance)
    else:
        w = chebyshev_support(lobefrac, tolerance)
    if w > n:
        # Whole-signal filter: cap support and record the achieved lobe width.
        w = n if n % 2 == 1 else n - 1
        if window == "gaussian":
            lobefrac = 2.0 * math.log(1.0 / tolerance) / (math.pi * w)
        else:
            m = w - 1
            beta = math.cosh(math.acosh(1.0 / tolerance) / m)
            lobefrac = math.acos(min(1.0, 1.0 / beta)) / math.pi
    if w % 2 == 0:
        w += 1

    if window == "gaussian":
        base = gaussian_window(w, lobefrac, tolerance)
    else:
        base = dolph_chebyshev_window(w, tolerance)

    # Flatten the passband: multiply the centred taps by the Dirichlet kernel
    # (== boxcar convolution of the spectrum), normalizing the kernel peak.
    centre = (w - 1) // 2
    tc = np.arange(w, dtype=np.float64) - centre
    taps = base.astype(np.complex128) * (dirichlet_kernel(tc, box_width, n) / box_width)

    if pad_to_multiple is not None and pad_to_multiple > 0:
        target = -(-w // pad_to_multiple) * pad_to_multiple
        target = min(target, n - (n % pad_to_multiple or pad_to_multiple) + pad_to_multiple)
        if target > n:
            target -= pad_to_multiple
        if target >= w:
            taps = np.concatenate([taps, np.zeros(target - w, dtype=np.complex128)])

    # Exact frequency response of the (truncated, padded) taps: this is the
    # array estimation divides by, so it must match `taps` bit-for-bit.
    padded = np.zeros(n, dtype=np.complex128)
    padded[: taps.size] = taps
    freq = get_backend().fft(padded)
    peak = np.abs(freq).max()
    if peak <= 0:
        raise FilterDesignError("flat window has zero frequency response")
    taps = taps / peak
    freq = freq / peak

    return FlatFilter(
        n=n,
        time=taps,
        freq=freq,
        window_name=window,
        lobefrac=float(lobefrac),
        tolerance=float(tolerance),
        box_width=box_width,
    )
