"""Gaussian base window.

The Gaussian is one of the two windows the paper names (Section III, step 2:
"sFFT uses Gaussian and Dolph-Chebyshev filter").  A Gaussian truncated to
``w`` taps has a Gaussian spectrum, so both the spectral main-lobe width and
the truncation error are controlled analytically:

* a time-domain standard deviation ``s`` gives a frequency-domain standard
  deviation ``n / (2*pi*s)`` bins;
* requiring the spectrum to fall to ``delta`` at ``lobefrac * n`` bins gives
  ``s = sqrt(2*ln(1/delta)) / (2*pi*lobefrac)``;
* truncating the tails where they fall to ``delta`` gives support
  ``w = 2*s*sqrt(2*ln(1/delta)) = 2*ln(1/delta) / (pi*lobefrac)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import FilterDesignError

__all__ = ["gaussian_support", "gaussian_window"]


def gaussian_support(lobefrac: float, tolerance: float) -> int:
    """Minimal tap count for a Gaussian meeting the (lobefrac, delta) spec."""
    if not 0 < lobefrac < 0.5:
        raise FilterDesignError(f"lobefrac must be in (0, 0.5), got {lobefrac}")
    if not 0 < tolerance < 1:
        raise FilterDesignError(f"tolerance must be in (0, 1), got {tolerance}")
    w = int(math.ceil(2.0 * math.log(1.0 / tolerance) / (math.pi * lobefrac)))
    return max(w, 3)


def gaussian_window(w: int, lobefrac: float, tolerance: float) -> np.ndarray:
    """Gaussian taps of length ``w`` centered at ``(w-1)/2``, peak 1.

    The standard deviation is set from the spectral spec so that the
    (untruncated) spectrum reaches ``tolerance`` at offset ``lobefrac * n``;
    truncation to ``w`` taps adds at most ~``tolerance`` extra leakage when
    ``w >= gaussian_support(lobefrac, tolerance)``.
    """
    if w < 3:
        raise FilterDesignError(f"window needs at least 3 taps, got {w}")
    if not 0 < lobefrac < 0.5:
        raise FilterDesignError(f"lobefrac must be in (0, 0.5), got {lobefrac}")
    if not 0 < tolerance < 1:
        raise FilterDesignError(f"tolerance must be in (0, 1), got {tolerance}")
    s = math.sqrt(2.0 * math.log(1.0 / tolerance)) / (2.0 * math.pi * lobefrac)
    t = np.arange(w, dtype=np.float64) - (w - 1) / 2.0
    return np.exp(-(t * t) / (2.0 * s * s))
