"""Terminal line charts (log or linear axes), dependency-free.

The experiment CLI renders its sweeps as text tables; for the figures a
picture helps — these charts draw multiple series on a character canvas,
so ``python -m repro.experiments fig5a --plot`` resembles the paper's
log-log plot without matplotlib.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..errors import ParameterError

__all__ = ["line_chart"]

_MARKERS = "ox+*#%@&"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    out = []
    for v in values:
        if log:
            if v <= 0:
                raise ParameterError("log axis requires positive values")
            out.append(math.log10(v))
        else:
            out.append(float(v))
    return out


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = True,
    logy: bool = True,
    title: str | None = None,
    ylabel: str = "",
) -> str:
    """Plot ``series`` (name -> y-values) against shared ``x`` values.

    Each series gets a marker from a fixed cycle; the y-axis prints the
    data range at top and bottom, the x-axis its endpoints.  Axes may be
    logarithmic (the default, matching the paper's figures).
    """
    if not series:
        raise ParameterError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ParameterError(f"series {name!r} length != x length")
    if len(x) < 2:
        raise ParameterError("need at least two x points")

    tx = _transform(x, logx)
    tys = {name: _transform(ys, logy) for name, ys in series.items()}
    ymin = min(min(v) for v in tys.values())
    ymax = max(max(v) for v in tys.values())
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(tx), max(tx)
    if xmax == xmin:
        raise ParameterError("x values must span a range")

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(tys.items(), _MARKERS):
        for xi, yi in zip(tx, ys):
            col = round((xi - xmin) / (xmax - xmin) * (width - 1))
            row = round((yi - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10 ** ymax:.3g}" if logy else f"{ymax:.3g}"
    bot_label = f"{10 ** ymin:.3g}" if logy else f"{ymin:.3g}"
    label_w = max(len(top_label), len(bot_label), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_w)
        elif i == height - 1:
            prefix = bot_label.rjust(label_w)
        elif i == height // 2 and ylabel:
            prefix = ylabel.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}|")
    x_lo = f"{10 ** xmin:.3g}" if logx else f"{xmin:.3g}"
    x_hi = f"{10 ** xmax:.3g}" if logx else f"{xmax:.3g}"
    axis = " " * label_w + " " + x_lo + "-" * max(1, width - len(x_lo) - len(x_hi)) + x_hi
    lines.append(axis)
    legend = ", ".join(
        f"{marker}={name}" for (name, _), marker in zip(tys.items(), _MARKERS)
    )
    lines.append(" " * label_w + " legend: " + legend)
    return "\n".join(lines)
