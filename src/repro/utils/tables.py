"""Plain-text table rendering for the experiment harness.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them as aligned monospace tables so the
output is directly readable in a terminal or pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import ParameterError

__all__ = ["format_table", "format_seconds", "format_ratio"]


def format_seconds(t: float) -> str:
    """Human-scale time: picks ns/us/ms/s so columns stay short."""
    if t != t:  # NaN
        return "n/a"
    a = abs(t)
    if a >= 1.0:
        return f"{t:.3f} s"
    if a >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    if a >= 1e-6:
        return f"{t * 1e6:.2f} us"
    return f"{t * 1e9:.1f} ns"


def format_ratio(r: float) -> str:
    """Speedup-style ratio, e.g. ``14.9x``."""
    if r != r:
        return "n/a"
    return f"{r:.2f}x"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Cells are stringified with ``str``; numeric formatting is the caller's
    responsibility (use :func:`format_seconds` / :func:`format_ratio`).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    cols = len(headers)
    for r in str_rows:
        if len(r) != cols:
            raise ParameterError(
                f"row has {len(r)} cells, expected {cols}: {r}"
            )
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), len(sep)))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
