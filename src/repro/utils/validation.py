"""Argument validation helpers shared across the library.

These exist so that public entry points fail with a clear
:class:`~repro.errors.ParameterError` naming the offending argument, instead
of an obscure NumPy broadcast error three layers down.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from .modmath import is_power_of_two

__all__ = [
    "require",
    "check_positive_int",
    "check_power_of_two",
    "check_in_range",
    "as_complex_signal",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ParameterError` with ``message`` unless ``condition``."""
    if not condition:
        raise ParameterError(message)


def check_positive_int(value, name: str) -> int:
    """Coerce ``value`` to a positive Python int or raise."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue <= 0 or ivalue != value:
        raise ParameterError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_power_of_two(value, name: str) -> int:
    """Coerce ``value`` to a positive power-of-two int or raise."""
    ivalue = check_positive_int(value, name)
    if not is_power_of_two(ivalue):
        raise ParameterError(f"{name} must be a power of two, got {ivalue}")
    return ivalue


def check_in_range(value, name: str, low, high) -> None:
    """Require ``low <= value <= high`` (inclusive bounds)."""
    if not (low <= value <= high):
        raise ParameterError(f"{name} must be in [{low}, {high}], got {value}")


def as_complex_signal(x, n: int | None = None) -> np.ndarray:
    """Validate and coerce an input signal to a 1-D complex128 array.

    The sFFT pipeline works in complex double precision throughout (the
    paper's buckets are complex doubles).  Real inputs are accepted and
    widened.  When ``n`` is given, the length is checked against it.
    """
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ParameterError(f"signal must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ParameterError("signal must be non-empty")
    if not np.issubdtype(arr.dtype, np.number):
        raise ParameterError(f"signal must be numeric, got dtype {arr.dtype}")
    if n is not None and arr.size != n:
        raise ParameterError(f"signal length {arr.size} != expected n={n}")
    return np.ascontiguousarray(arr, dtype=np.complex128)
