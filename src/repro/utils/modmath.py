"""Modular arithmetic helpers used by the sFFT permutation machinery.

The sparse FFT permutes the spectrum with a random dilation ``sigma`` that
must be invertible modulo the signal size ``n`` (for power-of-two ``n`` this
simply means *odd*).  Binning then walks the signal at stride ``sigma`` and
location recovery walks candidate frequencies at stride ``sigma^{-1}``.
Everything here is exact integer math; NumPy vectorized variants are provided
for the hot paths.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError

__all__ = [
    "gcd",
    "mod_inverse",
    "is_power_of_two",
    "ilog2",
    "next_power_of_two",
    "random_odd",
    "random_invertible",
    "mod_mult_range",
]


def gcd(a: int, b: int) -> int:
    """Greatest common divisor of ``a`` and ``b`` (non-negative result)."""
    return math.gcd(int(a), int(b))


def mod_inverse(a: int, n: int) -> int:
    """Return ``a^{-1} mod n``.

    Uses the extended Euclidean algorithm.  Raises :class:`ParameterError`
    when ``a`` is not invertible modulo ``n`` (i.e. ``gcd(a, n) != 1``) so
    that a bad permutation parameter is caught at plan time rather than as a
    silent wrong answer.
    """
    n = int(n)
    if n <= 0:
        raise ParameterError(f"modulus must be positive, got {n}")
    a = int(a) % n
    if math.gcd(a, n) != 1:
        raise ParameterError(f"{a} is not invertible modulo {n}")
    # Extended Euclid: maintain r = old_s * a + old_t * n.
    old_r, r = a, n
    old_s, s = 1, 0
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_s % n


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    n = int(n)
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact integer log2 of a power-of-two ``n``.

    Raises :class:`ParameterError` for non-powers of two; sFFT parameter
    derivation assumes power-of-two sizes throughout (as does the paper).
    """
    if not is_power_of_two(n):
        raise ParameterError(f"{n} is not a power of two")
    return int(n).bit_length() - 1


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (with ``next_power_of_two(0) == 1``)."""
    n = int(n)
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def random_odd(n: int, rng: np.random.Generator) -> int:
    """Draw a uniformly random odd integer in ``[1, n)``.

    For power-of-two ``n`` the odd residues are exactly the units mod ``n``,
    so this is the fast path for drawing a permutation dilation.
    """
    if n < 2:
        raise ParameterError(f"need n >= 2 to draw an odd residue, got {n}")
    return int(rng.integers(0, n // 2)) * 2 + 1


def random_invertible(n: int, rng: np.random.Generator) -> int:
    """Draw a uniformly random unit modulo ``n`` (``gcd(sigma, n) == 1``).

    This mirrors the rejection loop in the paper's Algorithm 1
    (``while gcd(a, n) != 1``), but takes the O(1) odd-residue shortcut when
    ``n`` is a power of two.
    """
    n = int(n)
    if n < 2:
        raise ParameterError(f"need n >= 2 to draw a unit, got {n}")
    if is_power_of_two(n):
        return random_odd(n, rng)
    while True:
        a = int(rng.integers(1, n))
        if math.gcd(a, n) == 1:
            return a


def mod_mult_range(start: int, count: int, step: int, n: int) -> np.ndarray:
    """Vectorized ``(start + i*step) mod n`` for ``i in range(count)``.

    This is the *index mapping* of the paper's Figure 3: the serial code's
    loop-carried recurrence ``index = (index + step) % n`` is replaced by a
    closed form on the loop iterator, which is what makes the permutation
    loop parallelizable.  Computed in ``int64``; ``count * step`` can exceed
    2**63 for huge inputs, so the multiplication is done modulo ``n`` via
    Python ints only when it would overflow.
    """
    n = int(n)
    if n <= 0:
        raise ParameterError(f"modulus must be positive, got {n}")
    count = int(count)
    step = int(step) % n
    start = int(start) % n
    i = np.arange(count, dtype=np.int64)
    if count > 0 and step > 0 and (count - 1) > (2**62) // step:
        # Overflow-safe fallback: iterate in Python ints (rare; huge n only).
        out = np.empty(count, dtype=np.int64)
        v = start
        for j in range(count):
            out[j] = v
            v = (v + step) % n
        return out
    return (i * step + start) % n
