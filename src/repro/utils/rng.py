"""Seed and random-generator plumbing.

Every stochastic entry point in the library accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None``; :func:`ensure_rng`
normalizes all three.  Keeping this in one place makes end-to-end runs
reproducible (experiments pass explicit seeds) without threading global
state through the call tree.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RngLike", "ensure_rng", "spawn"]

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives fresh OS entropy, an ``int`` gives a deterministic
    generator, and an existing generator is passed through unchanged (so a
    caller can share one stream across several components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by the experiment harness to give each trial its own stream while
    keeping the whole sweep reproducible from a single seed.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
