"""Shared low-level utilities: modular arithmetic, RNG plumbing, tables."""

from .modmath import (
    gcd,
    ilog2,
    is_power_of_two,
    mod_inverse,
    mod_mult_range,
    next_power_of_two,
    random_invertible,
    random_odd,
)
from .rng import RngLike, ensure_rng, spawn
from .tables import format_ratio, format_seconds, format_table
from .validation import (
    as_complex_signal,
    check_in_range,
    check_positive_int,
    check_power_of_two,
    require,
)

__all__ = [
    "gcd",
    "ilog2",
    "is_power_of_two",
    "mod_inverse",
    "mod_mult_range",
    "next_power_of_two",
    "random_invertible",
    "random_odd",
    "RngLike",
    "ensure_rng",
    "spawn",
    "format_ratio",
    "format_seconds",
    "format_table",
    "as_complex_signal",
    "check_in_range",
    "check_positive_int",
    "check_power_of_two",
    "require",
]
