"""Ablation experiments: price each cusFFT optimization in isolation.

DESIGN.md calls out four design choices; each ablation toggles exactly one
of them and reports modeled times across sizes:

* ``abl-partition`` — Algorithm 2's loop partition vs the conventional
  atomic-histogram binning (Section IV-C's rejected strawman);
* ``abl-layout``   — asynchronous data-layout transformation on/off
  (Section V-A);
* ``abl-select``   — fast threshold k-selection vs Thrust sort&select
  (Section V-B / Algorithm 6 vs Algorithm 3);
* ``abl-batch``    — batched vs per-loop cuFFT for the subsampled
  transforms (Section IV-C step 3).
"""

from __future__ import annotations

from ..cufft.plan import CufftPlan
from ..cusim.device import KEPLER_K20X
from ..gpu.config import ATOMIC_HISTOGRAM, BASELINE, CusfftConfig
from ..gpu.cusfft import CusFFT
from ..perf.counts import sfft_step_counts
from ..utils.modmath import ilog2
from ..utils.tables import format_ratio, format_seconds
from .base import ExperimentResult, paper_kwargs

__all__ = [
    "run_ablation_partition",
    "run_ablation_layout",
    "run_ablation_select",
    "run_ablation_batch",
]

_DEFAULT_SIZES = [1 << 20, 1 << 22, 1 << 24, 1 << 26]


def _config_ablation(
    exp_id: str,
    title: str,
    with_cfg: CusfftConfig,
    without_cfg: CusfftConfig,
    sizes: list[int] | None,
    k: int,
    notes: tuple[str, ...],
) -> ExperimentResult:
    sizes = sizes or _DEFAULT_SIZES
    rows = []
    for n in sizes:
        kw = paper_kwargs(k)
        t_without = CusFFT.create(n, k, config=without_cfg, **kw).estimated_time()
        t_with = CusFFT.create(n, k, config=with_cfg, **kw).estimated_time()
        rows.append(
            (
                f"2^{ilog2(n)}",
                format_seconds(t_without),
                format_seconds(t_with),
                format_ratio(t_without / t_with),
            )
        )
    return ExperimentResult(
        experiment_id=exp_id,
        title=title,
        headers=("n", "without", "with", "speedup"),
        rows=tuple(rows),
        notes=notes,
    )


def run_ablation_partition(
    sizes: list[int] | None = None, k: int = 1000
) -> ExperimentResult:
    """Loop-partition binning vs atomic-histogram binning."""
    return _config_ablation(
        "abl-partition",
        "Loop partition (Alg 2) vs atomic histogram binning",
        with_cfg=BASELINE,
        without_cfg=ATOMIC_HISTOGRAM,
        sizes=sizes,
        k=k,
        notes=(
            "the collision-free formulation avoids 2 atomics per filter tap "
            "(Section IV-C); both variants otherwise identical (sort cutoff)",
        ),
    )


def run_ablation_layout(
    sizes: list[int] | None = None, k: int = 1000
) -> ExperimentResult:
    """Asynchronous data-layout transformation on/off (fast select fixed)."""
    return _config_ablation(
        "abl-layout",
        "Asynchronous data layout transformation on/off",
        with_cfg=CusfftConfig(layout_transform=True, fast_select=True),
        without_cfg=CusfftConfig(layout_transform=False, fast_select=True),
        sizes=sizes,
        k=k,
        notes=(
            "REPRODUCTION FINDING: under our bandwidth-honest device model "
            "this optimization is neutral-to-negative (~0.8-1.0x): the split "
            "pipeline moves strictly more DRAM bytes than the fused kernel "
            "and pays ~2x the kernel-launch issues, while stream overlap can "
            "only hide work the fused kernel also overlaps.  The paper's "
            "observed gain implies its fused baseline under-achieved DRAM "
            "bandwidth (TLB/partition-camping effects our model omits); the "
            "paper's overall ~2x optimized-vs-baseline gap is reproduced by "
            "the fast k-selection alone (see abl-select)",
        ),
    )


def run_ablation_select(
    sizes: list[int] | None = None, k: int = 1000
) -> ExperimentResult:
    """Fast threshold k-selection vs Thrust sort&select (layout fixed)."""
    return _config_ablation(
        "abl-select",
        "Fast k-selection (Alg 6) vs Thrust sort&select (Alg 3)",
        with_cfg=CusfftConfig(layout_transform=True, fast_select=True),
        without_cfg=CusfftConfig(layout_transform=True, fast_select=False),
        sizes=sizes,
        k=k,
        notes=(
            "sort&select pays ~16 radix passes over B buckets per loop; the "
            "threshold scan is one pass (Section V-B)",
        ),
    )


def run_ablation_batch(
    sizes: list[int] | None = None, k: int = 1000
) -> ExperimentResult:
    """Batched vs per-loop cuFFT for the L subsampled transforms."""
    sizes = sizes or _DEFAULT_SIZES
    rows = []
    for n in sizes:
        kw = paper_kwargs(k)
        params = CusFFT.create(n, k, **kw).params
        counts = sfft_step_counts(params)
        plan = CufftPlan(counts.B, batch=counts.loops)
        batched = plan.estimated_time(KEPLER_K20X)
        looped = plan.estimated_time_unbatched(KEPLER_K20X)
        rows.append(
            (
                f"2^{ilog2(n)}",
                counts.B,
                format_seconds(looped),
                format_seconds(batched),
                format_ratio(looped / batched),
            )
        )
    return ExperimentResult(
        experiment_id="abl-batch",
        title="Batched vs per-loop cuFFT for the subsampled FFTs",
        headers=("n", "B", "looped", "batched", "speedup"),
        rows=tuple(rows),
        notes=(
            "batched mode shares twiddle factors and amortizes per-pass "
            "launches across all L loops (Section IV-C step 3)",
        ),
    )
