"""Experiment harness: regenerate every table and figure of the paper."""

from .base import (
    PAPER_SWEEP_K,
    PAPER_SWEEP_N,
    PAPER_TRANSFORM_KWARGS,
    ExperimentResult,
    ExperimentSpec,
    paper_kwargs,
)
from .registry import EXPERIMENTS, get_experiment, list_experiments, run_experiment

__all__ = [
    "PAPER_SWEEP_K",
    "PAPER_SWEEP_N",
    "PAPER_TRANSFORM_KWARGS",
    "ExperimentResult",
    "ExperimentSpec",
    "paper_kwargs",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
