"""Command-line experiment runner.

Usage::

    python -m repro.experiments list          # enumerate experiments
    python -m repro.experiments fig5a fig5c   # run specific experiments
    python -m repro.experiments all           # run everything
    python -m repro.experiments all --markdown  # EXPERIMENTS.md fragments
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ExperimentError
from .registry import list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="+",
        help="experiment ids (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit GitHub-flavoured markdown instead of aligned text",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="append an ASCII chart for experiments that publish series",
    )
    args = parser.parse_args(argv)

    if args.ids == ["list"]:
        for spec in list_experiments():
            print(f"{spec.experiment_id:14s} {spec.paper_ref:22s} {spec.title}")
        return 0

    ids = (
        [s.experiment_id for s in list_experiments()]
        if args.ids == ["all"]
        else args.ids
    )
    for i, experiment_id in enumerate(ids):
        try:
            result = run_experiment(experiment_id)
        except ExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.to_markdown() if args.markdown else result.render(plot=args.plot))
        if i != len(ids) - 1:
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
