"""Experiment framework: shared configuration and the result container.

Every reproduced table/figure is an *experiment*: a callable producing rows
that mirror what the paper reports.  Experiments default to the paper's
evaluation configuration (``PAPER_SWEEP_*``) and are deterministic given
their seed, so EXPERIMENTS.md can quote exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..obs import Tracer, make_run_record, write_jsonl
from ..utils.tables import format_table

__all__ = [
    "PAPER_TRANSFORM_KWARGS",
    "PAPER_SWEEP_N",
    "PAPER_SWEEP_K",
    "paper_kwargs",
    "ExperimentResult",
    "ExperimentSpec",
]

#: Transform parameterization matching the reference implementation's
#: economics (Section VI): B = sqrt(n*k/log2 n) exactly, L = 6 loops,
#: cutoff keeps k buckets, 1e-6 filter tolerance.
PAPER_TRANSFORM_KWARGS = dict(  # reprolint: ignore[param-resolution-bypass]
    profile="fast", loops=6, bucket_constant=1.0
)

#: Figure 5(a)/(c)/(d)/(e): n from 2^18 to 2^27 at k = 1000.
PAPER_SWEEP_N = [1 << p for p in range(18, 28)]

#: Figure 5(b)/(f): k from 100 to 1000 at fixed n.
PAPER_SWEEP_K = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]


def paper_kwargs(k: int, **extra) -> dict:
    """Per-transform kwargs for the paper configuration at sparsity ``k``."""
    kw = dict(PAPER_TRANSFORM_KWARGS)
    kw["select_count"] = k
    kw.update(extra)
    return kw


@dataclass(frozen=True)
class ExperimentResult:
    """Rows reproducing one table/figure, plus context for the report."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: tuple[str, ...] = field(default_factory=tuple)
    #: optional raw series for plotting: (x_values, {name: y_values})
    series: tuple | None = field(default=None, compare=False)
    #: run-scoped tracer attached by :meth:`ExperimentSpec.run`
    trace: Tracer | None = field(default=None, compare=False, repr=False)

    def render(self, *, plot: bool = False) -> str:
        """Aligned text table with notes appended; ``plot=True`` adds an
        ASCII chart when the experiment published raw series."""
        out = format_table(list(self.headers), [list(r) for r in self.rows],
                           title=f"[{self.experiment_id}] {self.title}")
        if plot and self.series is not None:
            from ..utils.asciiplot import line_chart

            x, named = self.series
            out += "\n\n" + line_chart(
                x, named, title=f"{self.experiment_id}: {self.title}"
            )
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def to_run_record(self, **params) -> dict:
        """This result as a ``repro.run/1`` record (see ``repro.obs``)."""
        return make_run_record(
            self.experiment_id,
            params=params,
            tracer=self.trace,
            title=self.title,
            headers=list(self.headers),
            rows=[list(r) for r in self.rows],
            notes=list(self.notes),
        )

    def write_jsonl(self, path, **params) -> None:
        """Append this result to a JSONL run-record file."""
        write_jsonl(path, self.to_run_record(**params))

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
        head = "| " + " | ".join(self.headers) + " |"
        sep = "|" + "|".join("---" for _ in self.headers) + "|"
        body = "\n".join(
            "| " + " | ".join(str(c) for c in row) + " |" for row in self.rows
        )
        notes = "\n".join(f"*{n}*" for n in self.notes)
        return f"**{self.experiment_id}** — {self.title}\n\n{head}\n{sep}\n{body}\n{notes}".rstrip()


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: metadata plus the runner callable."""

    experiment_id: str
    title: str
    paper_ref: str
    description: str
    runner: Callable[..., ExperimentResult]

    def run(
        self,
        *,
        tracer: Tracer | None = None,
        jsonl_path=None,
        **options,
    ) -> ExperimentResult:
        """Execute the experiment (options forwarded to the runner).

        Every run is clocked under a run-scoped tracer (a fresh one unless
        ``tracer`` is given) attached to the result as ``trace``; with
        ``jsonl_path`` the result is also appended there as a run record.
        """
        tracer = tracer if tracer is not None else Tracer()
        with tracer.span(self.experiment_id, category="experiment",
                         paper_ref=self.paper_ref):
            result = self.runner(**options)
        result = replace(result, trace=tracer)
        if jsonl_path is not None:
            result.write_jsonl(jsonl_path, **{
                k: v for k, v in options.items()
                if isinstance(v, (str, int, float, bool))
            })
        return result
