"""Experiment registry: every reproduced table/figure, addressable by id.

``python -m repro.experiments <id>`` and the benchmark suite both resolve
experiments here, so DESIGN.md's per-experiment index has exactly one
source of truth.
"""

from __future__ import annotations

from ..errors import ExperimentError
from .ablations import (
    run_ablation_batch,
    run_ablation_layout,
    run_ablation_partition,
    run_ablation_select,
)
from .base import ExperimentResult, ExperimentSpec
from .extensions import (
    run_ext_comb,
    run_ext_exact,
    run_ext_devices,
    run_ext_ldg,
    run_ext_noise,
    run_ext_offgrid,
    run_ext_tuning,
)
from .fig2 import run_fig2a, run_fig2b
from .fig5 import run_fig5a, run_fig5b, run_fig5c, run_fig5d, run_fig5e, run_fig5f
from .tables import run_table1, run_table2

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment", "list_experiments"]

EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig2a", "Step time distribution vs n", "Figure 2(a)",
            "Per-step share of sFFT execution as n grows at k=1000.",
            run_fig2a,
        ),
        ExperimentSpec(
            "fig2b", "Step time distribution vs k", "Figure 2(b)",
            "Per-step share of sFFT execution as k grows at fixed n.",
            run_fig2b,
        ),
        ExperimentSpec(
            "fig5a", "Run time vs signal size", "Figure 5(a)",
            "cusFFT (baseline/optimized) vs cuFFT, FFTW, PsFFT, k=1000.",
            run_fig5a,
        ),
        ExperimentSpec(
            "fig5b", "Run time vs sparsity", "Figure 5(b)",
            "All systems at n=2^27 as k sweeps 100..1000.",
            run_fig5b,
        ),
        ExperimentSpec(
            "fig5c", "Speedup over cuFFT", "Figure 5(c)",
            "cusFFT speedup over cuFFT vs n (paper: up to 15x).",
            run_fig5c,
        ),
        ExperimentSpec(
            "fig5d", "Speedup over parallel FFTW", "Figure 5(d)",
            "cusFFT speedup over 6-thread FFTW vs n (paper: 0.5x..29x).",
            run_fig5d,
        ),
        ExperimentSpec(
            "fig5e", "Speedup over PsFFT", "Figure 5(e)",
            "cusFFT speedup over the OpenMP CPU sFFT (paper: peak 6.6x).",
            run_fig5e,
        ),
        ExperimentSpec(
            "fig5f", "L1 error per coefficient", "Figure 5(f)",
            "Numerical accuracy vs k (functional runs, real numerics).",
            run_fig5f,
        ),
        ExperimentSpec(
            "table1", "GPU test-bench", "Table I",
            "Simulated Tesla K20x configuration and micro-benchmarks.",
            run_table1,
        ),
        ExperimentSpec(
            "table2", "CPU test-bench", "Table II",
            "Simulated Xeon E5-2640 configuration.",
            run_table2,
        ),
        ExperimentSpec(
            "abl-partition", "Loop partition vs atomic histogram", "Section IV-C",
            "Ablation: collision-free binning vs atomicAdd histogram.",
            run_ablation_partition,
        ),
        ExperimentSpec(
            "abl-layout", "Async layout transformation", "Section V-A",
            "Ablation: remap+exec stream pipeline vs fused strided kernel.",
            run_ablation_layout,
        ),
        ExperimentSpec(
            "abl-select", "Fast k-selection", "Section V-B",
            "Ablation: threshold selection vs Thrust sort&select.",
            run_ablation_select,
        ),
        ExperimentSpec(
            "abl-batch", "Batched cuFFT", "Section IV-C step 3",
            "Ablation: one batched cuFFT call vs L separate calls.",
            run_ablation_batch,
        ),
        ExperimentSpec(
            "ext-devices", "Other architectures", "Section VII (future work)",
            "Extension: cusFFT on K40/Maxwell, PsFFT on Xeon Phi.",
            run_ext_devices,
        ),
        ExperimentSpec(
            "ext-tuning", "Parameter autotuning", "Section VI (Bcst tuning)",
            "Extension: model-driven B selection vs the fixed formula.",
            run_ext_tuning,
        ),
        ExperimentSpec(
            "ext-noise", "Noise robustness", "Section VI (accuracy)",
            "Extension: functional recall and L1 error vs input SNR.",
            run_ext_noise,
        ),
        ExperimentSpec(
            "ext-comb", "sFFT 2.0 Comb pre-filter", "Section II-C / ref [3]",
            "Extension: residue screening quality and vote reduction.",
            run_ext_comb,
        ),
        ExperimentSpec(
            "ext-ldg", "Read-only cache gathers", "Section II-A (unused)",
            "Extension: __ldg gathers cut wire traffic 4x on the gather path.",
            run_ext_ldg,
        ),
        ExperimentSpec(
            "ext-offgrid", "Off-grid tone recovery", "beyond the evaluation",
            "Extension: leakage stress with non-integer tone frequencies.",
            run_ext_offgrid,
        ),
        ExperimentSpec(
            "ext-exact", "Exactly-sparse phase decoding", "Section II-C / ref [3]",
            "Extension: sFFT-3.0-style location without voting (noiseless).",
            run_ext_exact,
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment; raises :class:`ExperimentError` if unknown."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str, **options) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id).run(**options)


def list_experiments() -> list[ExperimentSpec]:
    """All registered experiments in id order."""
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS)]
