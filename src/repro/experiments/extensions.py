"""Extension experiments beyond the paper's evaluation.

The paper's conclusion promises to "continue to explore the performance of
the algorithm on other emerging parallel architectures, such as DSPs and
Intel Xeon Phi"; these experiments follow through on the reproduction:

* ``ext-devices`` — cusFFT across simulated GPU generations plus PsFFT on
  the Xeon Phi model (the named future-work target);
* ``ext-tuning``  — model-driven parameter autotuning vs the paper's fixed
  formula (the per-size ``Bcst`` tuning the authors did by hand);
* ``ext-noise``   — functional recovery robustness vs SNR (extends the
  noiseless Fig 5(f));
* ``ext-comb``    — the sFFT-2.0 Comb pre-filter: screening quality and the
  voting-work reduction it buys;
* ``ext-ldg``     — routing the signal gathers through Kepler's read-only
  data cache (described in the paper's Section II-A but unused by cusFFT);
* ``ext-offgrid`` — leakage stress with non-integer tone frequencies, the
  known boundary of the exactly-sparse model.
"""

from __future__ import annotations

import numpy as np

from ..analysis.accuracy import score_result
from ..core.comb import comb_approved_residues
from ..core.dense import dense_fft
from ..core.plan import make_plan
from ..core.sfft import sfft
from ..core.variants import sfft_batch
from ..cpu.cpuspec import CPU_DEVICES
from ..cpu.psfft import PsFFT
from ..cusim.device import GPU_DEVICES
from ..gpu.config import OPTIMIZED
from ..gpu.cusfft import CusFFT
from ..signals.noise import add_awgn
from ..signals.sparse import make_sparse_signal
from ..tuning import tune_parameters
from ..utils.modmath import ilog2
from ..utils.tables import format_ratio, format_seconds
from .base import ExperimentResult, paper_kwargs

__all__ = [
    "run_ext_devices",
    "run_ext_tuning",
    "run_ext_noise",
    "run_ext_comb",
    "run_ext_ldg",
    "run_ext_offgrid",
    "run_ext_exact",
]


def run_ext_devices(
    sizes: list[int] | None = None, k: int = 1000
) -> ExperimentResult:
    """Modeled cusFFT/PsFFT across architectures (the paper's future work)."""
    sizes = sizes or [1 << 22, 1 << 24, 1 << 27]
    rows = []
    for n in sizes:
        kw = paper_kwargs(k)
        cells = [f"2^{ilog2(n)}"]
        for dev in GPU_DEVICES:
            t = CusFFT.create(n, k, config=OPTIMIZED, device=dev, **kw)
            cells.append(format_seconds(t.estimated_time()))
        for cpu in CPU_DEVICES:
            cells.append(
                format_seconds(PsFFT.create(n, k, threads=cpu.cores, cpu=cpu, **kw).estimated_time())
            )
        rows.append(tuple(cells))
    headers = (
        "n",
        *(f"cusFFT {d.name}" for d in GPU_DEVICES),
        *(f"PsFFT {c.name}" for c in CPU_DEVICES),
    )
    return ExperimentResult(
        experiment_id="ext-devices",
        title=f"cusFFT/PsFFT across simulated architectures (k={k})",
        headers=headers,
        rows=tuple(rows),
        notes=(
            "extension: K40 wins on bandwidth; Maxwell's 1/32-rate double "
            "precision makes the FFT/estimation stages compute-bound and "
            "costs it the lead despite faster atomics — double-precision "
            "sFFT ports to Maxwell but does not speed up; Xeon Phi's 60-way "
            "MLP accelerates the gathers well past the Sandy Bridge box",
        ),
    )


def run_ext_tuning(
    sizes: list[int] | None = None, k: int = 1000
) -> ExperimentResult:
    """Model-driven autotuning vs the fixed-formula parameters."""
    sizes = sizes or [1 << p for p in range(20, 28)]
    rows = []
    for n in sizes:
        kw = paper_kwargs(k)
        formula = CusFFT.create(n, k, config=OPTIMIZED, **kw).estimated_time()
        tuned = tune_parameters(n, k, executor="gpu", config=OPTIMIZED, **kw)
        rows.append(
            (
                f"2^{ilog2(n)}",
                format_seconds(formula),
                format_seconds(tuned.modeled_time_s),
                tuned.params.B,
                format_ratio(formula / tuned.modeled_time_s),
            )
        )
    return ExperimentResult(
        experiment_id="ext-tuning",
        title=f"Autotuned vs formula-derived parameters (k={k})",
        headers=("n", "formula", "tuned", "tuned B", "gain"),
        rows=tuple(rows),
        notes=(
            "extension: the tuner reproduces the authors' hand-tuned "
            "per-size Bcst — it smooths the power-of-two rounding sawtooth "
            "in B = sqrt(n*k/log n)",
        ),
    )


def run_ext_noise(
    n: int = 1 << 18,
    k: int = 50,
    snrs: tuple[float, ...] = (40.0, 30.0, 20.0, 10.0, 5.0, 0.0),
    *,
    trials: int = 3,
    seed: int = 7,
) -> ExperimentResult:
    """Functional recovery robustness vs SNR."""
    rows = []
    plan = make_plan(n, k, seed=seed, **paper_kwargs(k))
    for snr in snrs:
        # All trials share the hoisted plan: one batched call per SNR.
        sigs = [make_sparse_signal(n, k, seed=seed + 13 * t)
                for t in range(trials)]
        noisy = np.stack([
            add_awgn(sig.time, snr, seed=seed + 31 * t)[0]
            for t, sig in enumerate(sigs)
        ])
        recalls, errs = [], []
        for sig, res in zip(sigs, sfft_batch(noisy, plan=plan)):
            rep = score_result(res, sig.locations, sig.values)
            recalls.append(rep.recall)
            errs.append(rep.l1_error / n)
        rows.append(
            (
                f"{snr:.0f} dB",
                f"{np.mean(recalls):.4f}",
                f"{np.mean(errs):.3e}",
            )
        )
    return ExperimentResult(
        experiment_id="ext-noise",
        title=f"Recovery vs SNR (n=2^{ilog2(n)}, k={k}, {trials} trials)",
        headers=("SNR", "recall", "mean L1/coeff"),
        rows=tuple(rows),
        notes=(
            "extension: the paper evaluates noiseless inputs; voting keeps "
            "recall high well below 20 dB while value error scales with the "
            "noise floor",
        ),
    )


def run_ext_comb(
    n: int = 1 << 18,
    ks: tuple[int, ...] = (10, 50, 200),
    *,
    seed: int = 11,
) -> ExperimentResult:
    """sFFT-2.0 Comb pre-filter: screening quality and vote reduction."""
    rows = []
    W = max(256, n >> 6)
    for k in ks:
        sig = make_sparse_signal(n, k, seed=seed + k)
        mask = comb_approved_residues(sig.time, W, k, seed=seed)
        true_kept = bool(mask[sig.locations % W].all())
        plan = make_plan(n, k, seed=seed + 1, **paper_kwargs(k))
        res = sfft(sig.time, plan=plan, comb_width=W, seed=seed)
        exact = set(res.locations.tolist()) == set(sig.locations.tolist())
        rows.append(
            (
                k,
                W,
                f"{mask.mean():.3f}",
                "yes" if true_kept else "NO",
                "yes" if exact else "NO",
            )
        )
    return ExperimentResult(
        experiment_id="ext-comb",
        title=f"Comb pre-filter screening (n=2^{ilog2(n)})",
        headers=("k", "W", "approved fraction", "support kept", "exact recovery"),
        rows=tuple(rows),
        notes=(
            "extension: the approved fraction bounds the voting work kept — "
            "location recovery with the comb screen touches only that "
            "fraction of candidates (sFFT 2.0's heuristic)",
        ),
    )


def run_ext_ldg(
    sizes: list[int] | None = None, k: int = 1000
) -> ExperimentResult:
    """Read-only-cache gathers (``__ldg``): a beyond-the-paper optimization.

    The paper's Section II-A describes Kepler's 48 KB read-only data cache
    but cusFFT never exploits it.  Routing the (read-only!) signal gathers
    through that path shrinks each scattered load from a 128-byte L1
    transaction to a 32-byte texture-path transaction — a 4x wire-traffic
    cut on the transform's dominant access stream.
    """
    sizes = sizes or [1 << 22, 1 << 24, 1 << 26, 1 << 27]
    rows = []
    for n in sizes:
        kw = paper_kwargs(k)
        off = CusFFT.create(n, k, config=OPTIMIZED, **kw).estimated_time()
        on = CusFFT.create(
            n, k, config=OPTIMIZED.with_(use_ldg=True), **kw
        ).estimated_time()
        rows.append(
            (
                f"2^{ilog2(n)}",
                format_seconds(off),
                format_seconds(on),
                format_ratio(off / on),
            )
        )
    return ExperimentResult(
        experiment_id="ext-ldg",
        title=f"Read-only-cache (__ldg) signal gathers (k={k})",
        headers=("n", "without __ldg", "with __ldg", "speedup"),
        rows=tuple(rows),
        notes=(
            "extension: projected gain from the Kepler read-only path the "
            "paper describes but does not use; grows with n as the gather "
            "stream's share of total traffic grows",
        ),
    )


def run_ext_offgrid(
    n: int = 1 << 16,
    k: int = 16,
    offsets: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    *,
    trials: int = 3,
    seed: int = 19,
) -> ExperimentResult:
    """Off-grid leakage stress: tones displaced off the DFT grid.

    The exactly-sparse model (the paper's evaluation regime) assumes
    integer frequencies; a displacement of ``delta`` bins smears each tone
    into a Dirichlet tail.  This sweep measures how gracefully recovery
    degrades: nearest-bin recall and the fraction of tone energy captured
    by the recovered coefficients.
    """
    from ..signals.workloads import make_offgrid_tones

    rows = []
    plan = make_plan(n, k, seed=seed, **paper_kwargs(k))
    for delta in offsets:
        # One batched call per offset: the trials share the hoisted plan.
        tones = [make_offgrid_tones(n, k, delta, seed=seed + 7 * t)
                 for t in range(trials)]
        batch = sfft_batch(
            np.stack([x for x, _ in tones]), plan=plan, trim_to_k=True
        )
        recalls, captured = [], []
        for (x, freqs), res in zip(tones, batch):
            found = res.locations.astype(np.float64)
            hit = sum(
                1 for f in freqs if np.min(np.abs(found - round(f))) <= 1
            )
            recalls.append(hit / k)
            spec_energy = np.abs(dense_fft(x)) ** 2
            captured.append(
                float(
                    np.abs(res.values).__pow__(2).sum() / spec_energy.sum()
                )
            )
        rows.append(
            (
                f"{delta:.1f}",
                f"{np.mean(recalls):.3f}",
                f"{np.mean(captured):.3f}",
            )
        )
    return ExperimentResult(
        experiment_id="ext-offgrid",
        title=f"Off-grid tone recovery (n=2^{ilog2(n)}, k={k}, {trials} trials)",
        headers=("grid offset (bins)", "nearest-bin recall", "energy captured"),
        rows=tuple(rows),
        notes=(
            "extension: leakage stress outside the paper's exactly-sparse "
            "evaluation — recall of the nearest bin stays high, but the "
            "energy captured by k on-grid coefficients drops toward the "
            "half-bin worst case (the known limitation of on-grid sparse "
            "recovery; off-grid variants are future work)",
        ),
    )


def run_ext_exact(
    sizes: list[int] | None = None,
    k: int = 100,
    *,
    seed: int = 23,
) -> ExperimentResult:
    """sFFT-3.0-style exactly-sparse transform vs the windowed pipeline.

    The paper's reference [3] locates coefficients by *phase decoding* on
    one-sample-shifted buckets, replacing the candidate-region voting
    entirely.  Functional comparison: samples touched and wall-clock of
    both algorithms on identical exactly-sparse inputs (same answers
    required).
    """
    import time as _time

    from ..core.exact import sfft_exact
    from ..core.plan import make_plan as _make_plan

    sizes = sizes or [1 << 14, 1 << 16, 1 << 18]
    rows = []
    for n in sizes:
        sig = make_sparse_signal(n, k, seed=seed + n % 97)
        plan = _make_plan(n, k, seed=seed + 1, **paper_kwargs(k))
        t0 = _time.perf_counter()
        res_w = sfft(sig.time, plan=plan)
        t_windowed = _time.perf_counter() - t0
        t0 = _time.perf_counter()
        res_e, stats = sfft_exact(sig.time, k, seed=seed + 2)
        t_exact = _time.perf_counter() - t0
        truth = set(sig.locations.tolist())
        ok_w = set(res_w.locations.tolist()) == truth
        ok_e = set(res_e.locations.tolist()) == truth
        windowed_samples = plan.filt.width * plan.loops
        rows.append(
            (
                f"2^{ilog2(n)}",
                f"{windowed_samples}",
                f"{stats.samples_touched}",
                format_ratio(windowed_samples / stats.samples_touched),
                format_seconds(t_windowed),
                format_seconds(t_exact),
                "yes" if ok_w else "NO",
                "yes" if ok_e else "NO",
            )
        )
    return ExperimentResult(
        experiment_id="ext-exact",
        title=f"Exactly-sparse phase-decoding transform vs windowed pipeline (k={k})",
        headers=(
            "n", "windowed samples", "exact samples", "sample ratio",
            "windowed time", "exact time", "windowed exact?", "phase exact?",
        ),
        rows=tuple(rows),
        notes=(
            "extension (paper ref [3], sFFT 3.0): phase-encoded location + "
            "peeling removes the voting machinery; noiseless inputs only — "
            "sample counts include its residual-refinement polish.  At "
            "small n the paper-profile windowed pipeline operates at k/B ~ "
            "20% where its recall dips below 1.0; the phase decoder's "
            "peeling is immune to that regime",
        ),
    )
