"""Tables I and II: the experimental test-bench configurations.

The paper's tables describe hardware; ours describe the *simulated*
hardware plus measured micro-benchmarks of the simulation itself (achieved
bandwidth, launch overhead, occupancy), so a reader can verify the machine
models embody the same testbed.
"""

from __future__ import annotations

from ..cpu.cpuspec import SANDY_BRIDGE_E5_2640
from ..cusim.device import KEPLER_K20X
from ..cusim.kernel import KernelSpec, estimate_kernel
from ..cusim.memory import AccessPattern, GlobalAccess
from .base import ExperimentResult

__all__ = ["run_table1", "run_table2"]


def run_table1() -> ExperimentResult:
    """Table I: the (simulated) GPU test-bench."""
    dev = KEPLER_K20X

    # Micro-benchmark the model: a big coalesced streaming kernel reports
    # the achieved bandwidth the cost model hands out.
    stream_kernel = KernelSpec(
        "microbench_stream",
        grid_blocks=4096,
        threads_per_block=256,
        accesses=(
            GlobalAccess(AccessPattern.COALESCED, 1 << 26, 16),
            GlobalAccess(AccessPattern.COALESCED, 1 << 26, 16, is_write=True),
        ),
    )
    t = estimate_kernel(stream_kernel, dev)
    achieved = 2 * (1 << 26) * 16 / t.memory_s / 1e9

    rows = (
        ("GPU Type", dev.name),
        ("CUDA Capability", "3.5"),
        ("CUDA cores / SMs", f"{dev.total_cores} cores / {dev.sm_count} SMs"),
        ("Processor Clock", f"{dev.clock_hz / 1e6:.0f} MHz"),
        ("Shared Memory / SM", f"{dev.shared_mem_per_sm // 1024} KB"),
        ("Global Memory", f"{dev.global_mem_bytes / 1024**3:.0f} GB"),
        ("Memory Bandwidth (peak)", f"{dev.peak_bandwidth / 1e9:.0f} GB/s"),
        ("Memory Bandwidth (achieved, modeled)", f"{achieved:.0f} GB/s"),
        ("Max concurrent kernels", str(dev.max_concurrent_kernels)),
        ("Kernel launch overhead", f"{dev.kernel_launch_overhead_s * 1e6:.0f} us"),
        ("Peak DP throughput", f"{dev.dp_flops / 1e12:.2f} TFLOP/s"),
        (
            "Occupancy @256 thr/blk",
            f"{dev.occupancy(256).fraction:.0%} ({dev.occupancy(256).limiter}-limited)",
        ),
    )
    return ExperimentResult(
        experiment_id="table1",
        title="GPU test-bench (simulated Tesla K20x, paper Table I)",
        headers=("property", "value"),
        rows=rows,
        notes=("paper Table I: Tesla K20x, 2688 cores / 14 SMs, 732 MHz, "
               "64 KB shared, 6 GB, 250 GB/s",),
    )


def run_table2() -> ExperimentResult:
    """Table II: the (simulated) CPU test-bench."""
    cpu = SANDY_BRIDGE_E5_2640
    rows = (
        ("Processor", cpu.name),
        ("Architecture", cpu.architecture),
        ("Cores", str(cpu.cores)),
        ("Processor Clock", f"{cpu.clock_hz / 1e9:.2f} GHz"),
        ("L1 Cache", f"{cpu.cores} x {cpu.l1d_bytes // 1024} KB D/I"),
        ("L2 Cache", f"{cpu.cores} x {cpu.l2_bytes // 1024} KB"),
        ("L3 Cache", f"{cpu.l3_bytes // 1024**2} MB"),
        ("DRAM", f"{cpu.dram_bytes // 1024**3} GB"),
        ("Peak bandwidth", f"{cpu.peak_bandwidth / 1e9:.1f} GB/s"),
        ("Sustained bandwidth (modeled)", f"{cpu.effective_bandwidth / 1e9:.1f} GB/s"),
        ("Peak DP throughput", f"{cpu.dp_flops / 1e9:.0f} GFLOP/s"),
        ("Random access rate (6 cores)", f"{cpu.random_access_rate / 1e6:.0f} M/s"),
    )
    return ExperimentResult(
        experiment_id="table2",
        title="CPU test-bench (simulated Xeon E5-2640, paper Table II)",
        headers=("property", "value"),
        rows=rows,
        notes=("paper Table II: Intel Xeon E5-2640, Sandy Bridge, 6 cores "
               "@ 2.50 GHz, 6x32 KB L1, 6x256 KB L2, 15 MB L3, 64 GB DRAM",),
    )
