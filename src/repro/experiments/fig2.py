"""Figure 2 experiments: per-step time distribution of the sparse FFT.

Figure 2(a) sweeps ``n`` at fixed ``k = 1000``; Figure 2(b) sweeps ``k`` at
fixed ``n``.  The paper's observations, which these rows must reproduce:

* permutation + filtering dominates and its share *grows* with ``n``;
* the estimation/recovery share *shrinks* with ``n`` (relative sparsity
  falls when ``k`` is fixed — the paper calls this counter-intuitive);
* with ``n`` fixed, perm+filter and estimation together dominate as ``k``
  grows.

Rows are modeled (PsFFT step model) by default so paper sizes are instant;
``measured=True`` wall-clocks the real CPU pipeline instead (cap ``sizes``
around 2^20 for that).  Both use the reference implementation's
location/estimation loop split (``loc_loops=3`` of 6) — the code the paper
actually profiled — whereas the Figure 5 pipelines vote in every loop.
"""

from __future__ import annotations

from ..analysis.profiling import measure_breakdown, modeled_breakdown
from ..utils.modmath import ilog2
from ..utils.tables import format_seconds
from .base import ExperimentResult, paper_kwargs

__all__ = ["run_fig2a", "run_fig2b"]

_STEPS = ("perm_filter", "bucket_fft", "cutoff", "recovery", "estimation")


def _rows_for(params: list[tuple[int, int]], measured: bool, label_n: bool):
    rows = []
    for n, k in params:
        # Figure 2 profiles the *serial reference implementation*, which
        # split its loops into location and estimation phases (voting in
        # only the first few); model the same structure here.
        kw = paper_kwargs(k, loc_loops=3)
        if measured:
            bd = measure_breakdown(n, k, **kw)
        else:
            bd = modeled_breakdown(n, k, **kw)
        shares = bd.shares()
        label = f"2^{ilog2(n)}" if label_n else k
        rows.append(
            (
                label,
                format_seconds(bd.total),
                *(f"{100 * shares.get(s, 0.0):.1f}%" for s in _STEPS),
            )
        )
    return rows


def run_fig2a(
    sizes: list[int] | None = None, k: int = 1000, *, measured: bool = False
) -> ExperimentResult:
    """Figure 2(a): step shares as ``n`` grows, ``k`` fixed."""
    sizes = sizes or [1 << p for p in range(18, 28)]
    rows = _rows_for([(n, k) for n in sizes], measured, label_n=True)
    return ExperimentResult(
        experiment_id="fig2a",
        title=f"sFFT step time distribution vs n (k={k}, "
        f"{'measured' if measured else 'modeled'})",
        headers=("n", "total", "perm+filter", "fft", "cutoff", "recovery", "estimation"),
        rows=tuple(rows),
        notes=(
            "paper shape: perm+filter share grows with n; estimation/"
            "recovery share falls (relative sparsity decreases)",
        ),
    )


def run_fig2b(
    n: int = 1 << 25, ks: list[int] | None = None, *, measured: bool = False
) -> ExperimentResult:
    """Figure 2(b): step shares as ``k`` grows, ``n`` fixed."""
    ks = ks or [500, 1000, 2000, 4000]
    rows = _rows_for([(n, k) for k in ks], measured, label_n=False)
    return ExperimentResult(
        experiment_id="fig2b",
        title=f"sFFT step time distribution vs k (n=2^{ilog2(n)}, "
        f"{'measured' if measured else 'modeled'})",
        headers=("k", "total", "perm+filter", "fft", "cutoff", "recovery", "estimation"),
        rows=tuple(rows),
        notes=(
            "paper shape: perm+filter and estimation steps gradually "
            "dominate as k grows",
        ),
    )
