"""Figure 5 experiments: the paper's headline performance and accuracy plots.

* 5(a) runtime vs ``n`` (five systems, k = 1000)
* 5(b) runtime vs ``k`` (n = 2^27)
* 5(c) speedup of cusFFT over cuFFT vs ``n``
* 5(d) speedup of cusFFT over parallel FFTW vs ``n``
* 5(e) speedup of cusFFT over PsFFT vs ``n``
* 5(f) L1 error per large coefficient vs ``k``

Performance rows come from the machine models (instant at paper scale);
5(f) runs the transform *functionally* and measures real numerical error —
its ``n`` defaults to 2^20 so the sweep completes in seconds (the error is
driven by the filter tolerance, not ``n``; the note records the paper's
n = 2^27 setting).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..analysis.accuracy import score_result
from ..core.plan import make_plan
from ..core.sfft import sfft
from ..core.variants import sfft_batch
from ..cpu.fftw import FftwPlan
from ..cpu.psfft import PsFFT
from ..cufft.plan import CufftPlan
from ..cusim.device import KEPLER_K20X
from ..gpu.config import BASELINE, OPTIMIZED
from ..gpu.cusfft import CusFFT
from ..signals.sparse import make_sparse_signal
from ..utils.modmath import ilog2
from ..utils.tables import format_ratio, format_seconds
from .base import PAPER_SWEEP_K, PAPER_SWEEP_N, ExperimentResult, paper_kwargs

__all__ = [
    "sweep_runtimes_vs_n",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "run_fig5d",
    "run_fig5e",
    "run_fig5f",
]


_SWEEP_CACHE: dict[tuple, list[dict]] = {}


def sweep_runtimes_vs_n(
    sizes: list[int] | None = None, k: int = 1000
) -> list[dict]:
    """Modeled runtimes of all five systems across ``sizes`` (shared by
    5(a)/(c)/(d)/(e); memoized — the four figures reuse one sweep)."""
    sizes = sizes or PAPER_SWEEP_N
    key = (tuple(sizes), k)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    rows = []
    for n in sizes:
        kw = paper_kwargs(k)
        rows.append(
            {
                "n": n,
                "cusfft_base": CusFFT.create(n, k, config=BASELINE, **kw).estimated_time(),
                "cusfft_opt": CusFFT.create(n, k, config=OPTIMIZED, **kw).estimated_time(),
                "cusfft_opt_h2d": CusFFT.create(
                    n, k, config=OPTIMIZED, h2d="filter", **kw
                ).estimated_time(),
                "cufft": CufftPlan(n).estimated_time(KEPLER_K20X),
                "fftw": FftwPlan(n).estimated_time(),
                "psfft": PsFFT.create(n, k, **kw).estimated_time(),
            }
        )
    _SWEEP_CACHE[key] = rows
    return rows


def run_fig5a(sizes: list[int] | None = None, k: int = 1000) -> ExperimentResult:
    """Figure 5(a): execution time vs signal size, k fixed."""
    data = sweep_runtimes_vs_n(sizes, k)
    rows = tuple(
        (
            f"2^{ilog2(d['n'])}",
            format_seconds(d["cusfft_base"]),
            format_seconds(d["cusfft_opt"]),
            format_seconds(d["cufft"]),
            format_seconds(d["fftw"]),
            format_seconds(d["psfft"]),
        )
        for d in data
    )
    return ExperimentResult(
        experiment_id="fig5a",
        title=f"Run time vs signal size (k={k})",
        headers=("n", "cusFFT-base", "cusFFT-opt", "cuFFT", "FFTW", "PsFFT"),
        rows=rows,
        series=(
            [d["n"] for d in data],
            {
                "cusFFT-base": [d["cusfft_base"] for d in data],
                "cusFFT-opt": [d["cusfft_opt"] for d in data],
                "cuFFT": [d["cufft"] for d in data],
                "FFTW": [d["fftw"] for d in data],
                "PsFFT": [d["psfft"] for d in data],
            },
        ),
        notes=(
            "modeled on the simulated K20x / Sandy Bridge (see DESIGN.md); "
            "paper shape: sFFT curves sub-linear, dense curves n*log n, "
            "crossover vs cuFFT near n=2^22",
        ),
    )


def run_fig5b(
    n: int = 1 << 27, ks: list[int] | None = None
) -> ExperimentResult:
    """Figure 5(b): execution time vs sparsity, n fixed."""
    ks = ks or PAPER_SWEEP_K
    rows = []
    for k in ks:
        kw = paper_kwargs(k)
        opt = CusFFT.create(n, k, config=OPTIMIZED, **kw).estimated_time()
        base = CusFFT.create(n, k, config=BASELINE, **kw).estimated_time()
        cufft = CufftPlan(n).estimated_time(KEPLER_K20X)
        fftw = FftwPlan(n).estimated_time()
        psfft = PsFFT.create(n, k, **kw).estimated_time()
        rows.append(
            (
                k,
                format_seconds(base),
                format_seconds(opt),
                format_seconds(cufft),
                format_seconds(fftw),
                format_seconds(psfft),
            )
        )
    return ExperimentResult(
        experiment_id="fig5b",
        title=f"Run time vs sparsity (n=2^{ilog2(n)})",
        headers=("k", "cusFFT-base", "cusFFT-opt", "cuFFT", "FFTW", "PsFFT"),
        rows=tuple(rows),
        notes=(
            "paper shape: dense transforms independent of k; sFFT grows "
            "slowly with k",
        ),
    )


def _speedup_result(
    exp_id: str, title: str, numerator: str, sizes: list[int] | None, k: int,
    against_h2d: bool = False,
) -> ExperimentResult:
    data = sweep_runtimes_vs_n(sizes, k)
    denom_key = "cusfft_opt_h2d" if against_h2d else "cusfft_opt"
    rows = tuple(
        (
            f"2^{ilog2(d['n'])}",
            format_ratio(d[numerator] / d["cusfft_base"]),
            format_ratio(d[numerator] / d[denom_key]),
        )
        for d in data
    )
    return ExperimentResult(
        experiment_id=exp_id,
        title=title,
        headers=("n", "speedup (baseline)", "speedup (optimized)"),
        rows=rows,
        notes=(),
        series=(
            [d["n"] for d in data],
            {
                "baseline": [d[numerator] / d["cusfft_base"] for d in data],
                "optimized": [d[numerator] / d[denom_key] for d in data],
            },
        ),
    )


def run_fig5c(sizes: list[int] | None = None, k: int = 1000) -> ExperimentResult:
    """Figure 5(c): cusFFT speedup over cuFFT vs n."""
    res = _speedup_result(
        "fig5c", f"Speedup over cuFFT (k={k})", "cufft", sizes, k
    )
    return replace(res, notes=(
        "paper: ~9x (baseline) and ~15x (optimized) at n=2^27, growing with n",
    ))


def run_fig5d(sizes: list[int] | None = None, k: int = 1000) -> ExperimentResult:
    """Figure 5(d): cusFFT speedup over parallel FFTW vs n."""
    res = _speedup_result(
        "fig5d", f"Speedup over parallel FFTW (k={k})", "fftw", sizes, k
    )
    return replace(res, notes=(
        "paper: 0.5x at n=2^18 rising to ~29x at n=2^27",
    ))


def run_fig5e(sizes: list[int] | None = None, k: int = 1000) -> ExperimentResult:
    """Figure 5(e): cusFFT speedup over PsFFT vs n.

    This comparison charges cusFFT the per-call filter upload (``w``
    complex taps H2D — the transfer a host-managed plan pays each call),
    which grows with the filter footprint and bends the speedup back down
    at the largest sizes — the paper's "data transfer time ... offsets the
    performance gains" effect.
    """
    res = _speedup_result(
        "fig5e", f"Speedup over PsFFT (k={k})", "psfft", sizes, k,
        against_h2d=True,
    )
    return replace(res, notes=(
        "paper: peak 6.6x at n=2^24, dipping at larger n (PCIe transfer), "
        ">4x average; optimized column includes the per-call filter H2D",
    ))


def run_fig5f(
    n: int = 1 << 20,
    ks: list[int] | None = None,
    *,
    seed: int = 2016,
    trials: int = 3,
) -> ExperimentResult:
    """Figure 5(f): average L1 error per large coefficient vs ``k``.

    Functional runs with real numerics (no modeling).  The error is set by
    the filter tolerance and estimation medians, independent of ``n``; the
    default n=2^20 keeps the sweep fast where the paper used n=2^27.
    """
    ks = ks or [100, 200, 400, 600, 800, 1000]
    rows = []
    for k in ks:
        # One plan per k, shared by every trial — the trials form a fixed-
        # plan stack that runs through the batched engine in a single call.
        plan = make_plan(n, k, seed=seed + 31 + k, **paper_kwargs(k))
        sigs = [
            make_sparse_signal(n, k, seed=seed + 17 * t + k)
            for t in range(trials)
        ]
        results = sfft_batch(
            np.stack([s.time for s in sigs]), plan=plan
        )
        errs, recalls = [], []
        for sig, res in zip(sigs, results):
            report = score_result(res, sig.locations, sig.values)
            # Match the paper's normalization: error relative to unit-
            # amplitude coefficients (ours have magnitude n).
            errs.append(report.l1_error / n)
            recalls.append(report.recall)
        rows.append(
            (
                k,
                f"{np.mean(errs):.3e}",
                f"{np.max(errs):.3e}",
                f"{np.mean(recalls):.4f}",
            )
        )
    return ExperimentResult(
        experiment_id="fig5f",
        title=f"L1 error per large coefficient vs k (n=2^{ilog2(n)}, {trials} trials)",
        headers=("k", "mean L1/coeff", "max L1/coeff", "recall"),
        rows=tuple(rows),
        notes=(
            "functional runs (real numerics); paper reports 'extremely "
            "small' errors at n=2^27 — the error level is set by the "
            "1e-6 filter tolerance, not by n",
        ),
    )
