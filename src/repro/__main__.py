"""Package-level demo: ``python -m repro [n_log2] [k]``.

Runs one end-to-end sparse transform (default n = 2^18, k = 64), checks it
against the dense FFT, and shows the simulated cusFFT kernel timeline —
a 10-second tour of what the library does.

Observability flags:

* ``--trace out.json`` — export the combined Chrome trace (CPU pipeline
  steps on one track, each simulated CUDA stream on its own) for
  ``chrome://tracing`` / https://ui.perfetto.dev;
* ``--json`` — emit a machine-readable ``repro.run/1`` record instead of
  the human text (one JSON document on stdout).

Exit codes: 0 success, 1 incomplete recovery, 2 malformed arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from . import make_sparse_signal, sfft
from .cusim import render_summary, render_timeline
from .gpu import OPTIMIZED, CusFFT
from .obs import MetricsRegistry, Tracer, make_run_record, render_obs_summary

#: n = 2^n_log2 must stay addressable and fit comfortably in host memory.
_MIN_LOG2, _MAX_LOG2 = 4, 26


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="End-to-end sparse FFT demo on the simulated GPU.",
    )
    parser.add_argument("n_log2", nargs="?", default=18, type=_log2_arg,
                        help=f"signal size exponent ({_MIN_LOG2}-{_MAX_LOG2},"
                             " default 18)")
    parser.add_argument("k", nargs="?", default=64, type=_sparsity_arg,
                        help="sparsity (>= 1, default 64)")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Chrome trace_event JSON file")
    parser.add_argument("--json", action="store_true",
                        help="print a repro.run/1 record instead of text")
    return parser


def _log2_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"n_log2 must be an integer, got {text!r}"
        ) from None
    if not _MIN_LOG2 <= value <= _MAX_LOG2:
        raise argparse.ArgumentTypeError(
            f"n_log2 must be in [{_MIN_LOG2}, {_MAX_LOG2}], got {value}"
        )
    return value


def _sparsity_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"k must be an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"k must be >= 1, got {value}")
    return value


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    try:
        args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    except SystemExit as exc:
        # argparse already printed the clear message; surface its code
        # (2 for usage errors) instead of letting SystemExit unwind.
        return int(exc.code or 0)
    logn, k = args.n_log2, args.k
    n = 1 << logn
    if k >= n:
        print(f"error: k={k} must be smaller than n=2^{logn}={n}",
              file=sys.stderr)
        return 2

    tracer = Tracer()
    metrics = MetricsRegistry()

    sig = make_sparse_signal(n, k, seed=2016)
    t0 = time.perf_counter()
    result = sfft(sig.time, k, seed=1, tracer=tracer, metrics=metrics)
    t_sparse = time.perf_counter() - t0
    t0 = time.perf_counter()
    dense = np.fft.fft(sig.time)
    t_dense = time.perf_counter() - t0

    ok = set(result.locations.tolist()) == set(sig.locations.tolist())
    err = np.abs(result.to_dense() - sig.dense_spectrum()).sum() / (k * n)

    run = CusFFT.create(n, k, config=OPTIMIZED).execute(
        sig.time, seed=1, tracer=tracer, metrics=metrics
    )

    if args.trace:
        try:
            tracer.export_chrome_trace(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace!r}: {exc}",
                  file=sys.stderr)
            return 2

    if args.json:
        record = make_run_record(
            "repro-demo",
            params={"n": n, "k": k, "n_log2": logn},
            tracer=tracer,
            registry=metrics,
            results={
                "recovery_exact": ok,
                "l1_error_per_coeff": float(err),
                "sfft_wall_s": t_sparse,
                "dense_fft_wall_s": t_dense,
                "modeled_gpu_s": run.modeled_time_s,
            },
        )
        print(json.dumps(record, indent=2))
        return 0 if ok else 1

    print(f"repro: sparse FFT of an exactly {k}-sparse signal, n = 2^{logn}")
    print(f"  recovery: {'exact' if ok else 'INCOMPLETE'}  "
          f"(L1/coeff = {err:.2e})")
    print(f"  wall-clock: sfft {t_sparse * 1e3:.1f} ms vs numpy.fft "
          f"{t_dense * 1e3:.1f} ms")
    print(f"\nsimulated cusFFT (Tesla K20x model): "
          f"{run.modeled_time_s * 1e3:.3f} ms")
    print(render_summary(run.report))
    print()
    print(render_timeline(run.report, max_rows=10))
    print()
    print(render_obs_summary(tracer, metrics, title="run summary"))
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
