"""Package-level demo: ``python -m repro [n_log2] [k]``.

Runs one end-to-end sparse transform (default n = 2^18, k = 64), checks it
against the dense FFT, and shows the simulated cusFFT kernel timeline —
a 10-second tour of what the library does.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from . import make_sparse_signal, sfft
from .cusim import render_summary, render_timeline
from .gpu import OPTIMIZED, cusfft


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = sys.argv[1:] if argv is None else argv
    logn = int(args[0]) if len(args) > 0 else 18
    k = int(args[1]) if len(args) > 1 else 64
    n = 1 << logn

    print(f"repro: sparse FFT of an exactly {k}-sparse signal, n = 2^{logn}")
    sig = make_sparse_signal(n, k, seed=2016)

    t0 = time.perf_counter()
    result = sfft(sig.time, k, seed=1)
    t_sparse = time.perf_counter() - t0
    t0 = time.perf_counter()
    dense = np.fft.fft(sig.time)
    t_dense = time.perf_counter() - t0

    ok = set(result.locations.tolist()) == set(sig.locations.tolist())
    err = np.abs(result.to_dense() - sig.dense_spectrum()).sum() / (k * n)
    print(f"  recovery: {'exact' if ok else 'INCOMPLETE'}  "
          f"(L1/coeff = {err:.2e})")
    print(f"  wall-clock: sfft {t_sparse * 1e3:.1f} ms vs numpy.fft "
          f"{t_dense * 1e3:.1f} ms")

    run = cusfft(sig.time, k, config=OPTIMIZED, seed=1)
    print(f"\nsimulated cusFFT (Tesla K20x model): "
          f"{run.modeled_time_s * 1e3:.3f} ms")
    print(render_summary(run.report))
    print()
    print(render_timeline(run.report, max_rows=10))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
