"""Package-level CLI: ``python -m repro [n_log2] [k]`` / ``python -m repro report``.

The default (demo) form runs one end-to-end sparse transform (default
n = 2^18, k = 64), checks it against the dense FFT, and shows the simulated
cusFFT kernel timeline — a 10-second tour of what the library does.

Observability flags:

* ``--trace out.json`` — export the combined Chrome trace (CPU pipeline
  steps on one track, each simulated CUDA stream on its own) for
  ``chrome://tracing`` / https://ui.perfetto.dev;
* ``--json`` — emit a machine-readable ``repro.run/1`` record instead of
  the human text (one JSON document on stdout), including a ``gate`` block
  judging this run against ``BENCH_BASELINE.json`` when one exists
  (``"baseline": null`` otherwise);
* ``--batch S`` — additionally push a stack of ``S`` fresh sparse signals
  through the batched execution engine (:func:`repro.core.sfft_batch`)
  under one shared plan and report the amortized per-transform time next
  to the single-call time;
* ``--workers N`` — run the batch leg through the sharded pipelined
  executor (:class:`repro.core.ShardedExecutor`) with ``N`` workers
  (default 1: the serial fused engine);
* ``--executor-mode thread|process`` — pick the executor's execution
  mode for the batch leg: ``thread`` (default) or ``process``, the
  shared-memory process pool that scales Python-level stage work past
  the GIL (see ``docs/parallelism.md``);
* ``--fft-backend NAME`` — select the process-wide FFT backend
  (``numpy``/``scipy``/``pyfftw``; see :mod:`repro.core.fft_backend`).
  The *resolved* backend (after optional-dependency fallback) is echoed
  in text output and in the ``repro.run/1`` record's params.

``python -m repro report`` is the terminal dashboard over the committed
performance artifacts: trajectory sparklines per experiment
(``BENCH_TRAJECTORY.json``), the gate verdict of the latest run records
against the baseline, and the per-step self-time attribution of the most
recent record (``--flame PATH`` additionally writes a flamegraph
collapsed-stack file).

``python -m repro why`` answers the question ``report`` raises: *why* is
the run slow?  It computes the critical path of the newest run record
(per-stage path share + Amdahl what-if projections), attributes any
confirmed regression against the baseline to the span deltas that explain
it (``repro.attrib/1`` records; ``--json`` emits them as JSONL), diffs
two arbitrary records with ``--diff A B``, and writes differential
collapsed-stack flamegraphs with ``--flame PATH``.

``python -m repro top`` is the *live* counterpart: it drives a small
batched workload through the sharded executor on a background thread and
renders a refreshing ASCII dashboard (queue wait and shard wall
percentiles, plan-cache hit rate and bytes, traced memory, flight-recorder
drops) from the global registry — ``--frames``/``--interval`` bound the
session, ``--dump PATH`` writes the flight recorder's ``repro.run/1``
snapshot on exit.

``python -m repro export`` runs the same workload briefly and streams the
registry out: ``--prometheus`` prints text-exposition format to stdout,
``--telemetry PATH`` appends ``repro.telemetry/1`` JSONL records under the
daemon flusher while the workload runs.

Exit codes: 0 success, 1 incomplete recovery (demo), 2 malformed
arguments / unreadable artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from . import make_sparse_signal, sfft
from .cusim import render_summary, render_timeline
from .errors import ParameterError
from .gpu import OPTIMIZED, CusFFT
from .obs import (
    MetricsRegistry,
    Tracer,
    attribute_run,
    attribute_verdict,
    collapsed_stacks,
    compare_to_baseline,
    critical_path,
    diff_attrib_record,
    diff_collapsed_stacks,
    make_run_record,
    render_attrib_record,
    render_attribution,
    render_critical_path,
    render_obs_summary,
    render_trajectory_dashboard,
    render_verdict,
    validate_attrib_record,
    validate_baseline,
    validate_run_record,
    validate_trajectory,
)

#: n = 2^n_log2 must stay addressable and fit comfortably in host memory.
_MIN_LOG2, _MAX_LOG2 = 4, 26


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="End-to-end sparse FFT demo on the simulated GPU.",
    )
    parser.add_argument("n_log2", nargs="?", default=18, type=_log2_arg,
                        help=f"signal size exponent ({_MIN_LOG2}-{_MAX_LOG2},"
                             " default 18)")
    parser.add_argument("k", nargs="?", default=64, type=_sparsity_arg,
                        help="sparsity (>= 1, default 64)")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Chrome trace_event JSON file")
    parser.add_argument("--json", action="store_true",
                        help="print a repro.run/1 record instead of text")
    parser.add_argument("--batch", metavar="S", default=1, type=_batch_arg,
                        help="also run a stack of S signals through the "
                             "batched engine under one plan (default: off)")
    parser.add_argument("--workers", metavar="N", default=1,
                        type=_workers_arg,
                        help="drive the batch leg through the sharded "
                             "executor with N workers (default: 1, "
                             "the serial fused engine)")
    parser.add_argument("--executor-mode", metavar="MODE", default=None,
                        choices=("thread", "process"),
                        help="sharded-executor mode for the batch leg: "
                             "'thread' (GIL-bound pool) or 'process' "
                             "(shared-memory process pool; default: "
                             "$REPRO_EXECUTOR_MODE or thread)")
    from .core.fft_backend import registered_backends

    parser.add_argument("--fft-backend", metavar="NAME", default=None,
                        choices=registered_backends(),
                        help="FFT backend for every dense FFT "
                             f"({', '.join(registered_backends())}; "
                             "default: $REPRO_FFT_BACKEND or numpy)")
    return parser


def _log2_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"n_log2 must be an integer, got {text!r}"
        ) from None
    if not _MIN_LOG2 <= value <= _MAX_LOG2:
        raise argparse.ArgumentTypeError(
            f"n_log2 must be in [{_MIN_LOG2}, {_MAX_LOG2}], got {value}"
        )
    return value


def _batch_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"batch size must be an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {value}"
        )
    return value


def _workers_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, got {value}"
        )
    return value


def _sparsity_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"k must be an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"k must be >= 1, got {value}")
    return value


def _load_json(path: str, what: str):
    """Load a JSON artifact; returns (doc, error message or None)."""
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh), None
    except json.JSONDecodeError as exc:
        return None, f"error: {what} {path!r} is not JSON ({exc})"
    except OSError as exc:
        return None, f"error: cannot read {what} {path!r}: {exc}"


def _gate_block(record: dict, baseline_path: str | None = None) -> dict:
    """The ``gate`` block of a ``--json`` demo record.

    ``{"baseline": null}`` when no baseline document exists; otherwise the
    verdict of judging this one record against it.
    """
    path = baseline_path or os.environ.get(
        "REPRO_BENCH_BASELINE", "BENCH_BASELINE.json"
    )
    if not os.path.exists(path):
        return {"baseline": None}
    doc, err = _load_json(path, "baseline")
    if doc is None or validate_baseline(doc):
        return {"baseline": path, "error": err or "invalid baseline document"}
    verdict = compare_to_baseline(doc, [record])
    return {"baseline": path, **verdict.to_json()}


def _build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Terminal dashboard over the performance artifacts.",
    )
    parser.add_argument("--runs", default="BENCH_RUNS.jsonl",
                        help="run-record JSONL to judge and attribute")
    parser.add_argument("--baseline", default=None,
                        help="baseline document (default: "
                             "$REPRO_BENCH_BASELINE or BENCH_BASELINE.json)")
    parser.add_argument("--trajectory", default="BENCH_TRAJECTORY.json")
    parser.add_argument("--flame", metavar="PATH",
                        help="write flamegraph collapsed stacks of the "
                             "latest record's spans")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report document")
    return parser


def report_main(argv: list[str]) -> int:
    """``python -m repro report`` — trajectory + gate + attribution views."""
    parser = _build_report_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    baseline_path = args.baseline or os.environ.get(
        "REPRO_BENCH_BASELINE", "BENCH_BASELINE.json"
    )
    baseline = trajectory = None
    if os.path.exists(baseline_path):
        baseline, err = _load_json(baseline_path, "baseline")
        if baseline is None:
            print(err, file=sys.stderr)
            return 2
        problems = validate_baseline(baseline)
        if problems:
            print(f"error: invalid baseline {baseline_path!r}: "
                  f"{problems[0]}", file=sys.stderr)
            return 2
    if os.path.exists(args.trajectory):
        trajectory, err = _load_json(args.trajectory, "trajectory")
        if trajectory is None:
            print(err, file=sys.stderr)
            return 2
        problems = validate_trajectory(trajectory)
        if problems:
            print(f"error: invalid trajectory {args.trajectory!r}: "
                  f"{problems[0]}", file=sys.stderr)
            return 2

    records: list[dict] = []
    if os.path.exists(args.runs):
        with open(args.runs, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    print(f"error: {args.runs}:{lineno}: not JSON ({exc})",
                          file=sys.stderr)
                    return 2

    verdict = None
    if baseline is not None and records:
        verdict = compare_to_baseline(baseline, records)

    latest = records[-1] if records else None
    flame_lines: list[str] = []
    if latest is not None:
        flame_lines = collapsed_stacks(latest.get("spans") or [])
    if args.flame:
        if not flame_lines:
            print("error: no spans to export for --flame", file=sys.stderr)
            return 2
        try:
            with open(args.flame, "w", encoding="utf-8") as fh:
                fh.write("\n".join(flame_lines) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.flame!r}: {exc}",
                  file=sys.stderr)
            return 2

    if args.as_json:
        doc = {
            "schema": "repro.report/1",
            "trajectory_points": len((trajectory or {}).get("points", [])),
            "runs": len(records),
            "verdict": verdict.to_json() if verdict is not None else None,
            "collapsed_stacks": flame_lines,
        }
        print(json.dumps(doc, indent=2))
        return 0

    sections: list[str] = []
    if trajectory is not None:
        sections.append(
            render_trajectory_dashboard(trajectory, baseline=baseline)
        )
    if verdict is not None:
        sections.append(render_verdict(verdict))
    if latest is not None:
        key_meta = latest.get("name", "?")
        entry = None
        if baseline is not None:
            from .obs.regress import run_key

            key, _ = run_key(latest)
            entry = baseline.get("entries", {}).get(key)
        sections.append(render_attribution(
            latest.get("spans") or [],
            metrics=latest.get("metrics") or {},
            baseline_entry=entry,
            title=f"per-step attribution: {key_meta}",
        ))
        latest_spans = latest.get("spans") or []
        if latest_spans:
            sections.append(render_critical_path(
                critical_path(latest_spans),
                title=f"critical path: {key_meta}",
            ))
        try:
            summary = attribute_run(baseline, records)
        except ParameterError:  # latest record has no extractable metrics
            summary = None
        if summary is not None:
            sections.append(render_attrib_record(summary))
            sections.append("(deeper: python -m repro why [--flame PATH])")
    if not sections:
        print("(no observability artifacts found — run the benchmarks, "
              "then scripts/bench_gate.py)")
        return 0
    print("\n\n".join(sections))
    if args.flame:
        print(f"\ncollapsed stacks written to {args.flame} "
              f"(feed to flamegraph.pl or speedscope)")
    return 0


# --------------------------------------------------------------------------
# why-analysis: `python -m repro why`
# --------------------------------------------------------------------------

def _build_why_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro why",
        description="Why is it slow? Critical path, differential profiles, "
                    "and regression attribution over run records.",
    )
    parser.add_argument("--runs", default="BENCH_RUNS.jsonl",
                        help="run-record JSONL to analyze")
    parser.add_argument("--baseline", default=None,
                        help="baseline document (default: "
                             "$REPRO_BENCH_BASELINE or BENCH_BASELINE.json)")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                        help="compare two record files instead of gating "
                             "(each: repro.run/1 JSONL or single record; "
                             "the newest record of each file is used)")
    parser.add_argument("--top", default=5, type=int, metavar="N",
                        help="contributors to rank per record (default 5)")
    parser.add_argument("--what-if", default=2.0, type=float,
                        dest="what_if", metavar="F",
                        help="hypothetical per-stage speedup factor for "
                             "projections (default 2.0)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit repro.attrib/1 records as JSONL")
    parser.add_argument("--flame", metavar="PATH",
                        help="write a differential collapsed-stack file "
                             "(stack base_usec fresh_usec per line)")
    return parser


def _read_record_file(path: str) -> tuple[list[dict] | None, str | None]:
    """Records from a JSONL file or a single-record JSON file."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return None, f"error: cannot read {path!r}: {exc}"
    try:
        doc = json.loads(text)
        records = [doc] if isinstance(doc, dict) else doc
    except json.JSONDecodeError:
        records = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                return None, f"error: {path}:{lineno}: not JSON ({exc})"
    if not isinstance(records, list) or not records:
        return None, f"error: {path!r} holds no run records"
    for i, record in enumerate(records):
        problems = validate_run_record(record)
        if problems:
            return None, f"error: {path!r} record {i}: {problems[0]}"
    return records, None


def why_main(argv: list[str]) -> int:
    """``python -m repro why`` — attribution over recorded runs."""
    parser = _build_why_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.top < 1 or args.what_if <= 0:
        print("error: --top must be >= 1 and --what-if > 0",
              file=sys.stderr)
        return 2

    flame_sides: tuple[list, list] | None = None
    if args.diff is not None:
        sides = []
        for path in args.diff:
            records, err = _read_record_file(path)
            if records is None:
                print(err, file=sys.stderr)
                return 2
            sides.append(records[-1])
        rec_a, rec_b = sides
        attribs = [diff_attrib_record(
            rec_a, rec_b, top_n=args.top, what_if_factor=args.what_if,
        )]
        fresh_spans = rec_b.get("spans") or []
        flame_sides = (rec_a.get("spans") or [], fresh_spans)
    else:
        if not os.path.exists(args.runs):
            print(f"error: no runs file at {args.runs!r} — run the "
                  f"benchmarks (or `python -m repro --json`) first",
                  file=sys.stderr)
            return 2
        records, err = _read_record_file(args.runs)
        if records is None:
            print(err, file=sys.stderr)
            return 2

        baseline = None
        baseline_path = args.baseline or os.environ.get(
            "REPRO_BENCH_BASELINE", "BENCH_BASELINE.json"
        )
        if os.path.exists(baseline_path):
            baseline, err = _load_json(baseline_path, "baseline")
            if baseline is None:
                print(err, file=sys.stderr)
                return 2
            problems = validate_baseline(baseline)
            if problems:
                print(f"error: invalid baseline {baseline_path!r}: "
                      f"{problems[0]}", file=sys.stderr)
                return 2
        elif args.baseline is not None:
            print(f"error: no baseline at {baseline_path!r}",
                  file=sys.stderr)
            return 2

        verdict = (compare_to_baseline(baseline, records)
                   if baseline is not None else None)
        if verdict is not None and verdict.status == "regression":
            attribs = attribute_verdict(
                baseline, records, verdict,
                top_n=args.top, what_if_factor=args.what_if,
            )
        else:
            attribs = [attribute_run(
                baseline, records,
                top_n=args.top, what_if_factor=args.what_if,
            )]
        from .obs.regress import run_key

        latest_key = attribs[-1]["key"]
        same_key = [r for r in records if run_key(r)[0] == latest_key]
        fresh_spans = (same_key[-1].get("spans") or []) if same_key else []
        if len(same_key) >= 2:
            flame_sides = (same_key[0].get("spans") or [], fresh_spans)

    for record in attribs:
        problems = validate_attrib_record(record)
        if problems:  # a bug in the attributor, not in the input data
            print(f"error: internal: invalid attrib record: {problems[0]}",
                  file=sys.stderr)
            return 2

    if args.flame:
        if flame_sides is None:
            print("error: --flame needs two runs to diff (one more record "
                  "under the same key, or --diff A B)", file=sys.stderr)
            return 2
        lines = diff_collapsed_stacks(*flame_sides)
        try:
            with open(args.flame, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.flame!r}: {exc}",
                  file=sys.stderr)
            return 2

    if args.as_json:
        for record in attribs:
            print(json.dumps(record, separators=(",", ":")))
        return 0

    blocks = [render_attrib_record(record) for record in attribs]
    if fresh_spans:
        blocks.append(render_critical_path(
            critical_path(fresh_spans), what_if_factor=args.what_if,
        ))
    print("\n\n".join(blocks))
    if args.flame:
        print(f"\ndifferential collapsed stacks written to {args.flame} "
              f"(feed to flamegraph.pl --negate or difffolded workflows)")
    return 0


# --------------------------------------------------------------------------
# live telemetry: `python -m repro top` / `python -m repro export`
# --------------------------------------------------------------------------

def _drive_telemetry_workload(
    stop,
    *,
    tracer=None,
    n_log2: int = 12,
    k: int = 8,
    batch: int = 8,
    workers: int = 2,
) -> int:
    """Small batched transforms in a loop until ``stop`` is set.

    Each iteration pulls the plan through the global plan cache (cache
    traffic + byte gauges), runs the sharded executor against the global
    registry (executor family), and lands its spans on ``tracer`` (flight
    recorder feed).  Returns the number of iterations completed.
    """
    from .core import ShardedExecutor, cached_plan

    n = 1 << n_log2
    signals = [
        make_sparse_signal(n, k, seed=9000 + 17 * s) for s in range(batch)
    ]
    stack = np.stack([s.time for s in signals])
    executor = ShardedExecutor(workers=workers)
    iterations = 0
    while not stop.is_set():
        plan = cached_plan(n, k, seed=1)
        executor.run(stack, plan, tracer=tracer)
        iterations += 1
    return iterations


def _build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live ASCII telemetry dashboard over a demo workload.",
    )
    parser.add_argument("--frames", default=10, type=int,
                        help="dashboard refreshes before exiting "
                             "(default 10)")
    parser.add_argument("--interval", default=0.5, type=float,
                        help="seconds between refreshes (default 0.5)")
    parser.add_argument("--workers", default=2, type=_workers_arg,
                        help="executor worker threads (default 2)")
    parser.add_argument("--capacity", default=4096, type=int,
                        help="flight-recorder ring capacity (default 4096)")
    parser.add_argument("--dump", metavar="PATH",
                        help="write the flight recorder's repro.run/1 "
                             "snapshot on exit")
    return parser


def top_main(argv: list[str]) -> int:
    """``python -m repro top`` — live dashboard of the global registry."""
    import threading

    from .obs import (
        FlightRecorder,
        MemorySampler,
        Tracer as _Tracer,
        dashboard_sample,
        global_registry,
        render_dashboard,
    )

    parser = _build_top_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.frames < 1 or args.interval <= 0 or args.capacity < 1:
        print("error: --frames/--capacity must be >= 1 and --interval > 0",
              file=sys.stderr)
        return 2

    registry = global_registry()
    tracer = _Tracer()
    recorder = FlightRecorder(args.capacity).attach(
        tracer=tracer, registry=registry
    )
    sampler = MemorySampler(registry, interval_s=max(0.05, args.interval / 2))
    stop = threading.Event()
    worker = threading.Thread(
        target=_drive_telemetry_workload,
        args=(stop,),
        kwargs={"tracer": tracer, "workers": args.workers},
        name="repro-top-workload",
        daemon=True,
    )

    history: list[dict] = []
    try:
        sampler.start()
        worker.start()
        for frame in range(args.frames):
            time.sleep(args.interval)
            history.append(dashboard_sample(registry))
            text = render_dashboard(history, title="live telemetry")
            if sys.stdout.isatty():
                print(f"\x1b[2J\x1b[H{text}", flush=True)
            else:
                print(text, end="\n\n", flush=True)
    except KeyboardInterrupt:
        pass
    except BrokenPipeError:
        # `repro top | head`-style consumers close the pipe mid-stream;
        # swap stdout for /dev/null so teardown (and --dump) still runs.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
    finally:
        stop.set()
        worker.join(timeout=10.0)
        sampler.stop()
        recorder.detach()

    if args.dump:
        try:
            with open(args.dump, "w", encoding="utf-8") as fh:
                json.dump(recorder.dump(), fh, separators=(",", ":"))
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.dump!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"flight snapshot written to {args.dump} "
              f"({len(recorder)} event(s), {recorder.dropped} dropped)")
    return 0


def _build_export_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro export",
        description="Stream the metrics registry out of a short live run.",
    )
    parser.add_argument("--prometheus", action="store_true",
                        help="print Prometheus text exposition to stdout")
    parser.add_argument("--telemetry", metavar="PATH",
                        help="append repro.telemetry/1 JSONL records under "
                             "the daemon flusher while the workload runs")
    parser.add_argument("--seconds", default=1.0, type=float,
                        help="workload duration (default 1.0)")
    parser.add_argument("--interval", default=0.2, type=float,
                        help="flusher period in seconds (default 0.2)")
    parser.add_argument("--workers", default=2, type=_workers_arg,
                        help="executor worker threads (default 2)")
    return parser


def export_main(argv: list[str]) -> int:
    """``python -m repro export`` — Prometheus text / telemetry JSONL."""
    import threading

    from .obs import (
        FlightRecorder,
        MemorySampler,
        TelemetryFlusher,
        Tracer as _Tracer,
        global_registry,
        render_prometheus,
    )

    parser = _build_export_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if not args.prometheus and not args.telemetry:
        print("error: nothing to export — pass --prometheus and/or "
              "--telemetry PATH", file=sys.stderr)
        return 2
    if args.seconds <= 0 or args.interval <= 0:
        print("error: --seconds and --interval must be > 0",
              file=sys.stderr)
        return 2

    registry = global_registry()
    tracer = _Tracer()
    recorder = FlightRecorder().attach(tracer=tracer, registry=registry)
    sampler = MemorySampler(registry)
    flusher = None
    if args.telemetry:
        flusher = TelemetryFlusher(
            args.telemetry, registry,
            interval_s=args.interval, recorder=recorder,
        )

    stop = threading.Event()
    worker = threading.Thread(
        target=_drive_telemetry_workload,
        args=(stop,),
        kwargs={"tracer": tracer, "workers": args.workers},
        name="repro-export-workload",
        daemon=True,
    )
    try:
        sampler.start()
        if flusher is not None:
            flusher.start()
        worker.start()
        time.sleep(args.seconds)
    finally:
        stop.set()
        worker.join(timeout=10.0)
        if flusher is not None:
            flusher.stop()
        sampler.stop()
        recorder.detach()

    if args.telemetry:
        print(f"telemetry: {flusher.seq} record(s) appended to "
              f"{args.telemetry}", file=sys.stderr)
    if args.prometheus:
        print(render_prometheus(registry), end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["report"]:
        return report_main(argv[1:])
    if argv[:1] == ["why"]:
        return why_main(argv[1:])
    if argv[:1] == ["top"]:
        return top_main(argv[1:])
    if argv[:1] == ["export"]:
        return export_main(argv[1:])
    if argv[:1] == ["lint"]:
        from .analysis.staticcheck.cli import lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["tune"]:
        from .tune.cli import tune_main

        return tune_main(argv[1:])
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse already printed the clear message; surface its code
        # (2 for usage errors) instead of letting SystemExit unwind.
        return int(exc.code or 0)
    logn, k = args.n_log2, args.k
    n = 1 << logn
    if k >= n:
        print(f"error: k={k} must be smaller than n=2^{logn}={n}",
              file=sys.stderr)
        return 2

    from .core.fft_backend import default_backend_name, set_default_backend

    # Resolve the FFT backend once for the whole process: the resolved name
    # (after optional-dependency fallback) is what gets echoed everywhere.
    if args.fft_backend is not None:
        fft_backend = set_default_backend(args.fft_backend)
    else:
        fft_backend = default_backend_name()

    tracer = Tracer()
    metrics = MetricsRegistry()

    # Echo where the transform's configuration came from (explicit kwargs,
    # the wisdom store, environment overrides, or paper defaults) so a
    # `--json` record proves wisdom consumption end to end.
    from .core.params import resolve_sfft_config

    demo_resolved = resolve_sfft_config(n, k)

    sig = make_sparse_signal(n, k, seed=2016)
    t0 = time.perf_counter()
    result = sfft(sig.time, k, seed=1, tracer=tracer, metrics=metrics)
    t_sparse = time.perf_counter() - t0
    t0 = time.perf_counter()
    # The demo times sFFT *against* numpy's FFT head-to-head on purpose.
    dense = np.fft.fft(sig.time)  # reprolint: ignore[fft-registry-bypass]
    t_dense = time.perf_counter() - t0

    ok = set(result.locations.tolist()) == set(sig.locations.tolist())
    err = np.abs(result.to_dense() - sig.dense_spectrum()).sum() / (k * n)

    # Optional batched-engine leg: S fresh signals, one shared plan, one
    # sfft_batch call — amortized per-transform time vs the single call.
    batch_stats = None
    if args.batch > 1:
        from .core import ShardedExecutor, make_plan, sfft_batch

        S = args.batch
        plan = make_plan(n, k, seed=1)
        batch_sigs = [
            make_sparse_signal(n, k, seed=2016 + 101 * (t + 1))
            for t in range(S)
        ]
        stack = np.stack([s.time for s in batch_sigs])
        executor = None
        if args.workers > 1 or args.executor_mode is not None:
            executor = ShardedExecutor(
                workers=args.workers, mode=args.executor_mode
            )
        t0 = time.perf_counter()
        batch_results = sfft_batch(
            stack, plan=plan, executor=executor,
        )
        t_batch = time.perf_counter() - t0
        batch_ok = all(
            set(r.locations.tolist()) == set(s.locations.tolist())
            for r, s in zip(batch_results, batch_sigs)
        )
        batch_stats = {
            "size": S,
            "workers": args.workers,
            "mode": executor.mode if executor is not None else "serial",
            "wall_s": t_batch,
            "amortized_s": t_batch / S,
            "exact": batch_ok,
        }

    run = CusFFT.create(n, k, config=OPTIMIZED).execute(
        sig.time, seed=1, tracer=tracer, metrics=metrics
    )

    if args.trace:
        try:
            tracer.export_chrome_trace(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace!r}: {exc}",
                  file=sys.stderr)
            return 2

    if args.json:
        record = make_run_record(
            "repro-demo",
            params={"n": n, "k": k, "n_log2": logn,
                    "fft_backend": fft_backend, "workers": args.workers,
                    "config_source": demo_resolved.source,
                    **({"wisdom_class": demo_resolved.class_key}
                       if demo_resolved.class_key is not None else {}),
                    **({"executor_mode": batch_stats["mode"]}
                       if batch_stats is not None else {})},
            tracer=tracer,
            registry=metrics,
            results={
                "recovery_exact": ok,
                "l1_error_per_coeff": float(err),
                "sfft_wall_s": t_sparse,
                "dense_fft_wall_s": t_dense,
                "modeled_gpu_s": run.modeled_time_s,
                **(
                    {
                        "batch_size_x": batch_stats["size"],
                        "batch_exact": batch_stats["exact"],
                        "batch_wall_s": batch_stats["wall_s"],
                        "batch_amortized_wall_s": batch_stats["amortized_s"],
                    }
                    if batch_stats is not None
                    else {}
                ),
            },
        )
        # One document per run: downstream tooling gets the gate verdict
        # (or the explicit absence of a baseline) alongside the record.
        record["gate"] = _gate_block(record)
        print(json.dumps(record, indent=2))
        return 0 if ok else 1

    print(f"repro: sparse FFT of an exactly {k}-sparse signal, n = 2^{logn}")
    print(f"  fft backend: {fft_backend}")
    print(f"  config source: {demo_resolved.source}"
          + (f" ({demo_resolved.class_key})"
             if demo_resolved.class_key is not None else ""))
    print(f"  recovery: {'exact' if ok else 'INCOMPLETE'}  "
          f"(L1/coeff = {err:.2e})")
    print(f"  wall-clock: sfft {t_sparse * 1e3:.1f} ms vs numpy.fft "
          f"{t_dense * 1e3:.1f} ms")
    if batch_stats is not None:
        print(f"  batched engine: {batch_stats['size']} signals in "
              f"{batch_stats['wall_s'] * 1e3:.1f} ms "
              f"({batch_stats['amortized_s'] * 1e3:.2f} ms/transform, "
              f"{batch_stats['workers']} worker(s), "
              f"{batch_stats['mode']} mode, "
              f"recovery {'exact' if batch_stats['exact'] else 'INCOMPLETE'})")
    print(f"\nsimulated cusFFT (Tesla K20x model): "
          f"{run.modeled_time_s * 1e3:.3f} ms")
    print(render_summary(run.report))
    print()
    print(render_timeline(run.report, max_rows=10))
    print()
    print(render_obs_summary(tracer, metrics, title="run summary"))
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
