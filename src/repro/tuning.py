"""Model-driven parameter autotuning.

The reference sFFT implementation exposes a ``Bcst`` knob that its authors
hand-tuned per problem size; the paper inherits those choices.  Because this
reproduction prices every candidate configuration analytically (the machine
models evaluate in microseconds), tuning becomes a cheap search instead of a
measurement campaign: :func:`tune_parameters` sweeps bucket counts (and
optionally loop counts) and returns the parameter set minimizing the modeled
end-to-end time on the requested executor.

This also removes the power-of-two "sawtooth": ``B`` must be a power of two,
so formula-derived bucket counts alternate between slightly-too-small and
slightly-too-large as ``n`` doubles; the tuner picks the better neighbour
per size, exactly as the authors' per-size constants did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .core.parameters import SfftParameters, derive_parameters
from .cpu.cpuspec import SANDY_BRIDGE_E5_2640, CpuSpec
from .cpu.psfft import PsFFT
from .cusim.device import KEPLER_K20X, DeviceSpec
from .errors import ParameterError
from .gpu.config import OPTIMIZED, CusfftConfig
from .gpu.cusfft import CusFFT
from .utils.modmath import next_power_of_two
from .utils.validation import check_positive_int, check_power_of_two

__all__ = ["TuningResult", "candidate_bucket_counts", "tune_parameters"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning sweep.

    Attributes
    ----------
    params:
        The winning parameter set.
    modeled_time_s:
        Its modeled execution time.
    trials:
        Every ``(B, loops, modeled_time_s)`` evaluated, best first.
    """

    params: SfftParameters
    modeled_time_s: float
    trials: tuple[tuple[int, int, float], ...]


def candidate_bucket_counts(n: int, k: int, *, span: int = 2) -> list[int]:
    """Power-of-two bucket counts around the paper's ``sqrt(n*k/log2 n)``.

    Returns the formula value's power-of-two neighbourhood (``span`` steps
    each way), clipped to ``[4, n/2]`` and to counts that keep at least one
    bucket per candidate coefficient.
    """
    n = check_power_of_two(n, "n")
    k = check_positive_int(k, "k")
    base = derive_parameters(n, k, bucket_constant=1.0).B
    out = []
    for shift in range(-span, span + 1):
        b = base * (2**shift) if shift >= 0 else base // (2**-shift)
        b = int(b)
        if b < 4 or b > n // 2:
            continue
        if b < next_power_of_two(k):  # fewer buckets than coefficients
            continue
        out.append(b)
    if not out:
        out = [base]
    return sorted(set(out))


def tune_parameters(
    n: int,
    k: int,
    *,
    executor: str = "gpu",
    config: CusfftConfig = OPTIMIZED,
    device: DeviceSpec = KEPLER_K20X,
    cpu: CpuSpec = SANDY_BRIDGE_E5_2640,
    loops_candidates: tuple[int, ...] | None = None,
    span: int = 2,
    **param_overrides,
) -> TuningResult:
    """Pick the modeled-fastest parameters for ``(n, k)``.

    Parameters
    ----------
    executor:
        ``"gpu"`` tunes for cusFFT on ``device``; ``"cpu"`` for PsFFT on
        ``cpu``.
    loops_candidates:
        Loop counts to consider (more loops = more robustness, more time;
        the default keeps the paper's 6, or a plain ``loops=`` override).
    span:
        Bucket-count neighbourhood half-width (powers of two).
    param_overrides:
        Forwarded to :func:`~repro.core.parameters.derive_parameters`
        (e.g. ``profile="fast"``, ``select_count=k``).
    """
    if executor not in ("gpu", "cpu"):
        raise ParameterError(f"executor must be gpu or cpu, got {executor!r}")
    # A plain `loops=` override is the single candidate unless the caller
    # asked for a sweep.
    override_loops = param_overrides.pop("loops", None)
    if loops_candidates is None:
        loops_candidates = (override_loops,) if override_loops is not None else (6,)

    def price(params: SfftParameters) -> float:
        if executor == "gpu":
            return CusFFT(params=params, config=config, device=device).estimated_time()
        return PsFFT(params=params, cpu=cpu).estimated_time()

    trials: list[tuple[int, int, float]] = []
    best: tuple[float, SfftParameters] | None = None
    for loops in loops_candidates:
        for B in candidate_bucket_counts(n, k, span=span):
            try:
                params = derive_parameters(
                    n, k, B=B, loops=loops, **param_overrides
                )
            except ParameterError:
                continue
            t = price(params)
            trials.append((B, loops, t))
            if best is None or t < best[0]:
                best = (t, params)
    if best is None:
        raise ParameterError(
            f"no feasible configuration for n={n}, k={k} within the search space"
        )
    trials.sort(key=lambda x: x[2])
    return TuningResult(
        params=best[1], modeled_time_s=best[0], trials=tuple(trials)
    )
