"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by library code derive from
:class:`ReproError`, so callers can catch one base class.  Errors are split
along the package's architectural seams: parameter/plan problems, simulated
device misuse, and experiment-harness failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A transform or plan parameter is invalid or inconsistent.

    Raised, e.g., for a signal size that is not a power of two, a sparsity
    ``k`` that is not in ``[1, n)``, or a bucket count that does not divide
    the signal size.
    """


class ContractError(ParameterError):
    """A declared shape/dtype contract was violated at runtime.

    Raised by the runtime half of the contract engine
    (:mod:`repro.analysis.staticcheck.contracts`, enabled with
    ``REPRO_CHECK_CONTRACTS=1``) when an array crossing a
    ``@shape_contract``-decorated boundary does not satisfy the declared
    symbolic shape or dtype.  Subclasses :class:`ParameterError` so
    callers that already catch the parameter hierarchy keep working.
    """


class FilterDesignError(ReproError, ValueError):
    """A flat-window filter cannot be constructed from the given spec."""


class DeviceError(ReproError, RuntimeError):
    """Misuse of the simulated CUDA device (bad launch config, OOM, ...)."""


class LaunchConfigError(DeviceError):
    """A kernel launch configuration violates device limits."""


class DeviceMemoryError(DeviceError):
    """A simulated allocation exceeds the device's global memory."""


class StreamError(DeviceError):
    """Invalid use of the simulated stream/event machinery."""


class RecoveryError(ReproError, RuntimeError):
    """Sparse recovery failed in a way the caller asked us to treat fatally.

    The default sFFT driver degrades gracefully (it returns whatever
    coefficients survived voting), but strict callers can request an
    exception when fewer than ``k`` coefficients are recovered.
    """


class ExecutorError(ReproError, RuntimeError):
    """A parallel execution backend failed outside the algorithm itself.

    Raised by the sharded executor when the machinery under a run breaks —
    e.g. a pool worker process dies mid-shard — as opposed to an algorithmic
    failure inside a shard (those keep their own types, like
    :class:`RecoveryError`).  The executor guarantees every shared-memory
    segment it created for the run is unlinked before this propagates.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment id is unknown or an experiment run failed."""
