"""cusFFT — the paper's contribution: sparse FFT on the (simulated) GPU.

:class:`CusFFT` drives the six-step pipeline in two coupled ways:

* **functionally** — every step executes its vectorized NumPy kernel body,
  producing the same coefficients the CUDA kernels would (tested against
  the CPU reference);
* **temporally** — the same launches are enqueued on simulated CUDA
  streams (:class:`~repro.cusim.timeline.GpuSimulation`) with their cost
  specs, and the event-driven scheduler produces the timeline the
  benchmarks report.

The stream structure follows the paper exactly.  With the asynchronous
layout transformation on (Section V-A / Figure 4), each loop's ``w/B``
rounds become remap kernels fanned across ``num_streams`` streams plus
in-order exec kernels on a dedicated accumulation stream, each gated on its
chunk's remap event.  The score-array memset overlaps binning on its own
stream.  Cutoff is Thrust sort&select or the single-pass fast selection
(Section V-B) per the configuration.

Timing scope matches the paper's methodology: the signal is resident on the
device (the paper ports the whole algorithm to the GPU "to avoid the
overhead due to bulk volume of PCIe data transfers"); per-call PCIe traffic
is the D2H of the recovered coefficients.  Two sensitivity modes widen the
scope: ``h2d="filter"`` ships the per-call filter taps (``w`` complex
values — the per-transform upload an un-cached plan implementation pays,
and the term behind Figure 5(e)'s dip), ``h2d="sampled"`` ships the
``w*L`` signal samples the filters read (a host-resident-signal
implementation), and ``h2d="full"`` ships the whole signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parameters import SfftParameters, derive_parameters
from ..core.plan import SfftPlan, make_plan
from ..core.sfft import SparseFFTResult
from ..cufft.plan import CufftPlan
from ..cusim.device import KEPLER_K20X, DeviceSpec
from ..cusim.memory_pool import DeviceMemoryPool
from ..cusim.stream import Event
from ..cusim.timeline import GpuSimulation, TimelineReport
from ..errors import ParameterError
from ..obs import MetricsRegistry, Tracer, emit_sfft_metrics, global_registry
from ..perf.counts import sfft_step_counts
from ..utils.rng import RngLike
from ..utils.validation import as_complex_signal
from .config import BASELINE, OPTIMIZED, CusfftConfig
from .kernels import (
    atomic_spec,
    bin_atomic_functional,
    bin_layout_functional,
    bin_partition_functional,
    estimate_functional,
    estimate_spec,
    exec_spec,
    fast_select_functional,
    fast_select_spec,
    partition_spec,
    recovery_functional,
    recovery_spec,
    remap_spec,
    score_memset_spec,
    sort_select_functional,
    sort_select_specs,
)

__all__ = ["CusfftRun", "CusFFT", "cusfft"]

_RESULT_BYTES = 24  # (int64 location, complex128 value) per coefficient


@dataclass(frozen=True)
class CusfftRun:
    """Output of one cusFFT execution: coefficients plus the timeline."""

    result: SparseFFTResult | None
    report: TimelineReport

    @property
    def modeled_time_s(self) -> float:
        """Simulated wall-clock of the transform."""
        return self.report.makespan_s


@dataclass
class CusFFT:
    """A planned cusFFT transform for one ``(n, k)`` shape.

    Parameters mirror :func:`repro.core.sfft`; ``config`` picks the build
    variant (:data:`~repro.gpu.config.BASELINE` /
    :data:`~repro.gpu.config.OPTIMIZED` / ablations), ``device`` the
    simulated GPU.
    """

    params: SfftParameters
    config: CusfftConfig = OPTIMIZED
    device: DeviceSpec = KEPLER_K20X
    h2d: str = "none"
    _plan: SfftPlan | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.h2d not in ("none", "filter", "sampled", "full"):
            raise ParameterError(
                f"h2d must be none/filter/sampled/full, got {self.h2d!r}"
            )

    @classmethod
    def create(
        cls,
        n: int,
        k: int,
        *,
        config: CusfftConfig = OPTIMIZED,
        device: DeviceSpec = KEPLER_K20X,
        h2d: str = "none",
        **overrides,
    ) -> "CusFFT":
        """Build a transform for ``(n, k)`` with derived parameters."""
        return cls(
            params=derive_parameters(n, k, **overrides),
            config=config,
            device=device,
            h2d=h2d,
        )

    def device_footprint(self) -> DeviceMemoryPool:
        """Account the transform's device allocations against the GPU.

        Raises :class:`~repro.errors.DeviceMemoryError` when the shape
        would not fit the card — e.g. n = 2^29 complex doubles already
        exceed the K20x's 6 GB, which is why the paper's sweep stops at
        2^27.
        """
        counts = sfft_step_counts(self.params)
        pool = DeviceMemoryPool(self.device)
        pool.alloc("signal", counts.signal_bytes)
        pool.alloc("score", counts.score_bytes)
        pool.alloc("buckets", counts.bucket_bytes)
        pool.alloc("filter", counts.filter_width * 16)
        if self.config.layout_transform:
            chunks = max(1, min(self.config.num_streams, 16))
            pool.alloc("remap_chunks", chunks * self.params.B * 16)
        pool.alloc("results", max(1, counts.expected_hits) * _RESULT_BYTES)
        return pool

    def plan(self, seed: RngLike = None) -> SfftPlan:
        """Materialize (and cache) the filter + permutation schedule."""
        if self._plan is None:
            self._plan = make_plan(
                self.params.n, self.params.k, seed=seed, params=self.params
            )
        return self._plan

    # ------------------------------------------------------------------ #
    # functional execution                                               #
    # ------------------------------------------------------------------ #

    def execute(
        self,
        x,
        *,
        seed: RngLike = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> CusfftRun:
        """Run the transform on real data; returns values and timeline.

        Checks the device memory budget first — shapes the physical card
        could not hold are rejected, as they would be on hardware.

        Observability: the simulated timeline is ingested into ``tracer``
        (one track per CUDA stream, Chrome-trace exportable) when one is
        given, and the run's metrics — the same ``sfft.*`` names the CPU
        reference emits, plus the ``cusim.*`` device gauges — are
        published into ``metrics`` (default:
        :func:`repro.obs.global_registry`).
        """
        self.device_footprint()
        plan = self.plan(seed)
        p = self.params
        x = as_complex_signal(x, p.n)
        B, L = p.B, p.loops
        rounds = plan.rounds

        if self.config.layout_transform:
            binner = bin_layout_functional
        elif self.config.loop_partition:
            binner = bin_partition_functional
        else:
            binner = bin_atomic_functional
        raw = np.empty((L, B), dtype=np.complex128)
        for r, perm in enumerate(plan.permutations):
            raw[r] = binner(x, plan.filt, B, perm)

        fft_plan = CufftPlan(B, batch=L)
        rows = fft_plan.execute(raw)

        selected: list[np.ndarray] = []
        for r in range(p.voting_loops):
            mags = np.abs(rows[r])
            if self.config.fast_select:
                sel, _ = fast_select_functional(mags, p.select_count)
            else:
                sel, _ = sort_select_functional(mags, p.select_count)
            selected.append(sel)

        hits, votes = recovery_functional(
            selected, list(plan.permutations[: p.voting_loops]), B,
            p.vote_threshold,
        )
        values = estimate_functional(
            hits, rows, list(plan.permutations), plan.filt, B
        )
        result = SparseFFTResult(
            n=p.n, locations=hits, values=values, votes=votes
        ).top(p.k)

        report = self._build_timeline(
            rounds=rounds,
            selected_per_loop=[int(s.size) for s in selected],
            hits=int(hits.size),
        )

        registry = metrics if metrics is not None else global_registry()
        emit_sfft_metrics(
            registry,
            B=B,
            n=p.n,
            selected_sizes=[int(s.size) for s in selected],
            hits=hits,
            votes=votes,
            permutations=list(plan.permutations[: p.voting_loops]),
        )
        report.emit_metrics(registry)
        if tracer is not None:
            tracer.add_timeline(report)
        return CusfftRun(result=result, report=report)

    # ------------------------------------------------------------------ #
    # modeled execution (no data; paper-scale sweeps)                    #
    # ------------------------------------------------------------------ #

    def modeled_report(self) -> TimelineReport:
        """Timeline from analytic operation counts (no signal required)."""
        counts = sfft_step_counts(self.params)
        return self._build_timeline(
            rounds=counts.rounds,
            selected_per_loop=(
                [self.params.select_count] * self.params.voting_loops
            ),
            hits=counts.expected_hits,
        )

    def estimated_time(self) -> float:
        """Modeled wall-clock of one transform."""
        return self.modeled_report().makespan_s

    # ------------------------------------------------------------------ #
    # timeline construction                                              #
    # ------------------------------------------------------------------ #

    def _build_timeline(
        self,
        *,
        rounds: int,
        selected_per_loop: list[int],
        hits: int,
    ) -> TimelineReport:
        p = self.params
        cfg = self.config
        B, L, n = p.B, p.loops, p.n
        if len(selected_per_loop) != p.voting_loops:
            raise ParameterError("one selected count per voting loop required")
        tpb = cfg.threads_per_block
        w = rounds * B

        sim = GpuSimulation(self.device)
        compute = sim.stream()
        aux = sim.stream()

        h2d_event: tuple[Event, ...] = ()
        if self.h2d != "none":
            if self.h2d == "full":
                nbytes = n * 16
            elif self.h2d == "sampled":
                # w*L samples the filters touch; capped at the signal size.
                nbytes = min(w * L, n) * 16
            else:  # "filter": per-call upload of the w filter taps
                nbytes = w * 16
            sim.memcpy(aux, nbytes, "h2d")
            h2d_event = (aux.record_event(),)

        # Score memset overlaps binning on the aux stream.
        sim.launch(aux, score_memset_spec(n=n, threads_per_block=tpb), after=h2d_event)
        memset_ev = aux.record_event()

        # --- steps 1-2: permutation + filter + fold -----------------------
        if cfg.layout_transform:
            n_remap = max(1, min(cfg.num_streams - 1, 16))
            remap_streams = [sim.stream() for _ in range(n_remap)]
            chunk = 0
            for _ in range(L):
                for _r in range(rounds):
                    rs = remap_streams[chunk % n_remap]
                    sim.launch(rs, remap_spec(B=B, threads_per_block=tpb, use_ldg=cfg.use_ldg), after=h2d_event)
                    ev = rs.record_event()
                    sim.launch(
                        compute, exec_spec(B=B, threads_per_block=tpb), after=(ev,)
                    )
                    chunk += 1
        else:
            for _ in range(L):
                if cfg.loop_partition:
                    spec = partition_spec(
                        B=B, rounds=rounds, threads_per_block=tpb,
                        use_ldg=cfg.use_ldg,
                    )
                else:
                    spec = atomic_spec(
                        B=B, width=w, threads_per_block=tpb, use_ldg=cfg.use_ldg
                    )
                sim.launch(compute, spec, after=h2d_event)

        # --- step 3: subsampled FFT ---------------------------------------
        if cfg.batched_fft:
            for spec in CufftPlan(B, batch=L).kernel_specs():
                sim.launch(compute, spec)
        else:
            single = CufftPlan(B, batch=1)
            for _ in range(L):
                for spec in single.kernel_specs():
                    sim.launch(compute, spec)

        # --- step 4: cutoff -------------------------------------------------
        for sel in selected_per_loop:
            if cfg.fast_select:
                sim.launch(
                    compute, fast_select_spec(B=B, expected_selected=sel)
                )
            else:
                for spec in sort_select_specs(B=B):
                    sim.launch(compute, spec)

        # --- step 5: location recovery --------------------------------------
        first = True
        for sel in selected_per_loop:
            deps = (memset_ev,) if first else ()
            sim.launch(
                compute,
                recovery_spec(
                    selected=max(1, sel), n_div_B=p.n_div_B, n=n,
                    threads_per_block=tpb,
                ),
                after=deps,
            )
            first = False

        # --- step 6: magnitude reconstruction -------------------------------
        sim.launch(
            compute, estimate_spec(hits=hits, loops=L, threads_per_block=tpb)
        )

        # Results back to the host.
        sim.memcpy(compute, max(1, hits) * _RESULT_BYTES, "d2h")
        return sim.run()


def cusfft(
    x,
    k: int,
    *,
    config: CusfftConfig = OPTIMIZED,
    device: DeviceSpec = KEPLER_K20X,
    seed: RngLike = None,
    **overrides,
) -> CusfftRun:
    """One-shot convenience wrapper: plan + execute cusFFT on ``x``."""
    x = as_complex_signal(x)
    transform = CusFFT.create(x.size, k, config=config, device=device, **overrides)
    return transform.execute(x, seed=seed)
