"""Asynchronous data-layout transformation (paper Section V-A, Figure 4).

The Algorithm-2 kernel's signal gather is data-dependent (``sigma`` is drawn
at run time), so no compile-time reordering can coalesce it.  The paper's
fix splits each round of the loop partition into two kernels:

* **remap** — gathers the round's ``B`` permuted signal elements into a
  fresh contiguous chunk ``A'`` (random reads, coalesced writes);
* **exec** — performs the multiply-accumulate reading ``A'`` coalesced.

Remap kernels for different chunks are independent, so they spread across
CUDA streams and overlap both each other and the exec kernels — the remap
cost hides behind execution.  Exec kernels accumulate into the same bucket
array, so they serialize on one dedicated stream, each gated on its chunk's
remap event (exactly Figure 4's dependency shape).

Functionally the result is identical to the fused kernel; tests assert it.
"""

from __future__ import annotations

import numpy as np

from ...core.permutation import Permutation
from ...cusim.kernel import KernelSpec
from ...cusim.memory import AccessPattern, GlobalAccess
from ...filters.base import FlatFilter

__all__ = [
    "remap_chunk_functional",
    "exec_chunk_functional",
    "bin_layout_functional",
    "remap_spec",
    "exec_spec",
]

_COMPLEX = 16


def remap_chunk_functional(
    x: np.ndarray, perm: Permutation, chunk: int, B: int
) -> np.ndarray:
    """Remap kernel body: gather round ``chunk``'s ``B`` signal elements.

    ``A'[tid] = x[((tid + B*chunk) * sigma + tau) % n]``.
    """
    tid = np.arange(B, dtype=np.int64)
    idx = ((tid + B * chunk) * perm.sigma + perm.tau) % perm.n
    return x[idx]


def exec_chunk_functional(
    remapped: np.ndarray,
    filt: FlatFilter,
    chunk: int,
    B: int,
    buckets: np.ndarray,
) -> None:
    """Exec kernel body: coalesced multiply-accumulate of one chunk.

    ``buckets[tid] += A'[tid] * filter[tid + B*chunk]`` in place.
    """
    lo = B * chunk
    taps = filt.time[lo : lo + B]
    if taps.size < B:
        padded = np.zeros(B, dtype=np.complex128)
        padded[: taps.size] = taps
        taps = padded
    buckets += remapped * taps


def bin_layout_functional(
    x: np.ndarray, filt: FlatFilter, B: int, perm: Permutation
) -> np.ndarray:
    """Full layout-transformed binning for one loop (all chunks)."""
    rounds = -(-filt.width // B)
    buckets = np.zeros(B, dtype=np.complex128)
    for chunk in range(rounds):
        remapped = remap_chunk_functional(x, perm, chunk, B)
        exec_chunk_functional(remapped, filt, chunk, B, buckets)
    return buckets


def remap_spec(
    *, B: int, threads_per_block: int = 256, use_ldg: bool = False
) -> KernelSpec:
    """Cost spec of one remap kernel (one chunk of ``B`` elements)."""
    return KernelSpec(
        name="cusfft_layout_remap",
        grid_blocks=max(1, -(-B // threads_per_block)),
        threads_per_block=threads_per_block,
        flops_per_thread=4.0,  # index arithmetic
        accesses=(
            GlobalAccess(AccessPattern.RANDOM, B, _COMPLEX, use_ldg=use_ldg),
            GlobalAccess(AccessPattern.COALESCED, B, _COMPLEX, is_write=True),  # A'
        ),
        dependent_rounds=1,
    )


def exec_spec(*, B: int, threads_per_block: int = 256) -> KernelSpec:
    """Cost spec of one exec kernel (coalesced multiply-accumulate)."""
    return KernelSpec(
        name="cusfft_layout_exec",
        grid_blocks=max(1, -(-B // threads_per_block)),
        threads_per_block=threads_per_block,
        flops_per_thread=8.0,
        accesses=(
            GlobalAccess(AccessPattern.COALESCED, B, _COMPLEX),  # A'
            GlobalAccess(AccessPattern.COALESCED, B, _COMPLEX),  # filter taps
            GlobalAccess(AccessPattern.COALESCED, B, _COMPLEX),  # buckets r/w
            GlobalAccess(AccessPattern.COALESCED, B, _COMPLEX, is_write=True),
        ),
        dependent_rounds=1,
    )
