"""Permutation + filter + binning kernels (paper Algorithms 1-2).

Two device formulations of the histogram-style fold:

* :func:`partition_spec` — Algorithm 2's loop partition: one thread per
  bucket, ``w/B`` rounds each, no atomics.  The signal gather
  ``signal[((tid + B*j) * sigma) % n]`` is data-dependent — effectively
  random at warp granularity — which is the non-coalesced access the
  layout transformation later fixes.
* :func:`atomic_spec` — the conventional histogram the paper rejects: one
  thread per filter tap, ``atomicAdd`` into the shared bucket array (two
  atomics per tap: real and imaginary word).

Functional bodies reuse the core binning implementations (bit-identical
answers); an address-trace helper feeds the measured-coalescing tests.
"""

from __future__ import annotations

import numpy as np

from ...core.binning import bin_loop_partition, bin_vectorized
from ...core.permutation import Permutation, permuted_indices
from ...cusim.atomics import AtomicProfile
from ...cusim.kernel import KernelSpec
from ...cusim.memory import AccessPattern, GlobalAccess
from ...filters.base import FlatFilter

__all__ = [
    "bin_partition_functional",
    "bin_atomic_functional",
    "partition_spec",
    "atomic_spec",
    "gather_addresses",
]

_COMPLEX = 16


def bin_partition_functional(
    x: np.ndarray, filt: FlatFilter, B: int, perm: Permutation
) -> np.ndarray:
    """Functional loop-partition binning (Algorithm 2 semantics)."""
    return bin_loop_partition(x, filt, B, perm)


def bin_atomic_functional(
    x: np.ndarray, filt: FlatFilter, B: int, perm: Permutation
) -> np.ndarray:
    """Functional atomic-histogram binning (same fold, thread-per-tap).

    ``np.add.at``-equivalent scatter — numerically identical to the
    vectorized fold because complex addition is the same in any grouping
    (tested against the serial reference to fp tolerance).
    """
    return bin_vectorized(x, filt, B, perm)


def gather_addresses(perm: Permutation, width: int) -> np.ndarray:
    """Byte addresses the gather touches, in thread order (trace helper)."""
    return permuted_indices(perm, width) * _COMPLEX


def partition_spec(
    *, B: int, rounds: int, threads_per_block: int = 256, use_ldg: bool = False
) -> KernelSpec:
    """Cost spec for one loop's Algorithm-2 kernel.

    ``B`` threads, each running ``rounds`` iterations: a random signal
    gather + a coalesced filter-tap read per iteration, one coalesced
    bucket store at the end.  The per-thread accumulator chain makes the
    iterations' loads independent (``myBucket +=`` is associative), so
    ``dependent_rounds`` models only the loop-carried accumulate-latency,
    softened by MLP in the cost model.
    """
    w = B * rounds
    return KernelSpec(
        name="cusfft_perm_filter_partition",
        grid_blocks=max(1, -(-B // threads_per_block)),
        threads_per_block=threads_per_block,
        flops_per_thread=8.0 * rounds,
        accesses=(
            GlobalAccess(AccessPattern.RANDOM, w, _COMPLEX, use_ldg=use_ldg),
            GlobalAccess(AccessPattern.COALESCED, w, _COMPLEX),         # filter
            GlobalAccess(AccessPattern.COALESCED, B, _COMPLEX, is_write=True),
        ),
        dependent_rounds=rounds,
    )


def atomic_spec(
    *, B: int, width: int, threads_per_block: int = 256, use_ldg: bool = False
) -> KernelSpec:
    """Cost spec for the rejected atomic-histogram kernel.

    One thread per filter tap; every tap issues two 8-byte ``atomicAdd``
    operations into ``B`` bucket slots.  With ``width >> B`` the conflict
    chains are long — exactly the bottleneck Section IV-C describes.
    """
    return KernelSpec(
        name="cusfft_perm_filter_atomic",
        grid_blocks=max(1, -(-width // threads_per_block)),
        threads_per_block=threads_per_block,
        flops_per_thread=8.0,
        accesses=(
            GlobalAccess(AccessPattern.RANDOM, width, _COMPLEX, use_ldg=use_ldg),
            GlobalAccess(AccessPattern.COALESCED, width, _COMPLEX),     # filter
        ),
        atomics=AtomicProfile(ops=2 * width, distinct_addresses=2 * B),
        dependent_rounds=1,
    )
