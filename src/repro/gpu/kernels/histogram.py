"""SIMT kernel bodies for the histogram-style fold (Section IV-C).

:mod:`.perm_filter` holds the *cost specs* and vectorized functional
equivalents of the two binning formulations; this module holds the actual
lockstep kernel bodies the :mod:`repro.cusim.simt` interpreter can run and
the race detector (:mod:`repro.analysis.staticcheck.races`) can audit:

* :func:`make_naive_histogram_kernel` — the conventional GPU histogram the
  paper rejects, written the *wrong* way on purpose: thread-per-element,
  unguarded load-add-store into a shared bucket array.  Two threads whose
  keys collide race on the bucket word; the interpreter's last-write-wins
  store semantics even loses counts, just like real hardware would.  This
  kernel exists as the race detector's negative control — ``python -m
  repro lint`` verifies it is still flagged on every run.
* :func:`make_atomic_histogram_kernel` — the same fold with the
  read-modify-write routed through
  :meth:`~repro.cusim.simt.WarpContext.atomic_add`.  Counts are exact and
  the detector passes it by contract.
* :func:`make_partition_binner_kernel` — Algorithm 2's loop partition: one
  thread per bucket, ``w/B`` rounds, a private register accumulator, one
  store to ``buckets[tid]`` at the end.  Collision-free with *no* atomics
  — the claim the symbolic analyzer
  (:mod:`repro.analysis.staticcheck.symbolic`) proves for all ``B``, and
  the trace check confirms at any concrete size.
"""

from __future__ import annotations

import numpy as np

from ...errors import ParameterError

__all__ = [
    "make_naive_histogram_kernel",
    "make_atomic_histogram_kernel",
    "make_partition_binner_kernel",
]


def make_naive_histogram_kernel():
    """The rejected conventional histogram: unguarded ``buckets[key] += 1``.

    Launch with one thread per key over ``(keys, buckets)`` buffers.  The
    bucket index is data-dependent (``keys[tid]``), so nothing bounds which
    threads collide — the exact situation Section IV-C's atomics would have
    to serialize, and the dominant correctness failure mode across sFFT
    ports.  Deliberately racy; keep it out of any production path.
    """

    def naive_histogram(warp, keys, buckets):
        k = warp.load(keys, warp.tid).astype(np.int64)
        count = warp.load(buckets, k)
        warp.store(buckets, k, count + 1.0)

    return naive_histogram


def make_atomic_histogram_kernel():
    """The same histogram with the update routed through device atomics."""

    def atomic_histogram(warp, keys, buckets):
        k = warp.load(keys, warp.tid).astype(np.int64)
        warp.atomic_add(buckets, k, np.ones(warp.tid.size, dtype=np.float64))

    return atomic_histogram


def make_partition_binner_kernel(
    *, B: int, rounds: int, sigma: int, tau: int, n: int, width: int
):
    """Algorithm 2's loop-partition binner as a lockstep kernel body.

    Launch with ``total_threads=B`` over ``(signal, filter, buckets)``
    buffers.  Thread ``tid`` accumulates rounds ``j`` of
    ``signal[((tid + B*j)*sigma + tau) % n] * filter[tid + B*j]`` into a
    register and stores once to ``buckets[tid]`` — the store schedule is
    the identity over ``[0, B)``, which is why no two threads ever touch
    the same bucket word and the kernel needs no atomics.
    """
    if B < 1 or rounds < 1:
        raise ParameterError(f"B={B} and rounds={rounds} must be >= 1")
    if not 0 < width <= rounds * B:
        raise ParameterError(
            f"width={width} must be in (0, rounds*B={rounds * B}]"
        )

    def partition_binner(warp, signal, filt, buckets):
        acc = np.zeros(warp.tid.size, dtype=np.complex128)
        for j in range(rounds):
            off = warp.tid + B * j
            warp.push_mask(off < width)
            idx = (off * sigma + tau) % n
            acc = acc + warp.load(signal, idx) * warp.load(filt, off)
            warp.pop_mask()
        warp.store(buckets, warp.tid, acc)

    return partition_binner
