"""Location-recovery kernels (paper Algorithm 4).

One thread per selected bucket walks its ``n/B`` candidate region, reverses
the permutation, and ``atomicAdd``s into the dense ``score[n]`` array; a
second atomic counter appends frequencies whose score crosses the vote
threshold.  The score array must be zeroed per transform — an ``O(n)``
memset whose bandwidth cost is the small super-linear term that bends the
cusFFT-vs-PsFFT speedup back down at ``n = 2^27`` (Figure 5(e); PsFFT uses
per-thread hash maps instead and does not pay it).

Functional voting reuses :mod:`repro.core.recovery`.
"""

from __future__ import annotations

import numpy as np

from ...core.permutation import Permutation
from ...core.recovery import recover_locations
from ...cusim.atomics import AtomicProfile
from ...cusim.kernel import KernelSpec
from ...cusim.memory import AccessPattern, GlobalAccess

__all__ = ["recovery_functional", "score_memset_spec", "recovery_spec"]


def recovery_functional(
    selected_per_loop: list[np.ndarray],
    permutations: list[Permutation],
    B: int,
    vote_threshold: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Voting across loops; identical to the core reference."""
    return recover_locations(selected_per_loop, permutations, B, vote_threshold)


def score_memset_spec(*, n: int, threads_per_block: int = 256) -> KernelSpec:
    """Zero the ``score[n]`` array (int16) — one coalesced store sweep.

    Each thread writes one 128-bit vector (8 scores), the standard memset
    idiom, so a warp's 512 bytes fill its transactions completely.
    """
    vec_elems = max(1, n // 8)
    return KernelSpec(
        name="cusfft_score_memset",
        grid_blocks=max(1, -(-n // (threads_per_block * 8))),
        threads_per_block=threads_per_block,
        flops_per_thread=0.0,
        accesses=(
            GlobalAccess(AccessPattern.COALESCED, vec_elems, 16, is_write=True),
        ),
        dependent_rounds=1,
    )


def recovery_spec(
    *,
    selected: int,
    n_div_B: int,
    n: int,
    threads_per_block: int = 256,
) -> KernelSpec:
    """Cost spec of one loop's Algorithm-4 kernel.

    ``selected`` threads, each issuing ``n/B`` vote atomics.  Votes scatter
    across the whole score array (the reverse permutation decorrelates
    them), so conflicts are rare: distinct addresses ~= total votes capped
    by ``n``.  Atomic traffic moves through the L2 in 32-byte sectors and
    is priced entirely by the device's atomic throughput (charging full
    128-byte gather transactions on top would double-count — atomics never
    touch the L1 path on Kepler).
    """
    votes = selected * n_div_B
    return KernelSpec(
        name="cusfft_loc_recovery",
        grid_blocks=max(1, -(-selected // threads_per_block)),
        threads_per_block=threads_per_block,
        flops_per_thread=10.0 * n_div_B,
        accesses=(
            # Bucket index + permutation constants per thread (tiny).
            GlobalAccess(AccessPattern.COALESCED, max(1, selected), 8),
        ),
        atomics=AtomicProfile(ops=votes, distinct_addresses=min(n, max(1, votes))),
        dependent_rounds=max(1, n_div_B),
    )
