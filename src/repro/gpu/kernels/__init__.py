"""cusFFT device kernels: functional bodies + cost specifications."""

from .estimate import estimate_functional, estimate_spec
from .histogram import (
    make_atomic_histogram_kernel,
    make_naive_histogram_kernel,
    make_partition_binner_kernel,
)
from .layout import (
    bin_layout_functional,
    exec_chunk_functional,
    exec_spec,
    remap_chunk_functional,
    remap_spec,
)
from .perm_filter import (
    atomic_spec,
    bin_atomic_functional,
    bin_partition_functional,
    gather_addresses,
    partition_spec,
)
from .recover import recovery_functional, recovery_spec, score_memset_spec
from .select import (
    fast_select_functional,
    fast_select_spec,
    sort_select_functional,
    sort_select_specs,
)

__all__ = [
    "estimate_functional",
    "estimate_spec",
    "make_atomic_histogram_kernel",
    "make_naive_histogram_kernel",
    "make_partition_binner_kernel",
    "bin_layout_functional",
    "exec_chunk_functional",
    "exec_spec",
    "remap_chunk_functional",
    "remap_spec",
    "atomic_spec",
    "bin_atomic_functional",
    "bin_partition_functional",
    "gather_addresses",
    "partition_spec",
    "recovery_functional",
    "recovery_spec",
    "score_memset_spec",
    "fast_select_functional",
    "fast_select_spec",
    "sort_select_functional",
    "sort_select_specs",
]
