"""Magnitude-reconstruction kernel (paper Algorithm 5).

One thread per recovered frequency: for each of the ``L`` loops it computes
the permuted position, the bucket it hashed to, the in-bucket offset, and
the filter-compensated estimate; it then sorts its private ``L``-element
magnitude array and takes the median.  Bucket and filter-response reads are
data-dependent (random); the per-thread insertion sort is pure arithmetic.

Functional estimation reuses :mod:`repro.core.estimation` (median of real
and imaginary parts separately).
"""

from __future__ import annotations

import numpy as np

from ...core.estimation import estimate_values
from ...core.permutation import Permutation
from ...cusim.kernel import KernelSpec
from ...cusim.memory import AccessPattern, GlobalAccess
from ...filters.base import FlatFilter

__all__ = ["estimate_functional", "estimate_spec"]

_COMPLEX = 16


def estimate_functional(
    frequencies: np.ndarray,
    bucket_rows: np.ndarray,
    permutations: list[Permutation],
    filt: FlatFilter,
    B: int,
) -> np.ndarray:
    """Median-of-loops value reconstruction; identical to the core reference."""
    return estimate_values(frequencies, bucket_rows, permutations, filt, B)


def estimate_spec(
    *, hits: int, loops: int, threads_per_block: int = 256
) -> KernelSpec:
    """Cost spec of the Algorithm-5 kernel (``hits`` threads, ``loops`` rounds).

    Per (thread, loop): one random bucket read, one random filter-frequency
    read, ~30 FLOPs of index/phase math; plus an ``O(L log L)`` in-register
    median sort per thread.
    """
    hits = max(1, hits)
    reads = hits * loops
    sort_flops = loops * max(1, int(np.log2(max(2, loops)))) * 4.0
    return KernelSpec(
        name="cusfft_mag_reconstruction",
        grid_blocks=max(1, -(-hits // threads_per_block)),
        threads_per_block=threads_per_block,
        flops_per_thread=30.0 * loops + sort_flops,
        accesses=(
            GlobalAccess(AccessPattern.RANDOM, reads, _COMPLEX),  # buckets
            GlobalAccess(AccessPattern.RANDOM, reads, _COMPLEX),  # filter freq
            GlobalAccess(AccessPattern.COALESCED, hits, 24, is_write=True),
        ),
        dependent_rounds=max(1, loops),
    )
