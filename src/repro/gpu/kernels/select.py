"""Cutoff kernels: Thrust sort&select (Algorithm 3) and fast k-selection
(Algorithm 6).

The baseline sorts all ``B`` bucket magnitudes descending via the device
sort (``O(B log B)`` work, ~16 radix passes over keys+values) and keeps the
top ``m``.  The optimized path makes a single pass, keeping every bucket
whose magnitude clears a noise-floor threshold; survivors append their
indices through an ``atomicAdd`` on one global counter — Algorithm 6
verbatim.  Functional results reuse :mod:`repro.core.cutoff` so GPU and CPU
paths select identical buckets.
"""

from __future__ import annotations

import numpy as np

from ...core.cutoff import cutoff as core_cutoff
from ...cusim.atomics import AtomicProfile
from ...cusim.kernel import KernelSpec
from ...cusim.memory import AccessPattern, GlobalAccess
from ...cusim.thrust import sort_by_key

__all__ = [
    "sort_select_functional",
    "fast_select_functional",
    "sort_select_specs",
    "fast_select_spec",
]

_COMPLEX = 16


def sort_select_functional(
    magnitudes: np.ndarray, m: int
) -> tuple[np.ndarray, list[KernelSpec]]:
    """Baseline cutoff: device sort_by_key descending, keep top ``m``.

    Returns the selected bucket indices plus the sort's kernel specs.
    """
    keys = np.asarray(magnitudes, dtype=np.float64)
    (_, idx), specs = sort_by_key(keys, np.arange(keys.size, dtype=np.int64))
    return np.sort(idx[:m]).astype(np.int64), specs


def fast_select_functional(
    magnitudes: np.ndarray, m: int
) -> tuple[np.ndarray, list[KernelSpec]]:
    """Optimized cutoff: single-pass threshold selection (Algorithm 6)."""
    chosen = core_cutoff(np.asarray(magnitudes), m, method="threshold")
    spec = fast_select_spec(B=magnitudes.size, expected_selected=chosen.size)
    return np.sort(chosen).astype(np.int64), [spec]


def sort_select_specs(*, B: int) -> list[KernelSpec]:
    """Cost specs of the baseline sort&select for ``B`` buckets.

    Spec shape depends only on ``B``, so the specs are built directly
    (no key/value data needed): 16 radix passes over (double, int64)
    pairs, two kernels per pass.
    """
    from ...cusim.thrust import sort_passes

    specs: list[KernelSpec] = []
    passes = sort_passes(64)
    payload = 8 + 8
    grid = max(1, -(-B // 256))
    for _ in range(passes):
        specs.append(
            KernelSpec(
                name="thrust_radix_histogram",
                grid_blocks=grid,
                threads_per_block=256,
                flops_per_thread=4.0,
                accesses=(GlobalAccess(AccessPattern.COALESCED, B, 8),),
            )
        )
        specs.append(
            KernelSpec(
                name="thrust_radix_scatter",
                grid_blocks=grid,
                threads_per_block=256,
                flops_per_thread=8.0,
                accesses=(
                    GlobalAccess(AccessPattern.COALESCED, B, payload),
                    GlobalAccess(AccessPattern.RANDOM, B, payload, is_write=True),
                ),
            )
        )
    return specs


def fast_select_spec(*, B: int, expected_selected: int) -> KernelSpec:
    """Cost spec of the single-pass threshold selection over ``B`` buckets."""
    return KernelSpec(
        name="cusfft_fast_select",
        grid_blocks=max(1, -(-B // 256)),
        threads_per_block=256,
        flops_per_thread=4.0,
        accesses=(
            GlobalAccess(AccessPattern.COALESCED, B, _COMPLEX),  # bucket values
            GlobalAccess(
                AccessPattern.COALESCED,
                max(1, expected_selected),
                8,
                is_write=True,
            ),
        ),
        atomics=AtomicProfile(
            ops=max(1, expected_selected), distinct_addresses=1
        ),
        dependent_rounds=1,
    )
