"""cusFFT variant configuration.

The paper evaluates two builds — the *baseline* of Section IV and the
*optimized* build of Section V — and attributes the ~2x gap to the
asynchronous data-layout transformation and the fast k-selection.  Each
optimization is an independent toggle here so the ablation benchmarks can
price them one at a time; an extra toggle exposes the rejected
atomic-histogram binning (Section IV-C's strawman) for the loop-partition
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ParameterError

__all__ = ["CusfftConfig", "BASELINE", "OPTIMIZED", "ATOMIC_HISTOGRAM"]


@dataclass(frozen=True)
class CusfftConfig:
    """Feature toggles for one cusFFT build.

    Attributes
    ----------
    loop_partition:
        Bin with Algorithm 2 (thread-per-bucket, collision-free).  When
        off, binning uses the conventional atomic histogram the paper
        rejects.
    layout_transform:
        Section V-A: split the strided gather into remap + exec kernels on
        concurrent streams (coalesced execution reads).
    fast_select:
        Section V-B: threshold k-selection instead of Thrust sort&select.
    batched_fft:
        Step 3's batched cuFFT (one call for all ``L`` loops) instead of
        ``L`` separate transforms.
    use_ldg:
        Route the signal gathers through Kepler's read-only data cache
        (``__ldg``), shrinking each scattered load to a 32-byte
        transaction.  The paper describes the read-only path (Section
        II-A) but does not use it; this is the reproduction's beyond-the-
        paper experiment ``ext-ldg``.
    num_streams:
        CUDA streams available to the layout transformation (the K20x
        supports up to 32 concurrent kernels).
    threads_per_block:
        Block size for the hand-written kernels.
    """

    loop_partition: bool = True
    layout_transform: bool = False
    fast_select: bool = False
    batched_fft: bool = True
    use_ldg: bool = False
    num_streams: int = 32
    threads_per_block: int = 256

    def __post_init__(self) -> None:
        if self.num_streams < 1:
            raise ParameterError(f"num_streams must be >= 1, got {self.num_streams}")
        if not 32 <= self.threads_per_block <= 1024:
            raise ParameterError(
                f"threads_per_block must be in [32, 1024], got {self.threads_per_block}"
            )
        if self.layout_transform and not self.loop_partition:
            raise ParameterError(
                "the layout transformation presumes loop-partition binning"
            )

    def label(self) -> str:
        """Short human-readable variant name."""
        if self == OPTIMIZED:
            return "cusFFT-opt"
        if self == BASELINE:
            return "cusFFT-base"
        flags = [
            "part" if self.loop_partition else "atomic",
            "layout" if self.layout_transform else "strided",
            "fastsel" if self.fast_select else "sort",
            "batched" if self.batched_fft else "looped",
        ]
        if self.use_ldg:
            flags.append("ldg")
        return "cusFFT[" + ",".join(flags) + "]"

    def with_(self, **changes) -> "CusfftConfig":
        """Functional update (ablation helper)."""
        return replace(self, **changes)


#: Section IV baseline: loop partition + Thrust sort&select, no layout split.
BASELINE = CusfftConfig()

#: Section V optimized build: + async layout transform + fast k-selection.
OPTIMIZED = CusfftConfig(layout_transform=True, fast_select=True)

#: Section IV-C strawman: conventional atomic-histogram binning.
ATOMIC_HISTOGRAM = CusfftConfig(loop_partition=False)
