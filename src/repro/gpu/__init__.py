"""cusFFT on the simulated GPU: kernels, configurations, driver."""

from .config import ATOMIC_HISTOGRAM, BASELINE, OPTIMIZED, CusfftConfig
from .cusfft import CusFFT, CusfftRun, cusfft

__all__ = [
    "ATOMIC_HISTOGRAM",
    "BASELINE",
    "OPTIMIZED",
    "CusfftConfig",
    "CusFFT",
    "CusfftRun",
    "cusfft",
]
