"""Span tracing — the time half of the observability layer.

A :class:`Tracer` records *spans*: named intervals with a category, nesting
depth, and free-form attributes.  Two kinds of spans coexist on one
timebase:

* **live spans** — opened with :meth:`Tracer.span` around real CPU work and
  clocked with ``time.perf_counter`` relative to the tracer's origin (this
  is what ``sfft(..., profile=True)`` uses for its Figure-2 breakdowns);
* **synthetic spans** — injected with :meth:`Tracer.add_span` /
  :meth:`Tracer.add_timeline` from the simulated-GPU scheduler, whose
  timestamps start at the simulation's time zero.

Both export to the Chrome ``trace_event`` format (open the file in
``chrome://tracing`` or https://ui.perfetto.dev): the CPU gets ``tid`` 0,
each simulated CUDA stream gets its own ``tid`` — so the stream overlap the
paper's Section V-A optimization banks on is *visible*, not just summed.
"""

from __future__ import annotations

import json
import threading
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import ParameterError

__all__ = ["Span", "Tracer", "CPU_TRACK", "monotonic"]

#: Track label for live (host-clocked) spans.
CPU_TRACK = "cpu"


def monotonic() -> float:
    """The sanctioned wall-clock for code outside the observability layer.

    ``core/`` and ``gpu/`` are forbidden from reading host clocks directly
    (reprolint rule ``wallclock-in-core``): modeled time and measured time
    must stay separable, and every wall reading should be attributable to
    this one seam.  Same timebase as live spans (``time.perf_counter``).
    """
    return _time.perf_counter()


@dataclass(frozen=True)
class Span:
    """One completed interval on the trace.

    ``start_s`` is relative to the tracer origin for live spans and to the
    simulation's time zero for synthetic ones; both are >= 0.  ``track``
    groups spans into timeline rows (:data:`CPU_TRACK` or one label per
    simulated stream).
    """

    name: str
    category: str
    start_s: float
    duration_s: float
    track: str = CPU_TRACK
    depth: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        """Interval end, in the span's own timebase."""
        return self.start_s + self.duration_s


class Tracer:
    """Thread-safe collector of spans (live and synthetic).

    The tracer is cheap to create; one per transform / experiment / run
    keeps traces independent.  ``clock`` is injectable for deterministic
    tests.
    """

    def __init__(self, clock: Callable[[], float] = _time.perf_counter) -> None:
        self._clock = clock
        self._origin = clock()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()
        self._subscribers: list[Callable[[Span], None]] = []

    def subscribe(self, fn: Callable[[Span], None]) -> Callable[[], None]:
        """Call ``fn(span)`` after every span close (live or synthetic).

        Callbacks run on the recording thread, outside the tracer lock.
        Returns an unsubscribe callable.
        """
        with self._lock:
            self._subscribers.append(fn)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(fn)
                except ValueError:
                    pass

        return unsubscribe

    # -- recording --------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Completed spans, in completion order (copy)."""
        with self._lock:
            return list(self._spans)

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def span(self, name: str, *, category: str = "step", **attrs: Any) -> Iterator[None]:
        """Clock a live span around the ``with`` body (nestable)."""
        depth = self._depth()
        self._local.depth = depth + 1
        start = self._clock()
        try:
            yield
        finally:
            end = self._clock()
            self._local.depth = depth
            self.add_span(
                name,
                start_s=max(0.0, start - self._origin),
                duration_s=max(0.0, end - start),
                category=category,
                track=CPU_TRACK,
                depth=depth,
                attrs=attrs,
            )

    def add_span(
        self,
        name: str,
        *,
        start_s: float,
        duration_s: float,
        category: str = "step",
        track: str = CPU_TRACK,
        depth: int = 0,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Record a pre-timed (synthetic) span."""
        if start_s < 0 or duration_s < 0:
            raise ParameterError(
                f"span times must be >= 0, got start={start_s} dur={duration_s}"
            )
        sp = Span(
            name=name,
            category=category,
            start_s=float(start_s),
            duration_s=float(duration_s),
            track=track,
            depth=depth,
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self._spans.append(sp)
            subs = list(self._subscribers)
        for fn in subs:
            fn(sp)
        return sp

    def add_timeline(self, report: Any, *, category: str = "cusim") -> int:
        """Ingest a simulated :class:`~repro.cusim.timeline.TimelineReport`.

        Each operation record becomes a synthetic span on a per-stream
        track (``stream0``, ``stream1``, ... in ascending raw-id order, the
        same ordinals :func:`~repro.cusim.profiler.render_timeline` shows).
        Returns the number of spans added.
        """
        ordinals = {
            sid: i
            for i, sid in enumerate(sorted({r.stream_id for r in report.records}))
        }
        for rec in report.records:
            attrs: dict[str, Any] = {
                "kind": getattr(rec.kind, "value", str(rec.kind)),
                "isolated_s": rec.isolated_s,
            }
            if rec.timing is not None:
                wire = rec.timing.wire_bytes
                attrs["wire_bytes"] = wire
                attrs["coalescing_efficiency"] = (
                    rec.timing.useful_bytes / wire if wire else 1.0
                )
            self.add_span(
                rec.name,
                start_s=rec.start_s,
                duration_s=rec.end_s - rec.start_s,
                category=category,
                track=f"stream{ordinals[rec.stream_id]}",
                attrs=attrs,
            )
        return len(report.records)

    # -- views ------------------------------------------------------------

    def durations(self, *, category: str | None = None) -> dict[str, float]:
        """Total seconds per span name (insertion-ordered).

        This is the view behind ``SparseFFTResult.step_times``: summing
        repeated spans keeps the semantics of the old accumulating clock.
        """
        out: dict[str, float] = {}
        for sp in self.spans:
            if category is not None and sp.category != category:
                continue
            out[sp.name] = out.get(sp.name, 0.0) + sp.duration_s
        return out

    def tracks(self) -> list[str]:
        """Distinct track labels, CPU first then streams in natural order."""
        seen = {sp.track for sp in self.spans}
        rest = sorted(
            (t for t in seen if t != CPU_TRACK), key=lambda t: (len(t), t)
        )
        return ([CPU_TRACK] if CPU_TRACK in seen else []) + rest

    # -- export -----------------------------------------------------------

    def chrome_trace_events(self) -> list[dict]:
        """Chrome ``trace_event`` dicts (``ph: "X"`` complete events).

        ``tid`` 0 is the CPU track; each simulated stream gets the next
        integer in sorted-label order.  Timestamps are microseconds, always
        >= 0.
        """
        tids = {
            track: (0 if track == CPU_TRACK else i)
            for i, track in enumerate(self.tracks())
        }
        events: list[dict] = [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "repro"}},
        ]
        for track, tid in tids.items():
            events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": track}}
            )
        for sp in self.spans:
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.category,
                    "ph": "X",
                    "ts": max(0.0, sp.start_s * 1e6),
                    "dur": max(0.0, sp.duration_s * 1e6),
                    "pid": 1,
                    "tid": tids[sp.track],
                    "args": dict(sp.attrs),
                }
            )
        return events

    def export_chrome_trace(self, path: str | None = None) -> str:
        """Serialize the trace as Chrome/Perfetto-loadable JSON.

        Returns the JSON text; when ``path`` is given the document is also
        written there.
        """
        doc = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        text = json.dumps(doc, indent=None, separators=(",", ":"))
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text
