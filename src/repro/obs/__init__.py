"""Unified observability: spans, metrics, and exporters.

One subsystem serves the CPU reference (``repro.core.sfft``), the simulated
GPU (``repro.gpu`` / ``repro.cusim``), and the benchmark/experiment harness:

* :class:`Tracer` — nestable spans plus ingestion of simulated timelines,
  exporting Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto);
* :class:`MetricsRegistry` — thread-safe counters / gauges / histograms
  under one ``sfft.*`` / ``cusim.*`` naming scheme;
* run records — a JSONL schema (``repro.run/1``) benchmarks and experiments
  persist, validated by ``scripts/check_bench_json.py`` in CI;
* baselines & trajectories — versioned snapshots (``repro.baseline/1``) and
  append-only history (``repro.trajectory/1``) of run-record metrics, with
  a noise-aware regression gate (``scripts/bench_gate.py``);
* attribution reports — per-span self-time tables, flamegraph
  collapsed-stack export, and trajectory sparkline dashboards.

See ``docs/observability.md`` for the naming scheme and schemas.
"""

from .export import (
    RUN_RECORD_SCHEMA,
    make_run_record,
    render_obs_summary,
    validate_run_record,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    emit_sfft_metrics,
    global_registry,
)
from .regress import (
    BASELINE_SCHEMA,
    TRAJECTORY_SCHEMA,
    GateConfig,
    GateVerdict,
    MetricCheck,
    append_trajectory,
    compare_to_baseline,
    make_baseline,
    make_trajectory_points,
    render_verdict,
    validate_baseline,
    validate_trajectory,
)
from .report import (
    collapsed_stacks,
    render_attribution,
    render_trajectory_dashboard,
    self_time_rows,
    sparkline,
)
from .trace import CPU_TRACK, Span, Tracer, monotonic

__all__ = [
    "CPU_TRACK",
    "monotonic",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "emit_sfft_metrics",
    "global_registry",
    "RUN_RECORD_SCHEMA",
    "make_run_record",
    "render_obs_summary",
    "validate_run_record",
    "write_jsonl",
    "BASELINE_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "GateConfig",
    "GateVerdict",
    "MetricCheck",
    "append_trajectory",
    "compare_to_baseline",
    "make_baseline",
    "make_trajectory_points",
    "render_verdict",
    "validate_baseline",
    "validate_trajectory",
    "collapsed_stacks",
    "render_attribution",
    "render_trajectory_dashboard",
    "self_time_rows",
    "sparkline",
]
