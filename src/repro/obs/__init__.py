"""Unified observability: spans, metrics, and exporters.

One subsystem serves the CPU reference (``repro.core.sfft``), the simulated
GPU (``repro.gpu`` / ``repro.cusim``), and the benchmark/experiment harness:

* :class:`Tracer` — nestable spans plus ingestion of simulated timelines,
  exporting Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto);
* :class:`MetricsRegistry` — thread-safe counters / gauges / histograms
  under one ``sfft.*`` / ``cusim.*`` naming scheme;
* run records — a JSONL schema (``repro.run/1``) benchmarks and experiments
  persist, validated by ``scripts/check_bench_json.py`` in CI.

See ``docs/observability.md`` for the naming scheme and schemas.
"""

from .export import (
    RUN_RECORD_SCHEMA,
    make_run_record,
    render_obs_summary,
    validate_run_record,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    emit_sfft_metrics,
    global_registry,
)
from .trace import CPU_TRACK, Span, Tracer

__all__ = [
    "CPU_TRACK",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "emit_sfft_metrics",
    "global_registry",
    "RUN_RECORD_SCHEMA",
    "make_run_record",
    "render_obs_summary",
    "validate_run_record",
    "write_jsonl",
]
