"""Unified observability: spans, metrics, and exporters.

One subsystem serves the CPU reference (``repro.core.sfft``), the simulated
GPU (``repro.gpu`` / ``repro.cusim``), and the benchmark/experiment harness:

* :class:`Tracer` — nestable spans plus ingestion of simulated timelines,
  exporting Chrome ``trace_event`` JSON (``chrome://tracing`` / Perfetto);
* :class:`MetricsRegistry` — thread-safe counters / gauges / histograms
  under one ``sfft.*`` / ``cusim.*`` naming scheme;
* run records — a JSONL schema (``repro.run/1``) benchmarks and experiments
  persist, validated by ``scripts/check_bench_json.py`` in CI;
* baselines & trajectories — versioned snapshots (``repro.baseline/1``) and
  append-only history (``repro.trajectory/1``) of run-record metrics, with
  a noise-aware regression gate (``scripts/bench_gate.py``);
* attribution reports — per-span self-time tables, flamegraph
  collapsed-stack export, and trajectory sparkline dashboards;
* why-analysis — a critical-path engine over the span DAG with
  Amdahl-style what-if projections (:mod:`repro.obs.critical`),
  differential profiles, and automatic regression attribution emitting
  ``repro.attrib/1`` records (:mod:`repro.obs.attrib`, surfaced as
  ``python -m repro why``);
* live telemetry — a bounded :class:`FlightRecorder` over span closes and
  metric updates, ``tracemalloc``-backed memory gauges
  (:class:`MemorySampler`), and streaming export: Prometheus text
  (:func:`render_prometheus`), ``repro.telemetry/1`` JSONL heartbeats
  (:class:`TelemetryFlusher`), and the ``python -m repro top`` dashboard.

See ``docs/observability.md`` for the naming scheme and schemas.
"""

from .attrib import (
    ATTRIB_SCHEMA,
    attribute_run,
    attribute_verdict,
    diff_attrib_record,
    diff_collapsed_stacks,
    diff_self_times,
    make_attrib_record,
    render_attrib_record,
    validate_attrib_record,
)
from .critical import (
    IDLE_STAGE,
    CriticalPath,
    PathSegment,
    critical_path,
    render_critical_path,
    stage_of,
    what_if_speedup,
)
from .export import (
    RUN_RECORD_SCHEMA,
    atomic_append_text,
    make_run_record,
    render_obs_summary,
    validate_run_record,
    write_jsonl,
)
from .expose import (
    TELEMETRY_SCHEMA,
    TelemetryFlusher,
    dashboard_sample,
    make_telemetry_record,
    prometheus_name,
    render_dashboard,
    render_prometheus,
    validate_telemetry_record,
)
from .live import DEFAULT_FLIGHT_CAPACITY, FlightEvent, FlightRecorder
from .memory import MemorySampler, publish_plan_cache_memory
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    emit_sfft_metrics,
    global_registry,
)
from .regress import (
    BASELINE_SCHEMA,
    TRAJECTORY_SCHEMA,
    GateConfig,
    GateVerdict,
    MetricCheck,
    append_trajectory,
    compare_to_baseline,
    make_baseline,
    make_trajectory_points,
    prune_runs,
    prune_trajectory,
    render_verdict,
    validate_baseline,
    validate_trajectory,
)
from .report import (
    collapsed_stacks,
    render_attribution,
    render_trajectory_dashboard,
    self_time_rows,
    sparkline,
)
from .trace import CPU_TRACK, Span, Tracer, monotonic

__all__ = [
    "CPU_TRACK",
    "monotonic",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "emit_sfft_metrics",
    "global_registry",
    "RUN_RECORD_SCHEMA",
    "atomic_append_text",
    "make_run_record",
    "render_obs_summary",
    "validate_run_record",
    "write_jsonl",
    "TELEMETRY_SCHEMA",
    "TelemetryFlusher",
    "dashboard_sample",
    "make_telemetry_record",
    "prometheus_name",
    "render_dashboard",
    "render_prometheus",
    "validate_telemetry_record",
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightEvent",
    "FlightRecorder",
    "MemorySampler",
    "publish_plan_cache_memory",
    "BASELINE_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "GateConfig",
    "GateVerdict",
    "MetricCheck",
    "append_trajectory",
    "compare_to_baseline",
    "make_baseline",
    "make_trajectory_points",
    "prune_runs",
    "prune_trajectory",
    "render_verdict",
    "validate_baseline",
    "validate_trajectory",
    "collapsed_stacks",
    "render_attribution",
    "render_trajectory_dashboard",
    "self_time_rows",
    "sparkline",
    "ATTRIB_SCHEMA",
    "attribute_run",
    "attribute_verdict",
    "diff_attrib_record",
    "diff_collapsed_stacks",
    "diff_self_times",
    "make_attrib_record",
    "render_attrib_record",
    "validate_attrib_record",
    "IDLE_STAGE",
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "render_critical_path",
    "stage_of",
    "what_if_speedup",
]
