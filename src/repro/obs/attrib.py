"""Regression attribution and differential profiles (``repro.attrib/1``).

The gate (:mod:`repro.obs.regress`) answers *whether* a run regressed;
this module answers *why*, in three escalating forms:

* **differential self-time profiles** — align two span sets by name
  (aggregated across tracks, so a re-sharded run still lines up), emit a
  signed delta table (:func:`diff_self_times`) and a two-value collapsed
  stack file (:func:`diff_collapsed_stacks`, the ``difffolded.pl`` format
  ``stack base_usec fresh_usec`` that flamegraph.pl renders as a red/blue
  differential flame);
* **automatic regression attribution** — for each confirmed
  :class:`~repro.obs.regress.MetricCheck` regression, rank the per-stage
  ``span.*.total_s`` deltas (baseline median vs. fresh median) by how much
  of the target's delta they explain, annotate each with its critical-path
  share and an Amdahl what-if projection from :mod:`repro.obs.critical`,
  and always carry an **unattributed residual** line so a partial
  explanation cannot masquerade as a full one;
* the **``repro.attrib/1`` record** — the schema-validated JSONL form of
  either analysis, written by ``scripts/bench_gate.py --attrib`` on gate
  failure and by ``python -m repro why --json``, checked by
  ``scripts/check_bench_json.py``.

Records carry a ``status``: ``"regression"`` (gate-failure attribution),
``"ok"`` (healthy-run headline attribution — what *would* bound the run),
or ``"diff"`` (two arbitrary runs compared).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import ParameterError
from .critical import CriticalPath, critical_path, stage_of, what_if_speedup
from .regress import GateVerdict, collect_samples, run_key
from .report import collapsed_stacks, self_time_rows

__all__ = [
    "ATTRIB_SCHEMA",
    "diff_self_times",
    "diff_collapsed_stacks",
    "latest_spans_by_key",
    "make_attrib_record",
    "attribute_verdict",
    "attribute_run",
    "diff_attrib_record",
    "validate_attrib_record",
    "render_attrib_record",
]

ATTRIB_SCHEMA = "repro.attrib/1"

ATTRIB_STATUSES = ("regression", "ok", "diff")

#: Tolerance on the critical-path share sum (must tile the makespan).
_SHARE_SUM_TOL = 1e-6


def _median_of(values: list[float]) -> float:
    return float(np.median(values))


def _span_metric_stage(metric: str) -> str | None:
    """Pipeline stage behind a ``span.<name>.total_s``/``.self_s`` metric."""
    for suffix in (".total_s", ".self_s"):
        if metric.startswith("span.") and metric.endswith(suffix):
            return stage_of(metric[len("span."):-len(suffix)])
    return None


# --------------------------------------------------------------------------
# differential profiles: two span sets, aligned by name
# --------------------------------------------------------------------------

def _self_time_by_name(spans: Iterable[Any]) -> dict[str, float]:
    """Self seconds per span name, aggregated across tracks."""
    out: dict[str, float] = {}
    for row in self_time_rows(spans):
        name = str(row["name"])
        out[name] = out.get(name, 0.0) + float(row["self_s"])
    return out


def diff_self_times(
    spans_a: Iterable[Any], spans_b: Iterable[Any]
) -> list[dict[str, Any]]:
    """Signed self-time deltas between two span sets, by span name.

    Rows are ``{name, base_s, fresh_s, delta_s}`` (``delta_s`` =
    fresh - base; positive means B is slower there), sorted by descending
    ``|delta_s|``.  Names present on only one side keep a 0.0 on the
    other, so appearing/disappearing stages show as their full cost.
    """
    base = _self_time_by_name(spans_a)
    fresh = _self_time_by_name(spans_b)
    rows = [
        {
            "name": name,
            "base_s": base.get(name, 0.0),
            "fresh_s": fresh.get(name, 0.0),
            "delta_s": fresh.get(name, 0.0) - base.get(name, 0.0),
        }
        for name in sorted(set(base) | set(fresh))
    ]
    rows.sort(key=lambda r: (-abs(float(r["delta_s"])), str(r["name"])))
    return rows


def diff_collapsed_stacks(
    spans_a: Iterable[Any], spans_b: Iterable[Any]
) -> list[str]:
    """Two-value collapsed stacks: ``stack base_usec fresh_usec`` lines.

    This is the input format of flamegraph.pl's ``difffolded.pl``
    pipeline; frames absent from one side carry an explicit 0 so the
    renderer colors them as pure growth/shrinkage.
    """
    def parse(lines: list[str]) -> dict[str, int]:
        out: dict[str, int] = {}
        for line in lines:
            stackpart, _, usec = line.rpartition(" ")
            out[stackpart] = int(usec)
        return out

    base = parse(collapsed_stacks(spans_a))
    fresh = parse(collapsed_stacks(spans_b))
    return [
        f"{stack} {base.get(stack, 0)} {fresh.get(stack, 0)}"
        for stack in sorted(set(base) | set(fresh))
    ]


def latest_spans_by_key(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Newest record's span list per run key (later records win)."""
    out: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        key, _meta = run_key(record)
        spans = record.get("spans")
        out[key] = [
            dict(sp) for sp in spans if isinstance(sp, Mapping)
        ] if isinstance(spans, list) else []
    return out


# --------------------------------------------------------------------------
# repro.attrib/1 records
# --------------------------------------------------------------------------

def _what_if_block(
    path_share: float | None,
    base: float | None,
    fresh: float | None,
    *,
    default_factor: float,
) -> dict[str, float] | None:
    """Amdahl projection for recovering a contributor's regression.

    The factor is how much faster the stage must get to return to its
    baseline (fresh/base) when that is a real slowdown, else the caller's
    default; without a critical-path share there is no projection.
    """
    if path_share is None:
        return None
    factor = default_factor
    if (base is not None and fresh is not None
            and base > 0 and fresh > base):
        factor = fresh / base
    if factor <= 1.0:
        return None
    return {
        "speedup_factor_x": factor,
        "projected_run_speedup_x": what_if_speedup(path_share, factor),
    }


def make_attrib_record(
    *,
    key: str,
    status: str,
    target: Mapping[str, Any] | None,
    candidates: Iterable[Mapping[str, Any]],
    spans: Iterable[Any] | None = None,
    top_n: int = 5,
    what_if_factor: float = 2.0,
) -> dict[str, Any]:
    """Assemble one ``repro.attrib/1`` record.

    ``target`` carries ``metric`` and optional ``class``/``base``/
    ``fresh`` (its ``delta`` is derived); ``candidates`` are mappings with
    ``metric``, ``base``, ``fresh`` — the contributors to rank.  ``spans``
    (usually the fresh run's) feed the critical-path block; contributor
    metrics of the form ``span.<name>.total_s`` are joined to path shares
    through :func:`~repro.obs.critical.stage_of`.
    """
    if status not in ATTRIB_STATUSES:
        raise ParameterError(
            f"attrib status must be one of {ATTRIB_STATUSES}, got {status!r}"
        )
    if top_n < 1:
        raise ParameterError(f"top_n must be >= 1, got {top_n}")

    cp: CriticalPath | None = None
    shares: dict[str, float] = {}
    if spans is not None:
        cp = critical_path(spans)
        shares = cp.stage_shares()

    target_doc: dict[str, Any] | None = None
    target_delta: float | None = None
    if target is not None:
        base = target.get("base")
        fresh = target.get("fresh")
        if base is not None and fresh is not None:
            target_delta = float(fresh) - float(base)
        target_doc = {
            "metric": str(target["metric"]),
            "class": target.get("class"),
            "base": None if base is None else float(base),
            "fresh": None if fresh is None else float(fresh),
            "delta": target_delta,
        }

    ranked = sorted(
        (dict(c) for c in candidates),
        key=lambda c: (-abs(float(c["fresh"]) - float(c["base"])),
                       str(c["metric"])),
    )
    dropped = ranked[top_n:]
    contributors: list[dict[str, Any]] = []
    for cand in ranked[:top_n]:
        base_v = float(cand["base"])
        fresh_v = float(cand["fresh"])
        delta = fresh_v - base_v
        stage = _span_metric_stage(str(cand["metric"]))
        path_share = shares.get(stage) if stage is not None else None
        share_of_delta = (
            delta / target_delta
            if target_delta is not None and target_delta != 0.0
            else None
        )
        contributors.append({
            "metric": str(cand["metric"]),
            "base": base_v,
            "fresh": fresh_v,
            "delta": delta,
            "share_of_delta": share_of_delta,
            "path_share": path_share,
            "what_if": _what_if_block(
                path_share, base_v, fresh_v, default_factor=what_if_factor
            ),
        })

    residual: dict[str, Any] | None = None
    if target_delta is not None:
        explained = sum(float(c["delta"]) for c in contributors)
        residual_delta = target_delta - explained
        residual = {
            "delta": residual_delta,
            "share": (residual_delta / target_delta
                      if target_delta != 0.0 else None),
            "dropped_candidates": len(dropped),
        }

    critical_doc: dict[str, Any] | None = None
    if cp is not None:
        critical_doc = {
            "makespan_s": cp.makespan_s,
            "queue_wait_s": cp.queue_wait_s,
            "shares": shares,
        }

    return {
        "schema": ATTRIB_SCHEMA,
        "key": key,
        "status": status,
        "target": target_doc,
        "contributors": contributors,
        "residual": residual,
        "critical_path": critical_doc,
    }


def _span_candidates(
    base_metrics: Mapping[str, Any], fresh_metrics: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """``span.*.total_s`` metrics present on both sides, as candidates."""
    out: list[dict[str, Any]] = []
    for mname in sorted(set(base_metrics) & set(fresh_metrics)):
        if _span_metric_stage(mname) is None:
            continue
        stat = base_metrics[mname]
        slot = fresh_metrics[mname]
        out.append({
            "metric": mname,
            "base": float(stat["median"]),
            "fresh": _median_of([float(v) for v in slot["values"]]),
        })
    return out


def attribute_verdict(
    baseline: Mapping[str, Any],
    records: Iterable[Mapping[str, Any]],
    verdict: GateVerdict,
    *,
    top_n: int = 5,
    what_if_factor: float = 2.0,
) -> list[dict[str, Any]]:
    """One ``repro.attrib/1`` record per confirmed regression in a verdict.

    For each regressed (key, metric) check, the candidate contributors are
    that key's per-stage span totals (baseline median vs. fresh median);
    the fresh run's spans supply the critical path.  When the regressed
    metric is itself a span total it ranks as its own top contributor —
    the honest answer the e2e slow-stage test expects.
    """
    recs = list(records)
    fresh = collect_samples(recs)
    spans_by_key = latest_spans_by_key(recs)
    entries = baseline.get("entries") or {}
    out: list[dict[str, Any]] = []
    for check in verdict.regressions():
        base_metrics = (entries.get(check.key) or {}).get("metrics", {})
        fresh_metrics = (fresh.get(check.key) or {}).get("metrics", {})
        out.append(make_attrib_record(
            key=check.key,
            status="regression",
            target={
                "metric": check.metric,
                "class": check.klass,
                "base": check.base_median,
                "fresh": check.fresh_median,
            },
            candidates=_span_candidates(base_metrics, fresh_metrics),
            spans=spans_by_key.get(check.key),
            top_n=top_n,
            what_if_factor=what_if_factor,
        ))
    return out


def attribute_run(
    baseline: Mapping[str, Any] | None,
    records: Iterable[Mapping[str, Any]],
    *,
    key: str | None = None,
    top_n: int = 5,
    what_if_factor: float = 2.0,
) -> dict[str, Any]:
    """Healthy-run attribution: what bounds the run *now* (status ``ok``).

    Targets the key's headline metric (the dashboard's choice) against the
    baseline when one is given; without a baseline the record still
    carries the critical path and what-if table, just no deltas.  ``key``
    defaults to the newest record's run key.
    """
    recs = list(records)
    if not recs:
        raise ParameterError("attribute_run needs at least one run record")
    if key is None:
        key, _meta = run_key(recs[-1])
    fresh = collect_samples(recs)
    fresh_entry = fresh.get(key)
    if fresh_entry is None:
        raise ParameterError(f"no records under run key {key!r}")
    fresh_metrics = fresh_entry["metrics"]
    spans = latest_spans_by_key(recs).get(key) or []

    base_metrics: Mapping[str, Any] = {}
    if baseline is not None:
        base_metrics = (
            (baseline.get("entries") or {}).get(key) or {}
        ).get("metrics", {})

    target: dict[str, Any] | None = None
    candidates: list[dict[str, Any]] = []
    if base_metrics:
        from .report import _headline_metric

        experiment = str(fresh_entry["meta"].get("experiment", "?"))
        shared = set(base_metrics) & set(fresh_metrics)
        headline = _headline_metric(experiment, shared)
        if headline is not None:
            stat = base_metrics[headline]
            slot = fresh_metrics[headline]
            target = {
                "metric": headline,
                "class": slot.get("class"),
                "base": float(stat["median"]),
                "fresh": _median_of([float(v) for v in slot["values"]]),
            }
        candidates = _span_candidates(base_metrics, fresh_metrics)
    return make_attrib_record(
        key=key,
        status="ok",
        target=target,
        candidates=candidates,
        spans=spans,
        top_n=top_n,
        what_if_factor=what_if_factor,
    )


def diff_attrib_record(
    record_a: Mapping[str, Any],
    record_b: Mapping[str, Any],
    *,
    top_n: int = 5,
    what_if_factor: float = 2.0,
) -> dict[str, Any]:
    """Attribution of the difference between two runs (status ``diff``).

    A is the base, B the fresh side; contributors are per-span-name self
    times (``span.<name>.self_s``), the target their sum (total traced
    self time), and the critical path is B's.
    """
    key_a, _ = run_key(record_a)
    key_b, _ = run_key(record_b)
    key = key_b if key_a == key_b else f"{key_a} -> {key_b}"
    spans_a = [sp for sp in record_a.get("spans") or []
               if isinstance(sp, Mapping)]
    spans_b = [sp for sp in record_b.get("spans") or []
               if isinstance(sp, Mapping)]
    rows = diff_self_times(spans_a, spans_b)
    candidates = [
        {
            "metric": f"span.{row['name']}.self_s",
            "base": float(row["base_s"]),
            "fresh": float(row["fresh_s"]),
        }
        for row in rows
    ]
    return make_attrib_record(
        key=key,
        status="diff",
        target={
            "metric": "span.total_self_s",
            "class": "wall",
            "base": sum(float(r["base_s"]) for r in rows),
            "fresh": sum(float(r["fresh_s"]) for r in rows),
        },
        candidates=candidates,
        spans=spans_b,
        top_n=top_n,
        what_if_factor=what_if_factor,
    )


# --------------------------------------------------------------------------
# validation + rendering
# --------------------------------------------------------------------------

def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _number_or_null(value: Any) -> bool:
    return value is None or _is_number(value)


def validate_attrib_record(doc: Any) -> list[str]:
    """Problems in a ``repro.attrib/1`` record (empty list = valid)."""
    if not isinstance(doc, dict):
        return [f"attrib record must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("schema") != ATTRIB_SCHEMA:
        problems.append(
            f"schema must be {ATTRIB_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    key = doc.get("key")
    if not isinstance(key, str) or not key:
        problems.append("key must be a non-empty string")
    if doc.get("status") not in ATTRIB_STATUSES:
        problems.append(
            f"status must be one of {ATTRIB_STATUSES}, "
            f"got {doc.get('status')!r}"
        )

    target = doc.get("target")
    if target is not None:
        if not isinstance(target, dict):
            problems.append("target must be an object or null")
        else:
            if not isinstance(target.get("metric"), str):
                problems.append("target.metric must be a string")
            for field in ("base", "fresh", "delta"):
                if not _number_or_null(target.get(field)):
                    problems.append(
                        f"target.{field} must be a number or null"
                    )

    contributors = doc.get("contributors")
    if not isinstance(contributors, list):
        problems.append("contributors must be an array")
        contributors = []
    for i, contrib in enumerate(contributors):
        where = f"contributors[{i}]"
        if not isinstance(contrib, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(contrib.get("metric"), str):
            problems.append(f"{where}.metric must be a string")
        if not _is_number(contrib.get("delta")):
            problems.append(f"{where}.delta must be a number")
        for field in ("base", "fresh", "share_of_delta", "path_share"):
            if not _number_or_null(contrib.get(field)):
                problems.append(f"{where}.{field} must be a number or null")
        share = contrib.get("path_share")
        if _is_number(share) and not 0.0 <= float(share) <= 1.0 + _SHARE_SUM_TOL:
            problems.append(f"{where}.path_share must be in [0, 1]")
        what_if = contrib.get("what_if")
        if what_if is not None:
            if not isinstance(what_if, dict):
                problems.append(f"{where}.what_if must be an object or null")
            else:
                factor = what_if.get("speedup_factor_x")
                if not _is_number(factor) or float(factor) <= 0:
                    problems.append(
                        f"{where}.what_if.speedup_factor_x must be > 0"
                    )
                if not _is_number(what_if.get("projected_run_speedup_x")):
                    problems.append(
                        f"{where}.what_if.projected_run_speedup_x "
                        f"must be a number"
                    )

    residual = doc.get("residual")
    if residual is not None:
        if not isinstance(residual, dict):
            problems.append("residual must be an object or null")
        else:
            if not _is_number(residual.get("delta")):
                problems.append("residual.delta must be a number")
            if not _number_or_null(residual.get("share")):
                problems.append("residual.share must be a number or null")

    cp = doc.get("critical_path")
    if cp is not None:
        if not isinstance(cp, dict):
            problems.append("critical_path must be an object or null")
        else:
            makespan = cp.get("makespan_s")
            if not _is_number(makespan) or float(makespan) < 0:
                problems.append("critical_path.makespan_s must be >= 0")
            shares = cp.get("shares")
            if not isinstance(shares, dict):
                problems.append("critical_path.shares must be an object")
            else:
                bad = [s for s, v in shares.items() if not _is_number(v)]
                if bad:
                    problems.append(
                        f"critical_path.shares values must be numbers "
                        f"({bad[0]!r} is not)"
                    )
                elif shares and abs(
                    sum(float(v) for v in shares.values()) - 1.0
                ) > 1e-3:
                    problems.append(
                        "critical_path.shares must sum to 1.0 "
                        f"(got {sum(float(v) for v in shares.values()):.6f})"
                    )
    return problems


def render_attrib_record(doc: Mapping[str, Any]) -> str:
    """Human rendering of one attribution record."""
    from ..utils.tables import format_seconds, format_table

    def fmt(metric: str, value: Any) -> str:
        if not _is_number(value):
            return "-"
        if metric.endswith("_s"):
            return format_seconds(float(value))
        return f"{float(value):.4g}"

    def pct(value: Any) -> str:
        return f"{100.0 * float(value):+.1f}%" if _is_number(value) else "-"

    lines: list[str] = []
    target = doc.get("target")
    head = f"why: {doc.get('key')} [{doc.get('status')}]"
    if isinstance(target, Mapping):
        metric = str(target.get("metric"))
        head += (
            f" — target {metric}: "
            f"{fmt(metric, target.get('base'))} -> "
            f"{fmt(metric, target.get('fresh'))}"
        )
        if _is_number(target.get("delta")):
            head += f" (delta {fmt(metric, target.get('delta'))})"
    lines.append(head)

    contributors = [c for c in doc.get("contributors") or []
                    if isinstance(c, Mapping)]
    if contributors:
        rows = []
        for c in contributors:
            metric = str(c.get("metric"))
            what_if = c.get("what_if")
            if isinstance(what_if, Mapping):
                wif = (f"{float(what_if['speedup_factor_x']):.2f}x faster -> "
                       f"run {float(what_if['projected_run_speedup_x']):.2f}x")
            else:
                wif = "-"
            rows.append([
                metric,
                fmt(metric, c.get("base")),
                fmt(metric, c.get("fresh")),
                fmt(metric, c.get("delta")),
                pct(c.get("share_of_delta")),
                (f"{100.0 * float(c['path_share']):.1f}%"
                 if _is_number(c.get("path_share")) else "-"),
                wif,
            ])
        lines.append(format_table(
            ["contributor", "base", "fresh", "delta", "of delta",
             "path share", "what-if"],
            rows,
            title="top contributors",
        ))
    else:
        lines.append("(no ranked contributors — no comparable span metrics)")

    residual = doc.get("residual")
    if isinstance(residual, Mapping):
        tmetric = (str(target.get("metric"))
                   if isinstance(target, Mapping) else "")
        lines.append(
            f"unattributed residual: {fmt(tmetric, residual.get('delta'))}"
            f" ({pct(residual.get('share'))} of the target delta)"
        )

    cp = doc.get("critical_path")
    if isinstance(cp, Mapping) and isinstance(cp.get("shares"), Mapping):
        shares = {str(k): float(v) for k, v in cp["shares"].items()
                  if _is_number(v)}
        if shares:
            top = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
            summary = ", ".join(f"{name} {100.0 * share:.1f}%"
                                for name, share in top)
            lines.append(
                f"critical path: makespan "
                f"{format_seconds(float(cp.get('makespan_s', 0.0)))}; "
                f"top stages: {summary}"
            )
    return "\n".join(lines)
