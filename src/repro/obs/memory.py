"""Memory accounting — the bytes half of the runtime telemetry.

The sFFT literature (empirical survey, aliasing-filter study) stresses that
runtime and memory trade off against each other across ``(n, k)`` regimes;
until now the repo measured wall time in detail and memory not at all.
This module closes that gap from the observability side:

* :func:`publish_plan_cache_memory` — reads a plan cache's ``nbytes()`` /
  ``memory_breakdown()`` (duck-typed; :class:`~repro.core.plan_cache.
  PlanCache` implements both) and publishes the ``sfft.plan_cache.bytes``
  and ``sfft.plan_cache.entries`` gauges;
* :class:`MemorySampler` — a ``tracemalloc``-backed sampler that publishes
  current and peak traced allocation as gauges, each sample timestamped by
  a ``sfft.mem.sample_ts_s`` gauge on the :func:`~repro.obs.trace.
  monotonic` timebase, either one-shot (:meth:`~MemorySampler.sample`) or
  on a daemon thread (:meth:`~MemorySampler.start` /
  :meth:`~MemorySampler.stop`).

Everything here is duck-typed against ``core`` objects on purpose: ``obs``
must stay importable (and strictly typed) without dragging the numeric
stack in, and ``core`` already depends on ``obs`` for its instruments —
the dependency may not point both ways.

Metric names (all gauges, bytes unless suffixed otherwise):

=================================  =======================================
``sfft.plan_cache.bytes``          resident plan + workspace footprint
``sfft.plan_cache.entries``        resident plan count
``sfft.mem.traced_bytes``          tracemalloc current traced allocation
``sfft.mem.traced_peak_bytes``     tracemalloc peak since sampler start
``sfft.mem.sample_ts_s``           monotonic timestamp of the last sample
=================================  =======================================
"""

from __future__ import annotations

import threading
import tracemalloc
from typing import Any

from ..errors import ParameterError
from .metrics import MetricsRegistry, global_registry
from .trace import monotonic

__all__ = ["MemorySampler", "publish_plan_cache_memory"]


def publish_plan_cache_memory(
    cache: Any, registry: MetricsRegistry | None = None
) -> int:
    """Publish a plan cache's resident footprint; returns the byte total.

    ``cache`` needs ``nbytes() -> int`` and ``__len__`` (the
    :class:`~repro.core.plan_cache.PlanCache` interface).  Writes the
    ``sfft.plan_cache.bytes`` and ``sfft.plan_cache.entries`` gauges on
    ``registry`` (default: the global registry).
    """
    reg = registry if registry is not None else global_registry()
    total = int(cache.nbytes())
    reg.gauge("sfft.plan_cache.bytes").set(total)
    reg.gauge("sfft.plan_cache.entries").set(len(cache))
    return total


class MemorySampler:
    """Periodic ``tracemalloc`` snapshots as monotonic-timestamped gauges.

    One-shot use::

        sampler = MemorySampler(registry)
        sampler.sample()          # gauges updated once

    Continuous use::

        sampler = MemorySampler(registry, interval_s=0.25)
        sampler.start()           # daemon thread; samples every interval
        ...
        sampler.stop()            # final sample, thread joined

    The sampler starts ``tracemalloc`` if it is not already tracing, and
    only stops it on :meth:`stop` if it was the one that started it (so it
    composes with an outer profiler or test harness that traces too).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        interval_s: float = 0.25,
    ) -> None:
        if interval_s <= 0:
            raise ParameterError(
                f"interval_s must be > 0, got {interval_s}"
            )
        self._registry = registry if registry is not None else global_registry()
        self.interval_s = float(interval_s)
        self._started_tracing = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling ----------------------------------------------------------

    def sample(self) -> tuple[int, int]:
        """Take one sample; returns ``(current_bytes, peak_bytes)``.

        Starts ``tracemalloc`` on first use if nothing else did.
        """
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        current, peak = tracemalloc.get_traced_memory()
        reg = self._registry
        reg.gauge("sfft.mem.traced_bytes").set(current)
        reg.gauge("sfft.mem.traced_peak_bytes").set(peak)
        reg.gauge("sfft.mem.sample_ts_s").set(monotonic())
        return int(current), int(peak)

    # -- daemon loop -------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def start(self) -> "MemorySampler":
        """Begin periodic sampling on a daemon thread; returns self."""
        if self._thread is not None:
            raise ParameterError("sampler is already running")
        self.sample()  # gauges exist from the first instant
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-mem-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Final sample, stop the thread, release tracing if we own it."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout)
        self.sample()
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracing = False

    def __enter__(self) -> "MemorySampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
