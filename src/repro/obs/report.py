"""Attribution reports: self-time tables, collapsed stacks, trajectories.

The paper's optimization story (Fig. 2, Fig. 5/6) is told through
per-stage cost attribution; this module renders that view from the
observability layer without touching raw Chrome traces:

* :func:`self_time_rows` / :func:`render_attribution` — per-span *self*
  time (own duration minus directly-nested children), per track, with the
  run's ``sfft.*`` / ``cusim.*`` gauges inline and deltas against a
  baseline entry when one is given;
* :func:`collapsed_stacks` — the classic flamegraph collapsed-stack text
  format (``frame;frame value``), derived from live-span nesting and the
  simulated per-stream timeline tracks (values in integer microseconds,
  ready for ``flamegraph.pl`` or speedscope);
* :func:`sparkline` / :func:`render_trajectory_dashboard` — the
  performance history of ``repro.trajectory/1`` documents as one line per
  ``(experiment, n, k, variant)`` key.

Spans arrive either as live :class:`~repro.obs.trace.Span` objects or as
the plain dicts stored in ``repro.run/1`` records; nesting is
reconstructed from interval containment per track, so both work.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "self_time_rows",
    "collapsed_stacks",
    "render_attribution",
    "sparkline",
    "render_trajectory_dashboard",
]

_EPS = 1e-12

#: Eight-level block ramp (the conventional terminal sparkline glyphs).
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _span_tuple(sp: Any) -> tuple[str, str, str, float, float]:
    """``(track, name, category, start, duration)`` from Span or dict."""
    if isinstance(sp, Mapping):
        return (
            str(sp.get("track", "cpu")),
            str(sp.get("name", "?")),
            str(sp.get("category", "step")),
            float(sp.get("start_s", 0.0)),
            float(sp.get("duration_s", 0.0)),
        )
    return (sp.track, sp.name, sp.category, sp.start_s, sp.duration_s)


def _nest(spans: Iterable[Any]) -> list[dict]:
    """Annotate spans with their enclosing stack, per track.

    Containment is decided purely from intervals: sorted by
    ``(start, -duration)``, a span nests under the innermost open span
    whose interval covers it.  Returns dicts with ``stack`` (outermost
    first, excluding self), ``self_s``, and the base fields.
    """
    by_track: dict[str, list[tuple]] = {}
    for sp in spans:
        track, name, cat, start, dur = _span_tuple(sp)
        by_track.setdefault(track, []).append((start, -dur, name, cat, dur))
    out: list[dict] = []
    for track, items in by_track.items():
        items.sort(key=lambda t: (t[0], t[1]))
        open_stack: list[dict] = []
        for start, _, name, cat, dur in items:
            end = start + dur
            while open_stack and start >= open_stack[-1]["end"] - _EPS:
                out.append(open_stack.pop())
            node = {
                "track": track,
                "name": name,
                "category": cat,
                "start_s": start,
                "duration_s": dur,
                "end": end,
                "stack": [n["name"] for n in open_stack],
                "self_s": dur,
            }
            if open_stack:
                parent = open_stack[-1]
                parent["self_s"] = max(0.0, parent["self_s"] - dur)
            open_stack.append(node)
        out.extend(reversed(open_stack))
    for node in out:
        node.pop("end", None)
    return out


def self_time_rows(spans: Iterable[Any]) -> list[dict]:
    """Per-(track, name) aggregation with self time.

    ``total_s`` sums each span's full duration; ``self_s`` subtracts time
    spent in directly-nested spans, so a fat parent whose children explain
    its cost shows near-zero self time — the attribution Figure 2 needs.
    Sorted by descending self time.
    """
    agg: dict[tuple[str, str], dict] = {}
    for node in _nest(spans):
        slot = agg.setdefault(
            (node["track"], node["name"]),
            {"track": node["track"], "name": node["name"], "calls": 0,
             "total_s": 0.0, "self_s": 0.0},
        )
        slot["calls"] += 1
        slot["total_s"] += node["duration_s"]
        slot["self_s"] += node["self_s"]
    return sorted(agg.values(), key=lambda r: -r["self_s"])


def collapsed_stacks(
    spans: Iterable[Any] = (), *, report=None, root: str | None = None
) -> list[str]:
    """Flamegraph collapsed-stack lines, values in integer microseconds.

    Each line is ``track;ancestors...;name <usec>`` where ``<usec>`` is
    the frame's *self* time.  ``report`` optionally merges a simulated
    :class:`~repro.cusim.timeline.TimelineReport` under a ``gpu`` root via
    :func:`repro.cusim.profiler.kernel_self_times` (useful when the
    timeline was not ingested into a tracer).  Zero-microsecond frames are
    dropped.
    """
    frames: dict[str, int] = {}

    def add(path: Sequence[str], seconds: float) -> None:
        usec = int(round(seconds * 1e6))
        if usec <= 0:
            return
        line = ";".join(path)
        frames[line] = frames.get(line, 0) + usec

    for node in _nest(spans):
        path = [node["track"], *node["stack"], node["name"]]
        if root:
            path.insert(0, root)
        add(path, node["self_s"])
    if report is not None:
        from ..cusim.profiler import kernel_self_times

        for track, name, self_s in kernel_self_times(report):
            path = ["gpu", track, name]
            if root:
                path.insert(0, root)
            add(path, self_s)
    return [f"{line} {usec}" for line, usec in sorted(frames.items())]


def render_attribution(
    spans: Iterable[Any],
    *,
    metrics: Mapping[str, Mapping] | None = None,
    baseline_entry: Mapping | None = None,
    title: str = "per-step attribution",
) -> str:
    """Self-time table with gauge values (and baseline deltas) inline.

    ``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    dict; ``baseline_entry`` one ``entries[key]`` object from a
    ``repro.baseline/1`` document — when given, each span row and gauge
    shows its delta against the baseline median.
    """
    from ..utils.tables import format_seconds, format_table

    base_metrics = (baseline_entry or {}).get("metrics", {})

    def delta(metric_name: str, value: float) -> str:
        stat = base_metrics.get(metric_name)
        if not isinstance(stat, Mapping):
            return "-"
        base = stat.get("median")
        if not isinstance(base, (int, float)) or base == 0:
            return "-"
        return f"{100.0 * (value - base) / base:+.1f}%"

    rows = self_time_rows(spans)
    total_self = sum(r["self_s"] for r in rows) or 1.0
    # Baseline span metrics aggregate across tracks, so the delta must too
    # (a per-stream row compared against the all-streams median would be
    # wildly off for any multi-stream kernel).
    name_totals: dict[str, float] = {}
    for r in rows:
        name_totals[r["name"]] = name_totals.get(r["name"], 0.0) + r["total_s"]
    table_rows = [
        [
            r["track"],
            r["name"],
            r["calls"],
            format_seconds(r["total_s"]),
            format_seconds(r["self_s"]),
            f"{100.0 * r['self_s'] / total_self:.1f}%",
            delta(f"span.{r['name']}.total_s", name_totals[r["name"]]),
        ]
        for r in rows
    ]
    out = format_table(
        ["track", "span", "calls", "total", "self", "self%", "vs base"],
        table_rows,
        title=title,
    ) if rows else "(no spans)"

    gauges = [
        (name, state) for name, state in sorted((metrics or {}).items())
        if isinstance(state, Mapping)
        and isinstance(state.get("value"), (int, float))
        and not isinstance(state.get("value"), bool)
    ]
    if gauges:
        grows = [
            [name, state.get("kind", "?"), f"{float(state['value']):.6g}",
             delta(name, float(state["value"]))]
            for name, state in gauges
        ]
        out += "\n\n" + format_table(
            ["metric", "kind", "value", "vs base"], grows, title="gauges"
        )
    return out


# --------------------------------------------------------------------------
# trajectory dashboard
# --------------------------------------------------------------------------

def sparkline(values: Sequence[float], *, width: int | None = None) -> str:
    """Block-character sparkline of ``values`` (empty input -> '')."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and len(vals) > width > 0:
        # Keep the most recent points; the dashboard reads left-to-right
        # as oldest-to-newest.
        vals = vals[-width:]
    lo, hi = min(vals), max(vals)
    if hi - lo <= _EPS * max(1.0, abs(hi)):
        return SPARK_CHARS[3] * len(vals)
    span = hi - lo
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((v - lo) / span * len(SPARK_CHARS)))]
        for v in vals
    )


def _headline_metric(experiment: str, names: Iterable[str]) -> str | None:
    """Pick the one metric a key's dashboard row shows."""
    names = sorted(names)
    preferred = [
        f"span.{experiment}.total_s",
        "results.sfft_wall_s",
        "results.modeled_gpu_s",
        "cusim.timeline.makespan_s",
    ]
    for name in preferred:
        if name in names:
            return name
    for name in names:
        if name.endswith("_s"):
            return name
    return names[0] if names else None


def render_trajectory_dashboard(
    trajectory: Mapping,
    *,
    baseline: Mapping | None = None,
    width: int = 24,
) -> str:
    """One sparkline row per run key from a ``repro.trajectory/1`` doc.

    Shows the headline metric's history, its latest value, and — when a
    baseline document is given — the latest value's delta against the
    baseline median.
    """
    from ..utils.tables import format_seconds, format_table

    points = trajectory.get("points") or []
    series: dict[str, dict] = {}
    for point in points:
        if not isinstance(point, Mapping):
            continue
        key = point.get("key")
        slot = series.setdefault(
            key, {"experiment": point.get("experiment", "?"), "metrics": {}}
        )
        for mname, value in (point.get("metrics") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                slot["metrics"].setdefault(mname, []).append(float(value))
    if not series:
        return "(empty trajectory)"

    base_entries = (baseline or {}).get("entries", {})
    rows = []
    for key in sorted(series):
        slot = series[key]
        metric = _headline_metric(slot["experiment"], slot["metrics"])
        if metric is None:
            continue
        values = slot["metrics"][metric]
        latest = values[-1]
        shown = (format_seconds(latest) if metric.endswith("_s")
                 else f"{latest:.4g}")
        stat = (base_entries.get(key) or {}).get("metrics", {}).get(metric)
        if isinstance(stat, Mapping) and isinstance(
            stat.get("median"), (int, float)
        ) and stat["median"]:
            vs = f"{100.0 * (latest - stat['median']) / stat['median']:+.1f}%"
        else:
            vs = "-"
        rows.append([
            key, metric, sparkline(values, width=width), len(values),
            shown, vs,
        ])
    return format_table(
        ["key", "metric", "trend", "runs", "latest", "vs base"],
        rows,
        title="performance trajectory",
    )
