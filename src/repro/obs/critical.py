"""Critical-path analysis over the span DAG — *why* a run took as long as it did.

The executor's trace is a set of timed intervals on parallel tracks
(``cpu``, ``executor``, ``worker0``, ``worker1``, ..., simulated
``streamN``).  Total time tells you *that* a run was slow; the **critical
path** tells you *which* work actually bounded the end-to-end wall: the
chain of spans such that shortening anything off the chain cannot shorten
the run at all.

The engine is trace-based (the interval-sweep flavour of the backward
walk distributed-trace critical-path tools use): between any two adjacent
span boundaries (a start or an end) the set of covering spans is
constant, so each elementary interval is charged to the *most binding*
covering span — the one with the latest start, i.e. the innermost /
most recent scheduling decision; a stage span beats its shard wrapper,
a shard beats the ``executor.run`` root, and the root soaks up
orchestration time nothing else covers.  Intervals no span covers at all
are charged to the ``(idle)`` pseudo-stage.  The resulting segments tile
``[first start, last end]`` exactly, so per-stage **path shares always
sum to 1.0** — the property that makes Amdahl-style what-if projections
well-posed:

    speed up a stage with path share ``p`` by factor ``f``
    → the whole run improves by ``1 / (1 - p + p / f)``.

Executor shard spans (``shard3.bucket_fft`` on track ``worker1``) are
normalized to their pipeline stage (``bucket_fft``) for shares, so the
answer reads "the bucket FFT sat on 43% of the critical path", not a
per-shard smear; the per-shard ``queue_wait_s`` attrs the executor records
are surfaced as :attr:`CriticalPath.queue_wait_s`.

Spans arrive either as live :class:`~repro.obs.trace.Span` objects or as
the plain dicts stored in ``repro.run/1`` records — same duck typing as
:mod:`repro.obs.report`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import ParameterError

__all__ = [
    "IDLE_STAGE",
    "PathSegment",
    "CriticalPath",
    "critical_path",
    "stage_of",
    "what_if_speedup",
    "render_critical_path",
]

#: Stage label for intervals no span covers (queue/scheduler gaps).
IDLE_STAGE = "(idle)"

#: Relative tolerance for interval-boundary comparisons.
_EPS_REL = 1e-9

_SHARD_RE = re.compile(r"^shard\d+$")
_SHARD_STAGE_RE = re.compile(r"^shard\d+\.")


def stage_of(name: str) -> str:
    """Normalize a span name to its pipeline stage.

    Executor shard spans fold onto their stage (``shard3.bucket_fft`` →
    ``bucket_fft``; the bare shard wrapper ``shard3`` → ``shard``); every
    other name is already a stage.
    """
    if _SHARD_RE.match(name):
        return "shard"
    return _SHARD_STAGE_RE.sub("", name)


def what_if_speedup(path_share: float, factor: float) -> float:
    """Amdahl projection: whole-run speedup from speeding one stage up.

    ``path_share`` is the stage's fraction of the critical path (0..1),
    ``factor`` the hypothetical per-stage speedup (> 0).  Returns the
    projected end-to-end speedup (>= 1 for factor >= 1 when
    0 <= path_share <= 1).
    """
    if factor <= 0:
        raise ParameterError(f"what-if factor must be > 0, got {factor}")
    if not 0.0 <= path_share <= 1.0:
        raise ParameterError(
            f"path share must be in [0, 1], got {path_share}"
        )
    remaining = (1.0 - path_share) + path_share / factor
    return 1.0 / remaining if remaining > 0 else float("inf")


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path, charged to one span (or idle)."""

    name: str
    track: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Length of the interval."""
        return self.end_s - self.start_s

    @property
    def stage(self) -> str:
        """The segment's normalized stage (see :func:`stage_of`)."""
        return IDLE_STAGE if self.name == IDLE_STAGE else stage_of(self.name)


@dataclass(frozen=True)
class CriticalPath:
    """The end-to-end critical path of one run's trace.

    ``segments`` tile ``[start_s, end_s]`` in time order; ``queue_wait_s``
    sums the ``queue_wait_s`` attrs the executor records on its shard
    spans (0.0 when the trace has none).
    """

    segments: tuple[PathSegment, ...]
    start_s: float
    end_s: float
    queue_wait_s: float = 0.0

    @property
    def makespan_s(self) -> float:
        """End-to-end wall covered by the path (last end - first start)."""
        return self.end_s - self.start_s

    def stage_path_s(self) -> dict[str, float]:
        """Seconds of critical path charged to each stage (descending)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.stage] = out.get(seg.stage, 0.0) + seg.duration_s
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def stage_shares(self) -> dict[str, float]:
        """Fraction of the critical path per stage; sums to 1.0.

        Empty when the trace had no spans (zero makespan).
        """
        span = self.makespan_s
        if span <= 0:
            return {}
        return {
            stage: seconds / span
            for stage, seconds in self.stage_path_s().items()
        }

    def what_if(self, stage: str, factor: float) -> float:
        """Projected whole-run speedup from speeding ``stage`` up ``factor``x.

        A stage absent from the path has share 0 and projects 1.0 (no
        improvement) — off-path work cannot shorten the run.
        """
        share = self.stage_shares().get(stage, 0.0)
        return what_if_speedup(share, factor)


def _span_fields(sp: Any) -> tuple[str, str, float, float, int, dict[str, Any]]:
    """``(track, name, start, duration, depth, attrs)`` from Span or dict."""
    if isinstance(sp, Mapping):
        attrs = sp.get("attrs")
        return (
            str(sp.get("track", "cpu")),
            str(sp.get("name", "?")),
            float(sp.get("start_s", 0.0)),
            float(sp.get("duration_s", 0.0)),
            int(sp.get("depth", 0)),
            dict(attrs) if isinstance(attrs, Mapping) else {},
        )
    return (sp.track, sp.name, sp.start_s, sp.duration_s, sp.depth,
            dict(sp.attrs))


def critical_path(spans: Iterable[Any]) -> CriticalPath:
    """Compute the critical path of a set of spans (all tracks at once).

    Zero-duration spans cannot carry path time and are skipped.  The
    sweep visits every elementary interval between adjacent span
    boundaries, charges it to the latest-starting covering span (ties:
    deepest, then track/name for determinism), and merges adjacent
    intervals charged to the same span name — so the segments tile
    ``[start_s, end_s]`` with no gaps and no overlaps by construction.
    """
    items: list[tuple[float, float, str, str, int]] = []
    queue_wait = 0.0
    for sp in spans:
        track, name, start, dur, depth, attrs = _span_fields(sp)
        wait = attrs.get("queue_wait_s")
        if isinstance(wait, (int, float)) and not isinstance(wait, bool):
            queue_wait += float(wait)
        if dur <= 0:
            continue
        items.append((start, start + dur, name, track, depth))
    if not items:
        return CriticalPath(segments=(), start_s=0.0, end_s=0.0,
                            queue_wait_s=queue_wait)

    t_start = min(it[0] for it in items)
    t_end = max(it[1] for it in items)
    eps = max(t_end - t_start, abs(t_end), 1.0) * _EPS_REL
    cuts = sorted({t for it in items for t in (it[0], it[1])})

    segments: list[PathSegment] = []
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        covering = [
            it for it in items if it[0] <= lo + eps and it[1] >= hi - eps
        ]
        if covering:
            _start, _end, name, track, _depth = max(
                covering, key=lambda it: (it[0], it[4], it[3], it[2])
            )
        else:
            name, track = IDLE_STAGE, ""
        last = segments[-1] if segments else None
        if last is not None and last.name == name and last.track == track:
            segments[-1] = PathSegment(
                name=name, track=track, start_s=last.start_s, end_s=hi,
            )
        else:
            segments.append(PathSegment(
                name=name, track=track, start_s=lo, end_s=hi,
            ))
    return CriticalPath(
        segments=tuple(segments), start_s=t_start, end_s=t_end,
        queue_wait_s=queue_wait,
    )


def render_critical_path(
    cp: CriticalPath,
    *,
    what_if_factor: float = 2.0,
    title: str = "critical path",
) -> str:
    """Stage table: path seconds, share, and the what-if projection.

    The last column answers the question the paper's Figure 2 answers for
    its stages: "if this stage were ``what_if_factor``x faster, how much
    faster would the *run* be?".
    """
    from ..utils.tables import format_seconds, format_table

    shares = cp.stage_shares()
    if not shares:
        return "(no spans — nothing on the critical path)"
    rows = [
        [
            stage,
            format_seconds(seconds),
            f"{100.0 * shares[stage]:.1f}%",
            "-" if stage == IDLE_STAGE
            else f"{cp.what_if(stage, what_if_factor):.2f}x",
        ]
        for stage, seconds in cp.stage_path_s().items()
    ]
    out = format_table(
        ["stage", "path time", "share", f"run if {what_if_factor:g}x faster"],
        rows,
        title=f"{title} (makespan {format_seconds(cp.makespan_s)})",
    )
    if cp.queue_wait_s > 0:
        out += f"\nshard queue wait (sum): {format_seconds(cp.queue_wait_s)}"
    return out
