"""Run records and text rendering — the reporting half of observability.

A *run record* is one JSON object describing one measured run (a transform,
an experiment, a benchmark row set): what ran, with which parameters, what
it measured.  Records append to ``.jsonl`` files — one record per line —
so sweeps accumulate machine-readable history alongside the human-readable
tables, and ``scripts/check_bench_json.py`` can police the schema in CI.

Schema ``repro.run/1`` (see ``docs/observability.md``):

* ``schema`` — the literal ``"repro.run/1"``;
* ``name`` — what ran (experiment id, ``"sfft"``, benchmark id);
* ``params`` — JSON object of inputs (``n``, ``k``, config, ...);
* ``metrics`` — :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` output;
* ``spans`` — ``[{name, category, track, start_s, duration_s, depth,
  attrs?}, ...]`` (``attrs`` only when non-empty; ``depth``/``attrs`` feed
  the critical-path engine in :mod:`repro.obs.critical`);
* optional ``rows``/``headers``/``notes`` for table-shaped results.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Any

from ..errors import ParameterError
from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = [
    "RUN_RECORD_SCHEMA",
    "atomic_append_text",
    "make_run_record",
    "write_jsonl",
    "validate_run_record",
    "render_obs_summary",
]

RUN_RECORD_SCHEMA = "repro.run/1"


def atomic_append_text(path: str, text: str) -> None:
    """Append ``text`` to ``path`` so readers never see a partial write.

    The existing file (if any) is copied to a temp file in the same
    directory, the new text is appended there, the result is fsynced, and
    an atomic ``os.replace`` swaps it in.  A process killed mid-append
    leaves either the old file or the new one — never a truncated line,
    which would break the JSONL schema gate on the next run.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as out:
            if os.path.exists(path):
                with open(path, "rb") as src:
                    shutil.copyfileobj(src, out)
            out.write(text.encode("utf-8"))
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays and containers into plain JSON types."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        value = value.item()
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, complex):
        return {"re": value.real, "im": value.imag}
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if hasattr(value, "tolist"):
        return _jsonify(value.tolist())
    if isinstance(value, (list, tuple, set)):
        return [_jsonify(v) for v in value]
    return str(value)


def make_run_record(
    name: str,
    *,
    params: dict | None = None,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    **extra: Any,
) -> dict:
    """Assemble a schema-valid run record from the run's observability."""
    record: dict[str, Any] = {
        "schema": RUN_RECORD_SCHEMA,
        "name": str(name),
        "params": _jsonify(params or {}),
        "metrics": _jsonify(registry.snapshot()) if registry is not None else {},
        "spans": [
            {
                "name": sp.name,
                "category": sp.category,
                "track": sp.track,
                "start_s": sp.start_s,
                "duration_s": sp.duration_s,
                "depth": sp.depth,
                **({"attrs": _jsonify(dict(sp.attrs))} if sp.attrs else {}),
            }
            for sp in (tracer.spans if tracer is not None else [])
        ],
    }
    for key, value in extra.items():
        record[key] = _jsonify(value)
    return record


def write_jsonl(path: str, record: dict) -> None:
    """Append one run record to a ``.jsonl`` file (one JSON doc per line)."""
    problems = validate_run_record(record)
    if problems:
        raise ParameterError(
            f"refusing to write invalid run record: {problems}"
        )
    atomic_append_text(path, json.dumps(record, separators=(",", ":")) + "\n")


def validate_run_record(record: Any) -> list[str]:
    """Check one run record against ``repro.run/1``; returns problems.

    An empty list means the record is valid.  Shared by the library (which
    refuses to persist invalid records) and ``scripts/check_bench_json.py``
    (which polices committed artifacts in CI).
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be a JSON object, got {type(record).__name__}"]
    if record.get("schema") != RUN_RECORD_SCHEMA:
        problems.append(
            f"schema must be {RUN_RECORD_SCHEMA!r}, got {record.get('schema')!r}"
        )
    name = record.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name must be a non-empty string")
    if not isinstance(record.get("params"), dict):
        problems.append("params must be an object")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for mname, state in metrics.items():
            if not isinstance(state, dict) or "kind" not in state:
                problems.append(f"metric {mname!r} must be an object with 'kind'")
    spans = record.get("spans")
    if not isinstance(spans, list):
        problems.append("spans must be an array")
    else:
        for i, sp in enumerate(spans):
            if not isinstance(sp, dict):
                problems.append(f"spans[{i}] must be an object")
                continue
            for key in ("name", "start_s", "duration_s"):
                if key not in sp:
                    problems.append(f"spans[{i}] missing {key!r}")
            for key in ("start_s", "duration_s"):
                val = sp.get(key)
                if isinstance(val, (int, float)) and val < 0:
                    problems.append(f"spans[{i}].{key} must be >= 0, got {val}")
    return problems


def render_obs_summary(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    *,
    title: str = "observability summary",
) -> str:
    """Human-readable digest of a run's spans and metrics.

    Subsumes the old per-kernel text summary: span names aggregate exactly
    like kernel names (calls, total, share), and the metrics section prints
    every registered instrument.  The nvprof-flavoured
    :func:`~repro.cusim.profiler.render_summary` remains for
    timeline-specific fields (coalescing, transfers).
    """
    from ..utils.tables import format_seconds, format_table

    lines: list[str] = []
    if tracer is not None and tracer.spans:
        groups: dict[str, list] = {}
        for sp in tracer.spans:
            groups.setdefault(sp.name, []).append(sp)
        total = sum(sp.duration_s for sp in tracer.spans)
        rows = [
            [
                name,
                len(sps),
                format_seconds(sum(s.duration_s for s in sps)),
                f"{100 * sum(s.duration_s for s in sps) / total:.1f}%"
                if total > 0
                else "-",
            ]
            for name, sps in sorted(
                groups.items(),
                key=lambda kv: -sum(s.duration_s for s in kv[1]),
            )
        ]
        lines.append(
            format_table(["span", "calls", "total", "share"], rows, title=title)
        )
    if registry is not None and registry.names():
        snap = registry.snapshot()
        mrows = []
        for name in registry.names():
            state = dict(snap[name])
            kind = state.pop("kind")
            desc = ", ".join(f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                             for k, v in state.items())
            mrows.append([name, kind, desc])
        lines.append(format_table(["metric", "kind", "value"], mrows,
                                  title="metrics"))
    if not lines:
        return "(no observability data)"
    return "\n\n".join(lines)
