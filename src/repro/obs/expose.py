"""Streaming export — Prometheus text, telemetry JSONL, live dashboard.

The run-record pipeline persists *one* document per finished run; a live
process needs its registry visible *while it runs*.  Three surfaces, all
reading the same :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_prometheus` — the whole registry in Prometheus text
  exposition format (version 0.0.4).  Naming mapping: dots become
  underscores (``sfft.plan_cache.bytes`` → ``sfft_plan_cache_bytes``),
  counters gain the conventional ``_total`` suffix, histograms render as
  summaries with ``quantile`` labels plus ``_sum`` / ``_count``;
* ``repro.telemetry/1`` records — a periodic JSONL heartbeat
  (:func:`make_telemetry_record` / :func:`validate_telemetry_record`,
  policed by ``scripts/check_bench_json.py`` like every other schema),
  appended crash-safely by the :class:`TelemetryFlusher` daemon thread;
* :func:`dashboard_sample` / :func:`render_dashboard` — the ASCII
  ``python -m repro top`` view: sparkline history of queue wait, shard
  wall p50/p99, plan-cache hit rate and bytes, traced memory.

Schema ``repro.telemetry/1``:

* ``schema`` — the literal ``"repro.telemetry/1"``;
* ``seq`` — record sequence number within one flusher, 0-based;
* ``ts_s`` — :func:`~repro.obs.trace.monotonic` timestamp (>= 0);
* ``metrics`` — :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`;
* optional ``events`` / ``dropped`` — flight-recorder occupancy and loss.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Mapping, Sequence

from ..errors import ParameterError
from .export import atomic_append_text
from .metrics import MetricsRegistry, global_registry
from .report import sparkline
from .trace import monotonic

__all__ = [
    "TELEMETRY_SCHEMA",
    "TelemetryFlusher",
    "dashboard_sample",
    "make_telemetry_record",
    "prometheus_name",
    "render_dashboard",
    "render_prometheus",
    "validate_telemetry_record",
]

TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Histogram percentiles exported as Prometheus summary quantiles.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------

def prometheus_name(name: str) -> str:
    """The registry's dotted name in Prometheus spelling.

    Dots (the registry's namespace separator) and dashes become
    underscores; the scheme's names are already lowercase ``[a-z0-9_.]``
    (lint rule ``metric-name-family``), so nothing else needs escaping.
    """
    return name.replace(".", "_").replace("-", "_")


def _num(value: Any) -> str:
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Counters render as ``<name>_total``, gauges as-is (unset gauges are
    skipped — no value is not 0), histograms as summaries with p50/p90/p99
    ``quantile`` labels plus ``_sum`` and ``_count`` series.  Ends with a
    newline, as scrapers expect.
    """
    reg = registry if registry is not None else global_registry()
    snap = reg.snapshot()
    lines: list[str] = []
    for name in sorted(snap):
        state = snap[name]
        kind = state.get("kind")
        pname = prometheus_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_num(state.get('value', 0.0))}")
        elif kind == "gauge":
            value = state.get("value")
            if value is None:
                continue
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_num(value)}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} summary")
            count = int(state.get("count", 0))
            for quantile, stat in _QUANTILES:
                if stat in state:
                    lines.append(
                        f'{pname}{{quantile="{quantile}"}} '
                        f"{_num(state[stat])}"
                    )
            lines.append(f"{pname}_sum {_num(state.get('sum', 0.0))}")
            lines.append(f"{pname}_count {_num(count)}")
    return "\n".join(lines) + "\n" if lines else "\n"


# --------------------------------------------------------------------------
# repro.telemetry/1 records
# --------------------------------------------------------------------------

def make_telemetry_record(
    registry: MetricsRegistry | None = None,
    *,
    seq: int,
    ts_s: float | None = None,
    events: int | None = None,
    dropped: int | None = None,
) -> dict[str, Any]:
    """One schema-valid ``repro.telemetry/1`` heartbeat record."""
    record: dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "seq": int(seq),
        "ts_s": monotonic() if ts_s is None else float(ts_s),
        "metrics": (
            registry if registry is not None else global_registry()
        ).snapshot(),
    }
    if events is not None:
        record["events"] = int(events)
    if dropped is not None:
        record["dropped"] = int(dropped)
    return record


def validate_telemetry_record(record: Any) -> list[str]:
    """Check one record against ``repro.telemetry/1``; returns problems.

    Empty list means valid — same contract as
    :func:`~repro.obs.export.validate_run_record`, shared by the library
    and ``scripts/check_bench_json.py``.
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be a JSON object, got {type(record).__name__}"]
    if record.get("schema") != TELEMETRY_SCHEMA:
        problems.append(
            f"schema must be {TELEMETRY_SCHEMA!r}, got {record.get('schema')!r}"
        )
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        problems.append(f"seq must be an integer >= 0, got {seq!r}")
    ts = record.get("ts_s")
    if (
        not isinstance(ts, (int, float))
        or isinstance(ts, bool)
        or ts < 0
    ):
        problems.append(f"ts_s must be a number >= 0, got {ts!r}")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for mname, state in metrics.items():
            if not isinstance(state, dict) or "kind" not in state:
                problems.append(
                    f"metric {mname!r} must be an object with 'kind'"
                )
    for key in ("events", "dropped"):
        if key in record:
            value = record[key]
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                problems.append(
                    f"{key} must be an integer >= 0, got {value!r}"
                )
    return problems


class TelemetryFlusher:
    """Daemon thread appending telemetry records to a JSONL file.

    Each flush snapshots the registry into a ``repro.telemetry/1`` record
    and appends it crash-safely (:func:`~repro.obs.export.
    atomic_append_text`), so a killed process never leaves a truncated
    line.  ``recorder`` (optional, duck-typed as ``__len__`` +
    ``dropped``) annotates each record with flight-recorder occupancy.

    Start/stop semantics are clean by construction: :meth:`start` flushes
    immediately (the file exists from the first instant), :meth:`stop`
    flushes one final record and joins the thread; both are idempotent
    enough for ``with`` use.
    """

    def __init__(
        self,
        path: str,
        registry: MetricsRegistry | None = None,
        *,
        interval_s: float = 1.0,
        recorder: Any = None,
    ) -> None:
        if interval_s <= 0:
            raise ParameterError(
                f"interval_s must be > 0, got {interval_s}"
            )
        self.path = str(path)
        self.interval_s = float(interval_s)
        self._registry = registry if registry is not None else global_registry()
        self._recorder = recorder
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def seq(self) -> int:
        """Records written so far."""
        with self._seq_lock:
            return self._seq

    def flush_now(self) -> dict[str, Any]:
        """Append one record immediately; returns it."""
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        events = dropped = None
        if self._recorder is not None:
            events = len(self._recorder)
            dropped = int(self._recorder.dropped)
        record = make_telemetry_record(
            self._registry, seq=seq, events=events, dropped=dropped
        )
        problems = validate_telemetry_record(record)
        if problems:
            raise ParameterError(
                f"refusing to write invalid telemetry record: {problems}"
            )
        atomic_append_text(
            self.path, json.dumps(record, separators=(",", ":")) + "\n"
        )
        return record

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.flush_now()

    def start(self) -> "TelemetryFlusher":
        """Flush once, then keep flushing every interval; returns self."""
        if self._thread is not None:
            raise ParameterError("flusher is already running")
        self.flush_now()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry-flusher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread (joined) and flush one final record."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout)
        self.flush_now()

    def __enter__(self) -> "TelemetryFlusher":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


# --------------------------------------------------------------------------
# live dashboard (`python -m repro top`)
# --------------------------------------------------------------------------

def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f} ms"
    return f"{value * 1e6:.0f} us"


def _fmt_bytes(value: float | None) -> str:
    if value is None:
        return "-"
    size = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.0f} {unit}" if unit == "B" else f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} GiB"


def dashboard_sample(
    registry: MetricsRegistry | None = None,
) -> dict[str, float | None]:
    """One timestamped reading of the dashboard's headline series.

    Pulls from the executor family (queue wait / shard wall percentiles),
    the plan cache (hit rate, bytes), the memory sampler, and the flight
    recorder's drop counter.  Missing instruments read as ``None`` — the
    dashboard renders before the first transform lands.
    """
    reg = registry if registry is not None else global_registry()
    snap = reg.snapshot()

    def gauge(name: str) -> float | None:
        state = snap.get(name)
        if state is None or state.get("kind") != "gauge":
            return None
        value = state.get("value")
        return None if value is None else float(value)

    def counter(name: str) -> float | None:
        state = snap.get(name)
        if state is None or state.get("kind") != "counter":
            return None
        return float(state.get("value", 0.0))

    def hist(name: str, stat: str) -> float | None:
        state = snap.get(name)
        if state is None or state.get("kind") != "histogram" \
                or stat not in state:
            return None
        return float(state[stat])

    hit = counter("sfft.plan_cache.hit")
    miss = counter("sfft.plan_cache.miss")
    hit_rate = gauge("sfft.plan_cache.hit_rate")
    if hit_rate is None and hit is not None and miss is not None \
            and hit + miss > 0:
        hit_rate = hit / (hit + miss)
    return {
        "ts_s": monotonic(),
        "queue_wait_p50_s": hist("sfft.executor.queue_wait_s", "p50"),
        "queue_wait_p99_s": hist("sfft.executor.queue_wait_s", "p99"),
        "shard_wall_p50_s": hist("sfft.executor.shard_wall_s", "p50"),
        "shard_wall_p99_s": hist("sfft.executor.shard_wall_s", "p99"),
        "plan_cache_hit_rate": hit_rate,
        "plan_cache_bytes": gauge("sfft.plan_cache.bytes"),
        "traced_bytes": gauge("sfft.mem.traced_bytes"),
        "flight_dropped": counter("sfft.flight.dropped"),
    }


#: Dashboard rows: (sample key, label, formatter tag).
_DASH_ROWS = (
    ("queue_wait_p50_s", "queue wait p50", "s"),
    ("queue_wait_p99_s", "queue wait p99", "s"),
    ("shard_wall_p50_s", "shard wall p50", "s"),
    ("shard_wall_p99_s", "shard wall p99", "s"),
    ("plan_cache_hit_rate", "plan cache hit rate", "ratio"),
    ("plan_cache_bytes", "plan cache bytes", "bytes"),
    ("traced_bytes", "traced memory", "bytes"),
    ("flight_dropped", "flight dropped", "count"),
)


def render_dashboard(
    samples: Sequence[Mapping[str, float | None]],
    *,
    title: str = "live telemetry",
    width: int = 32,
) -> str:
    """The ``python -m repro top`` frame: one sparkline row per series.

    ``samples`` is a history of :func:`dashboard_sample` dicts, oldest
    first; each row shows the series trend and its latest value.  Series
    with no data yet render as ``(no data)``.
    """
    latest = samples[-1] if samples else {}
    lines = [f"{title}  ({len(samples)} sample(s))"]
    label_w = max(len(label) for _, label, _ in _DASH_ROWS)
    for key, label, tag in _DASH_ROWS:
        history = [
            float(v) for s in samples
            if (v := s.get(key)) is not None
        ]
        if not history:
            lines.append(f"  {label.ljust(label_w)}  (no data)")
            continue
        value = latest.get(key)
        value = history[-1] if value is None else float(value)
        if tag == "s":
            shown = _fmt_seconds(value)
        elif tag == "bytes":
            shown = _fmt_bytes(value)
        elif tag == "ratio":
            shown = f"{100.0 * value:.1f}%"
        else:
            shown = f"{value:.0f}"
        trend = sparkline(history, width=width)
        lines.append(
            f"  {label.ljust(label_w)}  {trend.ljust(width)}  {shown}"
        )
    return "\n".join(lines)
