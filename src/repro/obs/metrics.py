"""Metrics — the counts half of the observability layer.

A :class:`MetricsRegistry` holds named counters, gauges, and histograms
behind one lock, so the CPU reference, the simulated GPU, and the benchmark
harness can all report into the same namespace:

* ``sfft.*`` — algorithm-level metrics both pipelines emit
  (:func:`emit_sfft_metrics`): bucket occupancy, recovery votes/hits,
  hash collisions;
* ``cusim.*`` — device-model metrics the timeline emits
  (:meth:`~repro.cusim.timeline.TimelineReport.emit_metrics`): makespan,
  kernel time, coalescing efficiency, launch/transfer counts.

Naming scheme: dot-separated ``<subsystem>.<object>.<measure>``, lowercase,
units spelled in the trailing segment where ambiguous (``_s``, ``_bytes``).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricUpdate",
    "global_registry",
    "emit_sfft_metrics",
]

#: Subscription callback signature: ``(name, kind, value)`` per update.
MetricUpdate = Callable[[str, str, float], None]


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        notify: MetricUpdate | None = None,
    ) -> None:
        self.name = name
        self._lock = lock
        self._notify = notify
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ParameterError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount
            value = self.value
        if self._notify is not None:
            self._notify(self.name, self.kind, value)

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        notify: MetricUpdate | None = None,
    ) -> None:
        self.name = name
        self._lock = lock
        self._notify = notify
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = float(value)
        if self._notify is not None:
            self._notify(self.name, self.kind, float(value))

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Distribution of observed samples (all samples kept; runs are short)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        notify: MetricUpdate | None = None,
    ) -> None:
        self.name = name
        self._lock = lock
        self._notify = notify
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self.samples.append(float(value))
        if self._notify is not None:
            self._notify(self.name, self.kind, float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples."""
        vals = [float(v) for v in values]
        with self._lock:
            self.samples.extend(vals)
        if self._notify is not None:
            for v in vals:
                self._notify(self.name, self.kind, v)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100, linear interpolation).

        Raises :class:`~repro.errors.ParameterError` on an empty histogram
        or a ``q`` outside [0, 100].
        """
        if not 0.0 <= q <= 100.0:
            raise ParameterError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            s = list(self.samples)
        if not s:
            raise ParameterError(
                f"histogram {self.name!r} has no samples to take a "
                f"percentile of"
            )
        return float(np.percentile(s, q))

    def snapshot(self) -> dict:
        """JSON-ready summary statistics (incl. p50/p90/p99)."""
        with self._lock:
            s = list(self.samples)
        if not s:
            return {"kind": self.kind, "count": 0}
        p50, p90, p99 = (float(v) for v in np.percentile(s, [50, 90, 99]))
        return {
            "kind": self.kind,
            "count": len(s),
            "sum": float(sum(s)),
            "min": float(min(s)),
            "max": float(max(s)),
            "mean": float(sum(s) / len(s)),
            "p50": p50,
            "p90": p90,
            "p99": p99,
        }


class MetricsRegistry:
    """Thread-safe, create-on-first-use registry of named instruments.

    Asking for an existing name with a different instrument kind raises
    :class:`~repro.errors.ParameterError` — a name means one thing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._subscribers: list[MetricUpdate] = []
        self._notifying = threading.local()

    def subscribe(self, fn: MetricUpdate) -> Callable[[], None]:
        """Call ``fn(name, kind, value)`` after every instrument update.

        Callbacks run on the updating thread, outside the registry lock,
        and are re-entrancy guarded: updates a callback itself makes do
        not trigger further callbacks (so a subscriber may record its own
        bookkeeping metrics without recursing).  Returns an unsubscribe
        callable.
        """
        with self._lock:
            self._subscribers.append(fn)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(fn)
                except ValueError:
                    pass

        return unsubscribe

    def _notify(self, name: str, kind: str, value: float) -> None:
        if getattr(self._notifying, "active", False):
            return
        with self._lock:
            subs = list(self._subscribers)
        if not subs:
            return
        self._notifying.active = True
        try:
            for fn in subs:
                fn(name, kind, value)
        finally:
            self._notifying.active = False

    def _get(self, name: str, cls: type) -> Counter | Gauge | Histogram:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, self._lock, self._notify)
                self._instruments[name] = inst
        if not isinstance(inst, cls):
            raise ParameterError(
                f"metric {name!r} is a {inst.kind}, not a {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        """Sorted registered metric names."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready ``{name: state}`` for every instrument."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in items}

    def reset(self) -> None:
        """Drop every instrument and subscriber (tests and fresh runs)."""
        with self._lock:
            self._instruments.clear()
            self._subscribers.clear()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (used when none is passed)."""
    return _GLOBAL


def emit_sfft_metrics(
    registry: MetricsRegistry,
    *,
    B: int,
    n: int,
    selected_sizes: list[int],
    hits: np.ndarray,
    votes: np.ndarray,
    permutations: Sequence,
) -> None:
    """Publish the shared ``sfft.*`` metrics one transform produces.

    Called by both the CPU reference driver and the simulated-GPU pipeline
    with identical semantics, so cross-backend dashboards line up:

    * ``sfft.buckets.occupancy`` — mean fraction of the ``B`` buckets that
      survived the cutoff, per voting loop;
    * ``sfft.recovery.hits`` — recovered locations (pre-trim);
    * ``sfft.recovery.votes`` — vote-count distribution over the hits;
    * ``sfft.collisions`` — hits sharing a bucket with another hit under
      some loop's permutation (the hash collisions Section IV reasons
      about).
    """
    if selected_sizes:
        occ = sum(s / B for s in selected_sizes) / len(selected_sizes)
        registry.gauge("sfft.buckets.occupancy").set(occ)
    registry.gauge("sfft.recovery.hits").set(int(hits.size))
    registry.histogram("sfft.recovery.votes").observe_many(
        np.asarray(votes, dtype=np.int64).tolist()
    )
    collisions = 0
    if hits.size:
        h = np.asarray(hits, dtype=np.int64)
        n_div_b = n // B
        for perm in permutations[: len(selected_sizes)]:
            permuted = (h * perm.sigma) % n
            buckets = ((permuted + n_div_b // 2) // n_div_b) % B
            collisions += int(h.size - np.unique(buckets).size)
    registry.counter("sfft.collisions").inc(collisions)
