"""Baselines, trajectories, and the performance-regression gate.

PR 1 made every path emit ``repro.run/1`` records; this module *consumes*
them, closing the loop the sFFT evaluation literature runs on (runtime
vs. ``(n, k)`` trajectories, per-stage attribution):

* a **baseline** (``repro.baseline/1``) snapshots the per-metric median and
  IQR of a set of run records, keyed by ``(experiment, n, k, variant)`` —
  the committed reference every future PR's numbers are judged against;
* a **trajectory** (``repro.trajectory/1``) is an append-only series of
  per-run metric points under the same keys — the repo's performance
  history, renderable as sparklines by :mod:`repro.obs.report`;
* :func:`compare_to_baseline` is the noise-aware gate: a fresh median must
  exceed the baseline median by a per-class relative threshold *plus* an
  IQR band *plus* an absolute floor before a regression is confirmed, so
  timer jitter cannot fail CI while a real slowdown (the 3x perm+filter
  kind) cannot hide.

Metric *classes* carry their own tolerances because their noise differs:

* ``wall`` — host wall-clock span totals (noisy; generous threshold);
* ``modeled`` — simulated-device counters and modeled row values
  (deterministic; tight threshold, safe to compare across machines);
* ``accuracy`` — error metrics (seeded, nearly deterministic);
* ``memory`` — byte-count gauges (``*.bytes`` / ``*_bytes`` outside the
  deterministic ``cusim.*`` family): allocator-dependent but far steadier
  than wall clocks, so they get a middling threshold and a page-sized
  absolute floor.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import ParameterError

__all__ = [
    "BASELINE_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "METRIC_CLASSES",
    "GateConfig",
    "MetricCheck",
    "GateVerdict",
    "run_key",
    "extract_metrics",
    "collect_samples",
    "make_baseline",
    "make_trajectory_points",
    "append_trajectory",
    "compare_to_baseline",
    "prune_runs",
    "prune_trajectory",
    "validate_baseline",
    "validate_trajectory",
    "render_verdict",
]

BASELINE_SCHEMA = "repro.baseline/1"
TRAJECTORY_SCHEMA = "repro.trajectory/1"

#: Metric classes the gate distinguishes (each with its own tolerance).
METRIC_CLASSES = ("wall", "modeled", "accuracy", "memory")

#: Statuses a single metric check can land on.  Only ``regression`` fails
#: the gate; ``new`` / ``missing`` report coverage drift without failing.
CHECK_STATUSES = ("ok", "regression", "improvement", "new", "missing")


def _default_thresholds() -> dict[str, float]:
    return {"wall": 0.30, "modeled": 0.05, "accuracy": 0.50, "memory": 0.25}


def _default_min_abs() -> dict[str, float]:
    # wall: ignore sub-millisecond jitter outright; modeled/accuracy are
    # deterministic so the floor only absorbs float formatting noise;
    # memory: one 4 KiB page absorbs allocator rounding.
    return {"wall": 1e-3, "modeled": 1e-9, "accuracy": 1e-12,
            "memory": 4096.0}


@dataclass(frozen=True)
class GateConfig:
    """Tunable decision rule for :func:`compare_to_baseline`.

    A fresh median is a **regression** when::

        fresh > base * (1 + thresholds[class]) + iqr_factor * max(IQRs)
                                               + min_abs[class]

    and an **improvement** under the symmetric lower bound.  ``classes``
    restricts which metric classes are compared at all (CI compares only
    machine-independent classes against a committed baseline).
    """

    thresholds: Mapping[str, float] = field(default_factory=_default_thresholds)
    min_abs: Mapping[str, float] = field(default_factory=_default_min_abs)
    iqr_factor: float = 1.5
    classes: tuple[str, ...] = METRIC_CLASSES


@dataclass(frozen=True)
class MetricCheck:
    """Verdict for one metric under one run key."""

    key: str
    metric: str
    klass: str
    status: str
    base_median: float | None = None
    fresh_median: float | None = None
    band: float | None = None

    @property
    def ratio(self) -> float | None:
        """fresh / base, when both sides exist and base is nonzero."""
        if self.base_median and self.fresh_median is not None:
            return self.fresh_median / self.base_median
        return None

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "metric": self.metric,
            "class": self.klass,
            "status": self.status,
            "base_median": self.base_median,
            "fresh_median": self.fresh_median,
            "band": self.band,
            "ratio": self.ratio,
        }


@dataclass(frozen=True)
class GateVerdict:
    """Machine-readable outcome of one gate evaluation."""

    status: str                      # "ok" | "regression" | "no-baseline"
    checks: tuple[MetricCheck, ...] = ()

    def regressions(self) -> list[MetricCheck]:
        """Only the confirmed-regression checks."""
        return [c for c in self.checks if c.status == "regression"]

    def to_json(self) -> dict:
        return {
            "schema": "repro.gate/1",
            "status": self.status,
            "regressions": len(self.regressions()),
            "checks": [c.to_json() for c in self.checks],
        }


# --------------------------------------------------------------------------
# extraction: repro.run/1 record -> comparable (class, value) metrics
# --------------------------------------------------------------------------

_QUANTITY_RE = re.compile(
    r"^(-?\d+(?:\.\d+)?(?:e[+-]?\d+)?)\s*(s|ms|us|ns|x|%)?$", re.IGNORECASE
)
_UNIT_SCALE = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9,
               "x": 1.0, "%": 0.01, None: 1.0}


def parse_quantity(cell: Any) -> float | None:
    """Numeric value of a table cell, or ``None`` if it isn't one.

    Understands the harness's own formats: plain numbers,
    :func:`~repro.utils.tables.format_seconds` strings (``"1.234 ms"``),
    ``format_ratio`` strings (``"14.90x"``), and percentages.
    """
    if isinstance(cell, bool):
        return None
    if isinstance(cell, (int, float)):
        return float(cell)
    if not isinstance(cell, str):
        return None
    m = _QUANTITY_RE.match(cell.strip())
    if m is None:
        return None
    return float(m.group(1)) * _UNIT_SCALE[m.group(2) and m.group(2).lower()]


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9_^.-]+", "_", str(text).strip().lower()).strip("_")


def run_key(record: Mapping) -> tuple[str, dict]:
    """``(key string, meta)`` identifying comparable runs of one record.

    Runs compare only within the same ``(experiment, n, k, variant)``
    cell — the axes the paper's Figure 5 sweeps.
    """
    params = record.get("params") or {}
    meta = {
        "experiment": str(record.get("name", "?")),
        "n": params.get("n"),
        "k": params.get("k"),
        "variant": str(params.get("variant", "default")),
    }
    key = (f"{meta['experiment']}|n={meta['n']}|k={meta['k']}"
           f"|{meta['variant']}")
    return key, meta


def extract_metrics(record: Mapping) -> dict[str, tuple[str, float]]:
    """``{metric name: (class, value)}`` comparable metrics of one record.

    Only metrics with an unambiguous "higher is worse" direction are
    extracted (times, error); count-like ``sfft.*`` gauges are reported
    elsewhere but not gated on.
    """
    out: dict[str, tuple[str, float]] = {}

    # Span totals: live spans are wall-clock, simulated-timeline spans
    # (category "cusim") are modeled device time.
    for sp in record.get("spans") or []:
        if not isinstance(sp, Mapping):
            continue
        name, dur = sp.get("name"), sp.get("duration_s")
        if not isinstance(name, str) or not isinstance(dur, (int, float)):
            continue
        klass = "modeled" if sp.get("category") == "cusim" else "wall"
        mname = f"span.{name}.total_s"
        cls, total = out.get(mname, (klass, 0.0))
        out[mname] = (cls, total + float(dur))

    # Registry snapshot: cusim.* device model values are deterministic.
    for mname, state in (record.get("metrics") or {}).items():
        if not isinstance(state, Mapping):
            continue
        value = state.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        lowered = mname.lower()
        if "error" in lowered or "l1" in lowered:
            out[mname] = ("accuracy", float(value))
        elif mname.startswith("cusim."):
            # Includes cusim.*_bytes: modeled wire traffic stays in the
            # deterministic class committed baselines already use.
            out[mname] = ("modeled", float(value))
        elif lowered.endswith("_bytes") or lowered.endswith(".bytes"):
            out[mname] = ("memory", float(value))

    # Demo-style scalar results.
    for rname, value in (record.get("results") or {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        lowered = rname.lower()
        if "error" in lowered or "l1" in lowered:
            klass = "accuracy"
        elif "modeled" in lowered:
            klass = "modeled"
        elif lowered.endswith("_bytes"):
            klass = "memory"
        elif lowered.endswith("_s") or "wall" in lowered:
            klass = "wall"
        else:
            continue
        out[f"results.{rname}"] = (klass, float(value))

    # Table rows: modeled sweep values, parsed back out of their
    # human-formatted cells (deterministic, so cross-machine comparable).
    headers = record.get("headers")
    rows = record.get("rows")
    if isinstance(headers, list) and isinstance(rows, list) and headers:
        for row in rows:
            if not isinstance(row, list) or len(row) != len(headers):
                continue
            label = _slug(row[0]) if row else ""
            for header, cell in zip(headers[1:], row[1:]):
                value = parse_quantity(cell)
                if value is None:
                    continue
                lowered = str(header).lower()
                klass = ("accuracy" if "error" in lowered or "l1" in lowered
                         else "modeled")
                out[f"row.{label}.{_slug(header)}"] = (klass, value)
    return out


def collect_samples(records: Iterable[Mapping]) -> dict[str, dict]:
    """Group record metrics by run key.

    Returns ``{key: {"meta": ..., "metrics": {name: {"class": ...,
    "values": [...]}}}}`` with one value per record that produced the
    metric.
    """
    grouped: dict[str, dict] = {}
    for record in records:
        key, meta = run_key(record)
        entry = grouped.setdefault(key, {"meta": meta, "metrics": {}})
        for mname, (klass, value) in extract_metrics(record).items():
            slot = entry["metrics"].setdefault(
                mname, {"class": klass, "values": []}
            )
            slot["values"].append(value)
    return grouped


def _median(values: list[float]) -> float:
    return float(np.median(values))


def _iqr(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    q75, q25 = np.percentile(values, [75, 25])
    return float(q75 - q25)


# --------------------------------------------------------------------------
# baseline / trajectory documents
# --------------------------------------------------------------------------

def make_baseline(records: Iterable[Mapping], *, source: str = "bench_gate") -> dict:
    """Snapshot run records into a ``repro.baseline/1`` document."""
    entries = {}
    for key, entry in sorted(collect_samples(records).items()):
        metrics = {
            mname: {
                "class": slot["class"],
                "median": _median(slot["values"]),
                "iqr": _iqr(slot["values"]),
                "count": len(slot["values"]),
            }
            for mname, slot in sorted(entry["metrics"].items())
        }
        entries[key] = {**entry["meta"], "metrics": metrics}
    return {"schema": BASELINE_SCHEMA, "source": source, "entries": entries}


def make_trajectory_points(
    records: Iterable[Mapping], *, session: str | None = None
) -> list[dict]:
    """One trajectory point per record (append-only history rows)."""
    points = []
    for record in records:
        key, meta = run_key(record)
        metrics = {m: v for m, (_, v) in sorted(extract_metrics(record).items())}
        if not metrics:
            continue
        point = {"key": key, **meta, "metrics": metrics}
        if session is not None:
            point["session"] = str(session)
        points.append(point)
    return points


def append_trajectory(
    path: str, records: Iterable[Mapping], *, session: str | None = None
) -> int:
    """Append points for ``records`` to the trajectory file at ``path``.

    Creates the file when absent; returns the number of points appended.
    The document is append-only by contract — existing points are never
    rewritten.  Points whose ``(key, metrics)`` already appear verbatim
    are skipped, so feeding the same runs file through both the bench
    session hook and ``bench_gate`` does not double history (distinct
    real runs always differ in their wall-clock floats).
    """
    if os.path.exists(path):
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        problems = validate_trajectory(doc)
        if problems:
            raise ParameterError(
                f"refusing to append to invalid trajectory {path}: {problems}"
            )
    else:
        doc = {"schema": TRAJECTORY_SCHEMA, "points": []}
    seen = {
        json.dumps([p.get("key"), p.get("metrics")], sort_keys=True)
        for p in doc["points"]
    }
    points = []
    for point in make_trajectory_points(records, session=session):
        ident = json.dumps([point.get("key"), point.get("metrics")],
                           sort_keys=True)
        if ident in seen:
            continue
        seen.add(ident)
        points.append(point)
    doc["points"].extend(points)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return len(points)


# --------------------------------------------------------------------------
# pruning: compact the append-only files without losing history semantics
# --------------------------------------------------------------------------

def _atomic_write_text(path: str, text: str) -> None:
    """Replace ``path``'s contents atomically (same dance as appends)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as out:
            out.write(text)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _keep_last_per_key(
    keys: list[str], keep_per_key: int | None
) -> list[bool]:
    """Keep-mask over ``keys``: the newest ``keep_per_key`` of each key.

    ``None`` keeps everything (the caller is only deduplicating).
    """
    if keep_per_key is None:
        return [True] * len(keys)
    if keep_per_key < 1:
        raise ParameterError(
            f"keep_per_key must be >= 1 (or None), got {keep_per_key}"
        )
    counts: dict[str, int] = {}
    mask = [False] * len(keys)
    for i in range(len(keys) - 1, -1, -1):
        seen = counts.get(keys[i], 0)
        if seen < keep_per_key:
            mask[i] = True
            counts[keys[i]] = seen + 1
    return mask


def prune_trajectory(
    path: str, *, keep_per_key: int | None = None
) -> tuple[int, int]:
    """Compact a ``repro.trajectory/1`` file in place.

    Drops verbatim-duplicate points (same ``(key, metrics)`` identity the
    append path dedupes on — duplicates can still accumulate when the file
    predates deduplication or was concatenated) and, when ``keep_per_key``
    is given, superseded points beyond the newest N per run key.
    Surviving points keep their original relative order, so the document
    stays a valid trajectory: history ordered oldest-to-newest, just
    shorter.  Returns ``(kept, dropped)``.
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = validate_trajectory(doc)
    if problems:
        raise ParameterError(
            f"refusing to prune invalid trajectory {path}: {problems[:3]}"
        )
    points = doc["points"]
    seen: set[str] = set()
    deduped = []
    for point in points:
        ident = json.dumps([point.get("key"), point.get("metrics")],
                           sort_keys=True)
        if ident in seen:
            continue
        seen.add(ident)
        deduped.append(point)
    mask = _keep_last_per_key(
        [str(p.get("key")) for p in deduped], keep_per_key
    )
    kept = [p for p, keep in zip(deduped, mask) if keep]
    doc["points"] = kept
    _atomic_write_text(
        path, json.dumps(doc, separators=(",", ":")) + "\n"
    )
    return len(kept), len(points) - len(kept)


def prune_runs(path: str, *, keep_per_key: int | None = None) -> tuple[int, int]:
    """Compact a ``repro.run/1`` JSONL file in place.

    Same policy as :func:`prune_trajectory`: drop byte-identical duplicate
    records, then (optionally) keep only the newest ``keep_per_key``
    records per run key.  Refuses files with invalid lines rather than
    silently discarding them.  Returns ``(kept, dropped)``.
    """
    from .export import validate_run_record

    lines: list[str] = []
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ParameterError(
                    f"refusing to prune {path}: line {lineno} is not JSON "
                    f"({exc})"
                ) from exc
            problems = validate_run_record(record)
            if problems:
                raise ParameterError(
                    f"refusing to prune {path}: line {lineno}: {problems[0]}"
                )
            lines.append(line)
            records.append(record)
    total = len(lines)
    seen: set[str] = set()
    deduped: list[tuple[str, dict]] = []
    for line, record in zip(lines, records):
        if line in seen:
            continue
        seen.add(line)
        deduped.append((line, record))
    mask = _keep_last_per_key(
        [run_key(record)[0] for _, record in deduped], keep_per_key
    )
    kept = [line for (line, _), keep in zip(deduped, mask) if keep]
    _atomic_write_text(path, "".join(line + "\n" for line in kept))
    return len(kept), total - len(kept)


# --------------------------------------------------------------------------
# the gate
# --------------------------------------------------------------------------

def compare_to_baseline(
    baseline: Mapping,
    records: Iterable[Mapping],
    config: GateConfig | None = None,
) -> GateVerdict:
    """Judge fresh run records against a baseline document.

    Every (key, metric) pair present on either side produces one
    :class:`MetricCheck`; the verdict is ``"regression"`` iff at least one
    check confirms a regression under the :class:`GateConfig` rule.
    """
    config = config or GateConfig()
    fresh = collect_samples(records)
    entries = baseline.get("entries", {})
    checks: list[MetricCheck] = []

    for key in sorted(set(entries) | set(fresh)):
        base_metrics = (entries.get(key) or {}).get("metrics", {})
        fresh_metrics = (fresh.get(key) or {}).get("metrics", {})
        for mname in sorted(set(base_metrics) | set(fresh_metrics)):
            base = base_metrics.get(mname)
            slot = fresh_metrics.get(mname)
            klass = (base or slot)["class"]
            if klass not in config.classes:
                continue
            if base is None:
                checks.append(MetricCheck(
                    key, mname, klass, "new",
                    fresh_median=_median(slot["values"]),
                ))
                continue
            if slot is None:
                checks.append(MetricCheck(
                    key, mname, klass, "missing",
                    base_median=base["median"],
                ))
                continue
            base_median = float(base["median"])
            fresh_median = _median(slot["values"])
            band = (
                config.iqr_factor
                * max(float(base.get("iqr", 0.0)), _iqr(slot["values"]))
                + float(config.min_abs.get(klass, 0.0))
            )
            threshold = float(config.thresholds.get(klass, 0.0))
            upper = base_median * (1.0 + threshold) + band
            lower = base_median * (1.0 - threshold) - band
            if fresh_median > upper:
                status = "regression"
            elif fresh_median < lower:
                status = "improvement"
            else:
                status = "ok"
            checks.append(MetricCheck(
                key, mname, klass, status,
                base_median=base_median, fresh_median=fresh_median, band=band,
            ))

    status = "regression" if any(
        c.status == "regression" for c in checks
    ) else "ok"
    return GateVerdict(status=status, checks=tuple(checks))


def render_verdict(verdict: GateVerdict, *, max_ok_rows: int = 12) -> str:
    """Human-readable gate outcome: regressions first, then a digest."""
    from ..utils.tables import format_seconds, format_table

    def fmt(metric: str, value: float | None) -> str:
        if value is None:
            return "-"
        if metric.endswith("_s"):
            return format_seconds(value)
        return f"{value:.4g}"

    interesting = [c for c in verdict.checks
                   if c.status in ("regression", "improvement")]
    rest = [c for c in verdict.checks if c.status == "ok"]
    drift = [c for c in verdict.checks if c.status in ("new", "missing")]
    shown = interesting + rest[:max_ok_rows]
    rows = [
        [
            c.status.upper() if c.status == "regression" else c.status,
            c.key,
            c.metric,
            c.klass,
            fmt(c.metric, c.base_median),
            fmt(c.metric, c.fresh_median),
            f"{c.ratio:.2f}x" if c.ratio is not None else "-",
        ]
        for c in shown
    ]
    out = format_table(
        ["status", "key", "metric", "class", "baseline", "fresh", "ratio"],
        rows,
        title=f"regression gate: {verdict.status}",
    )
    hidden = len(rest) - max_ok_rows
    if hidden > 0:
        out += f"\n... {hidden} more ok check(s)"
    if drift:
        news = sum(1 for c in drift if c.status == "new")
        out += (f"\ncoverage drift: {news} new metric(s), "
                f"{len(drift) - news} missing from this run")
    return out


# --------------------------------------------------------------------------
# validators (shared with scripts/check_bench_json.py)
# --------------------------------------------------------------------------

def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_baseline(doc: Any) -> list[str]:
    """Problems in a ``repro.baseline/1`` document (empty list = valid)."""
    if not isinstance(doc, dict):
        return [f"baseline must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("schema") != BASELINE_SCHEMA:
        problems.append(
            f"schema must be {BASELINE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    entries = doc.get("entries")
    if not isinstance(entries, dict):
        return problems + ["entries must be an object"]
    for key, entry in entries.items():
        where = f"entries[{key!r}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            problems.append(f"{where}.metrics must be a non-empty object")
            continue
        for mname, stat in metrics.items():
            mwhere = f"{where}.metrics[{mname!r}]"
            if not isinstance(stat, dict):
                problems.append(f"{mwhere} must be an object")
                continue
            if stat.get("class") not in METRIC_CLASSES:
                problems.append(
                    f"{mwhere}.class must be one of {METRIC_CLASSES}, "
                    f"got {stat.get('class')!r}"
                )
            if not _is_number(stat.get("median")):
                problems.append(f"{mwhere}.median must be a number")
            if not _is_number(stat.get("iqr")) or stat.get("iqr", 0) < 0:
                problems.append(f"{mwhere}.iqr must be a number >= 0")
            count = stat.get("count")
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                problems.append(f"{mwhere}.count must be an integer >= 1")
    return problems


def validate_trajectory(doc: Any) -> list[str]:
    """Problems in a ``repro.trajectory/1`` document (empty list = valid)."""
    if not isinstance(doc, dict):
        return [f"trajectory must be a JSON object, got {type(doc).__name__}"]
    problems: list[str] = []
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        problems.append(
            f"schema must be {TRAJECTORY_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    points = doc.get("points")
    if not isinstance(points, list):
        return problems + ["points must be an array"]
    for i, point in enumerate(points):
        where = f"points[{i}]"
        if not isinstance(point, dict):
            problems.append(f"{where} must be an object")
            continue
        key = point.get("key")
        if not isinstance(key, str) or not key:
            problems.append(f"{where}.key must be a non-empty string")
        metrics = point.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            problems.append(f"{where}.metrics must be a non-empty object")
            continue
        for mname, value in metrics.items():
            if not _is_number(value):
                problems.append(
                    f"{where}.metrics[{mname!r}] must be a number, "
                    f"got {value!r}"
                )
    return problems
