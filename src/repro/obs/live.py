"""Flight recorder — a bounded, always-on window into a running process.

The post-hoc observability layer answers "what did that run do" after the
run returns.  A long-lived service needs the *live* question: "what was the
process doing when it got slow, just now?"  The
:class:`FlightRecorder` answers it with a classic flight-recorder design:

* it **subscribes** to a :class:`~repro.obs.trace.Tracer` (span closes) and
  a :class:`~repro.obs.metrics.MetricsRegistry` (every counter/gauge/
  histogram update) through their public subscription hooks — producers
  keep writing to the same instruments they always did;
* events land in a **bounded ring buffer** (``collections.deque`` with
  ``maxlen``): appends are O(1) and lock-held time is constant, so the
  recorder's overhead is flat no matter how long the process runs;
* overflow **drops the oldest** event and the drop is *accounted*, both on
  the recorder (:attr:`dropped`) and as the ``sfft.flight.dropped`` counter
  in the attached registry — silent loss is the one thing a flight
  recorder must not do;
* :meth:`dump` produces a schema-valid ``repro.run/1`` record of the last
  ``window_s`` seconds **at any moment**, mid-stream, and
  :meth:`chrome_trace_events` the matching Chrome trace — the artifacts
  the rest of the tooling already understands.

Re-entrancy: the dropped-counter increment happens *outside* the recorder
lock, and the recorder ignores its own ``sfft.flight.*`` bookkeeping
metrics, so recording can never recurse into itself (the registry's
notify guard covers the metric-callback path, this module covers the
span path).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ParameterError
from .export import RUN_RECORD_SCHEMA
from .metrics import MetricsRegistry
from .trace import Span, Tracer, monotonic

__all__ = ["FlightEvent", "FlightRecorder", "DEFAULT_FLIGHT_CAPACITY"]

#: Default ring capacity — enough for several seconds of a busy executor
#: run (each shard contributes a handful of spans and metric updates).
DEFAULT_FLIGHT_CAPACITY = 4096

#: Metric-name prefix of the recorder's own bookkeeping; never recorded.
_SELF_PREFIX = "sfft.flight."


@dataclass(frozen=True)
class FlightEvent:
    """One recorded occurrence: a span close or a metric update.

    ``ts_s`` is the recorder clock (:func:`~repro.obs.trace.monotonic`) at
    record time — the common timebase :meth:`FlightRecorder.dump` windows
    on.  ``payload`` carries the span fields or the metric update.
    """

    kind: str  # "span" | "metric"
    ts_s: float
    name: str
    payload: dict[str, Any] = field(default_factory=dict)


class FlightRecorder:
    """Thread-safe bounded ring of recent spans and metric updates.

    Parameters
    ----------
    capacity:
        Maximum events retained; the oldest is dropped (and counted) when
        a new event would exceed it.
    clock:
        Injectable timestamp source (tests pass a fake; production uses
        :func:`~repro.obs.trace.monotonic`).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        *,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[FlightEvent] = deque(maxlen=self.capacity)
        self._dropped = 0
        self._registry: MetricsRegistry | None = None
        self._unsubscribers: list[Callable[[], None]] = []

    # -- wiring ------------------------------------------------------------

    def attach(
        self,
        *,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "FlightRecorder":
        """Subscribe to span closes and/or metric updates; returns self.

        May be called more than once to attach additional sources.  The
        last attached registry also receives the ``sfft.flight.dropped``
        counter.
        """
        if tracer is not None:
            self._unsubscribers.append(tracer.subscribe(self.record_span))
        if registry is not None:
            self._registry = registry
            self._unsubscribers.append(registry.subscribe(self.record_metric))
        return self

    def detach(self) -> None:
        """Undo every subscription :meth:`attach` made."""
        unsubs, self._unsubscribers = self._unsubscribers, []
        for unsub in unsubs:
            unsub()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.detach()

    # -- recording ---------------------------------------------------------

    def _append(self, event: FlightEvent) -> None:
        with self._lock:
            overflow = len(self._ring) == self.capacity
            self._ring.append(event)
            if overflow:
                self._dropped += 1
        # Outside the recorder lock: the counter's notify fan-out may call
        # straight back into record_metric on this thread.
        if overflow and self._registry is not None:
            self._registry.counter("sfft.flight.dropped").inc()

    def record_span(self, span: Span) -> None:
        """Tracer subscription target: record one closed span."""
        self._append(FlightEvent(
            kind="span",
            ts_s=self._clock(),
            name=span.name,
            payload={
                "category": span.category,
                "track": span.track,
                "start_s": span.start_s,
                "duration_s": span.duration_s,
                "depth": span.depth,
                "attrs": dict(span.attrs),
            },
        ))

    def record_metric(self, name: str, kind: str, value: float) -> None:
        """Registry subscription target: record one instrument update."""
        if name.startswith(_SELF_PREFIX):
            return  # own bookkeeping; recording it would feed back
        self._append(FlightEvent(
            kind="metric",
            ts_s=self._clock(),
            name=name,
            payload={"metric_kind": kind, "value": float(value)},
        ))

    # -- state -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events lost to overflow since construction (or :meth:`clear`)."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Empty the ring and reset the drop count."""
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def events(self, window_s: float | None = None) -> list[FlightEvent]:
        """Buffered events, oldest first; optionally only the last window.

        ``window_s=None`` returns everything retained; otherwise events
        whose record timestamp is within ``window_s`` seconds of now.
        """
        if window_s is not None and window_s < 0:
            raise ParameterError(f"window_s must be >= 0, got {window_s}")
        with self._lock:
            events = list(self._ring)
        if window_s is None:
            return events
        horizon = self._clock() - window_s
        return [ev for ev in events if ev.ts_s >= horizon]

    # -- export ------------------------------------------------------------

    @staticmethod
    def _metrics_state(events: list[FlightEvent]) -> dict[str, dict[str, Any]]:
        """Last-value / aggregate reconstruction of the windowed metrics.

        Counters and gauges keep their most recent value (counter updates
        carry the post-increment running total, so "last" is "current");
        histogram updates are single samples and aggregate over the
        window.
        """
        out: dict[str, dict[str, Any]] = {}
        for ev in events:
            if ev.kind != "metric":
                continue
            kind = str(ev.payload.get("metric_kind", "gauge"))
            value = float(ev.payload.get("value", 0.0))
            if kind == "histogram":
                state = out.setdefault(
                    ev.name,
                    {"kind": kind, "count": 0, "sum": 0.0,
                     "min": value, "max": value},
                )
                state["count"] = int(state["count"]) + 1
                state["sum"] = float(state["sum"]) + value
                state["min"] = min(float(state["min"]), value)
                state["max"] = max(float(state["max"]), value)
            else:
                out[ev.name] = {"kind": kind, "value": value}
        return out

    def dump(
        self,
        window_s: float | None = None,
        *,
        name: str = "flight",
    ) -> dict[str, Any]:
        """A schema-valid ``repro.run/1`` snapshot of the recent window.

        Safe to call at any moment, from any thread, while recording
        continues.  ``spans`` are the windowed span closes; ``metrics``
        the reconstructed instrument states; ``params`` document the
        recorder itself (capacity, drops, window).
        """
        events = self.events(window_s)
        spans = [
            {
                "name": ev.name,
                "category": str(ev.payload.get("category", "step")),
                "track": str(ev.payload.get("track", "cpu")),
                "start_s": float(ev.payload.get("start_s", 0.0)),
                "duration_s": float(ev.payload.get("duration_s", 0.0)),
            }
            for ev in events
            if ev.kind == "span"
        ]
        return {
            "schema": RUN_RECORD_SCHEMA,
            "name": str(name),
            "params": {
                "capacity": self.capacity,
                "window_s": window_s,
                "events": len(events),
                "dropped": self.dropped,
            },
            "metrics": self._metrics_state(events),
            "spans": spans,
        }

    def chrome_trace_events(
        self, window_s: float | None = None
    ) -> list[dict[str, Any]]:
        """Chrome ``trace_event`` dicts of the windowed span closes.

        Rebuilds a throwaway :class:`~repro.obs.trace.Tracer` from the
        buffered spans so track/tid assignment matches a live trace's.
        """
        replay = Tracer(clock=self._clock)
        for ev in self.events(window_s):
            if ev.kind != "span":
                continue
            replay.add_span(
                ev.name,
                start_s=float(ev.payload.get("start_s", 0.0)),
                duration_s=float(ev.payload.get("duration_s", 0.0)),
                category=str(ev.payload.get("category", "step")),
                track=str(ev.payload.get("track", "cpu")),
                depth=int(ev.payload.get("depth", 0)),
                attrs=dict(ev.payload.get("attrs", {})),
            )
        return replay.chrome_trace_events()
