"""Workload classes and the tuner's candidate configuration space.

The search axes are exactly the knobs the paper hand-tunes per ``(n, k)``
point plus the execution knobs later PRs added:

* ``B_scale`` — bucket count relative to the derived default (powers of
  two only, so every candidate ``B`` still divides ``n``);
* ``loops`` — the location/estimation loop count ``L``;
* ``comb_width`` — the sFFT-2.0 Comb pre-filter, on (a width) or off;
* ``fft_backend`` / ``executor_mode`` / ``workers`` / ``shard_size`` —
  the bucket-FFT vendor and the sharded-executor geometry (batch classes
  only; a single transform has no stack to shard).

The grid is an *axis sweep* around the derived default (FFTW's "patience"
economics, not a full cross product): each axis varies alone, plus the one
known-good combination the repo's benchmarks use.  The default
configuration is always candidate 0, so a measured winner can never be
structurally slower than not tuning at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..core.fft_backend import available_backends, default_backend_name
from ..core.parameters import derive_parameters
from ..errors import ParameterError
from ..utils.modmath import next_power_of_two
from .wisdom import class_key

__all__ = ["WorkloadClass", "Candidate", "generate_candidates",
           "candidate_from_config", "NOISE_CLASSES"]

#: Noise classes the tuner knows how to synthesize probe signals for.
#: ``exact`` — exactly k-sparse, well separated; ``noisy`` — the same
#: signal under 30 dB AWGN (location recovery still exact, estimation
#: noise-limited).
NOISE_CLASSES = ("exact", "noisy")


@dataclass(frozen=True)
class WorkloadClass:
    """One tuning key: the axes a measured pick is valid for."""

    n: int
    k: int
    noise_class: str = "exact"
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.noise_class not in NOISE_CLASSES:
            raise ParameterError(
                f"unknown noise class {self.noise_class!r}; "
                f"choose from {NOISE_CLASSES}"
            )
        if self.batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )

    @property
    def key(self) -> str:
        """Canonical ``repro.wisdom/1`` class-key string."""
        return class_key(self.n, self.k, self.noise_class, self.batch_size)


@dataclass(frozen=True)
class Candidate:
    """One point of the search space (``None`` = derived default)."""

    B_scale: float = 1.0
    loops: int | None = None
    comb_width: int | None = None
    fft_backend: str | None = None
    executor_mode: str | None = None
    workers: int = 1
    shard_size: int | None = None

    @property
    def is_default(self) -> bool:
        return self == Candidate()

    def plan_overrides(self, n: int, k: int) -> dict[str, Any]:
        """Derivation overrides this candidate applies for ``(n, k)``."""
        out: dict[str, Any] = {}
        if self.B_scale != 1.0:
            base = derive_parameters(n, k).B
            scaled = next_power_of_two(
                max(2, int(round(base * self.B_scale)))
            )
            out["B"] = max(2, min(scaled, n // 2))
        if self.loops is not None:
            out["loops"] = self.loops
        return out

    def resolved(self, n: int, k: int) -> dict[str, Any]:
        """``{"B", "loops"}`` the candidate resolves to (the wisdom form)."""
        params = derive_parameters(n, k, **self.plan_overrides(n, k))
        return {"B": params.B, "loops": params.loops}

    def config(self) -> dict[str, Any]:
        """The ``repro.wisdom/1`` ``config`` block for this candidate."""
        return {
            "B_scale": float(self.B_scale),
            "loops": self.loops,
            "comb_width": self.comb_width,
            "fft_backend": self.fft_backend,
            "executor_mode": self.executor_mode,
            "workers": int(self.workers),
            "shard_size": self.shard_size,
        }

    def label(self) -> str:
        """Short human-readable tag for ranking tables."""
        if self.is_default:
            return "default"
        parts: list[str] = []
        if self.B_scale != 1.0:
            parts.append(f"B*{self.B_scale:g}")
        if self.loops is not None:
            parts.append(f"L={self.loops}")
        if self.comb_width is not None:
            parts.append(f"comb={self.comb_width}")
        if self.fft_backend is not None:
            parts.append(self.fft_backend)
        if self.executor_mode is not None or self.workers > 1:
            parts.append(f"{self.executor_mode or 'thread'}x{self.workers}")
        if self.shard_size is not None:
            parts.append(f"shard={self.shard_size}")
        return "+".join(parts) or "default"


def generate_candidates(
    wc: WorkloadClass, *, budget: int | None = None
) -> list[Candidate]:
    """The ordered candidate list for one workload class.

    Candidate 0 is always the pure-default configuration.  ``budget``
    truncates the sweep (default kept), letting CI smoke runs bound their
    cost without a separate grid.
    """
    n, k = wc.n, wc.k
    cands: list[Candidate] = [Candidate()]

    # Loop-count axis: 6 is the paper-evaluation economy the repo's
    # benchmarks run at; the derived default (8-10) is the robust ceiling.
    default_loops = derive_parameters(n, k).loops
    for loops in (6, 10):
        if loops != default_loops:
            cands.append(Candidate(loops=loops))

    # Bucket-count axis: halving trades collision margin for per-loop
    # work; doubling buys margin for noisy/batch classes.
    for scale in (0.5, 2.0):
        cand = Candidate(B_scale=scale)
        if 2 <= cand.resolved(n, k)["B"] <= n // 2:
            cands.append(cand)

    # The known-good combination (economy loops + economy buckets).
    if default_loops != 6:
        cands.append(Candidate(B_scale=0.5, loops=6))

    # Comb pre-filter axis: on, at the classic ~8k residue classes.
    comb = min(n // 2, next_power_of_two(max(2, 8 * k)))
    if comb >= 2:
        cands.append(Candidate(comb_width=comb))

    if wc.batch_size > 1:
        # Execution axes only make sense with a stack to shard.
        default_backend = default_backend_name()
        for name in available_backends():
            if name != default_backend:
                cands.append(Candidate(fft_backend=name))
        for workers in (2,):
            cands.append(
                Candidate(executor_mode="thread", workers=workers)
            )
            if default_loops != 6:
                cands.append(Candidate(
                    loops=6, executor_mode="thread", workers=workers
                ))

    # De-duplicate while preserving order (axis sweeps can coincide).
    seen: set[Candidate] = set()
    unique = [c for c in cands if not (c in seen or seen.add(c))]
    if budget is not None and budget >= 1:
        unique = unique[:budget]
    return unique


def candidate_from_config(config: dict[str, Any]) -> Candidate:
    """Rebuild a :class:`Candidate` from a wisdom record's config block."""
    return replace(
        Candidate(),
        **{key: val for key, val in config.items()
           if key in Candidate.__dataclass_fields__},
    )
