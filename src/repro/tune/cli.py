"""``python -m repro tune`` — measure candidates, persist wisdom.

Usage::

    python -m repro tune [--class NLOG2:K[:NOISE[:BATCH]]]...
                         [--trials T] [--budget M] [--store PATH]
                         [--dry-run] [--json] [--seed S]

With no ``--class``, tunes the committed benchmark classes.  Each class
gets a ranking table (median, IQR, speedup vs the default configuration,
exactness verdict); winners are appended to the ``repro.wisdom/1`` store
unless ``--dry-run``.  ``--json`` additionally prints each class's winner
record as JSONL on stdout (schema-valid, pipeable into
``scripts/check_bench_json.py``).

Exit codes: 0 success, 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError
from .candidates import NOISE_CLASSES, WorkloadClass
from .tuner import TuneConfig, TuneOutcome, tune_class
from .wisdom import WisdomStore

__all__ = ["tune_main", "BENCHMARK_CLASSES"]

#: The classes the committed ``WISDOM.json`` covers (the benchmark suite's
#: shapes: fig5-scale single transforms plus the batch-engine stack).
BENCHMARK_CLASSES = (
    WorkloadClass(1 << 14, 8),
    WorkloadClass(1 << 16, 16),
    WorkloadClass(1 << 18, 64),
    WorkloadClass(1 << 14, 8, "exact", 8),
)


def _class_arg(text: str) -> WorkloadClass:
    parts = text.split(":")
    if not 2 <= len(parts) <= 4:
        raise argparse.ArgumentTypeError(
            f"--class wants NLOG2:K[:NOISE[:BATCH]], got {text!r}"
        )
    try:
        n_log2, k = int(parts[0]), int(parts[1])
        noise = parts[2] if len(parts) > 2 and parts[2] else "exact"
        batch = int(parts[3]) if len(parts) > 3 else 1
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--class wants integer NLOG2:K[:NOISE[:BATCH]], got {text!r}"
        ) from None
    if not 4 <= n_log2 <= 26:
        raise argparse.ArgumentTypeError(
            f"n_log2 must be in [4, 26], got {n_log2}"
        )
    if k < 1 or k >= (1 << n_log2):
        raise argparse.ArgumentTypeError(
            f"k must be in [1, n), got {k} for n=2^{n_log2}"
        )
    if noise not in NOISE_CLASSES:
        raise argparse.ArgumentTypeError(
            f"noise must be one of {NOISE_CLASSES}, got {noise!r}"
        )
    if batch < 1:
        raise argparse.ArgumentTypeError(f"batch must be >= 1, got {batch}")
    return WorkloadClass(1 << n_log2, k, noise, batch)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Measured auto-tuner: search candidate (B, L, Comb, "
                    "backend, executor) configurations per workload class "
                    "and persist statistically real winners as wisdom.",
    )
    parser.add_argument("--class", dest="classes", action="append",
                        type=_class_arg, metavar="NLOG2:K[:NOISE[:BATCH]]",
                        help="workload class to tune (repeatable; default: "
                             "the committed benchmark classes)")
    parser.add_argument("--trials", default=5, type=int, metavar="T",
                        help="timed trials per candidate (default 5)")
    parser.add_argument("--budget", default=None, type=int, metavar="M",
                        help="cap the candidate sweep at M configurations "
                             "(default: the full axis sweep)")
    parser.add_argument("--store", default="WISDOM.json", metavar="PATH",
                        help="repro.wisdom/1 JSONL store to append winners "
                             "to (default WISDOM.json)")
    parser.add_argument("--dry-run", action="store_true",
                        help="rank and report only; never write the store")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print each class's winner record as JSONL "
                             "on stdout")
    parser.add_argument("--seed", default=2016, type=int,
                        help="probe-signal seed (default 2016)")
    return parser


def _render_ranking(outcome: TuneOutcome) -> str:
    """The human ranking table for one tuned class."""
    wc = outcome.workload
    lines = [
        f"tuning {wc.key} "
        f"({len(outcome.ranking)} candidates, winner must clear the "
        f"IQR margin)",
        f"  {'rank':>4}  {'candidate':<18} {'B':>6} {'loops':>5} "
        f"{'median':>10} {'iqr':>9} {'vs default':>10}  exact",
    ]
    for rank, stats in enumerate(outcome.ranking, start=1):
        resolved = stats.candidate.resolved(wc.n, wc.k)
        marker = " *" if stats is outcome.winner else "  "
        lines.append(
            f"{marker}{rank:>4}  {stats.label:<18} {resolved['B']:>6} "
            f"{resolved['loops']:>5} {stats.median_s * 1e3:>7.3f} ms "
            f"{stats.iqr_s * 1e3:>6.3f} ms "
            f"{stats.speedup_vs(outcome.default.median_s):>9.2f}x  "
            f"{'yes' if stats.exact else 'NO'}"
        )
    if outcome.improved:
        lines.append(
            f"  winner: {outcome.winner.label} "
            f"({outcome.speedup_x:.2f}x, statistically real)"
        )
    else:
        lines.append(
            "  winner: default (no candidate cleared the noise margin)"
        )
    return "\n".join(lines)


def tune_main(argv: list[str]) -> int:
    """Entry point for ``python -m repro tune``."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.trials < 1:
        print("error: --trials must be >= 1", file=sys.stderr)
        return 2
    if args.budget is not None and args.budget < 1:
        print("error: --budget must be >= 1", file=sys.stderr)
        return 2

    classes = args.classes or list(BENCHMARK_CLASSES)
    # A wider sample span than the TuneConfig default: persisted wisdom
    # should ride on the most jitter-resistant measurements we can afford.
    config = TuneConfig(trials=args.trials, target_span_s=0.02)
    store = WisdomStore(args.store)
    for wc in classes:
        try:
            outcome = tune_class(
                wc, config=config, budget=args.budget, seed=args.seed
            )
        except ReproError as exc:
            print(f"error: tuning {wc.key} failed: {exc}", file=sys.stderr)
            return 2
        print(_render_ranking(outcome), file=sys.stderr)
        record = dict(outcome.record)
        if args.dry_run:
            record["version"] = store.next_version(record["class"])
            print(f"  dry-run: not writing {args.store}", file=sys.stderr)
        else:
            record = store.append(record)
            print(
                f"  appended {record['class']} v{record['version']} "
                f"to {args.store}",
                file=sys.stderr,
            )
        if args.as_json:
            print(json.dumps(record, separators=(",", ":")))
    return 0
