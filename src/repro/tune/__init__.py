"""Measured auto-tuning ("wisdom"): search, decide, persist, consume.

The package closes the loop ROADMAP item 4 names: the repo *measures
itself* per workload class and the core transparently picks the winners.

* :mod:`~repro.tune.candidates` — the search space: workload classes
  keyed ``(n, k, noise_class, batch_size)`` and the candidate grid over
  ``(B_scale, loops, comb, backend, executor mode, workers, shard size)``;
* :mod:`~repro.tune.tuner` — repeated-trial measurement with the
  regression gate's IQR margin: winners must be statistically real;
* :mod:`~repro.tune.wisdom` — the versioned ``repro.wisdom/1`` JSONL
  store (schema-validated, atomic appends, fingerprint staleness);
* :mod:`~repro.tune.cli` — ``python -m repro tune``.

Consumption lives in :mod:`repro.core.params` (the resolution seam):
explicit kwargs > wisdom store (``$REPRO_WISDOM``) > env > paper defaults.

Note the existing :mod:`repro.tuning` is the *modeled* (analytic) tuner;
this package is its measured counterpart, the FFTW-wisdom analogue.
"""

from .candidates import (
    NOISE_CLASSES,
    Candidate,
    WorkloadClass,
    candidate_from_config,
    generate_candidates,
)
from .tuner import (
    CandidateStats,
    TuneConfig,
    TuneOutcome,
    build_record,
    measure_candidate,
    tune_class,
)
from .wisdom import (
    WISDOM_SCHEMA,
    WisdomStore,
    class_key,
    clear_wisdom_cache,
    config_fingerprint,
    is_stale,
    load_wisdom,
    lookup_records,
    parse_class_key,
    validate_wisdom_record,
    wisdom_overrides,
)

__all__ = [
    "NOISE_CLASSES",
    "Candidate",
    "WorkloadClass",
    "candidate_from_config",
    "generate_candidates",
    "CandidateStats",
    "TuneConfig",
    "TuneOutcome",
    "build_record",
    "measure_candidate",
    "tune_class",
    "WISDOM_SCHEMA",
    "WisdomStore",
    "class_key",
    "clear_wisdom_cache",
    "config_fingerprint",
    "is_stale",
    "load_wisdom",
    "lookup_records",
    "parse_class_key",
    "validate_wisdom_record",
    "wisdom_overrides",
]
