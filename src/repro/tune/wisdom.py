"""The ``repro.wisdom/1`` store — measured parameter picks, persisted.

FFTW calls its measured plans *wisdom*; this module is the sFFT analogue.
A wisdom record says: "for workload class ``n=16384|k=8|noise=exact|batch=1``,
the measured winner is this ``(B, L, Comb, backend, executor)`` tuple" — and
carries enough provenance (trial statistics, a plan fingerprint, a
per-class version) that consumers can tell a fresh entry from a stale one.

Storage is JSONL with the same economics as ``repro.run/1``: schema-valid
records only, atomic appends (:func:`repro.obs.atomic_append_text`), and a
validator that rejects unknown keys so the writer and CI cannot drift.
Staleness is structural, not temporal: each record stamps the
:func:`config_fingerprint` of the fully resolved
:class:`~repro.core.parameters.SfftParameters` its config produces *today*;
when parameter derivation changes in a later PR, recomputing the
fingerprint at consumption time no longer matches and the entry is ignored
(``sfft.wisdom.stale``) instead of silently applying outdated picks.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import astuple, fields
from typing import Any

from ..core.parameters import SfftParameters, derive_parameters
from ..errors import ParameterError
from ..obs import atomic_append_text

__all__ = [
    "WISDOM_SCHEMA",
    "class_key",
    "parse_class_key",
    "config_fingerprint",
    "validate_wisdom_record",
    "wisdom_overrides",
    "is_stale",
    "lookup_records",
    "WisdomStore",
    "load_wisdom",
    "clear_wisdom_cache",
]

WISDOM_SCHEMA = "repro.wisdom/1"

#: Workload-class key grammar: the four axes tuning is keyed by.
_CLASS_RE = re.compile(
    r"^n=(\d+)\|k=(\d+)\|noise=([a-z][a-z0-9_]*)\|batch=(\d+)$"
)

#: Exactly the keys a record may carry (unknown keys are rejected — the
#: same closed-schema stance as ``repro.run/1`` fields).
_RECORD_KEYS = frozenset({
    "schema", "version", "class", "config", "resolved", "fingerprint",
    "stats", "created",
})
_REQUIRED_KEYS = ("schema", "version", "class", "config", "resolved",
                  "fingerprint")

#: The searchable configuration axes (see ``repro.tune.candidates``).
_CONFIG_KEYS = frozenset({
    "B_scale", "loops", "comb_width", "fft_backend", "executor_mode",
    "workers", "shard_size",
})
_EXECUTOR_MODES = ("thread", "process")


def class_key(n: int, k: int, noise_class: str = "exact",
              batch_size: int = 1) -> str:
    """Canonical class-key string for a ``(n, k, noise, batch)`` workload."""
    key = f"n={int(n)}|k={int(k)}|noise={noise_class}|batch={int(batch_size)}"
    if _CLASS_RE.match(key) is None:
        raise ParameterError(f"malformed workload class key {key!r}")
    return key


def parse_class_key(key: str) -> tuple[int, int, str, int]:
    """``(n, k, noise_class, batch_size)`` of a canonical class key."""
    m = _CLASS_RE.match(key) if isinstance(key, str) else None
    if m is None:
        raise ParameterError(
            f"malformed workload class key {key!r} "
            "(want 'n=<int>|k=<int>|noise=<slug>|batch=<int>')"
        )
    return int(m.group(1)), int(m.group(2)), m.group(3), int(m.group(4))


def config_fingerprint(n: int, k: int, overrides: dict[str, Any]) -> str:
    """Fingerprint of the plan a tuned config resolves to *right now*.

    Hashes the :class:`SfftParameters` field names plus the fully resolved
    value tuple of ``derive_parameters(n, k, **overrides)``.  Any change to
    parameter derivation (new field, different clamp, different derived
    threshold) changes the digest, so stored wisdom whose assumptions no
    longer hold is detectably stale without any timestamps.
    """
    params = derive_parameters(n, k, **overrides)
    payload = json.dumps(
        {
            "fields": [f.name for f in fields(SfftParameters)],
            "values": astuple(params),
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_config(config: Any, problems: list[str]) -> None:
    if not isinstance(config, dict):
        problems.append("config must be an object")
        return
    unknown = sorted(set(config) - _CONFIG_KEYS)
    if unknown:
        problems.append(f"config has unknown keys: {unknown}")
    scale = config.get("B_scale", 1.0)
    if not (isinstance(scale, (int, float)) and not isinstance(scale, bool)
            and scale > 0):
        problems.append("config.B_scale must be a positive number")
    for key in ("loops", "comb_width", "shard_size"):
        val = config.get(key)
        if val is not None and not (_is_int(val) and val >= 1):
            problems.append(f"config.{key} must be null or an int >= 1")
    backend = config.get("fft_backend")
    if backend is not None and not isinstance(backend, str):
        problems.append("config.fft_backend must be null or a string")
    mode = config.get("executor_mode")
    if mode is not None and mode not in _EXECUTOR_MODES:
        problems.append(
            f"config.executor_mode must be null or one of {_EXECUTOR_MODES}"
        )
    workers = config.get("workers", 1)
    if not (_is_int(workers) and workers >= 1):
        problems.append("config.workers must be an int >= 1")


def validate_wisdom_record(record: Any) -> list[str]:
    """Problems that make ``record`` an invalid ``repro.wisdom/1`` doc."""
    if not isinstance(record, dict):
        return ["wisdom record must be a JSON object"]
    problems: list[str] = []
    if record.get("schema") != WISDOM_SCHEMA:
        problems.append(
            f"schema must be {WISDOM_SCHEMA!r}, got {record.get('schema')!r}"
        )
    unknown = sorted(set(record) - _RECORD_KEYS)
    if unknown:
        problems.append(f"unknown keys: {unknown}")
    for key in _REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing required key {key!r}")
    version = record.get("version")
    if "version" in record and not (_is_int(version) and version >= 1):
        problems.append("version must be an int >= 1")
    if "class" in record:
        key = record["class"]
        if not isinstance(key, str) or _CLASS_RE.match(key) is None:
            problems.append(
                f"class must match 'n=<int>|k=<int>|noise=<slug>|"
                f"batch=<int>', got {key!r}"
            )
    if "config" in record:
        _check_config(record["config"], problems)
    resolved = record.get("resolved")
    if "resolved" in record:
        if not isinstance(resolved, dict):
            problems.append("resolved must be an object")
        else:
            for key in ("B", "loops"):
                if not (_is_int(resolved.get(key)) and resolved[key] >= 1):
                    problems.append(f"resolved.{key} must be an int >= 1")
            extra = sorted(set(resolved) - {"B", "loops"})
            if extra:
                problems.append(f"resolved has unknown keys: {extra}")
    fp = record.get("fingerprint")
    if "fingerprint" in record and not (
        isinstance(fp, str) and re.fullmatch(r"[0-9a-f]{16}", fp)
    ):
        problems.append("fingerprint must be a 16-hex-digit string")
    if "stats" in record and not isinstance(record["stats"], dict):
        problems.append("stats must be an object")
    if "created" in record and not isinstance(record["created"], str):
        problems.append("created must be a string")
    return problems


def wisdom_overrides(record: dict[str, Any]) -> dict[str, Any]:
    """Plan-derivation overrides a consumer applies for this record.

    Consumption uses the *resolved* ``B``/``loops`` (not the search-space
    form), so the applied plan is exactly the one that was measured and
    fingerprinted.
    """
    resolved = record["resolved"]
    return {"B": int(resolved["B"]), "loops": int(resolved["loops"])}


def is_stale(record: dict[str, Any], n: int, k: int) -> bool:
    """True when the record's fingerprint no longer matches current code.

    A config whose overrides no longer validate (e.g. a ``B`` the current
    clamps reject) is stale too — staleness must never raise on the
    consumption path.
    """
    try:
        fresh = config_fingerprint(n, k, wisdom_overrides(record))
    except ParameterError:
        return True
    return fresh != record.get("fingerprint")


def lookup_records(records: list[dict[str, Any]], n: int, k: int, *,
                   noise_class: str = "exact",
                   batch_size: int = 1) -> dict[str, Any] | None:
    """Latest record matching the workload class among ``records``.

    Tries the exact batch-size class first, then the ``batch=1`` class —
    per-call wisdom still beats paper defaults for a batch the tuner never
    measured.  Within a class, the highest version wins.
    """
    latest: dict[str, dict[str, Any]] = {}
    for record in records:
        prev = latest.get(record["class"])
        if prev is None or record["version"] > prev["version"]:
            latest[record["class"]] = record
    for batch in dict.fromkeys((int(batch_size), 1)):
        key = class_key(n, k, noise_class, batch)
        if key in latest:
            return latest[key]
    return None


class WisdomStore:
    """A JSONL file of ``repro.wisdom/1`` records with atomic appends.

    Reads validate every line (naming the offending line number) and check
    the per-class version monotonicity invariant; lookups return the
    highest-version record for a class.  Batch lookups fall back to the
    ``batch=1`` class when no exact batch-size entry exists — single-call
    wisdom still beats paper defaults for a batch the tuner never saw.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def load(self) -> list[dict[str, Any]]:
        """All records, validated; ``[]`` when the file does not exist."""
        if not os.path.exists(self.path):
            return []
        records: list[dict[str, Any]] = []
        versions: dict[str, int] = {}
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ParameterError(
                        f"{self.path}:{lineno}: not JSON ({exc})"
                    ) from None
                problems = validate_wisdom_record(record)
                if problems:
                    raise ParameterError(
                        f"{self.path}:{lineno}: {'; '.join(problems)}"
                    )
                cls, version = record["class"], record["version"]
                if versions.get(cls, 0) >= version:
                    raise ParameterError(
                        f"{self.path}:{lineno}: non-monotonic version "
                        f"{version} for class {cls!r} "
                        f"(already saw {versions[cls]})"
                    )
                versions[cls] = version
                records.append(record)
        return records

    def lookup(self, n: int, k: int, *, noise_class: str = "exact",
               batch_size: int = 1) -> dict[str, Any] | None:
        """Latest record for the class, with the ``batch=1`` fallback."""
        return lookup_records(
            self.load(), n, k, noise_class=noise_class, batch_size=batch_size
        )

    def next_version(self, cls: str) -> int:
        """The version a fresh append for ``cls`` should carry."""
        versions = [r["version"] for r in self.load() if r["class"] == cls]
        return max(versions, default=0) + 1

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Validate and atomically append one record; returns it.

        A missing ``version`` is assigned (current max for the class + 1);
        an explicit non-monotonic version is rejected, mirroring what the
        validator enforces file-wide.
        """
        record = dict(record)
        if "version" not in record:
            record["version"] = self.next_version(record.get("class", ""))
        problems = validate_wisdom_record(record)
        if problems:
            raise ParameterError(
                f"refusing to append invalid wisdom record: {problems}"
            )
        floor = self.next_version(record["class"])
        if record["version"] < floor:
            raise ParameterError(
                f"non-monotonic version {record['version']} for class "
                f"{record['class']!r} (next is {floor})"
            )
        atomic_append_text(
            self.path, json.dumps(record, separators=(",", ":")) + "\n"
        )
        clear_wisdom_cache(self.path)
        return record


#: Consumption-path cache: abspath -> ((mtime_ns, size), records).  The
#: resolution seam runs on every plan-less ``sfft`` call; re-parsing the
#: store each time would tax the hot path, while the (mtime, size)
#: signature keeps appended-to files visible.
_STORE_CACHE: dict[str, tuple[tuple[int, int], list[dict[str, Any]]]] = {}


def load_wisdom(path: str) -> list[dict[str, Any]]:
    """Validated records of ``path`` through the consumption cache."""
    apath = os.path.abspath(path)
    try:
        stat = os.stat(apath)
        sig = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        return []
    cached = _STORE_CACHE.get(apath)
    if cached is not None and cached[0] == sig:
        return cached[1]
    records = WisdomStore(apath).load()
    _STORE_CACHE[apath] = (sig, records)
    return records


def clear_wisdom_cache(path: str | None = None) -> None:
    """Drop the consumption cache (one path, or all of it)."""
    if path is None:
        _STORE_CACHE.clear()
    else:
        _STORE_CACHE.pop(os.path.abspath(path), None)
