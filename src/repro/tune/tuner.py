"""The measurement engine: time candidates, declare statistically real wins.

The decision rule is the mirror image of the regression gate
(:mod:`repro.obs.regress`): a candidate *beats* the default configuration
only when its median over repeated trials clears the default's by a
relative threshold **plus** an IQR band **plus** an absolute floor —

    cand_median < default_median * (1 - threshold)
                  - iqr_factor * max(IQRs) - min_abs_s

so timer jitter can never crown a winner, exactly as jitter can never
fail the gate.  Candidates must also pass an **exactness screen** (every
probe signal's support recovered, against ground truth) before they may
win at all: tuning changes speed, never results.

All timing goes through :func:`repro.obs.monotonic` — the same sanctioned
clock seam the tracer uses — so tuner measurements and traced spans share
one clock domain.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..core.plan import make_plan
from ..core.sfft import sfft
from ..core.variants import sfft_batch
from ..errors import ParameterError
from ..obs import monotonic
from ..obs.regress import _iqr, _median
from ..signals import add_awgn, make_sparse_signal
from .candidates import Candidate, WorkloadClass, generate_candidates
from .wisdom import WISDOM_SCHEMA, config_fingerprint

__all__ = ["TuneConfig", "CandidateStats", "TuneOutcome", "tune_class",
           "measure_candidate", "build_record"]


@dataclass(frozen=True)
class TuneConfig:
    """Trial budget and the statistical margin a winner must clear.

    Each timed sample spans ``reps`` back-to-back runs (auto-calibrated so
    one sample covers at least ``target_span_s`` — the ``timeit``
    amortization that keeps scheduler jitter from swamping sub-millisecond
    transforms) and is normalized to per-run seconds, so thresholds and
    IQRs always compare like with like.
    """

    trials: int = 5
    probes: int = 2
    threshold: float = 0.05
    iqr_factor: float = 1.5
    min_abs_s: float = 1e-5
    reps: int | None = None
    target_span_s: float = 5e-3

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ParameterError(f"trials must be >= 1, got {self.trials}")
        if self.probes < 1:
            raise ParameterError(f"probes must be >= 1, got {self.probes}")
        if self.reps is not None and self.reps < 1:
            raise ParameterError(f"reps must be >= 1, got {self.reps}")


@dataclass(frozen=True)
class CandidateStats:
    """Measured verdict for one candidate on one workload class."""

    candidate: Candidate
    label: str
    median_s: float
    iqr_s: float
    exact: bool
    samples: tuple[float, ...] = field(repr=False, default=())

    def speedup_vs(self, baseline_median_s: float) -> float:
        """``baseline / this`` — >1 means this candidate is faster."""
        return baseline_median_s / self.median_s if self.median_s else 1.0


@dataclass(frozen=True)
class TuneOutcome:
    """Everything one ``tune_class`` call learned."""

    workload: WorkloadClass
    ranking: tuple[CandidateStats, ...]
    winner: CandidateStats
    default: CandidateStats
    improved: bool
    record: dict[str, Any]

    @property
    def speedup_x(self) -> float:
        return self.winner.speedup_vs(self.default.median_s)


def _probe_signals(
    wc: WorkloadClass, config: TuneConfig, seed: int
) -> tuple[list[np.ndarray], list[set[int]]]:
    """``(signals, truths)``: probe inputs and their ground-truth supports.

    Probes are well separated (``n / 4k`` minimum circular distance) so
    exact recovery is the expected outcome for any sane configuration and
    the exactness screen measures the *candidate*, not the draw.
    """
    count = wc.batch_size if wc.batch_size > 1 else config.probes
    sep = max(1, wc.n // (4 * wc.k)) if wc.k * 4 < wc.n else 1
    xs: list[np.ndarray] = []
    truths: list[set[int]] = []
    for p in range(count):
        sig = make_sparse_signal(
            wc.n, wc.k, seed=seed + 101 * p, min_separation=sep
        )
        x = sig.time
        if wc.noise_class == "noisy":
            x, _ = add_awgn(x, 30.0, seed=seed + 7000 + p)
        xs.append(np.ascontiguousarray(x, dtype=np.complex128))
        truths.append(set(int(f) for f in sig.locations))
    return xs, truths


def _build_runner(
    wc: WorkloadClass, cand: Candidate, xs: list[np.ndarray], plan: Any
) -> Callable[[], Any]:
    """A zero-argument callable running the candidate's configuration.

    Returns the per-signal result list so the exactness screen can reuse
    one invocation.
    """
    if wc.batch_size == 1:
        x = xs[0]

        def run() -> Any:
            return [sfft(x, plan=plan, comb_width=cand.comb_width)]

        return run

    stack = np.stack(xs)
    executor = None
    kwargs: dict[str, Any] = {}
    if cand.executor_mode is not None or cand.workers > 1:
        from ..core.executor import ShardedExecutor

        executor = ShardedExecutor(
            workers=cand.workers, shard_size=cand.shard_size,
            fft_backend=cand.fft_backend, mode=cand.executor_mode,
        )
    elif cand.fft_backend is not None:
        kwargs["fft_backend"] = cand.fft_backend

    def run() -> Any:
        return sfft_batch(
            stack, plan=plan, executor=executor,
            comb_width=cand.comb_width, **kwargs,
        )

    return run


def measure_candidate(
    wc: WorkloadClass, cand: Candidate, xs: list[np.ndarray],
    truths: list[set[int]], config: TuneConfig,
    *, seed: int,
) -> CandidateStats:
    """Time one candidate: exactness screen, warmup, ``trials`` samples."""
    plan = make_plan(
        wc.n, wc.k, seed=seed, **cand.plan_overrides(wc.n, wc.k)
    )
    run = _build_runner(wc, cand, xs, plan)

    # Exactness screen (also the warmup: the plan workspace gets built
    # here, so the timed trials see steady-state reuse).
    results = run()
    exact = all(
        set(int(f) for f in res.locations) == truth
        for res, truth in zip(results, truths)
    )
    if wc.batch_size == 1 and len(xs) > 1:
        exact = exact and all(
            set(int(f) for f in
                sfft(x, plan=plan, comb_width=cand.comb_width).locations)
            == truth
            for x, truth in zip(xs[1:], truths[1:])
        )

    # Calibrate the inner repetition count off one warm run so every
    # sample spans >= target_span_s of work, then normalize back to
    # per-run seconds.
    if config.reps is not None:
        reps = config.reps
    else:
        t0 = monotonic()
        run()
        estimate = max(monotonic() - t0, 1e-9)
        reps = max(1, min(64, math.ceil(config.target_span_s / estimate)))

    samples: list[float] = []
    for _ in range(config.trials):
        t0 = monotonic()
        for _ in range(reps):
            run()
        samples.append((monotonic() - t0) / reps)
    return CandidateStats(
        candidate=cand,
        label=cand.label(),
        median_s=_median(samples),
        iqr_s=_iqr(samples),
        exact=exact,
        samples=tuple(samples),
    )


def _beats_default(stats: CandidateStats, default: CandidateStats,
                   config: TuneConfig) -> bool:
    """The gate-mirrored margin: improvement must be statistically real."""
    band = config.iqr_factor * max(stats.iqr_s, default.iqr_s)
    return stats.median_s < (
        default.median_s * (1.0 - config.threshold) - band - config.min_abs_s
    )


def build_record(wc: WorkloadClass, winner: CandidateStats,
                 default: CandidateStats, config: TuneConfig) -> dict[str, Any]:
    """The ``repro.wisdom/1`` record (version-less; stores assign it)."""
    resolved = winner.candidate.resolved(wc.n, wc.k)
    return {
        "schema": WISDOM_SCHEMA,
        "class": wc.key,
        "config": winner.candidate.config(),
        "resolved": resolved,
        "fingerprint": config_fingerprint(
            wc.n, wc.k, {"B": resolved["B"], "loops": resolved["loops"]}
        ),
        "stats": {
            "trials": config.trials,
            "median_s": winner.median_s,
            "iqr_s": winner.iqr_s,
            "default_median_s": default.median_s,
            "default_iqr_s": default.iqr_s,
            "speedup_x": winner.speedup_vs(default.median_s),
        },
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def tune_class(
    wc: WorkloadClass,
    *,
    config: TuneConfig | None = None,
    candidates: list[Candidate] | None = None,
    budget: int | None = None,
    seed: int = 2016,
) -> TuneOutcome:
    """Measure every candidate for one workload class and pick the winner.

    The default configuration is always measured (candidate 0), and it
    wins unless some exact candidate beats it by the statistically real
    margin — so consuming wisdom can never be worse than not tuning,
    modulo measurement noise the margin already absorbs.
    """
    config = config or TuneConfig()
    if candidates is None:
        candidates = generate_candidates(wc, budget=budget)
    if not candidates or not candidates[0].is_default:
        candidates = [Candidate()] + list(candidates)

    xs, truths = _probe_signals(wc, config, seed)
    # Discarded warmup sweep of the default: the first measured candidate
    # otherwise pays process warmup (allocator, page faults, filter code
    # paths) that inflates its spread — and the default runs first.
    measure_candidate(wc, candidates[0], xs, truths,
                      replace(config, trials=1), seed=seed)
    measured = [
        measure_candidate(wc, cand, xs, truths, config, seed=seed)
        for cand in candidates
    ]
    default = measured[0]
    ranking = tuple(sorted(measured, key=lambda s: s.median_s))

    contenders = [
        s for s in measured[1:]
        if s.exact and _beats_default(s, default, config)
    ]
    if default.exact and contenders:
        winner = min(contenders, key=lambda s: s.median_s)
        improved = True
    else:
        winner, improved = default, False

    return TuneOutcome(
        workload=wc,
        ranking=ranking,
        winner=winner,
        default=default,
        improved=improved,
        record=build_record(wc, winner, default, config),
    )
