"""Integration tests for the experiment harness.

These run every registered experiment (at reduced sizes where the runner
accepts them) and assert the *paper-shape properties* each figure claims —
the reproduction's headline guarantees.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.fig5 import sweep_runtimes_vs_n

SMALL_SIZES = [1 << p for p in (18, 20, 22)]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        # Every table and figure of the evaluation section.
        expected = {
            "fig2a", "fig2b", "fig5a", "fig5b", "fig5c", "fig5d", "fig5e",
            "fig5f", "table1", "table2",
        }
        assert expected <= set(EXPERIMENTS)

    def test_ablations_registered(self):
        assert {"abl-partition", "abl-layout", "abl-select", "abl-batch"} <= set(
            EXPERIMENTS
        )

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig9z")

    def test_list_sorted(self):
        ids = [s.experiment_id for s in list_experiments()]
        assert ids == sorted(ids)

    def test_specs_have_paper_refs(self):
        for spec in list_experiments():
            assert spec.paper_ref
            assert spec.description


class TestResultRendering:
    def test_render_and_markdown(self):
        res = run_experiment("table2")
        text = res.render()
        md = res.to_markdown()
        assert "table2" in text
        assert md.startswith("**table2**")
        assert "|---" in md

    def test_rows_match_headers(self):
        for exp_id in ("table1", "table2"):
            res = run_experiment(exp_id)
            for row in res.rows:
                assert len(row) == len(res.headers)


class TestFigureShapes:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_runtimes_vs_n(SMALL_SIZES + [1 << 24, 1 << 26])

    def test_fig5a_sfft_sublinear_dense_superlinear(self, sweep):
        first, last = sweep[0], sweep[-1]
        growth = last["n"] / first["n"]
        assert last["cusfft_opt"] / first["cusfft_opt"] < growth / 4
        assert last["cufft"] / first["cufft"] > growth / 4

    def test_fig5c_speedup_grows(self, sweep):
        speedups = [d["cufft"] / d["cusfft_opt"] for d in sweep]
        assert speedups[-1] > speedups[0]
        assert speedups[-1] > 5

    def test_fig5c_crossover_location(self, sweep):
        # cuFFT wins at 2^18; cusFFT wins by 2^24 — the paper's crossover
        # band.
        assert sweep[0]["cufft"] < sweep[0]["cusfft_opt"]
        by_n = {d["n"]: d for d in sweep}
        d24 = by_n[1 << 24]
        assert d24["cufft"] > d24["cusfft_opt"]

    def test_fig5d_range(self, sweep):
        first, last = sweep[0], sweep[-1]
        assert first["fftw"] / first["cusfft_opt"] < 1.0
        assert last["fftw"] / last["cusfft_opt"] > 10.0

    def test_fig5e_always_faster_than_psfft(self, sweep):
        for d in sweep:
            assert d["psfft"] > d["cusfft_opt_h2d"]

    def test_optimized_beats_baseline(self, sweep):
        for d in sweep:
            assert d["cusfft_opt"] < d["cusfft_base"]

    def test_fig5b_slow_growth_in_k(self):
        res = run_experiment("fig5b", n=1 << 24, ks=[100, 1000])
        assert len(res.rows) == 2

    def test_fig5f_errors_small(self):
        # n=2^20 keeps k/B in the paper's sparse regime (a few percent);
        # smaller n at the same k inflates collisions beyond the paper's
        # operating point.
        res = run_experiment("fig5f", n=1 << 20, ks=[50, 100], trials=1)
        for row in res.rows:
            mean_err = float(row[1])
            recall = float(row[3])
            assert mean_err < 1e-3
            assert recall >= 0.99


class TestFig2Shapes:
    def test_fig2a_perm_filter_share_grows(self):
        res = run_experiment("fig2a")
        first_share = float(res.rows[0][2].rstrip("%"))
        last_share = float(res.rows[-1][2].rstrip("%"))
        assert last_share > first_share

    def test_fig2a_estimation_share_falls(self):
        res = run_experiment("fig2a")
        first = float(res.rows[0][5].rstrip("%")) + float(res.rows[0][6].rstrip("%"))
        last = float(res.rows[-1][5].rstrip("%")) + float(res.rows[-1][6].rstrip("%"))
        assert last < first

    def test_fig2b_recovery_grows_with_k(self):
        res = run_experiment("fig2b", n=1 << 24, ks=[500, 4000])
        first = float(res.rows[0][5].rstrip("%"))
        last = float(res.rows[-1][5].rstrip("%"))
        assert last > first

    def test_fig2a_measured_mode(self):
        res = run_experiment(
            "fig2a", sizes=[1 << 14, 1 << 16], k=16, measured=True
        )
        assert len(res.rows) == 2


class TestAblationShapes:
    def test_partition_beats_atomics(self):
        res = run_experiment("abl-partition", sizes=[1 << 24])
        speedup = float(res.rows[0][3].rstrip("x"))
        assert speedup > 1.0

    def test_layout_neutral_under_honest_model(self):
        # Documented reproduction finding: the layout transformation is
        # ~0.8-1.0x under a bandwidth-honest model (see the experiment's
        # note); assert it stays in that band so a regression in either
        # direction is caught.
        res = run_experiment("abl-layout", sizes=[1 << 22])
        speedup = float(res.rows[0][3].rstrip("x"))
        assert 0.5 < speedup < 1.3
        assert any("REPRODUCTION FINDING" in n for n in res.notes)

    def test_fast_select_helps(self):
        res = run_experiment("abl-select", sizes=[1 << 24])
        speedup = float(res.rows[0][3].rstrip("x"))
        assert speedup > 1.2

    def test_batching_helps(self):
        res = run_experiment("abl-batch", sizes=[1 << 24])
        speedup = float(res.rows[0][4].rstrip("x"))
        assert speedup > 1.0


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out and "table1" in out

    def test_run_one(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2"]) == 0
        assert "Sandy Bridge" in capsys.readouterr().out

    def test_markdown_mode(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2", "--markdown"]) == 0
        assert "|---" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2


class TestExtensionExperiments:
    def test_ext_devices_rows(self):
        res = run_experiment("ext-devices", sizes=[1 << 22])
        assert len(res.rows) == 1
        assert len(res.headers) == 6  # n + 3 GPUs + 2 CPUs

    def test_ext_tuning_never_worse(self):
        res = run_experiment("ext-tuning", sizes=[1 << 21, 1 << 22])
        for row in res.rows:
            gain = float(row[4].rstrip("x"))
            assert gain >= 1.0 - 1e-9

    def test_ext_noise_recall_degrades_gracefully(self):
        res = run_experiment(
            "ext-noise", n=1 << 14, k=16, snrs=(30.0, 0.0), trials=1
        )
        recall_hi = float(res.rows[0][1])
        recall_lo = float(res.rows[1][1])
        assert recall_hi >= recall_lo
        assert recall_hi == 1.0

    def test_ext_comb_screens_and_recovers(self):
        res = run_experiment("ext-comb", n=1 << 14, ks=(8, 32))
        for row in res.rows:
            assert row[3] == "yes"  # support kept
            assert row[4] == "yes"  # exact recovery
            assert float(row[2]) < 0.6

    def test_ext_ldg_monotone_gain(self):
        res = run_experiment("ext-ldg", sizes=[1 << 22, 1 << 26])
        gains = [float(r[3].rstrip("x")) for r in res.rows]
        assert all(g > 1.0 for g in gains)
        assert gains[-1] >= gains[0]

    def test_ext_exact_phase_decoder_wins_small_n(self):
        res = run_experiment("ext-exact", sizes=[1 << 14], k=50)
        row = res.rows[0]
        assert row[7] == "yes"  # phase decoder exact

    def test_ext_exact_registered(self):
        assert "ext-exact" in EXPERIMENTS
