"""Integration: one observability layer across CPU, simulated GPU, harness.

Pins the PR's acceptance criteria: a profiled CPU ``sfft`` and a
``CusFFT.execute`` run populate the same ``sfft.*`` metric names, and the
exported Chrome trace is valid JSON with one ``tid`` per simulated stream
and non-negative, in-order timestamps.
"""

import json

import pytest

from repro import make_sparse_signal, sfft
from repro.experiments import run_experiment
from repro.gpu import CusFFT
from repro.obs import MetricsRegistry, Tracer, validate_run_record

N, K = 1 << 12, 8


@pytest.fixture(scope="module")
def signal():
    return make_sparse_signal(N, K, seed=42)


def test_cpu_and_gpu_emit_same_sfft_metric_names(signal):
    cpu_reg, gpu_reg = MetricsRegistry(), MetricsRegistry()
    sfft(signal.time, K, seed=1, profile=True, metrics=cpu_reg)
    CusFFT.create(N, K).execute(signal.time, seed=1, metrics=gpu_reg)
    cpu_names = {n for n in cpu_reg.names() if n.startswith("sfft.")}
    gpu_names = {n for n in gpu_reg.names() if n.startswith("sfft.")}
    assert cpu_names == gpu_names
    assert "sfft.buckets.occupancy" in cpu_names
    assert "sfft.recovery.votes" in cpu_names
    # the GPU run additionally reports device-model gauges
    assert "cusim.kernel.coalescing_efficiency" in gpu_reg.names()
    assert "cusim.timeline.makespan_s" in gpu_reg.names()


def test_step_times_is_view_over_trace(signal):
    res = sfft(signal.time, K, seed=1, profile=True)
    assert res.trace is not None
    sums = {}
    for sp in res.trace.spans:
        if sp.category == "sfft":
            sums[sp.name] = sums.get(sp.name, 0.0) + sp.duration_s
    assert res.step_times == pytest.approx(sums)


def test_comb_step_is_timed(signal):
    res = sfft(signal.time, K, seed=1, profile=True, comb_width=64)
    assert "comb" in res.step_times
    assert res.step_times["comb"] > 0


def test_chrome_trace_one_tid_per_stream(signal):
    tracer = Tracer()
    run = CusFFT.create(N, K).execute(signal.time, seed=1, tracer=tracer)
    doc = json.loads(tracer.export_chrome_trace())
    events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert len(events) == len(run.report.records)
    # every simulated stream maps to exactly one tid, consistently
    tid_by_track = {}
    thread_names = {
        e["tid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name"
    }
    for e in events:
        track = thread_names[e["tid"]]
        tid_by_track.setdefault(track, set()).add(e["tid"])
    assert all(len(tids) == 1 for tids in tid_by_track.values())
    assert len(tid_by_track) == len(run.report.stream_ids())
    # timestamps valid: non-negative, duration-consistent
    for e in events:
        assert e["ts"] >= 0 and e["dur"] >= 0
    # per-tid event starts are monotonically non-decreasing (streams are
    # in-order queues)
    by_tid = {}
    for e in events:
        by_tid.setdefault(e["tid"], []).append(e["ts"])
    for ts_list in by_tid.values():
        assert ts_list == sorted(ts_list)


def test_shared_tracer_holds_both_pipelines(signal):
    tracer = Tracer()
    sfft(signal.time, K, seed=1, tracer=tracer)
    CusFFT.create(N, K).execute(signal.time, seed=1, tracer=tracer)
    tracks = tracer.tracks()
    assert tracks[0] == "cpu"
    assert any(t.startswith("stream") for t in tracks)


def test_experiment_run_attaches_trace_and_writes_jsonl(tmp_path):
    path = tmp_path / "runs.jsonl"
    result = run_experiment("table1", jsonl_path=path)
    assert result.trace is not None
    assert [sp.name for sp in result.trace.spans][-1] == "table1"
    record = json.loads(path.read_text().strip())
    assert validate_run_record(record) == []
    assert record["name"] == "table1"
    assert record["rows"]


def test_demo_cli_trace_and_json(tmp_path, capsys):
    from repro.__main__ import main

    trace_path = tmp_path / "demo_trace.json"
    assert main(["12", "4", "--trace", str(trace_path), "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert validate_run_record(record) == []
    assert record["results"]["recovery_exact"] is True
    doc = json.loads(trace_path.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
