"""Feature-matrix test: exact recovery must hold across the cross product of
user-facing options — windows, profiles, binning formulations, cutoffs,
Comb screening, and loop splits.  A release-blocking grid."""

import itertools

import numpy as np
import pytest

from repro.core import make_plan, sfft
from repro.signals import make_sparse_signal

N, K = 1 << 13, 8

WINDOWS = ("dolph-chebyshev", "gaussian")
PROFILES = ("accurate", "fast")
BINNINGS = ("vectorized", "loop_partition")
CUTOFFS = ("topk", "threshold")


@pytest.fixture(scope="module")
def signal():
    return make_sparse_signal(N, K, seed=7, min_separation=N // (8 * K))


@pytest.mark.parametrize(
    "window,profile,binning,cutoff",
    list(itertools.product(WINDOWS, PROFILES, BINNINGS, CUTOFFS)),
)
def test_recovery_across_option_grid(signal, window, profile, binning, cutoff):
    plan = make_plan(N, K, seed=11, window=window, profile=profile)
    res = sfft(signal.time, plan=plan, binning=binning, cutoff_method=cutoff)
    assert set(res.locations.tolist()) == set(signal.locations.tolist())
    for f, v in res.as_dict().items():
        truth = signal.values[list(signal.locations).index(f)]
        tol = 1e-4 if profile == "fast" else 1e-6
        assert abs(v - truth) < tol * abs(truth)


@pytest.mark.parametrize("comb_width", [None, 256, 1024])
@pytest.mark.parametrize("loc_loops", [None, 3])
def test_recovery_with_screening_and_splits(signal, comb_width, loc_loops):
    plan = make_plan(N, K, seed=13, loops=6, loc_loops=loc_loops)
    res = sfft(signal.time, plan=plan, comb_width=comb_width, seed=14)
    assert set(res.locations.tolist()) == set(signal.locations.tolist())


@pytest.mark.parametrize("seed", range(8))
def test_recovery_across_plan_seeds(signal, seed):
    """The permutation schedule is random; recovery must not depend on it."""
    plan = make_plan(N, K, seed=1000 + seed)
    res = sfft(signal.time, plan=plan)
    assert set(res.locations.tolist()) == set(signal.locations.tolist())


@pytest.mark.parametrize("dtype", [np.complex128, np.complex64, np.float64])
def test_input_dtypes_accepted(dtype):
    sig = make_sparse_signal(1 << 12, 4, seed=3)
    x = sig.time.astype(dtype) if dtype != np.float64 else sig.time.real
    res = sfft(np.ascontiguousarray(x), 8 if dtype == np.float64 else 4, seed=4)
    assert res.k_found >= 1
