"""End-to-end "repro why" scenarios: regression attribution and pruning.

The acceptance loop of the why-analysis layer: artificially slow one real
pipeline stage, watch the gate fail, and check the emitted
``repro.attrib/1`` record names that stage's span as the top contributor
with a what-if projection — plus the critical-path invariant (shares sum
to 1.0) on a real multi-worker executor run, the ``python -m repro why``
CLI modes, and the ``--prune`` compaction mode.
"""

import importlib
import importlib.util
import json
import time
from pathlib import Path

import numpy as np
import pytest

sfft_mod = importlib.import_module("repro.core.sfft")
from repro.core import ShardedExecutor
from repro.obs import (
    MetricsRegistry,
    Tracer,
    critical_path,
    make_run_record,
    write_jsonl,
)
from repro.signals import make_sparse_signal

N, K = 1 << 12, 4


def _load_script(name):
    path = Path(__file__).resolve().parents[2] / "scripts" / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                 path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _write_runs(path, plan, signal, runs=3):
    for _ in range(runs):
        tracer = Tracer()
        metrics = MetricsRegistry()
        sfft_mod.sfft(signal.time, plan=plan, tracer=tracer, metrics=metrics)
        write_jsonl(path, make_run_record(
            "why-e2e", params={"n": N, "k": K},
            tracer=tracer, registry=metrics,
        ))


@pytest.fixture(scope="module")
def plan_and_signal():
    from tests.conftest import cached_plan

    return cached_plan(N, K), make_sparse_signal(N, K, seed=5)


class TestAttributionEndToEnd:
    def test_slowed_stage_is_named_top_contributor(
        self, tmp_path, monkeypatch, capsys, plan_and_signal
    ):
        """The ISSUE's acceptance loop, end to end through the gate CLI."""
        plan, signal = plan_and_signal
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "runs.jsonl"
        baseline = tmp_path / "base.json"
        attrib = tmp_path / "why.jsonl"
        args = ["--runs", str(runs), "--baseline", str(baseline),
                "--trajectory", "", "--attrib", str(attrib)]

        _write_runs(runs, plan, signal)
        assert gate.main(args) == 0  # recording mode
        capsys.readouterr()

        real_binner = sfft_mod._BINNERS["vectorized"]

        def slow_binner(*a, **kw):
            time.sleep(0.01)
            return real_binner(*a, **kw)

        monkeypatch.setitem(sfft_mod._BINNERS, "vectorized", slow_binner)
        runs.unlink()
        _write_runs(runs, plan, signal)
        assert gate.main(args) == 1
        captured = capsys.readouterr()
        assert "top contributor span.perm_filter.total_s" in captured.err
        assert "why:" in captured.out and "top contributors" in captured.out

        records = [json.loads(line)
                   for line in attrib.read_text().splitlines()]
        assert records
        doc = next(r for r in records
                   if r["target"]["metric"] == "span.perm_filter.total_s")
        assert doc["status"] == "regression"
        top = doc["contributors"][0]
        assert top["metric"] == "span.perm_filter.total_s"
        assert top["what_if"]["speedup_factor_x"] > 1.0
        assert top["what_if"]["projected_run_speedup_x"] > 1.0
        assert doc["residual"] is not None

        # The JSONL artifact passes the shared validator.
        check = _load_script("check_bench_json.py")
        assert check.main([str(attrib)]) == 0
        capsys.readouterr()


class TestExecutorCriticalPath:
    def test_multiworker_shares_sum_to_one(self):
        """Critical-path shares tile a real 2-worker executor trace."""
        from tests.conftest import cached_plan

        plan = cached_plan(2048, K)
        stack = np.stack([
            make_sparse_signal(2048, K, seed=70 + t).time for t in range(6)
        ])
        tracer = Tracer()
        ShardedExecutor(workers=2, shard_size=2).run(
            stack, plan, tracer=tracer
        )
        cp = critical_path(tracer.spans)
        shares = cp.stage_shares()
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)
        # Stage names fold across shards; pipeline stages are on the path.
        assert shares.keys() & {
            "perm_filter", "bucket_fft", "cutoff", "recovery", "estimation"
        }
        assert cp.queue_wait_s >= 0.0


class TestWhyCli:
    def _record_pair(self, tmp_path, plan, signal):
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "runs.jsonl"
        baseline = tmp_path / "base.json"
        _write_runs(runs, plan, signal, runs=2)
        assert gate.main(["--runs", str(runs), "--baseline", str(baseline),
                          "--trajectory", ""]) == 0
        _write_runs(runs, plan, signal, runs=1)
        return runs, baseline

    def test_baseline_mode_human_output(self, tmp_path, capsys,
                                        plan_and_signal):
        from repro.__main__ import main

        plan, signal = plan_and_signal
        runs, baseline = self._record_pair(tmp_path, plan, signal)
        capsys.readouterr()
        assert main(["why", "--runs", str(runs),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("why: ")
        assert "critical path" in out

    def test_json_mode_validates(self, tmp_path, capsys, plan_and_signal):
        from repro.__main__ import main

        plan, signal = plan_and_signal
        runs, baseline = self._record_pair(tmp_path, plan, signal)
        capsys.readouterr()
        assert main(["why", "--runs", str(runs),
                     "--baseline", str(baseline), "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        why_jsonl = tmp_path / "why.jsonl"
        why_jsonl.write_text("\n".join(lines) + "\n")
        check = _load_script("check_bench_json.py")
        assert check.main([str(why_jsonl)]) == 0
        capsys.readouterr()

    def test_flame_writes_two_value_stacks(self, tmp_path, capsys,
                                           plan_and_signal):
        from repro.__main__ import main

        plan, signal = plan_and_signal
        runs, baseline = self._record_pair(tmp_path, plan, signal)
        capsys.readouterr()
        folded = tmp_path / "diff.folded"
        assert main(["why", "--runs", str(runs),
                     "--baseline", str(baseline),
                     "--flame", str(folded)]) == 0
        capsys.readouterr()
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            stack, base, fresh = line.rsplit(" ", 2)
            assert stack and int(base) >= 0 and int(fresh) >= 0

    def test_diff_mode(self, tmp_path, capsys, plan_and_signal):
        from repro.__main__ import main

        plan, signal = plan_and_signal
        sides = []
        for i in range(2):
            tracer, metrics = Tracer(), MetricsRegistry()
            sfft_mod.sfft(signal.time, plan=plan, tracer=tracer,
                          metrics=metrics)
            record = make_run_record("why-diff", params={"n": N, "k": K},
                                     tracer=tracer, registry=metrics)
            side = tmp_path / f"run{i}.json"
            side.write_text(json.dumps(record))
            sides.append(str(side))
        assert main(["why", "--diff", *sides]) == 0
        out = capsys.readouterr().out
        assert "[diff]" in out
        assert "span.total_self_s" in out

    def test_missing_runs_is_usage_error(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["why", "--runs", str(tmp_path / "nope.jsonl")]) == 2
        capsys.readouterr()

    def test_explicit_missing_baseline_is_usage_error(self, tmp_path, capsys,
                                                      plan_and_signal):
        from repro.__main__ import main

        plan, signal = plan_and_signal
        runs = tmp_path / "runs.jsonl"
        _write_runs(runs, plan, signal, runs=1)
        assert main(["why", "--runs", str(runs),
                     "--baseline", str(tmp_path / "absent.json")]) == 2
        capsys.readouterr()

    def test_bad_top_and_what_if_are_usage_errors(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["why", "--top", "0"]) == 2
        assert main(["why", "--what-if", "0"]) == 2
        capsys.readouterr()


class TestPruneMode:
    def test_prune_drops_duplicate_lines(self, tmp_path, capsys,
                                         plan_and_signal):
        plan, signal = plan_and_signal
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "runs.jsonl"
        _write_runs(runs, plan, signal, runs=1)
        line = runs.read_text()
        runs.write_text(line * 3)  # two verbatim duplicates
        assert gate.main(["--runs", str(runs), "--trajectory", "",
                          "--prune"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out and "dropped 2" in out
        assert runs.read_text() == line

    def test_prune_keep_truncates_per_key(self, tmp_path, capsys,
                                          plan_and_signal):
        plan, signal = plan_and_signal
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "runs.jsonl"
        _write_runs(runs, plan, signal, runs=4)
        assert gate.main(["--runs", str(runs), "--trajectory", "",
                          "--prune", "--prune-keep", "2"]) == 0
        capsys.readouterr()
        assert len(runs.read_text().splitlines()) == 2

    def test_prune_keep_requires_prune(self, tmp_path, capsys):
        gate = _load_script("bench_gate.py")
        assert gate.main(["--prune-keep", "2"]) == 2
        assert "--prune-keep requires --prune" in capsys.readouterr().err

    def test_prune_rejects_corrupt_runs(self, tmp_path, capsys):
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "runs.jsonl"
        runs.write_text('{"schema": "nope"}\n')
        assert gate.main(["--runs", str(runs), "--trajectory", "",
                          "--prune"]) == 2
        assert "prune failed" in capsys.readouterr().err
