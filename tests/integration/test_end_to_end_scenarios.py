"""End-to-end scenario tests: realistic multi-feature pipelines exercising
the public API the way a downstream user would."""

import numpy as np
import pytest

from repro import isfft, make_plan, make_sparse_signal, rsfft, sfft, sfft_batch
from repro.analysis import score_result
from repro.core import load_plan, save_plan
from repro.cpu import PsFFT
from repro.cusim import GPU_DEVICES
from repro.gpu import BASELINE, OPTIMIZED, CusFFT
from repro.signals import add_awgn, make_harmonic_tones, make_wideband_channels


class TestCrossImplementationAgreement:
    """The CPU reference, PsFFT, and every GPU build must produce the same
    coefficients for the same plan — the reproduction's core guarantee."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_cpu_gpu_agree_across_seeds(self, seed):
        n, k = 1 << 13, 12
        sig = make_sparse_signal(n, k, seed=seed)
        transform = CusFFT.create(n, k, config=OPTIMIZED)
        run = transform.execute(sig.time, seed=seed + 100)
        ref = sfft(sig.time, plan=transform.plan())
        assert (run.result.locations == ref.locations).all()
        assert np.abs(run.result.values - ref.values).max() <= 1e-9 * max(
            1.0, np.abs(ref.values).max()
        )

    def test_psfft_equals_core(self):
        n, k = 1 << 13, 12
        sig = make_sparse_signal(n, k, seed=9)
        ps = PsFFT.create(n, k)
        res = ps.execute(sig.time, seed=10)
        ref = sfft(sig.time, plan=ps.plan())
        assert (res.locations == ref.locations).all()

    def test_all_devices_functional_identical(self):
        # The device model changes timing, never answers.
        n, k = 1 << 12, 8
        sig = make_sparse_signal(n, k, seed=11)
        results = []
        for dev in GPU_DEVICES:
            t = CusFFT.create(n, k, device=dev)
            t._plan = None
            results.append(t.execute(sig.time, seed=12).result)
        first = results[0]
        for other in results[1:]:
            assert (first.locations == other.locations).all()


class TestNoisyOfdmScenario:
    """Spectrum sensing under noise with the optimized feature set:
    threshold cutoff + Comb screen + fast profile."""

    def test_detection_pipeline(self):
        scene = make_wideband_channels(
            1 << 16, 32, 0.25, tones_per_channel=3, snr=30.0, seed=21
        )
        k = scene.signal.k
        res = sfft(
            scene.signal.time,
            k,
            seed=22,
            cutoff_method="threshold",
            comb_width=1 << 10,
            profile="fast",
        )
        rep = score_result(res, scene.signal.locations, scene.signal.values)
        assert rep.recall >= 0.95

    def test_harmonic_note_with_noise(self):
        sig = make_harmonic_tones(1 << 15, 64, 10, snr=25.0, seed=23)
        res = sfft(sig.time, 10, seed=24)
        found = set(res.locations.tolist())
        # The strongest 8 harmonics must all be found (the tail two may
        # fall near the noise floor after geometric decay).
        for h in sig.locations[:8]:
            assert int(h) in found


class TestPlanLifecycles:
    def test_save_load_then_batch(self, tmp_path):
        n, k = 1 << 12, 6
        plan = make_plan(n, k, seed=31)
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        reloaded = load_plan(path)
        sigs = [make_sparse_signal(n, k, seed=s) for s in (41, 42, 43)]
        outs = sfft_batch([s.time for s in sigs], plan=reloaded)
        for sig, out in zip(sigs, outs):
            assert set(out.locations.tolist()) == set(sig.locations.tolist())

    def test_one_plan_many_binnings(self):
        n, k = 1 << 12, 6
        plan = make_plan(n, k, seed=32)
        sig = make_sparse_signal(n, k, seed=33)
        outs = [
            sfft(sig.time, plan=plan, binning=b)
            for b in ("vectorized", "loop_partition")
        ]
        assert (outs[0].locations == outs[1].locations).all()

    def test_reseeded_plan_same_answers_different_schedule(self):
        n, k = 1 << 12, 6
        plan = make_plan(n, k, seed=34)
        fresh = plan.reseeded(seed=35)
        sig = make_sparse_signal(n, k, seed=36)
        a = sfft(sig.time, plan=plan)
        b = sfft(sig.time, plan=fresh)
        assert set(a.locations.tolist()) == set(b.locations.tolist())
        assert [p.sigma for p in plan.permutations] != [
            p.sigma for p in fresh.permutations
        ]


class TestRoundTrips:
    def test_forward_inverse_consistency(self):
        # isfft(fft-domain view) recovers what sfft sees, scaled by 1/n.
        n, k = 1 << 12, 5
        sig = make_sparse_signal(n, k, seed=51)
        fwd = sfft(sig.time, k, seed=52)
        # Inverse transform of the spectrum must return the time samples'
        # sparse representation... here: ifft(dense spectrum) == time.
        back = np.fft.ifft(fwd.to_dense())
        assert np.abs(back - sig.time).max() < 1e-6 * np.abs(sig.time).max()

    def test_rsfft_then_synthesis(self):
        n = 1 << 12
        t = np.arange(n)
        x = np.cos(2 * np.pi * 100 * t / n) + 0.25 * np.sin(
            2 * np.pi * 431 * t / n
        )
        res = rsfft(x, 4, seed=53)
        resynth = np.fft.ifft(res.to_dense()).real
        assert np.abs(resynth - x).max() < 1e-6

    def test_noise_then_denoise(self):
        # Sparse transform as a denoiser: recover support from noisy data,
        # re-synthesize, compare to the clean signal.
        n, k = 1 << 14, 10
        sig = make_sparse_signal(n, k, seed=54)
        noisy, _ = add_awgn(sig.time, 15.0, seed=55)
        res = sfft(noisy, k, seed=56)
        denoised = np.fft.ifft(res.to_dense())
        err_noisy = np.abs(noisy - sig.time).std()
        err_denoised = np.abs(denoised - sig.time).std()
        assert err_denoised < 0.25 * err_noisy
