"""Smoke tests: every example script runs end-to-end and validates its own
answers (each main() asserts internally and returns 0)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str) -> int:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        return module.main()
    finally:
        sys.modules.pop(name, None)


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "spectrum_sensing",
        "gps_acquisition",
        "seismic_deconvolution",
        "profiling_tour",
        "model_validation",
        "hopping_spectrogram",
    ],
)
def test_example_runs_clean(name, capsys):
    assert _run_example(name) == 0
    out = capsys.readouterr().out
    assert out.strip()  # examples narrate what they verified
